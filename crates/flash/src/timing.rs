//! NAND operation timing and reliability parameters.

use simkit::{Bandwidth, SimDuration};

/// Latency/bandwidth constants for the flash arrays.
///
/// Defaults model the Hynix MLC NAND on the Cosmos+ board: with 8 channels ×
/// 8 ways and 16 KiB pages, `t_prog = 500 µs` yields ≈32 MB/s per die and
/// ≈2 GB/s aggregate program bandwidth — the envelope the paper quotes for
/// the platform ("sized to accommodate a maximum of 2 GB/s", §6.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashTiming {
    /// Page program time (cell array busy).
    pub t_prog: SimDuration,
    /// Page read time (cell array busy before data is available).
    pub t_read: SimDuration,
    /// Block erase time.
    pub t_erase: SimDuration,
    /// Channel bus rate for moving a page between controller and die
    /// (NV-DDR class).
    pub channel_bus: Bandwidth,
    /// Fixed command/address cycle cost per operation on the bus.
    pub cmd_overhead: SimDuration,
}

impl Default for FlashTiming {
    fn default() -> Self {
        FlashTiming {
            t_prog: SimDuration::from_micros(500),
            t_read: SimDuration::from_micros(45),
            t_erase: SimDuration::from_millis(3),
            channel_bus: Bandwidth::mbytes_per_sec(400.0),
            cmd_overhead: SimDuration::from_nanos(500),
        }
    }
}

impl FlashTiming {
    /// Fast timing for unit tests (keeps simulated experiments short while
    /// preserving the prog ≫ read ≫ bus ordering).
    pub fn fast() -> Self {
        FlashTiming {
            t_prog: SimDuration::from_micros(50),
            t_read: SimDuration::from_micros(5),
            t_erase: SimDuration::from_micros(300),
            channel_bus: Bandwidth::gbytes_per_sec(1.0),
            cmd_overhead: SimDuration::from_nanos(100),
        }
    }

    /// Bus time to move one `page_bytes` page.
    pub fn page_transfer(&self, page_bytes: u32) -> SimDuration {
        self.cmd_overhead + self.channel_bus.transfer_time(page_bytes as u64)
    }

    /// Aggregate steady-state program bandwidth for a geometry, in decimal
    /// GB/s — the die-parallelism bound (min of die-bound and bus-bound).
    pub fn program_bandwidth_gbps(&self, g: &crate::geometry::FlashGeometry) -> f64 {
        let per_die = g.page_bytes as f64 / self.t_prog.as_secs_f64() / 1e9;
        let die_bound = per_die * g.total_dies() as f64;
        let per_channel_bus =
            g.page_bytes as f64 / self.page_transfer(g.page_bytes).as_secs_f64() / 1e9;
        let bus_bound = per_channel_bus * g.channels as f64;
        die_bound.min(bus_bound)
    }
}

/// Reliability model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityConfig {
    /// Fraction of blocks marked bad at manufacture.
    pub initial_bad_block_rate: f64,
    /// Probability a program operation fails and turns its block bad
    /// (grown bad block), before wear scaling.
    pub program_fail_rate: f64,
    /// Raw bit-error rate per read at zero wear.
    pub base_bit_error_rate: f64,
    /// Additional BER per program/erase cycle (wear-out slope).
    pub wear_ber_slope: f64,
    /// Bit errors per page the ECC can correct.
    pub ecc_correctable_bits: u32,
    /// Program/erase cycles before a block is considered worn out.
    pub pe_cycle_limit: u32,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            initial_bad_block_rate: 0.002,
            program_fail_rate: 1e-7,
            base_bit_error_rate: 1e-8,
            wear_ber_slope: 1e-11,
            ecc_correctable_bits: 72,
            pe_cycle_limit: 3000,
        }
    }
}

impl ReliabilityConfig {
    /// A perfectly reliable device (for experiments where error handling is
    /// out of scope, like the throughput figures).
    pub fn perfect() -> Self {
        ReliabilityConfig {
            initial_bad_block_rate: 0.0,
            program_fail_rate: 0.0,
            base_bit_error_rate: 0.0,
            wear_ber_slope: 0.0,
            ecc_correctable_bits: 72,
            pe_cycle_limit: u32::MAX,
        }
    }

    /// Expected raw bit errors in a page read at the given wear level.
    pub fn expected_bit_errors(&self, page_bits: u64, pe_cycles: u32) -> f64 {
        let ber = self.base_bit_error_rate + self.wear_ber_slope * pe_cycles as f64;
        ber * page_bits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::FlashGeometry;

    #[test]
    fn default_timing_hits_platform_envelope() {
        let t = FlashTiming::default();
        let g = FlashGeometry::default();
        let bw = t.program_bandwidth_gbps(&g);
        // ~2 GB/s, the Cosmos+ ceiling the paper quotes.
        assert!((bw - 2.0).abs() < 0.2, "program bandwidth {bw} GB/s");
    }

    #[test]
    fn page_transfer_cost() {
        let t = FlashTiming::default();
        let d = t.page_transfer(16 << 10);
        // 16KiB at 400 MB/s = 40.96us + 0.5us command overhead.
        assert!((d.as_micros_f64() - 41.46).abs() < 0.1, "transfer {d}");
    }

    #[test]
    fn ordering_invariant() {
        for t in [FlashTiming::default(), FlashTiming::fast()] {
            assert!(t.t_erase > t.t_prog);
            assert!(t.t_prog > t.t_read);
        }
    }

    #[test]
    fn wear_increases_expected_errors() {
        let r = ReliabilityConfig::default();
        let bits = (16u64 << 10) * 8;
        let fresh = r.expected_bit_errors(bits, 0);
        let worn = r.expected_bit_errors(bits, 3000);
        assert!(worn > fresh);
    }

    #[test]
    fn perfect_reliability_is_error_free() {
        let r = ReliabilityConfig::perfect();
        assert_eq!(r.expected_bit_errors(1 << 20, 1000), 0.0);
        assert_eq!(r.initial_bad_block_rate, 0.0);
    }
}
