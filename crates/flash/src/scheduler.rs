//! The priority-aware channel scheduler.
//!
//! This is the piece of the storage controller the paper modifies to build
//! a Villars device: "other than in the scheduler, practically no additional
//! change is necessary to the Storage Controller" (§4.3). It serves two
//! traffic classes — conventional-side writes and fast-side destage writes —
//! under three policies. In the strict-priority policies the low class is
//! only scheduled into the *gaps* of the high class ("Opportunistic
//! Destaging").

use crate::array::{FlashArray, FlashError, OpOutcome};
use crate::geometry::{BlockAddr, Ppa};
use simkit::SimTime;
use std::collections::VecDeque;

/// Traffic class of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Regular block-interface traffic (data-buffer flushes, user writes).
    Conventional,
    /// Fast-side destage traffic (CMB ring being moved to NAND).
    Destage,
}

/// Scheduling policy (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingMode {
    /// "That of a traditional device": divide opportunities by arrival order.
    Neutral,
    /// Destage traffic first; conventional fills the gaps.
    DestagePriority,
    /// Conventional traffic first; destage fills the gaps.
    ConventionalPriority,
}

impl SchedulingMode {
    /// The class served first under this mode, if strict.
    fn preferred(&self) -> Option<Priority> {
        match self {
            SchedulingMode::Neutral => None,
            SchedulingMode::DestagePriority => Some(Priority::Destage),
            SchedulingMode::ConventionalPriority => Some(Priority::Conventional),
        }
    }
}

/// What a request asks the arrays to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Program the page at a specific PPA.
    Program(Ppa),
    /// Read the page at a specific PPA.
    Read(Ppa),
    /// Erase a block.
    Erase(BlockAddr),
}

impl OpKind {
    fn channel(&self) -> u32 {
        match self {
            OpKind::Program(p) | OpKind::Read(p) => p.channel(),
            OpKind::Erase(b) => b.die.channel,
        }
    }
}

/// A queued request.
#[derive(Debug, Clone, Copy)]
pub struct OpRequest {
    /// Caller-chosen identifier, echoed in the completion.
    pub id: u64,
    /// The operation.
    pub kind: OpKind,
    /// When the request reached the controller.
    pub arrival: SimTime,
    /// Traffic class.
    pub class: Priority,
}

/// A finished request.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// Echo of the request id.
    pub id: u64,
    /// Traffic class of the request.
    pub class: Priority,
    /// Completion instant (equals `outcome.grant.end` on success; errors
    /// complete at detection time).
    pub at: SimTime,
    /// The outcome.
    pub result: Result<OpOutcome, FlashError>,
}

#[derive(Debug, Default)]
struct ChannelQueues {
    conventional: VecDeque<OpRequest>,
    destage: VecDeque<OpRequest>,
}

impl ChannelQueues {
    fn queue(&mut self, class: Priority) -> &mut VecDeque<OpRequest> {
        match class {
            Priority::Conventional => &mut self.conventional,
            Priority::Destage => &mut self.destage,
        }
    }
}

/// Per-class service accounting (drives the Fig. 12 bandwidth series).
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassStats {
    /// Completed operations.
    pub ops: u64,
    /// Completed page-bytes (programs and reads count one page each).
    pub bytes: u64,
}

/// The scheduler. Owns the per-channel queues; the flash arrays are passed
/// into [`ChannelScheduler::pump`] so array and policy stay separately
/// testable.
#[derive(Debug)]
pub struct ChannelScheduler {
    mode: SchedulingMode,
    channels: Vec<ChannelQueues>,
    conventional_stats: ClassStats,
    destage_stats: ClassStats,
}

impl ChannelScheduler {
    /// A scheduler for `channels` channels under `mode`.
    pub fn new(channels: u32, mode: SchedulingMode) -> Self {
        ChannelScheduler {
            mode,
            channels: (0..channels).map(|_| ChannelQueues::default()).collect(),
            conventional_stats: ClassStats::default(),
            destage_stats: ClassStats::default(),
        }
    }

    /// Current policy.
    pub fn mode(&self) -> SchedulingMode {
        self.mode
    }

    /// Change policy (an NVMe vendor command on the Villars device).
    pub fn set_mode(&mut self, mode: SchedulingMode) {
        self.mode = mode;
    }

    /// Enqueue a request. Requests are kept in arrival order within their
    /// class; a late submission with an early arrival (a firmware retry, a
    /// GC op) is inserted at its time-correct position.
    pub fn submit(&mut self, req: OpRequest) {
        let ch = req.kind.channel() as usize;
        assert!(ch < self.channels.len(), "channel {ch} out of range");
        let q = self.channels[ch].queue(req.class);
        // Stable insert: after all entries with arrival <= req.arrival.
        let pos = q.partition_point(|r| r.arrival <= req.arrival);
        q.insert(pos, req);
    }

    /// Drop every queued (not yet started) request. Used on power failure:
    /// queued work is volatile device state.
    pub fn drop_all(&mut self) {
        for ch in &mut self.channels {
            ch.conventional.clear();
            ch.destage.clear();
        }
    }

    /// Drop queued requests of one class (power failure with supercap
    /// rescue keeps the destage class).
    pub fn drop_class(&mut self, class: Priority) {
        for ch in &mut self.channels {
            ch.queue(class).clear();
        }
    }

    /// Number of queued requests across all channels.
    pub fn pending(&self) -> usize {
        self.channels.iter().map(|c| c.conventional.len() + c.destage.len()).sum()
    }

    /// Service accounting for one class.
    pub fn class_stats(&self, class: Priority) -> ClassStats {
        match class {
            Priority::Conventional => self.conventional_stats,
            Priority::Destage => self.destage_stats,
        }
    }

    /// The earliest instant any queued request could begin service, using
    /// the same die-aware feasibility `pump` uses — advancing a device to
    /// this instant guarantees pumping makes progress. Lets a device event
    /// loop jump virtual time.
    pub fn next_start_hint(&self, array: &FlashArray) -> Option<SimTime> {
        let window = (4 * array.geometry().dies_per_channel as usize).max(8);
        let mut best: Option<SimTime> = None;
        for (ch, q) in self.channels.iter().enumerate() {
            for queue in [&q.conventional, &q.destage] {
                if let Some((_, start)) = Self::best_in_window(queue, array, ch as u32, window) {
                    best = Some(best.map_or(start, |b: SimTime| b.min(start)));
                }
            }
        }
        best
    }

    /// Drive all channels, starting every request whose service can begin at
    /// or before `until`. Returns completions sorted by completion time.
    ///
    /// Scheduling is *die-aware with lookahead*: within a bounded window of
    /// each class queue, the scheduler finds the request that can start
    /// soonest given its target die's availability (firmware command-queue
    /// lookahead — without it, every grant piles onto already-backlogged
    /// dies and priorities become meaningless). Under strict priority the
    /// preferred class wins whenever it can start no later than the other —
    /// the low class runs only in true gaps (paper §4.3, Opportunistic
    /// Destaging).
    pub fn pump(&mut self, array: &mut FlashArray, until: SimTime) -> Vec<Completion> {
        let mut done = Vec::new();
        let page_bytes = array.geometry().page_bytes as u64;
        let window = (4 * array.geometry().dies_per_channel as usize).max(8);
        for ch in 0..self.channels.len() {
            loop {
                let conv =
                    Self::best_in_window(&self.channels[ch].conventional, array, ch as u32, window);
                let dest =
                    Self::best_in_window(&self.channels[ch].destage, array, ch as u32, window);
                let pick = match (conv, dest) {
                    (None, None) => break,
                    (Some(c), None) => (Priority::Conventional, c),
                    (None, Some(d)) => (Priority::Destage, d),
                    (Some(c), Some(d)) => match self.mode.preferred() {
                        Some(Priority::Conventional) if c.1 <= d.1 => (Priority::Conventional, c),
                        Some(Priority::Conventional) => (Priority::Destage, d),
                        Some(Priority::Destage) if d.1 <= c.1 => (Priority::Destage, d),
                        Some(Priority::Destage) => (Priority::Conventional, c),
                        None => {
                            // Neutral: earliest feasible start; tie-break by
                            // arrival order (FIFO across classes).
                            let (c_idx, c_start) = c;
                            let (d_idx, d_start) = d;
                            let c_arr = self.channels[ch].conventional[c_idx].arrival;
                            let d_arr = self.channels[ch].destage[d_idx].arrival;
                            if (c_start, c_arr) <= (d_start, d_arr) {
                                (Priority::Conventional, c)
                            } else {
                                (Priority::Destage, d)
                            }
                        }
                    },
                };
                let (class, (idx, start)) = pick;
                if start > until {
                    break;
                }
                let req =
                    self.channels[ch].queue(class).remove(idx).expect("candidate index valid");
                let result = match req.kind {
                    OpKind::Program(p) => array.program(start, p),
                    OpKind::Read(p) => array.read(start, p),
                    OpKind::Erase(b) => array.erase(start, b),
                };
                let at = match &result {
                    Ok(o) => o.grant.end,
                    Err(_) => start,
                };
                let stats = match req.class {
                    Priority::Conventional => &mut self.conventional_stats,
                    Priority::Destage => &mut self.destage_stats,
                };
                if result.is_ok() {
                    stats.ops += 1;
                    if !matches!(req.kind, OpKind::Erase(_)) {
                        stats.bytes += page_bytes;
                    }
                }
                done.push(Completion { id: req.id, class: req.class, at, result });
            }
        }
        done.sort_by_key(|c| c.at);
        done
    }

    /// The request within the first `window` entries of `q` that can start
    /// soonest, and that start instant. A program's start accounts for the
    /// channel bus and its die (the bus transfer may overlap the die's
    /// previous operation tail); reads/erases gate on the die.
    fn best_in_window(
        q: &VecDeque<OpRequest>,
        array: &FlashArray,
        channel: u32,
        window: usize,
    ) -> Option<(usize, SimTime)> {
        let bus_free = array.bus_busy_until(channel);
        let mut best: Option<(usize, SimTime)> = None;
        for (idx, req) in q.iter().take(window).enumerate() {
            // Queues are arrival-ordered, so once the best found start is at
            // or below every later entry's floor (max of bus-free and its
            // arrival), no later entry can improve on it.
            if let Some((_, b)) = best {
                if b <= req.arrival.max(bus_free) {
                    break;
                }
            }
            let start = match req.kind {
                OpKind::Program(p) => {
                    let xfer = array.timing().page_transfer(array.geometry().page_bytes);
                    let die_gate = array.die_busy_until(p.die()) - xfer;
                    req.arrival.max(bus_free).max(die_gate)
                }
                OpKind::Read(p) => req.arrival.max(array.die_busy_until(p.die())),
                OpKind::Erase(b) => req.arrival.max(array.die_busy_until(b.die)),
            };
            match best {
                Some((_, b)) if b <= start => {}
                _ => best = Some((idx, start)),
            }
        }
        best
    }
}

impl simkit::Instrument for ChannelScheduler {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.counter("conventional.ops", self.conventional_stats.ops);
        out.counter("conventional.bytes", self.conventional_stats.bytes);
        out.counter("destage.ops", self.destage_stats.ops);
        out.counter("destage.bytes", self.destage_stats.bytes);
        out.gauge("pending_ops", self.pending() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::FlashGeometry;
    use crate::timing::{FlashTiming, ReliabilityConfig};
    use simkit::SimDuration;

    fn array() -> FlashArray {
        FlashArray::new(FlashGeometry::tiny(), FlashTiming::fast(), ReliabilityConfig::perfect(), 1)
    }

    /// Program requests striped across the dies of channel 0.
    fn stripe_reqs(
        n: u64,
        class: Priority,
        arrival_step: SimDuration,
        id_base: u64,
        block: u32,
    ) -> Vec<OpRequest> {
        let g = FlashGeometry::tiny();
        (0..n)
            .map(|i| {
                let die = (i % g.dies_per_channel as u64) as u32;
                let page = (i / g.dies_per_channel as u64) as u32;
                OpRequest {
                    id: id_base + i,
                    kind: OpKind::Program(Ppa::new(0, die, block, page)),
                    arrival: SimTime::ZERO + arrival_step * i,
                    class,
                }
            })
            .collect()
    }

    #[test]
    fn completions_come_back_in_time_order() {
        let mut a = array();
        let mut s = ChannelScheduler::new(2, SchedulingMode::Neutral);
        for r in stripe_reqs(8, Priority::Conventional, SimDuration::ZERO, 0, 0) {
            s.submit(r);
        }
        let done = s.pump(&mut a, SimTime::MAX);
        assert_eq!(done.len(), 8);
        assert!(done.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(done.iter().all(|c| c.result.is_ok()));
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn pump_honours_until() {
        let mut a = array();
        let mut s = ChannelScheduler::new(2, SchedulingMode::Neutral);
        // Two requests far apart in arrival time.
        s.submit(OpRequest {
            id: 0,
            kind: OpKind::Program(Ppa::new(0, 0, 0, 0)),
            arrival: SimTime::ZERO,
            class: Priority::Conventional,
        });
        s.submit(OpRequest {
            id: 1,
            kind: OpKind::Program(Ppa::new(0, 0, 0, 1)),
            arrival: SimTime::from_millis(10),
            class: Priority::Conventional,
        });
        let done = s.pump(&mut a, SimTime::from_millis(1));
        assert_eq!(done.len(), 1);
        assert_eq!(s.pending(), 1);
        let done2 = s.pump(&mut a, SimTime::from_millis(20));
        assert_eq!(done2.len(), 1);
    }

    #[test]
    fn strict_priority_preempts_waiting_low_class() {
        let mut a = array();
        let mut s = ChannelScheduler::new(2, SchedulingMode::ConventionalPriority);
        // Both queues deep, all arrived at t=0 (block 0 for conventional,
        // block 1 for destage so program order is per-block).
        for r in stripe_reqs(8, Priority::Destage, SimDuration::ZERO, 100, 1) {
            s.submit(r);
        }
        for r in stripe_reqs(8, Priority::Conventional, SimDuration::ZERO, 0, 0) {
            s.submit(r);
        }
        let done = s.pump(&mut a, SimTime::MAX);
        // All conventional ops must start before any destage op starts.
        let first_destage = done
            .iter()
            .filter(|c| c.class == Priority::Destage)
            .map(|c| c.result.unwrap().grant.start)
            .min()
            .unwrap();
        let last_conv_start = done
            .iter()
            .filter(|c| c.class == Priority::Conventional)
            .map(|c| c.result.unwrap().grant.start)
            .max()
            .unwrap();
        assert!(last_conv_start <= first_destage);
    }

    #[test]
    fn gap_filling_serves_low_class_when_high_idle() {
        let mut a = array();
        let mut s = ChannelScheduler::new(2, SchedulingMode::ConventionalPriority);
        // Destage request available immediately; conventional arrives later.
        s.submit(OpRequest {
            id: 1,
            kind: OpKind::Program(Ppa::new(0, 0, 1, 0)),
            arrival: SimTime::ZERO,
            class: Priority::Destage,
        });
        s.submit(OpRequest {
            id: 0,
            kind: OpKind::Program(Ppa::new(0, 0, 0, 0)),
            arrival: SimTime::from_millis(5),
            class: Priority::Conventional,
        });
        let done = s.pump(&mut a, SimTime::MAX);
        // The destage op runs in the gap before the conventional op arrives.
        let d = done.iter().find(|c| c.id == 1).unwrap();
        assert_eq!(d.result.unwrap().grant.start, SimTime::ZERO);
    }

    #[test]
    fn neutral_mode_is_arrival_fifo() {
        let mut a = array();
        let mut s = ChannelScheduler::new(2, SchedulingMode::Neutral);
        s.submit(OpRequest {
            id: 0,
            kind: OpKind::Program(Ppa::new(0, 0, 1, 0)),
            arrival: SimTime::from_nanos(10),
            class: Priority::Destage,
        });
        s.submit(OpRequest {
            id: 1,
            kind: OpKind::Program(Ppa::new(0, 0, 0, 0)),
            arrival: SimTime::from_nanos(20),
            class: Priority::Conventional,
        });
        let done = s.pump(&mut a, SimTime::MAX);
        assert_eq!(done[0].id, 0, "earlier arrival first");
        assert_eq!(done[1].id, 1);
    }

    #[test]
    fn class_stats_track_bytes() {
        let mut a = array();
        let mut s = ChannelScheduler::new(2, SchedulingMode::Neutral);
        for r in stripe_reqs(4, Priority::Destage, SimDuration::ZERO, 0, 1) {
            s.submit(r);
        }
        s.pump(&mut a, SimTime::MAX);
        let st = s.class_stats(Priority::Destage);
        assert_eq!(st.ops, 4);
        assert_eq!(st.bytes, 4 * 4096);
        assert_eq!(s.class_stats(Priority::Conventional).ops, 0);
    }

    #[test]
    fn errors_complete_immediately() {
        let mut a = array();
        let mut s = ChannelScheduler::new(2, SchedulingMode::Neutral);
        // Out-of-order program: page 5 before 0..4.
        s.submit(OpRequest {
            id: 9,
            kind: OpKind::Program(Ppa::new(0, 0, 0, 5)),
            arrival: SimTime::ZERO,
            class: Priority::Conventional,
        });
        let done = s.pump(&mut a, SimTime::MAX);
        assert!(matches!(done[0].result, Err(FlashError::OutOfOrderProgram { .. })));
    }

    #[test]
    fn late_submission_with_early_arrival_is_reordered() {
        let mut a = array();
        let mut s = ChannelScheduler::new(2, SchedulingMode::Neutral);
        // Submitted second, but arrives first -> must be served first
        // (page-order constraint demands id 1 programs page 0 first).
        s.submit(OpRequest {
            id: 0,
            kind: OpKind::Program(Ppa::new(0, 0, 0, 1)),
            arrival: SimTime::from_nanos(100),
            class: Priority::Conventional,
        });
        s.submit(OpRequest {
            id: 1,
            kind: OpKind::Program(Ppa::new(0, 0, 0, 0)),
            arrival: SimTime::from_nanos(50),
            class: Priority::Conventional,
        });
        let done = s.pump(&mut a, SimTime::MAX);
        assert_eq!(done[0].id, 1);
        assert!(done.iter().all(|c| c.result.is_ok()));
    }

    #[test]
    fn mode_change_takes_effect() {
        let mut s = ChannelScheduler::new(1, SchedulingMode::Neutral);
        assert_eq!(s.mode(), SchedulingMode::Neutral);
        s.set_mode(SchedulingMode::DestagePriority);
        assert_eq!(s.mode(), SchedulingMode::DestagePriority);
    }
}
