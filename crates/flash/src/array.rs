//! The flash arrays: dies, channel buses, and low-level operations.
//!
//! Models what the paper's Flash Storage Controller drives (§2.2): each
//! channel is a shared bus to several dies; a program moves the page over
//! the bus and then occupies the die for `t_prog` (the bus is free to feed
//! other dies meanwhile — the interleaving that gives NAND its aggregate
//! bandwidth). Reliability (bad blocks, wear, ECC) is modelled so the error
//! paths of paper §7.1 are exercisable.

use crate::geometry::{BlockAddr, DieAddr, FlashGeometry, Ppa};
use crate::timing::{FlashTiming, ReliabilityConfig};
use simkit::faults::{FaultHook, FlashFaultConfig};
use simkit::{DetRng, Grant, SerialResource, SimTime};

/// Errors surfaced by flash operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashError {
    /// Target address outside the geometry.
    OutOfBounds(Ppa),
    /// The block was already marked bad.
    BadBlock(BlockAddr),
    /// The program operation failed; the block is now marked bad.
    ProgramFailed(BlockAddr),
    /// NAND constraint violation: pages in a block must program in order.
    OutOfOrderProgram {
        /// Attempted page.
        got: u32,
        /// Next programmable page in that block.
        expected: u32,
    },
    /// Reading a page that was never programmed since the last erase.
    ReadUnwritten(Ppa),
    /// Raw bit errors exceeded ECC correction capability.
    Uncorrectable(Ppa),
}

impl std::fmt::Display for FlashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlashError::OutOfBounds(p) => write!(f, "address out of bounds: {p:?}"),
            FlashError::BadBlock(b) => write!(f, "block is bad: {b:?}"),
            FlashError::ProgramFailed(b) => write!(f, "program failed, block grown bad: {b:?}"),
            FlashError::OutOfOrderProgram { got, expected } => {
                write!(f, "out-of-order program: page {got}, expected {expected}")
            }
            FlashError::ReadUnwritten(p) => write!(f, "read of unwritten page: {p:?}"),
            FlashError::Uncorrectable(p) => write!(f, "uncorrectable ECC error: {p:?}"),
        }
    }
}

impl std::error::Error for FlashError {}

/// Successful-operation detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpOutcome {
    /// Service window on the device.
    pub grant: Grant,
    /// Bit errors the ECC corrected (reads only; 0 otherwise).
    pub corrected_bits: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct BlockState {
    bad: bool,
    pe_cycles: u32,
    next_page: u32,
}

/// Cumulative operation counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlashStats {
    /// Pages programmed.
    pub programs: u64,
    /// Pages read.
    pub reads: u64,
    /// Blocks erased.
    pub erases: u64,
    /// Program failures (grown bad blocks).
    pub program_failures: u64,
    /// Reads with uncorrectable errors.
    pub uncorrectable_reads: u64,
    /// Total ECC-corrected bits.
    pub corrected_bits: u64,
    /// In-device retries of transiently failed reads (injected faults).
    pub transient_read_retries: u64,
    /// In-device retries of transiently failed programs (injected faults).
    pub transient_program_retries: u64,
    /// Permanent program failures injected by the fault layer (a subset of
    /// `program_failures`).
    pub injected_program_failures: u64,
}

/// Armed fault-injection state for one array (see
/// [`FlashArray::arm_faults`]). Each class draws from its own forked
/// stream so rates can be tuned independently without perturbing the
/// other classes' schedules.
#[derive(Debug, Clone)]
struct FlashFaults {
    cfg: FlashFaultConfig,
    read: FaultHook,
    program: FaultHook,
    permanent: FaultHook,
}

/// The full set of flash arrays behind the storage controller.
#[derive(Debug, Clone)]
pub struct FlashArray {
    geometry: FlashGeometry,
    timing: FlashTiming,
    reliability: ReliabilityConfig,
    dies: Vec<SerialResource>,
    buses: Vec<SerialResource>,
    blocks: Vec<BlockState>,
    rng: DetRng,
    stats: FlashStats,
    /// Fault injection (None = inert, the default).
    faults: Option<FlashFaults>,
}

impl FlashArray {
    /// Build the arrays; initial bad blocks are sampled deterministically
    /// from `seed`.
    pub fn new(
        geometry: FlashGeometry,
        timing: FlashTiming,
        reliability: ReliabilityConfig,
        seed: u64,
    ) -> Self {
        geometry.validate();
        let mut rng = DetRng::new(seed);
        let mut blocks = vec![BlockState::default(); geometry.total_blocks() as usize];
        if reliability.initial_bad_block_rate > 0.0 {
            for b in blocks.iter_mut() {
                if rng.chance(reliability.initial_bad_block_rate) {
                    b.bad = true;
                }
            }
        }
        FlashArray {
            dies: vec![SerialResource::new(); geometry.total_dies() as usize],
            buses: vec![SerialResource::new(); geometry.channels as usize],
            blocks,
            geometry,
            timing,
            reliability,
            rng,
            stats: FlashStats::default(),
            faults: None,
        }
    }

    /// Arm deterministic fault injection. Transient read/program faults
    /// are retried *in-device* (each retry re-pays the die time, bounded
    /// by `cfg.max_retries`, after which the transient condition has
    /// cleared by definition); permanent program faults mark the block bad
    /// and surface as [`FlashError::ProgramFailed`] for the FTL to retire,
    /// remap, and rewrite. `rng` should be forked from the fault plan's
    /// master seed (`FaultPlan::rng_for`); the unarmed array makes zero
    /// extra draws and behaves bit-identically.
    pub fn arm_faults(&mut self, cfg: FlashFaultConfig, mut rng: DetRng) {
        use simkit::faults::site;
        self.faults = Some(FlashFaults {
            read: FaultHook::armed(rng.fork(site::FLASH_READ), cfg.transient_read),
            program: FaultHook::armed(rng.fork(site::FLASH_PROGRAM), cfg.transient_program),
            permanent: FaultHook::armed(rng.fork(site::FLASH_PERMANENT), cfg.permanent_program),
            cfg,
        });
    }

    /// Whether fault injection is armed.
    pub fn faults_armed(&self) -> bool {
        self.faults.is_some()
    }

    /// The geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// The timing constants.
    pub fn timing(&self) -> &FlashTiming {
        &self.timing
    }

    /// Operation counters.
    pub fn stats(&self) -> FlashStats {
        self.stats
    }

    fn die_index(&self, die: DieAddr) -> usize {
        (die.channel * self.geometry.dies_per_channel + die.die) as usize
    }

    fn block_index(&self, b: BlockAddr) -> usize {
        (self.die_index(b.die) * self.geometry.blocks_per_die as usize) + b.block as usize
    }

    /// When the channel bus of `channel` next goes idle.
    pub fn bus_busy_until(&self, channel: u32) -> SimTime {
        self.buses[channel as usize].busy_until()
    }

    /// When `die` next goes idle.
    pub fn die_busy_until(&self, die: DieAddr) -> SimTime {
        self.dies[self.die_index(die)].busy_until()
    }

    /// The earliest-free die on `channel` (where a striping FTL would place
    /// the next page).
    pub fn earliest_free_die(&self, channel: u32) -> DieAddr {
        let mut best = DieAddr { channel, die: 0 };
        for d in 1..self.geometry.dies_per_channel {
            let cand = DieAddr { channel, die: d };
            if self.die_busy_until(cand) < self.die_busy_until(best) {
                best = cand;
            }
        }
        best
    }

    /// Whether `block` is marked bad.
    pub fn is_bad(&self, block: BlockAddr) -> bool {
        self.blocks[self.block_index(block)].bad
    }

    /// P/E cycles consumed by `block`.
    pub fn pe_cycles(&self, block: BlockAddr) -> u32 {
        self.blocks[self.block_index(block)].pe_cycles
    }

    /// Next programmable page of `block`.
    pub fn next_page(&self, block: BlockAddr) -> u32 {
        self.blocks[self.block_index(block)].next_page
    }

    /// Program one page. Bus transfer from `now` (or when the bus frees),
    /// then `t_prog` on the die. Enforces in-order page programming.
    pub fn program(&mut self, now: SimTime, ppa: Ppa) -> Result<OpOutcome, FlashError> {
        if !ppa.in_bounds(&self.geometry) {
            return Err(FlashError::OutOfBounds(ppa));
        }
        let bi = self.block_index(ppa.block);
        if self.blocks[bi].bad {
            return Err(FlashError::BadBlock(ppa.block));
        }
        if self.blocks[bi].next_page != ppa.page {
            return Err(FlashError::OutOfOrderProgram {
                got: ppa.page,
                expected: self.blocks[bi].next_page,
            });
        }
        let xfer = self.timing.page_transfer(self.geometry.page_bytes);
        let bus = self.buses[ppa.channel() as usize].acquire(now, xfer);
        let di = self.die_index(ppa.die());
        let die = self.dies[di].acquire(bus.end, self.timing.t_prog);
        self.blocks[bi].next_page += 1;
        self.stats.programs += 1;
        if self.reliability.program_fail_rate > 0.0
            && self.rng.chance(self.reliability.program_fail_rate)
        {
            self.blocks[bi].bad = true;
            self.stats.program_failures += 1;
            return Err(FlashError::ProgramFailed(ppa.block));
        }
        let mut end = die.end;
        if let Some(f) = self.faults.as_mut() {
            if f.permanent.fire() {
                // Injected permanent failure: the block is grown bad and
                // the FTL must retire + remap + rewrite (paper §7.1).
                self.blocks[bi].bad = true;
                self.stats.program_failures += 1;
                self.stats.injected_program_failures += 1;
                return Err(FlashError::ProgramFailed(ppa.block));
            }
            // Transient program faults clear on retry; each in-device
            // retry re-pays the die program time (bounded).
            let mut retries = 0u32;
            while retries < f.cfg.max_retries && f.program.fire() {
                retries += 1;
                end = self.dies[di].acquire(end, self.timing.t_prog).end;
            }
            self.stats.transient_program_retries += u64::from(retries);
        }
        Ok(OpOutcome { grant: Grant { start: bus.start, end }, corrected_bits: 0 })
    }

    /// Read one page. `t_read` on the die, then the bus transfer out.
    pub fn read(&mut self, now: SimTime, ppa: Ppa) -> Result<OpOutcome, FlashError> {
        if !ppa.in_bounds(&self.geometry) {
            return Err(FlashError::OutOfBounds(ppa));
        }
        let bi = self.block_index(ppa.block);
        if self.blocks[bi].bad {
            return Err(FlashError::BadBlock(ppa.block));
        }
        if ppa.page >= self.blocks[bi].next_page {
            return Err(FlashError::ReadUnwritten(ppa));
        }
        let di = self.die_index(ppa.die());
        let mut die = self.dies[di].acquire(now, self.timing.t_read);
        let die_start = die.start;
        if let Some(f) = self.faults.as_mut() {
            // Transient read faults (read-disturb style) are retried
            // in-device before the page leaves the die; each retry
            // re-pays the array sense time (bounded).
            let mut retries = 0u32;
            while retries < f.cfg.max_retries && f.read.fire() {
                retries += 1;
                die = self.dies[di].acquire(die.end, self.timing.t_read);
            }
            self.stats.transient_read_retries += u64::from(retries);
        }
        let xfer = self.timing.page_transfer(self.geometry.page_bytes);
        let bus = self.buses[ppa.channel() as usize].acquire(die.end, xfer);
        self.stats.reads += 1;

        let errors = self.sample_bit_errors(self.blocks[bi].pe_cycles);
        if errors > self.reliability.ecc_correctable_bits {
            self.stats.uncorrectable_reads += 1;
            return Err(FlashError::Uncorrectable(ppa));
        }
        self.stats.corrected_bits += errors as u64;
        Ok(OpOutcome { grant: Grant { start: die_start, end: bus.end }, corrected_bits: errors })
    }

    /// Erase a block: resets the program pointer and consumes one P/E cycle.
    /// A block past its cycle limit grows bad.
    pub fn erase(&mut self, now: SimTime, block: BlockAddr) -> Result<OpOutcome, FlashError> {
        let probe = Ppa { block, page: 0 };
        if !probe.in_bounds(&self.geometry) {
            return Err(FlashError::OutOfBounds(probe));
        }
        let bi = self.block_index(block);
        if self.blocks[bi].bad {
            return Err(FlashError::BadBlock(block));
        }
        let di = self.die_index(block.die);
        let die = self.dies[di].acquire(now, self.timing.t_erase);
        self.blocks[bi].pe_cycles += 1;
        self.blocks[bi].next_page = 0;
        self.stats.erases += 1;
        if self.blocks[bi].pe_cycles >= self.reliability.pe_cycle_limit {
            self.blocks[bi].bad = true;
        }
        Ok(OpOutcome { grant: die, corrected_bits: 0 })
    }

    /// Sample raw bit errors for a page read (Poisson via Knuth's method —
    /// expected counts are tiny).
    fn sample_bit_errors(&mut self, pe_cycles: u32) -> u32 {
        let page_bits = (self.geometry.page_bytes as u64) * 8;
        let lambda = self.reliability.expected_bit_errors(page_bits, pe_cycles);
        if lambda <= 0.0 {
            return 0;
        }
        let l = (-lambda).exp();
        let mut k = 0u32;
        let mut p = 1.0;
        loop {
            p *= self.rng.unit();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // pathological lambda; cap rather than spin
            }
        }
    }
}

impl simkit::Instrument for FlashArray {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.counter("programs", self.stats.programs);
        out.counter("reads", self.stats.reads);
        out.counter("erases", self.stats.erases);
        out.counter("program_failures", self.stats.program_failures);
        out.counter("uncorrectable_reads", self.stats.uncorrectable_reads);
        out.counter("corrected_bits", self.stats.corrected_bits);
        // Fault metrics exist only when injection is armed — fault-free
        // snapshots keep their byte-frozen layout.
        if self.faults.is_some() {
            out.counter("retry.read_transient", self.stats.transient_read_retries);
            out.counter("retry.program_transient", self.stats.transient_program_retries);
            out.counter("fault.program_permanent", self.stats.injected_program_failures);
        }
        // Aggregate die occupancy (tPROG/tR/tBERS residency) plus
        // per-channel bus serialization time.
        let die_busy: u64 = self.dies.iter().map(|d| d.busy_time().as_nanos()).sum();
        out.counter("die_busy_ns", die_busy);
        for (ch, bus) in self.buses.iter().enumerate() {
            out.collect(&format!("bus{ch}"), bus);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> FlashArray {
        FlashArray::new(FlashGeometry::tiny(), FlashTiming::fast(), ReliabilityConfig::perfect(), 7)
    }

    #[test]
    fn program_then_read_round_trip() {
        let mut a = array();
        let ppa = Ppa::new(0, 0, 0, 0);
        let w = a.program(SimTime::ZERO, ppa).unwrap();
        assert!(w.grant.end.as_micros_f64() >= 50.0, "includes t_prog");
        let r = a.read(w.grant.end, ppa).unwrap();
        assert!(r.grant.end > w.grant.end);
        assert_eq!(a.stats().programs, 1);
        assert_eq!(a.stats().reads, 1);
    }

    #[test]
    fn in_order_programming_enforced() {
        let mut a = array();
        a.program(SimTime::ZERO, Ppa::new(0, 0, 0, 0)).unwrap();
        let err = a.program(SimTime::ZERO, Ppa::new(0, 0, 0, 2)).unwrap_err();
        assert_eq!(err, FlashError::OutOfOrderProgram { got: 2, expected: 1 });
        a.program(SimTime::ZERO, Ppa::new(0, 0, 0, 1)).unwrap();
    }

    #[test]
    fn read_of_unwritten_page_errors() {
        let mut a = array();
        let e = a.read(SimTime::ZERO, Ppa::new(0, 0, 0, 0)).unwrap_err();
        assert_eq!(e, FlashError::ReadUnwritten(Ppa::new(0, 0, 0, 0)));
    }

    #[test]
    fn erase_resets_program_pointer_and_wears() {
        let mut a = array();
        let b = BlockAddr { die: DieAddr { channel: 0, die: 0 }, block: 0 };
        a.program(SimTime::ZERO, Ppa { block: b, page: 0 }).unwrap();
        assert_eq!(a.next_page(b), 1);
        a.erase(SimTime::ZERO, b).unwrap();
        assert_eq!(a.next_page(b), 0);
        assert_eq!(a.pe_cycles(b), 1);
        a.program(SimTime::ZERO, Ppa { block: b, page: 0 }).unwrap();
    }

    #[test]
    fn pe_limit_grows_bad_block() {
        let mut rel = ReliabilityConfig::perfect();
        rel.pe_cycle_limit = 2;
        let mut a = FlashArray::new(FlashGeometry::tiny(), FlashTiming::fast(), rel, 7);
        let b = BlockAddr { die: DieAddr { channel: 0, die: 0 }, block: 0 };
        a.erase(SimTime::ZERO, b).unwrap();
        assert!(!a.is_bad(b));
        a.erase(SimTime::ZERO, b).unwrap();
        assert!(a.is_bad(b));
        assert_eq!(a.erase(SimTime::ZERO, b).unwrap_err(), FlashError::BadBlock(b));
    }

    #[test]
    fn bus_is_shared_but_dies_overlap() {
        let mut a = array();
        // Two programs to different dies on the same channel: bus transfers
        // serialize, die programming overlaps.
        let g1 = a.program(SimTime::ZERO, Ppa::new(0, 0, 0, 0)).unwrap().grant;
        let g2 = a.program(SimTime::ZERO, Ppa::new(0, 1, 0, 0)).unwrap().grant;
        assert!(g2.start >= g1.start);
        let serial_end = g1.end + FlashTiming::fast().t_prog;
        assert!(g2.end < serial_end, "dies must overlap: {} vs {}", g2.end, serial_end);
    }

    #[test]
    fn same_die_operations_serialize() {
        let mut a = array();
        let g1 = a.program(SimTime::ZERO, Ppa::new(0, 0, 0, 0)).unwrap().grant;
        let g2 = a.program(SimTime::ZERO, Ppa::new(0, 0, 0, 1)).unwrap().grant;
        assert!(g2.end.as_nanos() >= g1.end.as_nanos() + FlashTiming::fast().t_prog.as_nanos());
    }

    #[test]
    fn initial_bad_blocks_sampled() {
        let mut rel = ReliabilityConfig::perfect();
        rel.initial_bad_block_rate = 0.5;
        let a = FlashArray::new(FlashGeometry::tiny(), FlashTiming::fast(), rel, 42);
        let g = FlashGeometry::tiny();
        let bad = (0..g.total_blocks())
            .filter(|i| {
                let die_index = i / g.blocks_per_die as u64;
                let b = BlockAddr {
                    die: DieAddr {
                        channel: (die_index / g.dies_per_channel as u64) as u32,
                        die: (die_index % g.dies_per_channel as u64) as u32,
                    },
                    block: (i % g.blocks_per_die as u64) as u32,
                };
                a.is_bad(b)
            })
            .count();
        assert!(bad > 0 && bad < g.total_blocks() as usize);
    }

    #[test]
    fn uncorrectable_errors_at_high_wear() {
        let rel = ReliabilityConfig {
            initial_bad_block_rate: 0.0,
            program_fail_rate: 0.0,
            base_bit_error_rate: 1e-3, // absurdly high to force failure
            wear_ber_slope: 0.0,
            ecc_correctable_bits: 2,
            pe_cycle_limit: u32::MAX,
        };
        let mut a = FlashArray::new(FlashGeometry::tiny(), FlashTiming::fast(), rel, 7);
        let ppa = Ppa::new(0, 0, 0, 0);
        a.program(SimTime::ZERO, ppa).unwrap();
        let mut saw_uncorrectable = false;
        for _ in 0..20 {
            if matches!(a.read(SimTime::ZERO, ppa), Err(FlashError::Uncorrectable(_))) {
                saw_uncorrectable = true;
                break;
            }
        }
        assert!(saw_uncorrectable);
        assert!(a.stats().uncorrectable_reads > 0);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut a = array();
        assert!(matches!(
            a.program(SimTime::ZERO, Ppa::new(9, 0, 0, 0)),
            Err(FlashError::OutOfBounds(_))
        ));
        assert!(matches!(
            a.erase(SimTime::ZERO, BlockAddr { die: DieAddr { channel: 0, die: 0 }, block: 99 }),
            Err(FlashError::OutOfBounds(_))
        ));
    }

    #[test]
    fn transient_faults_retry_in_device_and_add_latency() {
        let mut clean = array();
        let mut faulty = array();
        faulty.arm_faults(
            FlashFaultConfig {
                transient_read: 0.5,
                transient_program: 0.5,
                max_retries: 3,
                ..Default::default()
            },
            DetRng::new(5),
        );
        let mut clean_end = SimTime::ZERO;
        let mut faulty_end = SimTime::ZERO;
        for p in 0..16 {
            let ppa = Ppa::new(0, 0, 0, p);
            clean_end = clean.program(SimTime::ZERO, ppa).unwrap().grant.end.max(clean_end);
            faulty_end = faulty.program(SimTime::ZERO, ppa).unwrap().grant.end.max(faulty_end);
        }
        assert!(faulty.stats().transient_program_retries > 0);
        assert!(faulty_end > clean_end, "retries cost die time: {faulty_end} vs {clean_end}");
        for p in 0..16 {
            faulty.read(faulty_end, Ppa::new(0, 0, 0, p)).unwrap();
        }
        assert!(faulty.stats().transient_read_retries > 0);
    }

    #[test]
    fn injected_permanent_fault_grows_bad_block() {
        let mut a = array();
        a.arm_faults(
            FlashFaultConfig { permanent_program: 1.0, max_retries: 3, ..Default::default() },
            DetRng::new(9),
        );
        let ppa = Ppa::new(0, 0, 0, 0);
        let err = a.program(SimTime::ZERO, ppa).unwrap_err();
        assert_eq!(err, FlashError::ProgramFailed(ppa.block));
        assert!(a.is_bad(ppa.block));
        assert_eq!(a.stats().injected_program_failures, 1);
        assert_eq!(a.stats().program_failures, 1);
    }

    #[test]
    fn unarmed_array_timing_is_unchanged() {
        // Arming at zero rates must not perturb grants either (the hooks
        // draw, but never fire, and fired-path latency is never added).
        let mut plain = array();
        let mut zero = array();
        zero.arm_faults(FlashFaultConfig::default(), DetRng::new(1));
        for p in 0..8 {
            let ppa = Ppa::new(0, 0, 0, p);
            let a = plain.program(SimTime::ZERO, ppa).unwrap().grant;
            let b = zero.program(SimTime::ZERO, ppa).unwrap().grant;
            assert_eq!(a, b);
        }
    }

    #[test]
    fn earliest_free_die_balances() {
        let mut a = array();
        a.program(SimTime::ZERO, Ppa::new(0, 0, 0, 0)).unwrap();
        let free = a.earliest_free_die(0);
        assert_eq!(free, DieAddr { channel: 0, die: 1 });
    }
}
