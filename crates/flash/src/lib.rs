//! # flash — NAND flash subsystem model
//!
//! The storage substrate under both sides of a Villars device (paper §2.2,
//! Fig. 2 bottom):
//!
//! - [`geometry`] — channels/dies/blocks/pages and physical addressing;
//! - [`timing`] — `tPROG`/`tR`/`tERASE` and channel-bus rates calibrated to
//!   the Cosmos+ 2 GB/s envelope, plus reliability parameters;
//! - [`crate::array`] — the arrays themselves: bus/die contention, in-order page
//!   programming, bad blocks, wear, ECC;
//! - [`scheduler`] — the priority-aware channel scheduler, the one component
//!   the paper modifies for Opportunistic Destaging (§4.3).

#![warn(missing_docs)]

pub mod array;
pub mod geometry;
pub mod scheduler;
pub mod timing;

pub use array::{FlashArray, FlashError, FlashStats, OpOutcome};
pub use geometry::{BlockAddr, DieAddr, FlashGeometry, Ppa};
pub use scheduler::{
    ChannelScheduler, ClassStats, Completion, OpKind, OpRequest, Priority, SchedulingMode,
};
pub use timing::{FlashTiming, ReliabilityConfig};

#[cfg(test)]
mod crate_tests {
    use super::*;
    use simkit::{SimDuration, SimTime};

    /// The Fig. 12 mechanism in miniature: under ConventionalPriority and
    /// total demand above capacity, the conventional stream keeps its
    /// bandwidth and the destage stream absorbs the shortfall; under Neutral
    /// both degrade.
    #[test]
    fn priority_protects_conventional_bandwidth_under_overload() {
        fn run(mode: SchedulingMode) -> (f64, f64) {
            let geometry = FlashGeometry::tiny();
            let mut array =
                FlashArray::new(geometry, FlashTiming::fast(), ReliabilityConfig::perfect(), 3);
            let mut sched = ChannelScheduler::new(geometry.channels, mode);
            // Offered load: both classes request pages on channel 0 faster
            // than it can serve them (overload).
            let step = SimDuration::from_micros(10);
            let n = 24u64;
            for i in 0..n {
                let die = (i % 2) as u32;
                let page = (i / 2) as u32;
                sched.submit(OpRequest {
                    id: i,
                    kind: OpKind::Program(Ppa::new(0, die, 0, page)),
                    arrival: SimTime::ZERO + step * i,
                    class: Priority::Conventional,
                });
                sched.submit(OpRequest {
                    id: 1000 + i,
                    kind: OpKind::Program(Ppa::new(0, die, 1, page)),
                    arrival: SimTime::ZERO + step * i,
                    class: Priority::Destage,
                });
            }
            let done = sched.pump(&mut array, SimTime::MAX);
            let horizon = done.iter().map(|c| c.at).max().unwrap();
            let per_class = |cls: Priority| {
                let bytes = sched.class_stats(cls).bytes as f64;
                bytes / horizon.as_secs_f64() / 1e6 // MB/s
            };
            (per_class(Priority::Conventional), per_class(Priority::Destage))
        }

        let (conv_neutral, dest_neutral) = run(SchedulingMode::Neutral);
        let (conv_prio, dest_prio) = run(SchedulingMode::ConventionalPriority);
        // Under strict priority the conventional class must do at least as
        // well as under neutral, and the destage class pays for it.
        assert!(conv_prio >= conv_neutral * 0.99, "{conv_prio} vs {conv_neutral}");
        assert!(dest_prio <= dest_neutral * 1.01, "{dest_prio} vs {dest_neutral}");
    }

    /// Aggregate programming bandwidth approaches the analytic envelope when
    /// every die is kept busy.
    #[test]
    fn aggregate_bandwidth_matches_envelope() {
        let geometry = FlashGeometry::default();
        let timing = FlashTiming::default();
        let mut array = FlashArray::new(geometry, timing, ReliabilityConfig::perfect(), 5);
        let mut sched = ChannelScheduler::new(geometry.channels, SchedulingMode::Neutral);
        // Saturate: one page per die, several rounds.
        let rounds = 4u32;
        let mut id = 0;
        for page in 0..rounds {
            for ch in 0..geometry.channels {
                for die in 0..geometry.dies_per_channel {
                    sched.submit(OpRequest {
                        id,
                        kind: OpKind::Program(Ppa::new(ch, die, 0, page)),
                        arrival: SimTime::ZERO,
                        class: Priority::Conventional,
                    });
                    id += 1;
                }
            }
        }
        let done = sched.pump(&mut array, SimTime::MAX);
        let horizon = done.iter().map(|c| c.at).max().unwrap();
        let bytes = sched.class_stats(Priority::Conventional).bytes as f64;
        let gbps = bytes / horizon.as_secs_f64() / 1e9;
        let envelope = timing.program_bandwidth_gbps(&geometry);
        assert!(
            gbps > envelope * 0.7 && gbps < envelope * 1.1,
            "measured {gbps} GB/s vs envelope {envelope} GB/s"
        );
    }
}
