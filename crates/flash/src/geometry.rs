//! NAND geometry and physical addressing.
//!
//! Mirrors the Cosmos+ OpenSSD organization the Villars prototype is built
//! on (paper §2.2 / Fig. 2): channels of flash arrays, each array a set of
//! dies holding blocks of pages. The page is the program unit, the block the
//! erase unit.

/// Static shape of the flash subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashGeometry {
    /// Independent channels (buses).
    pub channels: u32,
    /// Dies (ways) per channel.
    pub dies_per_channel: u32,
    /// Erase blocks per die.
    pub blocks_per_die: u32,
    /// Program/read pages per block.
    pub pages_per_block: u32,
    /// Bytes per page.
    pub page_bytes: u32,
}

impl Default for FlashGeometry {
    /// Cosmos+-class defaults: 8 channels × 8 ways, 16 KiB pages. The block
    /// count is scaled down from the real 2 TB so tests and experiments run
    /// fast; capacity-sensitive callers pass their own geometry.
    fn default() -> Self {
        FlashGeometry {
            channels: 8,
            dies_per_channel: 8,
            blocks_per_die: 256,
            pages_per_block: 256,
            page_bytes: 16 << 10,
        }
    }
}

impl FlashGeometry {
    /// A tiny geometry for unit tests.
    pub fn tiny() -> Self {
        FlashGeometry {
            channels: 2,
            dies_per_channel: 2,
            blocks_per_die: 8,
            pages_per_block: 16,
            page_bytes: 4096,
        }
    }

    /// Total dies across all channels.
    pub fn total_dies(&self) -> u32 {
        self.channels * self.dies_per_channel
    }

    /// Total blocks in the device.
    pub fn total_blocks(&self) -> u64 {
        self.total_dies() as u64 * self.blocks_per_die as u64
    }

    /// Total pages in the device.
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() * self.pages_per_block as u64
    }

    /// Raw capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_bytes as u64
    }

    /// Validate internal consistency; panics on a degenerate geometry.
    pub fn validate(&self) {
        assert!(self.channels > 0, "geometry needs >=1 channel");
        assert!(self.dies_per_channel > 0, "geometry needs >=1 die per channel");
        assert!(self.blocks_per_die > 0, "geometry needs >=1 block per die");
        assert!(self.pages_per_block > 0, "geometry needs >=1 page per block");
        assert!(self.page_bytes > 0, "geometry needs non-empty pages");
    }
}

/// Identifies one die: `(channel, way)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DieAddr {
    /// Channel index.
    pub channel: u32,
    /// Way (die within the channel).
    pub die: u32,
}

/// Identifies one erase block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockAddr {
    /// Owning die.
    pub die: DieAddr,
    /// Block index within the die.
    pub block: u32,
}

/// Physical Page Address: the unit the FTL maps logical pages onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ppa {
    /// Owning block.
    pub block: BlockAddr,
    /// Page index within the block.
    pub page: u32,
}

impl Ppa {
    /// Construct from components.
    pub fn new(channel: u32, die: u32, block: u32, page: u32) -> Self {
        Ppa { block: BlockAddr { die: DieAddr { channel, die }, block }, page }
    }

    /// The owning channel.
    pub fn channel(&self) -> u32 {
        self.block.die.channel
    }

    /// The owning die.
    pub fn die(&self) -> DieAddr {
        self.block.die
    }

    /// Flatten to a device-wide page index (for map keys / round trips).
    pub fn flatten(&self, g: &FlashGeometry) -> u64 {
        let die_index =
            self.block.die.channel as u64 * g.dies_per_channel as u64 + self.block.die.die as u64;
        (die_index * g.blocks_per_die as u64 + self.block.block as u64) * g.pages_per_block as u64
            + self.page as u64
    }

    /// Inverse of [`Ppa::flatten`].
    pub fn unflatten(index: u64, g: &FlashGeometry) -> Ppa {
        let page = (index % g.pages_per_block as u64) as u32;
        let rest = index / g.pages_per_block as u64;
        let block = (rest % g.blocks_per_die as u64) as u32;
        let die_index = rest / g.blocks_per_die as u64;
        let die = (die_index % g.dies_per_channel as u64) as u32;
        let channel = (die_index / g.dies_per_channel as u64) as u32;
        Ppa::new(channel, die, block, page)
    }

    /// Whether the address is inside the geometry.
    pub fn in_bounds(&self, g: &FlashGeometry) -> bool {
        self.block.die.channel < g.channels
            && self.block.die.die < g.dies_per_channel
            && self.block.block < g.blocks_per_die
            && self.page < g.pages_per_block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_capacity() {
        let g = FlashGeometry::default();
        g.validate();
        assert_eq!(g.total_dies(), 64);
        // 64 dies * 256 blocks * 256 pages * 16KiB = 64 GiB (scaled-down 2TB).
        assert_eq!(g.capacity_bytes(), 64 << 30);
    }

    #[test]
    fn flatten_round_trip_examples() {
        let g = FlashGeometry::tiny();
        let ppa = Ppa::new(1, 0, 3, 7);
        assert!(ppa.in_bounds(&g));
        let flat = ppa.flatten(&g);
        assert_eq!(Ppa::unflatten(flat, &g), ppa);
        // Page 0 of die (0,0) block 0 is index 0.
        assert_eq!(Ppa::new(0, 0, 0, 0).flatten(&g), 0);
    }

    #[test]
    fn bounds_checking() {
        let g = FlashGeometry::tiny();
        assert!(!Ppa::new(2, 0, 0, 0).in_bounds(&g));
        assert!(!Ppa::new(0, 2, 0, 0).in_bounds(&g));
        assert!(!Ppa::new(0, 0, 8, 0).in_bounds(&g));
        assert!(!Ppa::new(0, 0, 0, 16).in_bounds(&g));
    }

    #[test]
    fn flat_indices_are_dense_and_unique() {
        let g = FlashGeometry::tiny();
        let mut seen = vec![false; g.total_pages() as usize];
        for ch in 0..g.channels {
            for die in 0..g.dies_per_channel {
                for blk in 0..g.blocks_per_die {
                    for pg in 0..g.pages_per_block {
                        let idx = Ppa::new(ch, die, blk, pg).flatten(&g) as usize;
                        assert!(!seen[idx], "duplicate index {idx}");
                        seen[idx] = true;
                    }
                }
            }
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn random_flatten_round_trips() {
        let g = FlashGeometry::default();
        let mut rng = simkit::DetRng::new(0x0F1A_77E4);
        for _ in 0..512 {
            let idx = rng.uniform(0, g.total_pages());
            let ppa = Ppa::unflatten(idx, &g);
            assert!(ppa.in_bounds(&g));
            assert_eq!(ppa.flatten(&g), idx);
        }
    }
}
