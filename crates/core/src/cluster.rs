//! A cluster of Villars devices connected by NTB (paper Fig. 6).
//!
//! The cluster owns the devices and routes cross-device traffic — mirror
//! streams (primary → secondaries) and shadow-counter updates (secondary →
//! primary). It is the entry point replication experiments and the host
//! API use.
//!
//! # Execution modes
//!
//! Two interchangeable execution modes drive [`Cluster::advance`], chosen
//! once at construction by the `XSSD_SIM_THREADS` environment knob (or
//! [`Cluster::with_sim_threads`]):
//!
//! - **Sequential oracle** (unset or `1`, the default): one global,
//!   time-ordered [`EventQueue`] interleaves every cross-device delivery —
//!   the reference schedule every other mode must reproduce exactly.
//! - **Conservative parallel** (`N >= 2`): each device becomes an event
//!   *domain* with its own mailbox queue, and a
//!   [`simkit::DomainScheduler`] advances all domains concurrently up to a
//!   barrier at `min(next cross-domain send) + min(NTB hop latency)`.
//!   Devices only interact through the NTB bridge, whose hop latency
//!   lower-bounds every cross-domain delivery, so within one lookahead
//!   window the domains are provably independent; at each barrier the
//!   pending sends are exchanged in `(timestamp, sender, sequence)` order,
//!   making execution event-for-event identical to the sequential oracle.
//!
//! `scripts/check_results.sh` runs the golden harnesses in both modes and
//! diffs the results byte-for-byte; `core/tests/parallel_equivalence.rs`
//! property-tests the same invariant over random topologies and fault
//! plans.

use crate::cmb::CmbError;
use crate::config::VillarsConfig;
use crate::device::{vendor, CrashReport, VillarsDevice};
use crate::transport::{DeviceIndex, Outbound};
use nvme::{
    try_drive_to_completion, AdminCommand, CmdTag, CommandKind, Completion, IoPort, Status,
    VendorCommand,
};
use pcie::MmioMode;
use simkit::{
    Domain, DomainScheduler, EventQueue, FaultPlan, Routed, SimDuration, SimError, SimTime,
};

#[derive(Debug, Clone)]
enum ClusterEvent {
    Mirror { dst: DeviceIndex, offset: u64, data: Vec<u8> },
    Shadow { dst: DeviceIndex, src: DeviceIndex, value: u64 },
}

impl ClusterEvent {
    fn dst(&self) -> DeviceIndex {
        match self {
            ClusterEvent::Mirror { dst, .. } | ClusterEvent::Shadow { dst, .. } => *dst,
        }
    }

    fn from_outbound(o: Outbound) -> (SimTime, ClusterEvent) {
        match o {
            Outbound::Mirror { dst, offset, data, deliver_at } => {
                (deliver_at, ClusterEvent::Mirror { dst, offset, data })
            }
            Outbound::Shadow { dst, src, value, deliver_at } => {
                (deliver_at, ClusterEvent::Shadow { dst, src, value })
            }
        }
    }
}

/// Environment knob selecting the execution mode (read once per
/// [`Cluster::new`]): unset or `1` = sequential oracle, `N >= 2` =
/// conservative parallel with `N` executors per cluster.
pub const SIM_THREADS_ENV: &str = "XSSD_SIM_THREADS";

/// Environment knob opting into `sim.*` scheduler telemetry (set to
/// anything but `0`/empty). Off by default so golden telemetry snapshots
/// stay byte-frozen across execution modes.
pub const SIM_METRICS_ENV: &str = "XSSD_SIM_METRICS";

/// Parse an `XSSD_SIM_THREADS` value. Unset/empty means sequential.
fn sim_threads_from(val: Option<&str>) -> usize {
    match val {
        None => 1,
        Some(s) if s.trim().is_empty() => 1,
        Some(s) => match s.trim().parse::<usize>() {
            Ok(0) => panic!("{SIM_THREADS_ENV} must be >= 1, got 0"),
            Ok(n) => n,
            Err(_) => panic!("{SIM_THREADS_ENV} must be a positive integer, got {s:?}"),
        },
    }
}

/// How cross-device traffic is routed and the simulation is advanced.
enum Routing {
    /// Sequential oracle: one global time-ordered calendar.
    Global(EventQueue<ClusterEvent>),
    /// Conservative parallel: per-device mailboxes plus the domain
    /// scheduler. The scheduler is (re)built lazily on the first `advance`
    /// after the device set changes, because the lookahead horizon is the
    /// minimum NTB hop latency over the *current* devices.
    Domains { mailboxes: Vec<EventQueue<ClusterEvent>>, scheduler: Option<DomainScheduler> },
}

/// The device cluster.
///
/// Command I/O goes through each device's [`IoPort`] (CIDs are allocated
/// per device, so a wrapped 16-bit CID can never collide with a command
/// still in flight on the same device). The `*_blocking` helpers are a
/// thin closed-loop adapter over that port: one tagged submission via
/// [`Cluster::submit`], then the shared [`drive_to_completion`] wait.
pub struct Cluster {
    devices: Vec<VillarsDevice>,
    routing: Routing,
    /// The executor count the cluster was built with (1 = sequential).
    sim_threads: usize,
    /// Cross-device deliveries applied per device, identical in both
    /// execution modes (`sim.domain.<i>.events` when metrics are on).
    domain_events: Vec<u64>,
    /// Whether to emit the `sim.*` telemetry scope (see [`SIM_METRICS_ENV`]).
    sim_metrics: bool,
    /// Devices currently powered off: traffic to them is dropped on the
    /// floor (their PCIe fabric is gone).
    dead: std::collections::HashSet<DeviceIndex>,
    /// Reusable completion-drain buffer for the blocking waits (one
    /// allocation for the cluster's lifetime instead of one per horizon
    /// step).
    drain_buf: Vec<Completion>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("devices", &self.devices.len())
            .field("sim_threads", &self.sim_threads)
            .finish()
    }
}

impl Default for Cluster {
    fn default() -> Self {
        Self::new()
    }
}

impl Cluster {
    /// An empty cluster in the execution mode selected by
    /// [`SIM_THREADS_ENV`] (sequential when unset).
    pub fn new() -> Self {
        let threads = sim_threads_from(std::env::var(SIM_THREADS_ENV).ok().as_deref());
        Self::with_sim_threads(threads)
    }

    /// An empty cluster with an explicit executor count (`1` = the
    /// sequential oracle, `N >= 2` = conservative parallel mode) —
    /// the programmatic form of [`SIM_THREADS_ENV`], used by the
    /// equivalence tests to pin both modes in one process.
    pub fn with_sim_threads(sim_threads: usize) -> Self {
        assert!(sim_threads >= 1, "sim_threads must be >= 1");
        let routing = if sim_threads == 1 {
            Routing::Global(EventQueue::new())
        } else {
            Routing::Domains { mailboxes: Vec::new(), scheduler: None }
        };
        let sim_metrics = std::env::var(SIM_METRICS_ENV)
            .map(|v| !v.trim().is_empty() && v.trim() != "0")
            .unwrap_or(false);
        Cluster {
            devices: Vec::new(),
            routing,
            sim_threads,
            domain_events: Vec::new(),
            sim_metrics,
            dead: std::collections::HashSet::new(),
            drain_buf: Vec::new(),
        }
    }

    /// The executor count this cluster advances with (1 = sequential
    /// oracle).
    pub fn sim_threads(&self) -> usize {
        self.sim_threads
    }

    /// Cross-device deliveries applied per device — identical in both
    /// execution modes (the `sim.domain.<i>.events` counters).
    pub fn domain_event_counts(&self) -> &[u64] {
        &self.domain_events
    }

    /// Lookahead windows executed by the domain scheduler (0 in sequential
    /// mode — the oracle has no barriers).
    pub fn barrier_count(&self) -> u64 {
        match &self.routing {
            Routing::Domains { scheduler: Some(s), .. } => s.stats().windows,
            _ => 0,
        }
    }

    /// Add a device; returns its index.
    pub fn add_device(&mut self, config: VillarsConfig) -> DeviceIndex {
        self.devices.push(VillarsDevice::new(config));
        self.domain_events.push(0);
        if let Routing::Domains { mailboxes, scheduler } = &mut self.routing {
            mailboxes.push(EventQueue::new());
            // The lookahead horizon depends on the device set; rebuild on
            // the next advance.
            *scheduler = None;
        }
        self.devices.len() - 1
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True if no devices were added.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Borrow a device.
    pub fn device(&self, i: DeviceIndex) -> &VillarsDevice {
        &self.devices[i]
    }

    /// Borrow a device mutably.
    pub fn device_mut(&mut self, i: DeviceIndex) -> &mut VillarsDevice {
        &mut self.devices[i]
    }

    /// Submit a command asynchronously on device `dev`'s [`IoPort`] at
    /// `now`. The returned tag identifies the in-flight command; drain
    /// its completion with [`Cluster::completions_into`] or block on it
    /// with [`Cluster::wait_for_completion`].
    pub fn submit(&mut self, dev: DeviceIndex, now: SimTime, kind: CommandKind) -> CmdTag {
        IoPort::submit(&mut self.devices[dev], now, kind)
    }

    /// Run device `dev` up to `now` so completions due by `now` become
    /// visible (the cluster-level [`IoPort::poll`]).
    pub fn poll_device(&mut self, dev: DeviceIndex, now: SimTime) {
        self.devices[dev].poll(now);
    }

    /// Append device `dev`'s completions due at or before `now` to `out`,
    /// in completion order, retiring their tags.
    pub fn completions_into(&mut self, dev: DeviceIndex, now: SimTime, out: &mut Vec<Completion>) {
        self.devices[dev].completions_into(now, out);
    }

    /// Event-driven blocking wait for `tag` on device `dev`, starting the
    /// horizon at `from`: the shared closed-loop adapter
    /// ([`try_drive_to_completion`]) jumps virtual time straight to the
    /// device's next pending event instead of stepping in fixed quanta,
    /// and panics with the structured [`SimError::Stall`] report if the
    /// device stalls. Fallible callers use
    /// [`Cluster::try_wait_for_completion`].
    pub fn wait_for_completion(
        &mut self,
        dev: DeviceIndex,
        from: SimTime,
        tag: CmdTag,
    ) -> Completion {
        self.try_wait_for_completion(dev, from, tag).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Cluster::wait_for_completion`]: a stalled device
    /// yields [`SimError::Stall`] carrying a diagnostic snapshot (horizon
    /// instant, in-flight commands, pending CID) instead of unwinding.
    pub fn try_wait_for_completion(
        &mut self,
        dev: DeviceIndex,
        from: SimTime,
        tag: CmdTag,
    ) -> Result<Completion, Box<SimError>> {
        let mut drained = std::mem::take(&mut self.drain_buf);
        let done = try_drive_to_completion(&mut self.devices[dev], from, tag, &mut drained);
        self.drain_buf = drained;
        done.map_err(|e| self.enrich_with_domain_frontiers(e))
    }

    /// Execute a vendor-specific admin command against device `dev`,
    /// blocking until its completion. This is the NVMe control plane the
    /// paper describes: "changing the networking mode for a Villars device
    /// or its peers is done via software" (§4.2).
    pub fn vendor_blocking(
        &mut self,
        dev: DeviceIndex,
        now: SimTime,
        v: VendorCommand,
    ) -> (SimTime, nvme::CompletionEntry) {
        let tag = self.submit(dev, now, CommandKind::Admin(AdminCommand::Vendor(v)));
        let done = self.wait_for_completion(dev, now, tag);
        (done.at, done.entry)
    }

    /// Configure eager primary/secondary replication via vendor commands:
    /// `primary` mirrors to `secondaries` (in chain order).
    pub fn configure_replication(
        &mut self,
        now: SimTime,
        primary: DeviceIndex,
        secondaries: &[DeviceIndex],
    ) -> SimTime {
        assert!(!secondaries.is_empty() && secondaries.len() <= 5);
        let mut dwords = [0u32; 6];
        dwords[0] = secondaries.len() as u32;
        for (i, s) in secondaries.iter().enumerate() {
            dwords[i + 1] = *s as u32;
        }
        let (mut t, e) =
            self.vendor_blocking(primary, now, VendorCommand::new(vendor::SET_PRIMARY, dwords));
        assert_eq!(e.status, Status::Success);
        for &s in secondaries {
            let (t2, e2) = self.vendor_blocking(
                s,
                t,
                VendorCommand::new(vendor::SET_SECONDARY, [primary as u32, 0, 0, 0, 0, 0]),
            );
            assert_eq!(e2.status, Status::Success);
            t = t2;
        }
        t
    }

    /// Fast-side write against device `dev`, routing any mirror traffic.
    /// Returns `(issued_at, arrived_at)`: the CPU may issue its next store
    /// at `issued_at` (stores pipeline on the wire); the data is fully in
    /// the device's intake at `arrived_at`.
    pub fn fast_write(
        &mut self,
        dev: DeviceIndex,
        now: SimTime,
        lane: usize,
        offset: u64,
        data: &[u8],
        mode: MmioMode,
    ) -> Result<(SimTime, SimTime), CmbError> {
        let fw = self.devices[dev].fast_write(now, lane, offset, data, mode)?;
        for o in fw.outbound {
            self.schedule_outbound(o);
        }
        Ok((fw.issued_at, fw.arrived_at))
    }

    /// Blocking conventional-side block write (checkpointing and other
    /// block workloads driven at cluster level). Returns the ack instant.
    pub fn block_write_blocking(
        &mut self,
        dev: DeviceIndex,
        now: SimTime,
        lba: u64,
        blocks: u32,
    ) -> SimTime {
        self.io_blocking(dev, now, nvme::IoCommand::Write { lba, blocks })
    }

    /// Blocking conventional-side block read.
    pub fn block_read_blocking(
        &mut self,
        dev: DeviceIndex,
        now: SimTime,
        lba: u64,
        blocks: u32,
    ) -> SimTime {
        self.io_blocking(dev, now, nvme::IoCommand::Read { lba, blocks })
    }

    /// Blocking conventional-side flush (durability barrier).
    pub fn block_flush_blocking(&mut self, dev: DeviceIndex, now: SimTime) -> SimTime {
        self.io_blocking(dev, now, nvme::IoCommand::Flush)
    }

    fn io_blocking(&mut self, dev: DeviceIndex, now: SimTime, io: nvme::IoCommand) -> SimTime {
        let tag = self.submit(dev, now, CommandKind::Io(io));
        let done = self.wait_for_completion(dev, now, tag);
        assert!(
            done.entry.status.is_ok(),
            "block I/O failed on device {dev} (cid {}): {:?}",
            done.entry.cid,
            done.entry.status
        );
        done.at
    }

    /// Control-interface credit read on device `dev` (policy-combined).
    pub fn read_credit(&mut self, dev: DeviceIndex, now: SimTime, lane: usize) -> (SimTime, u64) {
        self.devices[dev].read_credit(now, lane)
    }

    fn schedule_outbound(&mut self, o: Outbound) {
        if self.dead.contains(&o.dst()) {
            return; // the wire to a dead fabric drops traffic
        }
        let (at, ev) = ClusterEvent::from_outbound(o);
        match &mut self.routing {
            Routing::Global(events) => events.schedule(at, ev),
            Routing::Domains { mailboxes, .. } => mailboxes[ev.dst()].schedule(at, ev),
        };
    }

    /// The earliest cross-device delivery still in flight (either mode).
    fn next_delivery(&self) -> Option<SimTime> {
        match &self.routing {
            Routing::Global(events) => events.next_time(),
            Routing::Domains { mailboxes, .. } => {
                mailboxes.iter().filter_map(|m| m.next_time()).min()
            }
        }
    }

    /// Drive the whole cluster to `t`: generates secondary shadow updates,
    /// delivers cross-device traffic in time order, and advances every
    /// device — sequentially or via the domain scheduler, with an
    /// event-for-event identical schedule either way.
    pub fn advance(&mut self, t: SimTime) {
        // Bound the shadow-update catch-up work once per horizon, before
        // any emission, with the same bound in both modes (the first
        // pending delivery, i.e. the sequential oracle's first emission
        // barrier) — the skip decision must not depend on how the horizon
        // is carved into windows.
        let b0 = self.next_delivery().map_or(t, |p| p.min(t));
        for d in &mut self.devices {
            d.catch_up_shadow_clock(b0);
        }
        match self.routing {
            Routing::Global(_) => self.advance_sequential(t),
            Routing::Domains { .. } => self.advance_windowed(t),
        }
    }

    /// The sequential oracle: one global calendar popped in time order.
    fn advance_sequential(&mut self, t: SimTime) {
        fn global(routing: &mut Routing) -> &mut EventQueue<ClusterEvent> {
            match routing {
                Routing::Global(events) => events,
                Routing::Domains { .. } => unreachable!("sequential advance in parallel mode"),
            }
        }
        loop {
            // Generate shadow updates only up to the next pending delivery
            // (a mirror arriving at t_m changes the credit timeline the
            // updates report).
            let barrier = global(&mut self.routing).next_time().map_or(t, |e| e.min(t));
            for i in 0..self.devices.len() {
                let outs = self.devices[i].take_shadow_updates(barrier, i);
                for o in outs {
                    self.schedule_outbound(o);
                }
            }
            match global(&mut self.routing).pop_due(t) {
                Some((at, ClusterEvent::Mirror { dst, offset, data })) => {
                    if self.dead.contains(&dst) {
                        continue;
                    }
                    self.domain_events[dst] += 1;
                    match self.devices[dst].receive_mirror(at, offset, &data) {
                        Ok(()) => {}
                        Err(CmbError::Overlap { .. }) => {
                            // Duplicate delivery (retry raced a success);
                            // drop it.
                        }
                        Err(_) => {
                            // Secondary intake saturated: retry shortly —
                            // this is the transport inserting itself into
                            // the back-pressure path (paper §4.2).
                            self.devices[dst].advance(at);
                            global(&mut self.routing).schedule(
                                at + SimDuration::from_micros(1),
                                ClusterEvent::Mirror { dst, offset, data },
                            );
                        }
                    }
                }
                Some((at, ClusterEvent::Shadow { dst, src, value })) => {
                    if !self.dead.contains(&dst) {
                        self.domain_events[dst] += 1;
                        self.devices[dst].apply_shadow(src, value, at);
                    }
                }
                None => break,
            }
        }
        for d in &mut self.devices {
            d.advance(t);
        }
    }

    /// Conservative parallel mode: per-device domains advanced concurrently
    /// inside NTB-lookahead windows by the [`DomainScheduler`].
    fn advance_windowed(&mut self, t: SimTime) {
        if self.devices.is_empty() {
            return;
        }
        let Routing::Domains { mailboxes, scheduler } = &mut self.routing else {
            unreachable!("windowed advance in sequential mode");
        };
        let scheduler = scheduler.get_or_insert_with(|| {
            // The lookahead horizon: no cross-device message can arrive
            // sooner than the slowest-case *minimum* NTB hop over the
            // current device set (`NtbPort::forward*` adds `hop_latency`
            // to every delivery, and faults only delay further).
            let lookahead = self
                .devices
                .iter()
                .map(|d| d.config().ntb.hop_latency)
                .min()
                .expect("non-empty device set");
            assert!(
                !lookahead.is_zero(),
                "conservative parallel mode requires a positive NTB hop latency"
            );
            DomainScheduler::new(lookahead, self.sim_threads.min(self.devices.len()))
        });
        let mut domains: Vec<ClusterDomain<'_>> = self
            .devices
            .iter_mut()
            .zip(mailboxes.iter_mut())
            .zip(self.domain_events.iter_mut())
            .enumerate()
            .map(|(index, ((device, mailbox), delivered))| ClusterDomain {
                index,
                device,
                mailbox,
                dead: self.dead.contains(&index),
                delivered,
            })
            .collect();
        scheduler.advance(&mut domains, t);
    }

    /// The earliest pending instant across devices and in-flight traffic —
    /// lets blocking host calls jump virtual time.
    pub fn next_event_after(&self, t: SimTime) -> Option<SimTime> {
        let mut next: Option<SimTime> = self.next_delivery();
        for d in &self.devices {
            if let Some(e) = d.next_event() {
                next = Some(next.map_or(e, |n| n.min(e)));
            }
            if let Some(u) = d.transport().next_update_at() {
                next = Some(next.map_or(u, |n| n.min(u)));
            }
        }
        next.filter(|n| *n > t)
    }

    /// Crash device `dev` (sudden power loss). Other devices keep running;
    /// in-flight traffic to/from the crashed device is dropped.
    pub fn power_fail(&mut self, dev: DeviceIndex, now: SimTime) -> CrashReport {
        self.advance(now);
        // Drop traffic addressed to the dead device (its PCIe fabric is
        // gone); keep everything else.
        match &mut self.routing {
            Routing::Global(events) => {
                let mut keep = Vec::new();
                while let Some((at, ev)) = events.pop() {
                    if ev.dst() != dev {
                        keep.push((at, ev));
                    }
                }
                for (at, ev) in keep {
                    events.schedule(at, ev);
                }
            }
            Routing::Domains { mailboxes, .. } => {
                // Traffic to `dev` sits in its own mailbox; other
                // mailboxes are untouched.
                while mailboxes[dev].pop().is_some() {}
            }
        }
        self.dead.insert(dev);
        self.devices[dev].power_fail(now)
    }

    /// Bring a crashed device back online (rebooted, stand-alone). Its
    /// durable state survived; roles must be reconfigured via vendor
    /// commands.
    pub fn reboot_device(&mut self, dev: DeviceIndex) {
        self.dead.remove(&dev);
    }

    /// Arm the whole cluster from a [`FaultPlan`]: each device gets
    /// independently forked flash and transport fault streams (the device
    /// index salts the fork, so one device's fault draws never perturb
    /// another's). Inactive layers are skipped entirely — a disabled plan
    /// arms nothing and the simulation timeline is byte-identical to an
    /// unarmed run.
    pub fn arm_faults(&mut self, plan: &FaultPlan) {
        for (i, d) in self.devices.iter_mut().enumerate() {
            if plan.flash.is_active() {
                let mut base = plan.rng_for(simkit::faults::site::FLASH_READ);
                d.arm_flash_faults(plan.flash, base.fork(i as u64));
            }
            if plan.transport.is_active() {
                let mut base = plan.rng_for(simkit::faults::site::NTB_TLP);
                d.arm_transport_faults(plan.transport, base.fork(i as u64));
            }
        }
    }

    /// Park device `dev`'s outgoing transport flows during `window` (link
    /// retrain). Schedule after replication roles are configured.
    pub fn schedule_link_down(&mut self, dev: DeviceIndex, window: simkit::faults::LinkDownWindow) {
        self.devices[dev].schedule_link_down(window);
    }

    /// Re-synchronise a rebooted (stand-alone) secondary from the
    /// primary's surviving log copy: bytes `[target tail, primary tail)`
    /// are read back on the primary — destaged pages through its
    /// conventional side, the live tail straight from its CMB ring — and
    /// streamed into the target's intake under the normal flow-control
    /// window. Returns the instant the last chunk was accepted; the caller
    /// then reconfigures replication roles via
    /// [`Cluster::configure_replication`].
    pub fn resync_secondary(
        &mut self,
        now: SimTime,
        primary: DeviceIndex,
        target: DeviceIndex,
    ) -> SimTime {
        assert_ne!(primary, target, "cannot resync a device from itself");
        assert!(!self.dead.contains(&target), "reboot the target before resync");
        self.advance(now);
        let mut t = now;
        let upto = self.devices[primary].log_tail(0);
        let mut cursor = self.devices[target].log_tail(0);
        let chunk_cap = (self.devices[target].intake_queue_bytes(0) / 2).max(64);
        let mut waits = 0u64;
        while cursor < upto {
            // Three zones on the primary: `[.., persisted)` is readable
            // from the destage ring segments, `[ring_from, tail)` still
            // sits in the CMB ring, and `[persisted, ring_from)` is riding
            // in-flight destage writes (the CMB head advances at destage
            // *submission*, so those bytes are momentarily in neither) —
            // for that zone, advance the simulation until the writes land.
            let persisted = self.devices[primary].destaged_upto(0);
            let ring_from = self.devices[primary].log_head(0);
            let want = chunk_cap.min(upto - cursor) as usize;
            let chunk = if cursor < persisted {
                let take = want.min((persisted - cursor) as usize);
                let (ready, bytes) =
                    self.devices[primary].read_destaged(t, 0, cursor, take).unwrap_or_else(|| {
                        panic!(
                            "resync range [{cursor}, {}) fell off the primary's destage ring \
                             (persisted {persisted}, tail {upto})",
                            cursor + take as u64
                        )
                    });
                t = t.max(ready);
                bytes
            } else if cursor >= ring_from {
                self.devices[primary].log_content(0, cursor, want)
            } else {
                // In-flight destage: wait for the conventional side to
                // retire the write, then re-evaluate the zones.
                waits += 1;
                assert!(
                    waits < 1_000_000,
                    "resync stuck waiting for the primary's destage: cursor {cursor}, \
                     persisted {persisted}, cmb head {ring_from}, tail {upto}, at {t}"
                );
                t = match self.next_event_after(t) {
                    Some(e) => e,
                    None => t + SimDuration::from_micros(1),
                };
                self.advance(t);
                continue;
            };
            loop {
                match self.devices[target].receive_mirror(t, cursor, &chunk) {
                    Ok(()) => break,
                    Err(CmbError::Overlap { .. }) => break, // already delivered
                    Err(_) => {
                        // Intake saturated or ring full: let the target
                        // destage, then retry — the transport's normal
                        // back-pressure path.
                        t += SimDuration::from_micros(1);
                        self.advance(t);
                    }
                }
            }
            cursor += chunk.len() as u64;
        }
        self.advance(t);
        t
    }

    /// Stream a host-retained archived log range `[base, base +
    /// bytes.len())` into `target`'s lane-0 intake, starting at the
    /// target's current tail (bytes it already holds are skipped). This is
    /// the rejoin-from-archive leg: when the primary's destage ring has
    /// recycled past the range a rebooted secondary missed,
    /// [`Cluster::resync_secondary`] cannot serve it from live device
    /// state, but the host's sealed-segment archive can. Delivery rides
    /// the same intake flow-control window as live resync. Returns the
    /// instant the last chunk was accepted.
    ///
    /// Panics if the range starts above the target's tail — the archive
    /// was truncated past what the target needs, and replication cannot
    /// paper over the gap.
    pub fn deliver_archived(
        &mut self,
        now: SimTime,
        target: DeviceIndex,
        base: u64,
        bytes: &[u8],
    ) -> SimTime {
        assert!(!self.dead.contains(&target), "reboot the target before archive delivery");
        self.advance(now);
        let mut t = now;
        let end = base + bytes.len() as u64;
        let mut cursor = self.devices[target].log_tail(0);
        if cursor >= end {
            return t; // everything here is already on the target
        }
        assert!(
            cursor >= base,
            "archived range starts at {base} but the target's tail is {cursor}: \
             the archive no longer reaches back to the rejoining copy"
        );
        let chunk_cap = (self.devices[target].intake_queue_bytes(0) / 2).max(64);
        while cursor < end {
            let want = chunk_cap.min(end - cursor) as usize;
            let off = (cursor - base) as usize;
            let chunk = &bytes[off..off + want];
            loop {
                match self.devices[target].receive_mirror(t, cursor, chunk) {
                    Ok(()) => break,
                    Err(CmbError::Overlap { .. }) => break, // already delivered
                    Err(_) => {
                        // Intake saturated or ring full: let the target
                        // destage, then retry.
                        t += SimDuration::from_micros(1);
                        self.advance(t);
                    }
                }
            }
            cursor += want as u64;
        }
        self.advance(t);
        t
    }

    /// Whether a device is currently powered off.
    pub fn is_dead(&self, dev: DeviceIndex) -> bool {
        self.dead.contains(&dev)
    }

    /// Attach the per-domain next-event frontiers to a failure's
    /// [`simkit::DiagnosticSnapshot`] — the global frontier alone cannot
    /// tell an idle cluster from a cross-domain deadlock.
    fn enrich_with_domain_frontiers(&self, mut e: Box<SimError>) -> Box<SimError> {
        let (SimError::Stall { snapshot, .. } | SimError::Invariant { snapshot, .. }) = e.as_mut();
        for (i, d) in self.devices.iter().enumerate() {
            let mut frontier = d.next_event();
            if let Some(u) = d.transport().next_update_at() {
                frontier = Some(frontier.map_or(u, |n| n.min(u)));
            }
            let mailbox = match &self.routing {
                Routing::Global(_) => None,
                Routing::Domains { mailboxes, .. } => mailboxes[i].next_time(),
            };
            if let Some(m) = mailbox {
                frontier = Some(frontier.map_or(m, |n| n.min(m)));
            }
            *snapshot = std::mem::take(snapshot).domain_frontier(i, frontier);
        }
        if let Some(pending) = self.next_delivery() {
            *snapshot = std::mem::take(snapshot)
                .detail_suffix(format!("next cross-device delivery at {pending}"));
        }
        e
    }
}

/// One device's view as an event domain for the [`DomainScheduler`]: the
/// device, its mailbox of inbound cross-device deliveries, and its
/// delivery counter. Built fresh per `advance` call (the borrows tie each
/// domain to the cluster for exactly one scheduler run).
struct ClusterDomain<'a> {
    index: DeviceIndex,
    device: &'a mut VillarsDevice,
    mailbox: &'a mut EventQueue<ClusterEvent>,
    dead: bool,
    delivered: &'a mut u64,
}

impl Domain for ClusterDomain<'_> {
    type Msg = ClusterEvent;

    fn next_send_at(&self) -> Option<SimTime> {
        // The only cross-domain emission that happens *inside* an advance
        // is the secondary's periodic shadow update; mirrors are
        // host-driven (`Cluster::fast_write`) and enter the mailboxes
        // before the scheduler runs. Dead devices are stand-alone and
        // return None.
        self.device.transport().next_update_at()
    }

    fn next_mailbox_at(&self) -> Option<SimTime> {
        self.mailbox.next_time()
    }

    fn post(&mut self, at: SimTime, msg: ClusterEvent) {
        if !self.dead {
            self.mailbox.schedule(at, msg);
        }
    }

    fn run_window(&mut self, upto: SimTime, outbox: &mut Vec<Routed<ClusterEvent>>) {
        loop {
            // Generate shadow updates only up to the next pending local
            // delivery (a mirror arriving at t_m changes the credit
            // timeline the updates report) — the same emission barrier the
            // sequential oracle uses, restricted to this domain.
            let barrier = self.mailbox.next_time().map_or(upto, |e| e.min(upto));
            for o in self.device.take_shadow_updates(barrier, self.index) {
                let (at, ev) = ClusterEvent::from_outbound(o);
                outbox.push(Routed { dst: ev.dst(), at, msg: ev });
            }
            match self.mailbox.pop_due(upto) {
                Some((at, ClusterEvent::Mirror { dst, offset, data })) => {
                    debug_assert_eq!(dst, self.index, "mirror routed to the wrong mailbox");
                    *self.delivered += 1;
                    match self.device.receive_mirror(at, offset, &data) {
                        Ok(()) => {}
                        Err(CmbError::Overlap { .. }) => {
                            // Duplicate delivery (retry raced a success);
                            // drop it.
                        }
                        Err(_) => {
                            // Secondary intake saturated: retry shortly —
                            // the retry stays in this domain, so it needs
                            // no lookahead slack.
                            self.device.advance(at);
                            self.mailbox.schedule(
                                at + SimDuration::from_micros(1),
                                ClusterEvent::Mirror { dst, offset, data },
                            );
                        }
                    }
                }
                Some((at, ClusterEvent::Shadow { dst, src, value })) => {
                    debug_assert_eq!(dst, self.index, "shadow routed to the wrong mailbox");
                    *self.delivered += 1;
                    self.device.apply_shadow(src, value, at);
                }
                None => break,
            }
        }
    }

    fn finish(&mut self, t: SimTime) {
        self.device.advance(t);
    }
}

impl simkit::Instrument for Cluster {
    /// A single-device cluster reports at the scope root (the common case:
    /// paths stay `pcie.*`/`ssd.*`/`flash.*`/`core.*`); multi-device
    /// clusters prefix each device with `dev<i>`.
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        if self.devices.len() == 1 {
            self.devices[0].instrument(out);
        } else {
            for (i, dev) in self.devices.iter().enumerate() {
                out.collect(&format!("dev{i}"), dev);
            }
        }
        // Scheduler telemetry is opt-in (XSSD_SIM_METRICS): the golden
        // snapshots must stay byte-frozen across execution modes, and
        // `barrier.*` is inherently mode-specific (0 in sequential mode;
        // `stall_ns` is wall-clock, diagnostic only).
        if self.sim_metrics {
            let mut sim = out.scope("sim");
            for (i, n) in self.domain_events.iter().enumerate() {
                sim.counter(&format!("domain.{i}.events"), *n);
            }
            let stats = match &self.routing {
                Routing::Domains { scheduler: Some(s), .. } => s.stats(),
                _ => simkit::DomainStats::default(),
            };
            sim.counter("barrier.count", stats.windows);
            sim.counter("barrier.stall_ns", stats.stall_ns_max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VillarsConfig;

    fn two_node_cluster() -> (Cluster, SimTime) {
        let mut cl = Cluster::new();
        let p = cl.add_device(VillarsConfig::small());
        let s = cl.add_device(VillarsConfig::small());
        assert_eq!((p, s), (0, 1));
        let t = cl.configure_replication(SimTime::ZERO, 0, &[1]);
        (cl, t)
    }

    #[test]
    fn replication_setup_via_vendor_commands() {
        let (cl, t) = two_node_cluster();
        assert!(cl.device(0).is_primary());
        assert!(matches!(
            cl.device(1).transport().role(),
            crate::transport::Role::Secondary { primary: 0 }
        ));
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn unknown_vendor_opcode_rejected() {
        let mut cl = Cluster::new();
        cl.add_device(VillarsConfig::small());
        let (_t, e) = cl.vendor_blocking(0, SimTime::ZERO, VendorCommand::new(0xFF, [0; 6]));
        assert_eq!(e.status, Status::InvalidOpcode);
    }

    #[test]
    fn mirrored_write_reaches_secondary_cmb() {
        let (mut cl, t0) = two_node_cluster();
        let data = vec![0x5A; 256];
        let (_, t1) = cl
            .fast_write(0, t0, 0, 0, &data, MmioMode::WriteCombining)
            .expect("fast write rejected on device 0 lane 0");
        // Let the mirror fly and the secondary drain.
        cl.advance(t1 + SimDuration::from_micros(50));
        let sec_credit = cl.device_mut(1).local_credit(t1 + SimDuration::from_micros(50), 0);
        assert_eq!(sec_credit, 256, "secondary persisted the mirrored bytes");
    }

    #[test]
    fn eager_credit_waits_for_secondary() {
        let (mut cl, t0) = two_node_cluster();
        let data = vec![1u8; 512];
        let (_, t1) = cl
            .fast_write(0, t0, 0, 0, &data, MmioMode::WriteCombining)
            .expect("fast write rejected on device 0 lane 0");
        // Immediately after the local write: primary has persisted locally
        // but no shadow update has arrived yet -> eager credit is 0.
        let (t2, credit) = cl.read_credit(0, t1, 0);
        assert_eq!(credit, 0, "eager counter lags until the secondary reports");
        // After mirror + drain + shadow update cycle, the counter catches up.
        let mut now = t2;
        let mut final_credit = 0;
        for _ in 0..200 {
            cl.advance(now);
            let (t3, c) = cl.read_credit(0, now, 0);
            final_credit = c;
            if c >= 512 {
                break;
            }
            now = cl.next_event_after(t3).unwrap_or(t3 + SimDuration::from_micros(1));
        }
        assert_eq!(final_credit, 512);
    }

    #[test]
    fn standalone_device_needs_no_cluster_routing() {
        let mut cl = Cluster::new();
        cl.add_device(VillarsConfig::small());
        let (_, t) = cl
            .fast_write(0, SimTime::ZERO, 0, 0, &[9u8; 64], MmioMode::WriteCombining)
            .expect("fast write rejected on device 0 lane 0");
        cl.advance(t + SimDuration::from_micros(10));
        let (_t, c) = cl.read_credit(0, t + SimDuration::from_micros(10), 0);
        assert_eq!(c, 64);
    }

    #[test]
    fn crashed_secondary_resyncs_from_primary_log() {
        let (mut cl, t0) = two_node_cluster();
        // Phase A: both copies receive the prefix.
        let (_, t1) = cl
            .fast_write(0, t0, 0, 0, &[0xA1; 256], MmioMode::WriteCombining)
            .expect("fast write rejected on device 0 lane 0");
        cl.advance(t1 + SimDuration::from_micros(50));
        // Crash the secondary, then keep writing on the (now degraded)
        // primary: these bytes exist only on device 0.
        let crash_at = t1 + SimDuration::from_micros(50);
        cl.power_fail(1, crash_at);
        let (_, t2) = cl
            .fast_write(0, crash_at, 0, 256, &[0xB2; 512], MmioMode::WriteCombining)
            .expect("fast write rejected on device 0 lane 0");
        cl.advance(t2 + SimDuration::from_micros(50));
        // Reboot and resync: the secondary's log catches up to the
        // primary's tail, byte for byte.
        cl.reboot_device(1);
        let done = cl.resync_secondary(t2 + SimDuration::from_micros(50), 0, 1);
        assert_eq!(cl.device(1).log_tail(0), cl.device(0).log_tail(0));
        // The re-shipped suffix is intact on the secondary.
        let settle = done + SimDuration::from_millis(2);
        cl.advance(settle);
        let credit = cl.device_mut(1).local_credit(settle, 0);
        assert_eq!(credit, 768, "secondary persisted the full resynced log");
        // Roles can now be restored.
        let t3 = cl.configure_replication(settle, 0, &[1]);
        assert!(cl.device(0).is_primary());
        assert!(t3 > settle);
    }

    #[test]
    fn try_wait_surfaces_completions_without_panicking() {
        let mut cl = Cluster::new();
        cl.add_device(VillarsConfig::small());
        let tag = cl.submit(0, SimTime::ZERO, CommandKind::Io(nvme::IoCommand::Flush));
        let done = cl
            .try_wait_for_completion(0, SimTime::ZERO, tag)
            .expect("flush completes on an idle device");
        assert!(done.entry.status.is_ok());
    }

    /// Run one closed-loop replicated write workload and return its full
    /// observable trace: every credit read, the final log tails, and the
    /// per-domain delivery counters.
    fn replication_trace(mut cl: Cluster) -> (Vec<(SimTime, u64)>, Vec<u64>, Vec<u64>) {
        let t0 = cl.configure_replication(SimTime::ZERO, 0, &[1]);
        let mut trace = Vec::new();
        let mut now = t0;
        for i in 0..40u64 {
            let data = vec![i as u8; 192 + (i % 5) as usize * 64];
            let off = cl.device(0).log_tail(0);
            let (_, t1) =
                cl.fast_write(0, now, 0, off, &data, MmioMode::WriteCombining).expect("fast write");
            now = t1;
            for _ in 0..4 {
                cl.advance(now);
                let (t2, c) = cl.read_credit(0, now, 0);
                trace.push((t2, c));
                now = cl.next_event_after(t2).unwrap_or(t2 + SimDuration::from_micros(1));
            }
        }
        cl.advance(now + SimDuration::from_millis(1));
        let tails = vec![cl.device(0).log_tail(0), cl.device(1).log_tail(0)];
        let events = cl.domain_event_counts().to_vec();
        (trace, tails, events)
    }

    #[test]
    fn parallel_mode_matches_sequential_oracle_on_replicated_writes() {
        let build = |threads: usize| {
            let mut cl = Cluster::with_sim_threads(threads);
            cl.add_device(VillarsConfig::small());
            cl.add_device(VillarsConfig::small());
            cl
        };
        let seq = replication_trace(build(1));
        let par = replication_trace(build(4));
        assert_eq!(seq.0, par.0, "credit-read timeline diverged");
        assert_eq!(seq.1, par.1, "log tails diverged");
        assert_eq!(seq.2, par.2, "per-domain delivery counts diverged");
        // The workload actually exercised cross-device traffic.
        assert!(par.2.iter().sum::<u64>() > 0, "no cross-device deliveries");
    }

    #[test]
    fn parallel_mode_counts_barriers() {
        let mut cl = Cluster::with_sim_threads(2);
        cl.add_device(VillarsConfig::small());
        cl.add_device(VillarsConfig::small());
        let t0 = cl.configure_replication(SimTime::ZERO, 0, &[1]);
        cl.advance(t0 + SimDuration::from_micros(200));
        assert!(cl.barrier_count() > 0, "windowed advance executed no windows");
        assert_eq!(cl.sim_threads(), 2);
    }

    #[test]
    fn parallel_mode_survives_power_fail_and_resync() {
        let run = |threads: usize| {
            let mut cl = Cluster::with_sim_threads(threads);
            cl.add_device(VillarsConfig::small());
            cl.add_device(VillarsConfig::small());
            let t0 = cl.configure_replication(SimTime::ZERO, 0, &[1]);
            let (_, t1) =
                cl.fast_write(0, t0, 0, 0, &[0xA1; 256], MmioMode::WriteCombining).expect("write");
            cl.advance(t1 + SimDuration::from_micros(50));
            let crash_at = t1 + SimDuration::from_micros(50);
            cl.power_fail(1, crash_at);
            let (_, t2) = cl
                .fast_write(0, crash_at, 0, 256, &[0xB2; 512], MmioMode::WriteCombining)
                .expect("write");
            cl.advance(t2 + SimDuration::from_micros(50));
            cl.reboot_device(1);
            let done = cl.resync_secondary(t2 + SimDuration::from_micros(50), 0, 1);
            let settle = done + SimDuration::from_millis(2);
            cl.advance(settle);
            (cl.device(0).log_tail(0), cl.device(1).log_tail(0), done)
        };
        assert_eq!(run(1), run(4), "crash/resync timeline diverged between modes");
    }

    #[test]
    fn power_fail_drops_in_flight_traffic_to_dead_device() {
        let (mut cl, t0) = two_node_cluster();
        // Write, creating an in-flight mirror to device 1, then crash 1.
        let (_, t1) = cl
            .fast_write(0, t0, 0, 0, &[7u8; 128], MmioMode::WriteCombining)
            .expect("fast write rejected on device 0 lane 0");
        let report = cl.power_fail(1, t1);
        // The secondary had nothing durable yet (mirror still in flight).
        assert_eq!(report.durable_upto, vec![0]);
        // The cluster keeps running for the primary.
        cl.advance(t1 + SimDuration::from_micros(100));
    }
}
