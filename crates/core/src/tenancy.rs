//! Multi-tenant CMB partitioning (paper §7.2).
//!
//! "An SR-IOV implementation could simply segment the CMB across smaller,
//! independent regions … which would then be assigned to different virtual
//! machines." Writer lanes already give each region its own ring, credit
//! counter, flow-control window, and destage-ring slice; this module adds
//! the tenancy layer: handing out *capabilities* to lanes, per-tenant
//! accounting, and revocation. (Per-tenant replication configurations are
//! future work here as in the paper — replication rides lane 0.)

use crate::api::{XApiError, XLogFile};
use crate::cluster::Cluster;
use crate::transport::DeviceIndex;
use simkit::SimTime;
use std::collections::HashMap;

/// An opaque tenant identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

/// Errors from tenancy operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TenancyError {
    /// All lanes are assigned.
    NoFreeLane,
    /// The tenant does not exist (or was revoked).
    UnknownTenant(TenantId),
    /// Underlying fast-side failure.
    Api(XApiError),
}

impl std::fmt::Display for TenancyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenancyError::NoFreeLane => f.write_str("no free CMB lane"),
            TenancyError::UnknownTenant(t) => write!(f, "unknown tenant {t:?}"),
            TenancyError::Api(e) => write!(f, "fast-side error: {e}"),
        }
    }
}

impl std::error::Error for TenancyError {}

impl From<XApiError> for TenancyError {
    fn from(e: XApiError) -> Self {
        TenancyError::Api(e)
    }
}

/// Per-tenant usage accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct TenantUsage {
    /// Bytes appended by the tenant.
    pub bytes_written: u64,
    /// Appends issued.
    pub appends: u64,
    /// fsyncs issued.
    pub fsyncs: u64,
}

struct Tenant {
    file: XLogFile,
    usage: TenantUsage,
}

/// The hyperscaler-facing layer: one device, many virtual databases, each
/// holding a capability to its own lane.
pub struct TenantManager {
    dev: DeviceIndex,
    lanes: usize,
    free_lanes: Vec<usize>,
    tenants: HashMap<TenantId, Tenant>,
    /// High-water log offset per lane: a recycled lane's next tenant opens
    /// its handle here so appends continue the lane's monotonic log.
    lane_offsets: HashMap<usize, u64>,
    next_id: u32,
}

impl std::fmt::Debug for TenantManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantManager")
            .field("device", &self.dev)
            .field("tenants", &self.tenants.len())
            .field("free_lanes", &self.free_lanes.len())
            .finish()
    }
}

impl TenantManager {
    /// Manage the lanes of device `dev` in `cluster`.
    pub fn new(cluster: &Cluster, dev: DeviceIndex) -> Self {
        let lanes = cluster.device(dev).lanes();
        TenantManager {
            dev,
            lanes,
            free_lanes: (0..lanes).rev().collect(),
            tenants: HashMap::new(),
            lane_offsets: HashMap::new(),
            next_id: 0,
        }
    }

    /// Total lanes on the device.
    pub fn capacity(&self) -> usize {
        self.lanes
    }

    /// Tenants currently admitted.
    pub fn admitted(&self) -> usize {
        self.tenants.len()
    }

    /// Admit a tenant: assigns a dedicated lane and returns its capability.
    /// A recycled lane's handle continues from the lane's log high-water
    /// mark (the previous tenant's data ages off the destage ring).
    pub fn admit(&mut self) -> Result<TenantId, TenancyError> {
        let lane = self.free_lanes.pop().ok_or(TenancyError::NoFreeLane)?;
        let offset = self.lane_offsets.get(&lane).copied().unwrap_or(0);
        let id = TenantId(self.next_id);
        self.next_id += 1;
        self.tenants.insert(
            id,
            Tenant {
                file: XLogFile::open_lane_at(
                    self.dev,
                    lane,
                    pcie::MmioMode::WriteCombining,
                    offset,
                ),
                usage: TenantUsage::default(),
            },
        );
        Ok(id)
    }

    /// Revoke a tenant: its lane returns to the pool, remembering the log
    /// high-water mark for the next holder. (A production device would also
    /// fence the stale mapping in hardware.)
    pub fn revoke(&mut self, id: TenantId) -> Result<TenantUsage, TenancyError> {
        let t = self.tenants.remove(&id).ok_or(TenancyError::UnknownTenant(id))?;
        self.lane_offsets.insert(t.file.lane(), t.file.written());
        self.free_lanes.push(t.file.lane());
        Ok(t.usage)
    }

    /// The lane a tenant holds (isolation checks in tests).
    pub fn lane_of(&self, id: TenantId) -> Option<usize> {
        self.tenants.get(&id).map(|t| t.file.lane())
    }

    /// Usage accounting for a tenant.
    pub fn usage(&self, id: TenantId) -> Option<TenantUsage> {
        self.tenants.get(&id).map(|t| t.usage)
    }

    /// Tenant-scoped `x_pwrite`: only the owning capability can reach the
    /// lane.
    pub fn append(
        &mut self,
        cluster: &mut Cluster,
        id: TenantId,
        now: SimTime,
        data: &[u8],
    ) -> Result<SimTime, TenancyError> {
        let t = self.tenants.get_mut(&id).ok_or(TenancyError::UnknownTenant(id))?;
        let at = t.file.x_pwrite(cluster, now, data)?;
        t.usage.bytes_written += data.len() as u64;
        t.usage.appends += 1;
        Ok(at)
    }

    /// Tenant-scoped `x_fsync`.
    pub fn fsync(
        &mut self,
        cluster: &mut Cluster,
        id: TenantId,
        now: SimTime,
    ) -> Result<SimTime, TenancyError> {
        let t = self.tenants.get_mut(&id).ok_or(TenancyError::UnknownTenant(id))?;
        let at = t.file.x_fsync(cluster, now)?;
        t.usage.fsyncs += 1;
        Ok(at)
    }

    /// Tenant-scoped tail read of the destaged log.
    pub fn read_tail(
        &mut self,
        cluster: &mut Cluster,
        id: TenantId,
        now: SimTime,
        len: usize,
    ) -> Result<(SimTime, Vec<u8>), TenancyError> {
        let t = self.tenants.get_mut(&id).ok_or(TenancyError::UnknownTenant(id))?;
        Ok(t.file.x_pread(cluster, now, len)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VillarsConfig;
    use simkit::SimDuration;

    fn four_lane_cluster() -> (Cluster, DeviceIndex) {
        let mut cfg = VillarsConfig::small();
        cfg.cmb.writer_lanes = 4;
        let mut cl = Cluster::new();
        let dev = cl.add_device(cfg);
        (cl, dev)
    }

    #[test]
    fn admission_hands_out_distinct_lanes() {
        let (cl, dev) = four_lane_cluster();
        let mut mgr = TenantManager::new(&cl, dev);
        assert_eq!(mgr.capacity(), 4);
        let ids: Vec<_> =
            (0..4).map(|_| mgr.admit().expect("tenant admission failed with lanes free")).collect();
        let lanes: std::collections::HashSet<_> =
            ids.iter().map(|i| mgr.lane_of(*i).expect("admitted tenant has no lane")).collect();
        assert_eq!(lanes.len(), 4);
        assert_eq!(mgr.admit(), Err(TenancyError::NoFreeLane));
    }

    #[test]
    fn tenants_are_isolated() {
        let (mut cl, dev) = four_lane_cluster();
        let mut mgr = TenantManager::new(&cl, dev);
        let a = mgr.admit().expect("tenant admission failed with lanes free");
        let b = mgr.admit().expect("tenant admission failed with lanes free");
        let mut now = SimTime::ZERO;
        now = mgr.append(&mut cl, a, now, &[0xAA; 900]).expect("tenant lane append rejected");
        now = mgr.append(&mut cl, b, now, &[0xBB; 300]).expect("tenant lane append rejected");
        now = mgr.fsync(&mut cl, a, now).expect("tenant lane fsync stalled");
        now = mgr.fsync(&mut cl, b, now).expect("tenant lane fsync stalled");
        // Each lane's credit covers only its own tenant's bytes.
        let (la, lb) = (
            mgr.lane_of(a).expect("admitted tenant has no lane"),
            mgr.lane_of(b).expect("admitted tenant has no lane"),
        );
        let ca = cl.device_mut(dev).local_credit(now, la);
        let cb = cl.device_mut(dev).local_credit(now, lb);
        assert_eq!(ca, 900);
        assert_eq!(cb, 300);
        // And each tenant reads back only its own log.
        let (_t, bytes_a) = mgr.read_tail(&mut cl, a, now, 900).expect("tenant tail read failed");
        assert_eq!(bytes_a, vec![0xAA; 900]);
        let (_t, bytes_b) = mgr.read_tail(&mut cl, b, now, 300).expect("tenant tail read failed");
        assert_eq!(bytes_b, vec![0xBB; 300]);
        let ua = mgr.usage(a).expect("tenant usage missing for a live tenant");
        assert_eq!((ua.bytes_written, ua.appends, ua.fsyncs), (900, 1, 1));
    }

    #[test]
    fn revocation_recycles_the_lane() {
        let (mut cl, dev) = four_lane_cluster();
        let mut mgr = TenantManager::new(&cl, dev);
        let ids: Vec<_> =
            (0..4).map(|_| mgr.admit().expect("tenant admission failed with lanes free")).collect();
        // The departing tenant actually used its lane.
        let mut now = mgr
            .append(&mut cl, ids[1], SimTime::ZERO, &[9u8; 700])
            .expect("tenant lane append rejected");
        now = mgr.fsync(&mut cl, ids[1], now).expect("tenant lane fsync stalled");
        let lane = mgr.lane_of(ids[1]).expect("admitted tenant has no lane");
        let usage = mgr.revoke(ids[1]).expect("revoking a live tenant failed");
        assert_eq!(usage.bytes_written, 700);
        assert_eq!(mgr.admitted(), 3);
        // The freed lane is reusable: the newcomer's handle continues the
        // lane's monotonic log, so appends work immediately.
        let newcomer = mgr.admit().expect("tenant admission failed with lanes free");
        assert_eq!(mgr.lane_of(newcomer), Some(lane));
        now = mgr.append(&mut cl, newcomer, now, &[1u8; 64]).expect("tenant lane append rejected");
        now = mgr.fsync(&mut cl, newcomer, now).expect("tenant lane fsync stalled");
        let credit = cl.device_mut(dev).local_credit(now, lane);
        assert_eq!(credit, 764, "old + new bytes on the lane's log");
        // Revoked capabilities are dead.
        assert_eq!(
            mgr.append(&mut cl, ids[1], now + SimDuration::from_micros(1), &[0u8; 8]),
            Err(TenancyError::UnknownTenant(ids[1]))
        );
    }
}
