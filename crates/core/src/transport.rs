//! The Transport module — cross-device log shipping (paper §4.2, Fig. 6).
//!
//! A primary's Transport module mirrors the CMB write stream to each
//! secondary over its own NTB flow (one mirror flow per secondary — the
//! paper deliberately skips hardware multicast). Each secondary periodically
//! forwards its credit counter back; the primary keeps these as *shadow
//! counters* and combines them per the configured replication policy when
//! the database reads the credit counter.

use crate::config::{ReplicationPolicy, TransportConfig};
use pcie::{HostId, NtbConfig, NtbFaultStats, NtbPort, Tlp, TranslationWindow};
use simkit::faults::{LinkDownWindow, TransportFaultConfig};
use simkit::{DetRng, SimDuration, SimTime};
use std::collections::HashMap;

/// Index of a device within a [`crate::cluster::Cluster`].
pub type DeviceIndex = usize;

/// The replication role of a device (set via vendor NVMe commands; the
/// paper adds commands to move between stand-alone/primary/secondary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Role {
    /// No transport activity; only CMB + Destage run.
    StandAlone,
    /// Mirrors CMB writes to the listed secondaries.
    Primary {
        /// Secondaries in chain order (matters for `ReplicationPolicy::Chain`).
        secondaries: Vec<DeviceIndex>,
    },
    /// Receives mirrored writes; reports its credit counter to the primary.
    Secondary {
        /// The primary device.
        primary: DeviceIndex,
    },
}

/// Health of the transport path (paper §7.1: a status register the host
/// checks when it suspects the credit counter is stale).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportStatus {
    /// Replication flows healthy.
    Ok,
    /// A peer has not acknowledged within the staleness window.
    Degraded,
    /// The module is off (stand-alone).
    Inactive,
}

/// A message handed to the cluster for cross-device delivery.
#[derive(Debug, Clone)]
pub enum Outbound {
    /// Mirrored CMB data for a secondary.
    Mirror {
        /// Destination device.
        dst: DeviceIndex,
        /// Monotonic log offset of the chunk.
        offset: u64,
        /// The chunk content.
        data: Vec<u8>,
        /// When it lands in the destination's CMB intake.
        deliver_at: SimTime,
    },
    /// A shadow-counter update for the primary.
    Shadow {
        /// Destination (primary) device.
        dst: DeviceIndex,
        /// Reporting secondary.
        src: DeviceIndex,
        /// The secondary's credit value.
        value: u64,
        /// When the primary's shadow copy updates.
        deliver_at: SimTime,
    },
}

impl Outbound {
    /// Destination device of the delivery.
    pub fn dst(&self) -> DeviceIndex {
        match self {
            Outbound::Mirror { dst, .. } | Outbound::Shadow { dst, .. } => *dst,
        }
    }
}

/// Transport statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransportStats {
    /// Data bytes mirrored out (primary).
    pub mirrored_bytes: u64,
    /// Mirror messages sent (primary).
    pub mirror_messages: u64,
    /// Shadow updates sent (secondary).
    pub shadow_updates_sent: u64,
    /// Shadow updates applied (primary).
    pub shadow_updates_applied: u64,
}

/// The Transport module of one device.
#[derive(Debug)]
pub struct TransportModule {
    config: TransportConfig,
    role: Role,
    /// Primary: one NTB mirror flow per secondary.
    flows: HashMap<DeviceIndex, NtbPort>,
    /// Primary: shadow counters by secondary.
    shadows: HashMap<DeviceIndex, u64>,
    /// Primary: when each secondary last reported (staleness detection).
    last_update_at: HashMap<DeviceIndex, SimTime>,
    /// Secondary: the NTB flow back to the primary for counter updates.
    upstream: Option<NtbPort>,
    /// Secondary: next scheduled counter update.
    next_update_at: SimTime,
    /// Secondary: last credit value reported.
    last_reported: u64,
    /// Armed transport-fault state: the config plus the parent RNG stream.
    /// Kept here (not on the flows) because flows are rebuilt on every
    /// role change — each new flow forks its own child stream from this.
    flow_faults: Option<(TransportFaultConfig, DetRng)>,
    stats: TransportStats,
}

/// The synthetic window base used for mirror flows: each device maps its
/// peers' CMBs at a fixed offset per device index.
const MIRROR_WINDOW_BASE: u64 = 0x100_0000_0000;
const MIRROR_WINDOW_SIZE: u64 = 1 << 32;

impl TransportModule {
    /// A stand-alone (inactive) transport.
    pub fn new(config: TransportConfig) -> Self {
        TransportModule {
            config,
            role: Role::StandAlone,
            flows: HashMap::new(),
            shadows: HashMap::new(),
            last_update_at: HashMap::new(),
            upstream: None,
            next_update_at: SimTime::ZERO,
            last_reported: 0,
            flow_faults: None,
            stats: TransportStats::default(),
        }
    }

    /// Current role.
    pub fn role(&self) -> &Role {
        &self.role
    }

    /// Configuration.
    pub fn config(&self) -> &TransportConfig {
        &self.config
    }

    /// Statistics.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Health of the transport path at `now` (paper §7.1: the status
    /// register the host checks when it suspects the counter is stale). A
    /// primary is Degraded when any secondary has not reported within the
    /// staleness window.
    pub fn status_at(&self, now: SimTime) -> TransportStatus {
        match &self.role {
            Role::StandAlone => TransportStatus::Inactive,
            Role::Secondary { .. } => TransportStatus::Ok,
            Role::Primary { secondaries } => {
                let stale = secondaries.iter().any(|s| {
                    let last = self.last_update_at.get(s).copied().unwrap_or(SimTime::ZERO);
                    now.saturating_since(last) > self.config.staleness_window
                });
                if stale {
                    TransportStatus::Degraded
                } else {
                    TransportStatus::Ok
                }
            }
        }
    }

    fn window_for(peer: DeviceIndex) -> TranslationWindow {
        TranslationWindow {
            local_base: MIRROR_WINDOW_BASE + peer as u64 * MIRROR_WINDOW_SIZE,
            len: MIRROR_WINDOW_SIZE,
            remote_host: HostId(peer as u16),
            remote_base: 0,
        }
    }

    /// Become a primary mirroring to `secondaries` (vendor command
    /// `SetRolePrimary`). Resets previous flows; the staleness clock for
    /// each secondary starts at `now`.
    pub fn set_primary(&mut self, secondaries: Vec<DeviceIndex>, ntb: NtbConfig, now: SimTime) {
        self.flows.clear();
        self.shadows.clear();
        self.last_update_at.clear();
        for &s in &secondaries {
            let mut port = NtbPort::new(ntb, HostId(s as u16));
            port.add_window(Self::window_for(s));
            if let Some((cfg, rng)) = &mut self.flow_faults {
                port.arm_faults(*cfg, rng.fork(s as u64));
            }
            self.flows.insert(s, port);
            self.shadows.insert(s, 0);
            self.last_update_at.insert(s, now);
        }
        self.upstream = None;
        self.role = Role::Primary { secondaries };
    }

    /// Become a secondary of `primary` (vendor command `SetRoleSecondary`).
    pub fn set_secondary(&mut self, primary: DeviceIndex, ntb: NtbConfig, now: SimTime) {
        let mut port = NtbPort::new(ntb, HostId(primary as u16));
        port.add_window(Self::window_for(primary));
        if let Some((cfg, rng)) = &mut self.flow_faults {
            port.arm_faults(*cfg, rng.fork(u64::from(u32::MAX) + 1 + primary as u64));
        }
        self.upstream = Some(port);
        self.flows.clear();
        self.shadows.clear();
        self.next_update_at = now + self.config.shadow_update_period;
        self.last_reported = 0;
        self.role = Role::Secondary { primary };
    }

    /// Return to stand-alone mode (vendor command `SetRoleStandAlone`).
    pub fn set_stand_alone(&mut self) {
        self.role = Role::StandAlone;
        self.flows.clear();
        self.shadows.clear();
        self.upstream = None;
    }

    /// Change the shadow-update period (Fig. 13's swept knob).
    pub fn set_shadow_period(&mut self, period: SimDuration) {
        assert!(!period.is_zero(), "update period must be positive");
        self.config.shadow_update_period = period;
    }

    /// Arm transport faults (TLP drop → replay-timer replay, link-down
    /// windows) on every NTB flow this module owns, now and across future
    /// role changes: flows are rebuilt on reconfiguration, so the config
    /// and parent RNG stream live here and each flow forks a child stream
    /// salted by its peer index.
    pub fn arm_flow_faults(&mut self, cfg: TransportFaultConfig, rng: DetRng) {
        self.flow_faults = Some((cfg, rng));
        let mut peers: Vec<DeviceIndex> = self.flows.keys().copied().collect();
        peers.sort_unstable();
        let (cfg, rng) = self.flow_faults.as_mut().expect("just set");
        for p in peers {
            self.flows.get_mut(&p).expect("just listed").arm_faults(*cfg, rng.fork(p as u64));
        }
        if let Some(up) = self.upstream.as_mut() {
            up.arm_faults(*cfg, rng.fork(u64::MAX));
        }
    }

    /// Park every flow's traffic during `window` (link retrain): TLPs
    /// entering the window wait for the retrain instant before the wire
    /// accepts them. Applies to current flows only — schedule outages
    /// after roles are configured.
    pub fn schedule_link_down(&mut self, window: LinkDownWindow) {
        let mut peers: Vec<DeviceIndex> = self.flows.keys().copied().collect();
        peers.sort_unstable();
        for p in peers {
            self.flows.get_mut(&p).expect("just listed").schedule_link_down(window);
        }
        if let Some(up) = self.upstream.as_mut() {
            up.schedule_link_down(window);
        }
    }

    /// Aggregate NTB fault statistics across every flow (mirror flows plus
    /// the upstream counter flow).
    pub fn flow_fault_stats(&self) -> NtbFaultStats {
        let mut total = NtbFaultStats::default();
        for f in self.flows.values().chain(self.upstream.iter()) {
            let s = f.fault_stats();
            total.replays += s.replays;
            total.deferrals += s.deferrals;
        }
        total
    }

    /// Primary: mirror one CMB chunk to every secondary. Each flow is
    /// independent ("allows each secondary to receive traffic at an
    /// independent pace"). Returns the deliveries for the cluster.
    pub fn mirror(&mut self, now: SimTime, offset: u64, data: &[u8]) -> Vec<Outbound> {
        let Role::Primary { ref secondaries } = self.role else {
            return Vec::new();
        };
        let secondaries = secondaries.clone();
        let mut out = Vec::with_capacity(secondaries.len());
        for dst in secondaries {
            let port = self.flows.get_mut(&dst).expect("flow exists for secondary");
            let addr = Self::window_for(dst).local_base + offset % MIRROR_WINDOW_SIZE;
            // Forward as 64-byte (WC-sized) TLP bursts.
            let tlps = (data.len() as u64).div_ceil(pcie::WC_BUFFER_BYTES).max(1);
            let payload = (data.len() as u64 / tlps).max(1) as u32;
            let grant = port.forward_burst(now, addr, payload, tlps).expect("mirror window mapped");
            self.stats.mirrored_bytes += data.len() as u64;
            self.stats.mirror_messages += 1;
            out.push(Outbound::Mirror { dst, offset, data: data.to_vec(), deliver_at: grant.end });
        }
        out
    }

    /// Secondary: bound the shadow-update catch-up work at `bound`. After a
    /// long idle stretch nothing changed between the missed cycles, so
    /// replaying each one individually is pure waste — skip ahead, keeping
    /// the cycle phase, and leave only the recent window for
    /// [`TransportModule::take_shadow_updates`] to emit.
    ///
    /// The cluster calls this once per `advance` horizon (sequential and
    /// parallel modes alike, with the same `bound`) so the skip decision is
    /// independent of how finely the horizon is carved into delivery
    /// barriers or lookahead windows.
    pub fn catch_up_shadow_clock(&mut self, bound: SimTime) {
        if !matches!(self.role, Role::Secondary { .. }) {
            return;
        }
        const MAX_CATCHUP: u64 = 10_000;
        let period = self.config.shadow_update_period;
        let behind =
            bound.saturating_since(self.next_update_at).as_nanos() / period.as_nanos().max(1);
        if behind > MAX_CATCHUP {
            self.next_update_at += period.saturating_mul(behind - MAX_CATCHUP);
        }
    }

    /// Secondary: emit periodic shadow-counter updates up to `now`.
    /// `credit_at` queries the local CMB credit at a given instant.
    /// Callers spanning a large idle gap should bound the work first via
    /// [`TransportModule::catch_up_shadow_clock`].
    pub fn take_shadow_updates(
        &mut self,
        now: SimTime,
        me: DeviceIndex,
        mut credit_at: impl FnMut(SimTime) -> u64,
    ) -> Vec<Outbound> {
        let Role::Secondary { primary } = self.role else {
            return Vec::new();
        };
        let mut out = Vec::new();
        while self.next_update_at <= now {
            let at = self.next_update_at;
            self.next_update_at = at + self.config.shadow_update_period;
            let value = credit_at(at);
            // Skip no-change updates? The paper's device sends on a fixed
            // cycle; we do too — the bandwidth cost is the point of Fig. 13.
            let port = self.upstream.as_mut().expect("secondary has upstream flow");
            let addr = Self::window_for(primary).local_base;
            let tlp = Tlp::write(addr, self.config.counter_payload_bytes);
            let (_fwd, grant) = port.forward(at, &tlp).expect("upstream window mapped");
            self.last_reported = value;
            self.stats.shadow_updates_sent += 1;
            out.push(Outbound::Shadow { dst: primary, src: me, value, deliver_at: grant.end });
        }
        out
    }

    /// Secondary: the next scheduled shadow-update instant (event-loop hint).
    pub fn next_update_at(&self) -> Option<SimTime> {
        match self.role {
            Role::Secondary { .. } => Some(self.next_update_at),
            _ => None,
        }
    }

    /// Primary: apply a shadow-counter update that arrived from `src` at
    /// instant `at`.
    pub fn apply_shadow(&mut self, src: DeviceIndex, value: u64, at: SimTime) {
        if let Some(v) = self.shadows.get_mut(&src) {
            *v = (*v).max(value);
            self.stats.shadow_updates_applied += 1;
            let t = self.last_update_at.entry(src).or_insert(at);
            *t = (*t).max(at);
        }
    }

    /// A secondary's shadow counter as the primary sees it.
    pub fn shadow_of(&self, src: DeviceIndex) -> Option<u64> {
        self.shadows.get(&src).copied()
    }

    /// Combine the local credit with the shadow counters per `policy` —
    /// the value the database sees when it reads the credit counter.
    pub fn combined_credit(&self, local: u64, policy: ReplicationPolicy) -> u64 {
        match &self.role {
            Role::Primary { secondaries } if !secondaries.is_empty() => match policy {
                ReplicationPolicy::Eager => {
                    let min_shadow =
                        secondaries.iter().filter_map(|s| self.shadow_of(*s)).min().unwrap_or(0);
                    local.min(min_shadow)
                }
                ReplicationPolicy::Lazy => local,
                ReplicationPolicy::Chain => {
                    let last = *secondaries.last().expect("non-empty");
                    self.shadow_of(last).unwrap_or(0).min(local)
                }
                ReplicationPolicy::Quorum(k) => {
                    let mut counters: Vec<u64> = std::iter::once(local)
                        .chain(secondaries.iter().filter_map(|s| self.shadow_of(*s)))
                        .collect();
                    counters.sort_unstable_by(|a, b| b.cmp(a));
                    let k = (k as usize).clamp(1, counters.len());
                    counters[k - 1]
                }
            },
            _ => local,
        }
    }

    /// NTB wire statistics of the upstream (secondary → primary) flow, for
    /// the Fig. 13 bandwidth-overhead series.
    pub fn upstream_stats(&self) -> Option<simkit::LinkStats> {
        self.upstream.as_ref().map(|p| p.stats())
    }

    /// The slowest secondary's shadow counter (primary only): the offset up
    /// to which *every* secondary has acknowledged the mirrored stream.
    pub fn min_shadow(&self) -> Option<u64> {
        match &self.role {
            Role::Primary { secondaries } if !secondaries.is_empty() => {
                Some(secondaries.iter().filter_map(|s| self.shadow_of(*s)).min().unwrap_or(0))
            }
            _ => None,
        }
    }
}

impl simkit::Instrument for TransportModule {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.counter("mirrored_bytes", self.stats.mirrored_bytes);
        out.counter("mirror_messages", self.stats.mirror_messages);
        out.counter("shadow_updates_sent", self.stats.shadow_updates_sent);
        out.counter("shadow_updates_applied", self.stats.shadow_updates_applied);
        for (dst, flow) in &self.flows {
            out.collect(&format!("flow{dst}"), flow);
        }
        if let Some(up) = &self.upstream {
            out.collect("upstream", up);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TransportConfig;

    fn primary_of(secs: Vec<DeviceIndex>) -> TransportModule {
        let mut t = TransportModule::new(TransportConfig::default());
        t.set_primary(secs, NtbConfig::default(), SimTime::ZERO);
        t
    }

    #[test]
    fn stand_alone_does_nothing() {
        let mut t = TransportModule::new(TransportConfig::default());
        assert!(t.mirror(SimTime::ZERO, 0, &[1, 2, 3]).is_empty());
        assert!(t.take_shadow_updates(SimTime::from_secs(1), 0, |_| 42).is_empty());
        assert_eq!(t.status_at(SimTime::ZERO), TransportStatus::Inactive);
        assert_eq!(t.combined_credit(99, ReplicationPolicy::Eager), 99);
    }

    #[test]
    fn primary_mirrors_to_every_secondary() {
        let mut t = primary_of(vec![1, 2]);
        let out = t.mirror(SimTime::ZERO, 0, &[0u8; 128]);
        assert_eq!(out.len(), 2);
        for o in &out {
            match o {
                Outbound::Mirror { deliver_at, data, .. } => {
                    assert!(deliver_at.as_nanos() > 900, "includes NTB hop");
                    assert_eq!(data.len(), 128);
                }
                _ => panic!("expected mirror"),
            }
        }
        assert_eq!(t.stats().mirrored_bytes, 256);
    }

    #[test]
    fn secondary_emits_periodic_updates() {
        let mut t = TransportModule::new(TransportConfig {
            shadow_update_period: SimDuration::from_micros(1),
            counter_payload_bytes: 8,
            staleness_window: SimDuration::from_micros(100),
        });
        t.set_secondary(0, NtbConfig::default(), SimTime::ZERO);
        // Credit grows 100 bytes per microsecond.
        let updates = t.take_shadow_updates(SimTime::from_micros(5), 1, |at| at.as_nanos() / 10);
        assert_eq!(updates.len(), 5);
        match updates[0] {
            Outbound::Shadow { dst, src, value, deliver_at } => {
                assert_eq!((dst, src), (0, 1));
                assert_eq!(value, 100);
                assert!(deliver_at > SimTime::from_micros(1));
            }
            _ => panic!("expected shadow"),
        }
        // No double emission.
        assert!(t.take_shadow_updates(SimTime::from_micros(5), 1, |_| 0).is_empty());
    }

    #[test]
    fn catch_up_clock_bounds_idle_replay() {
        let mut t = TransportModule::new(TransportConfig {
            shadow_update_period: SimDuration::from_micros(1),
            counter_payload_bytes: 8,
            staleness_window: SimDuration::from_micros(100),
        });
        t.set_secondary(0, NtbConfig::default(), SimTime::ZERO);
        // A 100 ms idle gap is 100k periods; the catch-up clamp leaves only
        // the last ~10k cycles to replay, keeping the cycle phase.
        let far = SimTime::from_millis(100);
        t.catch_up_shadow_clock(far);
        let updates = t.take_shadow_updates(far, 1, |_| 0);
        assert_eq!(updates.len(), 10_001);
        // Phase preserved: next update is one period past the horizon grid.
        assert_eq!(t.next_update_at(), Some(far + SimDuration::from_micros(1)));
        // A short gap is untouched by the clamp.
        let near = far + SimDuration::from_micros(5);
        t.catch_up_shadow_clock(near);
        assert_eq!(t.take_shadow_updates(near, 1, |_| 0).len(), 5);
    }

    #[test]
    fn catch_up_clock_is_inert_off_secondary_role() {
        let mut t = primary_of(vec![1]);
        t.catch_up_shadow_clock(SimTime::from_secs(10));
        assert_eq!(t.next_update_at(), None);
    }

    #[test]
    fn eager_policy_reports_most_delayed_counter() {
        let mut t = primary_of(vec![1, 2]);
        t.apply_shadow(1, 500, SimTime::ZERO);
        t.apply_shadow(2, 300, SimTime::ZERO);
        assert_eq!(t.combined_credit(1000, ReplicationPolicy::Eager), 300);
        // Local can be the laggard too (it never is in practice, but the
        // combination is defensive).
        assert_eq!(t.combined_credit(100, ReplicationPolicy::Eager), 100);
    }

    #[test]
    fn lazy_policy_reports_local() {
        let mut t = primary_of(vec![1]);
        t.apply_shadow(1, 10, SimTime::ZERO);
        assert_eq!(t.combined_credit(1000, ReplicationPolicy::Lazy), 1000);
    }

    #[test]
    fn chain_policy_reports_last_in_chain() {
        let mut t = primary_of(vec![1, 2, 3]);
        t.apply_shadow(1, 900, SimTime::ZERO);
        t.apply_shadow(2, 800, SimTime::ZERO);
        t.apply_shadow(3, 700, SimTime::ZERO);
        assert_eq!(t.combined_credit(1000, ReplicationPolicy::Chain), 700);
    }

    #[test]
    fn quorum_policy_takes_kth_highest() {
        let mut t = primary_of(vec![1, 2, 3]);
        t.apply_shadow(1, 900, SimTime::ZERO);
        t.apply_shadow(2, 500, SimTime::ZERO);
        t.apply_shadow(3, 100, SimTime::ZERO);
        // Counters: [1000(local), 900, 500, 100]; quorum of 2 -> 900.
        assert_eq!(t.combined_credit(1000, ReplicationPolicy::Quorum(2)), 900);
        assert_eq!(t.combined_credit(1000, ReplicationPolicy::Quorum(1)), 1000);
        assert_eq!(t.combined_credit(1000, ReplicationPolicy::Quorum(4)), 100);
        // k beyond the counter count clamps.
        assert_eq!(t.combined_credit(1000, ReplicationPolicy::Quorum(99)), 100);
    }

    #[test]
    fn shadow_updates_are_monotonic() {
        let mut t = primary_of(vec![1]);
        t.apply_shadow(1, 500, SimTime::ZERO);
        t.apply_shadow(1, 400, SimTime::ZERO); // late/reordered update must not regress
        assert_eq!(t.shadow_of(1), Some(500));
    }

    #[test]
    fn flow_faults_survive_role_reconfiguration() {
        let mut t = TransportModule::new(TransportConfig::default());
        t.arm_flow_faults(
            TransportFaultConfig { tlp_drop: 1.0, replay_timeout: SimDuration::from_micros(10) },
            DetRng::new(7),
        );
        t.set_primary(vec![1], NtbConfig::default(), SimTime::ZERO);
        t.mirror(SimTime::ZERO, 0, &[0u8; 64]);
        let first = t.flow_fault_stats().replays;
        assert!(first >= 1, "certain drop must replay");
        // Reconfigure: the rebuilt flow stays armed from the stored stream.
        t.set_primary(vec![1, 2], NtbConfig::default(), SimTime::from_micros(50));
        t.mirror(SimTime::from_micros(50), 0, &[0u8; 64]);
        assert!(t.flow_fault_stats().replays >= 2, "new flows re-armed");
    }

    #[test]
    fn unarmed_flows_report_zero_fault_stats() {
        let mut t = primary_of(vec![1]);
        t.mirror(SimTime::ZERO, 0, &[0u8; 64]);
        assert_eq!(t.flow_fault_stats(), NtbFaultStats::default());
    }

    #[test]
    fn role_transitions_reset_flows() {
        let mut t = primary_of(vec![1]);
        assert!(matches!(t.role(), Role::Primary { .. }));
        t.set_secondary(0, NtbConfig::default(), SimTime::ZERO);
        assert!(matches!(t.role(), Role::Secondary { primary: 0 }));
        assert!(t.upstream_stats().is_some());
        t.set_stand_alone();
        assert_eq!(t.status_at(SimTime::ZERO), TransportStatus::Inactive);
        assert!(t.upstream_stats().is_none());
    }
}
