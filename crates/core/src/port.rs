//! The unified asynchronous I/O port, re-exported at the `core` layer.
//!
//! Every device type in the stack implements the same command-lifecycle
//! contract — submit → queue → device event → completion:
//!
//! - [`VillarsDevice`](crate::VillarsDevice) (fast side + conventional
//!   side behind one NVMe interface),
//! - `ssd::ConventionalSsd` (the conventional SSD on its own),
//! - the `nvme` host drivers (`NvmeDriver`, `QueuedDriver`), which add
//!   syscall/interrupt costs on top of a wrapped controller.
//!
//! The contract itself — [`IoPort`], [`CmdTag`], [`Completion`], the
//! shared [`PortAccounting`] bookkeeping and the closed-loop
//! [`drive_to_completion`] adapter — lives in `nvme::port` (the protocol
//! layer below every device crate) and is re-exported here so host-level
//! code can name it from `xssd_core` directly. Cluster-level entry points
//! are [`Cluster::submit`](crate::Cluster::submit),
//! [`Cluster::completions_into`](crate::Cluster::completions_into) and
//! [`Cluster::wait_for_completion`](crate::Cluster::wait_for_completion);
//! the `*_blocking` helpers are thin closed-loop adapters over them.

pub use nvme::port::{
    drive_to_completion, try_drive_to_completion, CmdTag, Completion, IoPort, PortAccounting,
};
