//! Villars device configuration.

use nvme::{BackingClass, CmbDescriptor};
use pcie::NtbConfig;
use simkit::{Bandwidth, SimDuration};
use ssd::SsdConfig;

/// Configuration of the fast side's CMB module (paper §4.1).
#[derive(Debug, Clone, Copy)]
pub struct CmbConfig {
    /// Backing memory class and exposed size.
    pub backing: BackingClass,
    /// CMB region size in bytes (128 KiB SRAM / 128 MiB DRAM in the paper).
    pub size: u64,
    /// Intake (SRAM) queue size in bytes — the flow-control window the
    /// database is told about. The paper evaluates 1–32 KiB (Fig. 11).
    pub intake_queue_bytes: u64,
    /// Number of independent writer lanes, each with its own credit counter
    /// (paper §7.1: "keep several counters, potentially one per core").
    pub writer_lanes: u32,
    /// Derating of the shared DRAM port for CMB traffic: the fast side sees
    /// `dram_bandwidth × factor` because "the DRAM access is shared with the
    /// device's regular data buffering activity" (paper §6).
    pub dram_share_factor: f64,
    /// How far beyond the contiguous tail an out-of-order chunk may land
    /// (paper §4.1: writes are "mostly sequential" — reordering is
    /// tolerated only "within established bounds").
    pub reorder_window_bytes: u64,
}

impl CmbConfig {
    /// The paper's SRAM configuration.
    pub fn sram() -> Self {
        let d = CmbDescriptor::villars_sram();
        CmbConfig {
            backing: d.backing,
            size: d.size,
            intake_queue_bytes: 32 << 10,
            writer_lanes: 1,
            dram_share_factor: 0.4,
            reorder_window_bytes: 64 << 10,
        }
    }

    /// The paper's DRAM configuration.
    pub fn dram() -> Self {
        let d = CmbDescriptor::villars_dram();
        CmbConfig {
            backing: d.backing,
            size: d.size,
            intake_queue_bytes: 32 << 10,
            writer_lanes: 1,
            dram_share_factor: 0.4,
            reorder_window_bytes: 64 << 10,
        }
    }

    /// Raw backing-memory bandwidth for this class (paper §6: 128-bit @
    /// 250 MHz BlockRAM = 4 GB/s; 64-bit @ 250 MHz DDR3 path = 2 GB/s).
    pub fn backing_bandwidth(&self) -> Bandwidth {
        match self.backing {
            BackingClass::Sram => Bandwidth::bus(128, 250.0),
            BackingClass::Dram => Bandwidth::bus(64, 250.0).scaled(self.dram_share_factor),
        }
    }
}

/// Configuration of the Destage module (paper §4.3).
#[derive(Debug, Clone, Copy)]
pub struct DestageConfig {
    /// First LBA of the destage ring on the conventional side.
    pub ring_base_lba: u64,
    /// Length of the destage ring in logical blocks ("much larger than the
    /// one on the fast side", Fig. 3).
    pub ring_lbas: u64,
    /// Destage a partial page (with filler) if the oldest undestaged byte
    /// waited longer than this.
    pub max_latency: SimDuration,
}

impl Default for DestageConfig {
    fn default() -> Self {
        DestageConfig {
            ring_base_lba: 0,
            ring_lbas: 4096,
            max_latency: SimDuration::from_millis(1),
        }
    }
}

/// Shadow-counter / replication transport configuration (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransportConfig {
    /// How often a secondary forwards its credit counter to the primary
    /// (Fig. 13 sweeps 0.4–1.6 µs).
    pub shadow_update_period: SimDuration,
    /// Bytes of a shadow-counter update message (counter payload).
    pub counter_payload_bytes: u32,
    /// A primary reports `Degraded` when a secondary has not forwarded its
    /// counter within this window (paper §7.1: replication errors surface
    /// as an indeterminate delay; the host checks a status register).
    pub staleness_window: SimDuration,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            shadow_update_period: SimDuration::from_micros_f64(0.8),
            counter_payload_bytes: 8,
            staleness_window: SimDuration::from_micros(100),
        }
    }
}

/// How the device combines shadow counters when the database reads the
/// credit counter (paper §4.2, "other replication schemes").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationPolicy {
    /// Eager primary-secondary: report the *most delayed* counter across
    /// local + all secondaries (a log entry counts once persisted
    /// everywhere). The Villars default.
    Eager,
    /// Lazy: report the local counter; secondaries catch up asynchronously.
    Lazy,
    /// Chain: report the shadow counter of the last secondary in the chain.
    Chain,
    /// Quorum(k): report the k-th highest counter among local + shadows.
    Quorum(u32),
}

/// Full Villars configuration.
#[derive(Debug, Clone)]
pub struct VillarsConfig {
    /// The conventional side.
    pub conventional: SsdConfig,
    /// The CMB module.
    pub cmb: CmbConfig,
    /// The Destage module.
    pub destage: DestageConfig,
    /// The Transport module.
    pub transport: TransportConfig,
    /// NTB adapter parameters used when a role is configured.
    pub ntb: NtbConfig,
    /// Counter-combination policy for replicated setups.
    pub replication: ReplicationPolicy,
}

impl Default for VillarsConfig {
    fn default() -> Self {
        VillarsConfig {
            conventional: SsdConfig::default(),
            cmb: CmbConfig::sram(),
            destage: DestageConfig::default(),
            transport: TransportConfig::default(),
            ntb: NtbConfig::default(),
            replication: ReplicationPolicy::Eager,
        }
    }
}

impl VillarsConfig {
    /// Small/fast configuration for unit tests: tiny flash, fast timing,
    /// small CMB with a 4 KiB intake queue.
    pub fn small() -> Self {
        VillarsConfig {
            conventional: SsdConfig::small(),
            cmb: CmbConfig { size: 64 << 10, intake_queue_bytes: 4 << 10, ..CmbConfig::sram() },
            destage: DestageConfig {
                ring_base_lba: 0,
                ring_lbas: 64,
                max_latency: SimDuration::from_micros(200),
            },
            transport: TransportConfig::default(),
            ntb: NtbConfig::default(),
            replication: ReplicationPolicy::Eager,
        }
    }

    /// The paper's SRAM-backed device over the default conventional side.
    pub fn villars_sram() -> Self {
        VillarsConfig { cmb: CmbConfig::sram(), ..VillarsConfig::default() }
    }

    /// The paper's DRAM-backed device.
    pub fn villars_dram() -> Self {
        VillarsConfig { cmb: CmbConfig::dram(), ..VillarsConfig::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backing_bandwidths_match_paper() {
        let sram = CmbConfig::sram();
        assert!((sram.backing_bandwidth().as_gbytes_per_sec() - 4.0).abs() < 1e-9);
        let dram = CmbConfig::dram();
        // 2 GB/s derated by the share factor.
        assert!((dram.backing_bandwidth().as_gbytes_per_sec() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn default_config_is_consistent() {
        let c = VillarsConfig::default();
        assert!(c.cmb.intake_queue_bytes <= c.cmb.size);
        assert!(c.destage.ring_lbas > 0);
        assert_eq!(c.replication, ReplicationPolicy::Eager);
    }

    #[test]
    fn small_config_ring_fits_namespace() {
        let c = VillarsConfig::small();
        let pages = c.conventional.geometry.total_pages() * 7 / 8;
        assert!(c.destage.ring_base_lba + c.destage.ring_lbas <= pages);
    }
}
