//! # xssd_core — the X-SSD architecture and the Villars reference device
//!
//! The paper's primary contribution (SIGMOD '22): an SSD that mixes PM and
//! NAND flash, taking transaction-log writes on a byte-addressable *fast
//! side* and owning their propagation — to NAND (destaging) and to peer
//! devices (log shipping) — on behalf of the database.
//!
//! - [`config`] — device/CMB/destage/transport configuration;
//! - [`cmb`] — the CMB module: intake queue, PM ring, credit counter,
//!   credit-based flow control, gap detection (paper §4.1);
//! - [`destage`] — the Destage module: LBA ring, filler pages, latency
//!   threshold, crash destaging (paper §4.3);
//! - [`transport`] — the Transport module: NTB mirror flows, shadow
//!   counters, replication policies (paper §4.2);
//! - [`device`] — [`VillarsDevice`]: both sides glued together behind a
//!   conformant NVMe interface with vendor-command setup;
//! - [`cluster`] — [`Cluster`]: devices interconnected by NTB, routing
//!   mirror and shadow-counter traffic deterministically;
//! - [`port`] — the unified asynchronous [`IoPort`] command-lifecycle
//!   contract (tagged submissions, event-driven completions) all device
//!   types share, with the closed-loop [`drive_to_completion`] adapter
//!   the `*_blocking` helpers route through;
//! - [`api`] — the drop-in host API: [`XLogFile`] (`x_pwrite`/`x_fsync`/
//!   `x_pread`) and the advanced [`XAllocator`] (`x_alloc`/`x_free`)
//!   (paper §5).

#![warn(missing_docs)]

pub mod api;
pub mod cluster;
pub mod cmb;
pub mod config;
pub mod destage;
pub mod device;
pub mod port;
pub mod tenancy;
pub mod transport;

pub use api::{XAllocator, XApiError, XLogFile, XRegion};
pub use cluster::Cluster;
pub use cmb::{CmbError, CmbModule, CmbStats};
pub use config::{CmbConfig, DestageConfig, ReplicationPolicy, TransportConfig, VillarsConfig};
pub use destage::{DestageModule, DestageStats, Segment};
pub use device::{vendor, CrashReport, FastWrite, VillarsDevice};
pub use port::{
    drive_to_completion, try_drive_to_completion, CmdTag, Completion, IoPort, PortAccounting,
};
pub use tenancy::{TenancyError, TenantId, TenantManager, TenantUsage};
pub use transport::{DeviceIndex, Outbound, Role, TransportModule, TransportStatus};
