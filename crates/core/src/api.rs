//! The drop-in host API (paper §5).
//!
//! `x_pwrite`/`x_fsync`/`x_pread` replace the familiar syscalls on the fast
//! side. They are *not* system calls — the implementation talks to the
//! device through MMIO, "and therefore do not incur the penalty of context
//! switching into the OS" (§5.1). The advanced `x_alloc`/`x_free` pair
//! (§5.2) exposes the CMB as memory regions that worker threads fill in
//! parallel.

use crate::cluster::Cluster;
use crate::cmb::CmbError;
use crate::transport::DeviceIndex;
use pcie::MmioMode;
use simkit::{SimDuration, SimTime};

/// A handle to the fast side of one Villars device — the moral equivalent
/// of an open file descriptor on the log.
#[derive(Debug)]
pub struct XLogFile {
    dev: DeviceIndex,
    lane: usize,
    mode: MmioMode,
    /// Monotonic log offset written so far.
    written: u64,
    /// Credit value at the last counter read (flow-control view).
    credit_seen: u64,
    /// Tail-read cursor (x_pread with the special tail-offset flag).
    read_cursor: u64,
}

/// Errors surfaced by the host API.
#[derive(Debug, Clone, PartialEq)]
pub enum XApiError {
    /// The device rejected an ingest (protocol violation).
    Cmb(CmbError),
    /// A blocking call could not make progress (device idle but condition
    /// unmet — e.g. reading a log range that aged off the destage ring).
    Stalled {
        /// What the call was waiting for.
        waiting_for: &'static str,
    },
}

impl std::fmt::Display for XApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XApiError::Cmb(e) => write!(f, "CMB error: {e}"),
            XApiError::Stalled { waiting_for } => write!(f, "stalled waiting for {waiting_for}"),
        }
    }
}

impl std::error::Error for XApiError {}

impl From<CmbError> for XApiError {
    fn from(e: CmbError) -> Self {
        XApiError::Cmb(e)
    }
}

impl XLogFile {
    /// Open the fast side of device `dev`, lane 0, in Write-Combining mode
    /// (the fast configuration, paper §6.2).
    pub fn open(dev: DeviceIndex) -> Self {
        Self::open_lane(dev, 0, MmioMode::WriteCombining)
    }

    /// Open a specific lane/mode (UC mode exists to reproduce Fig. 10).
    pub fn open_lane(dev: DeviceIndex, lane: usize, mode: MmioMode) -> Self {
        Self::open_lane_at(dev, lane, mode, 0)
    }

    /// Open a lane whose log already extends to `offset` (reopening after a
    /// reboot, or taking over a recycled multi-tenant lane): writes and tail
    /// reads continue from there.
    pub fn open_lane_at(dev: DeviceIndex, lane: usize, mode: MmioMode, offset: u64) -> Self {
        XLogFile { dev, lane, mode, written: offset, credit_seen: offset, read_cursor: offset }
    }

    /// Bytes appended so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The lane this handle writes.
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// `pwrite()` replacement (paper §5.1, Fig. 8): copy `data` into CMB in
    /// credit-bounded chunks, pausing to re-read the credit counter whenever
    /// the flow-control window is exhausted — "the best performance was
    /// obtained when using all the credits available without intermediate
    /// checks then pausing to read the credit anew". Returns when the last
    /// byte has been handed to the device (not necessarily persisted).
    pub fn x_pwrite(
        &mut self,
        cl: &mut Cluster,
        now: SimTime,
        data: &[u8],
    ) -> Result<SimTime, XApiError> {
        let q = cl.device(self.dev).intake_queue_bytes(self.lane);
        let mut now = now;
        let mut cursor = 0usize;
        while cursor < data.len() {
            let inflight = self.written - self.credit_seen;
            let room = q.saturating_sub(inflight);
            if room == 0 {
                // Window exhausted: read the counter (one MMIO round trip);
                // if still no room, wait for device progress.
                let (t, credit) = cl.read_credit(self.dev, now, self.lane);
                self.credit_seen = self.credit_seen.max(credit);
                now = t;
                if self.written - self.credit_seen == 0 {
                    continue;
                }
                if self.written - self.credit_seen >= q {
                    now = self.wait_for_progress(cl, now)?;
                }
                continue;
            }
            let chunk = (room as usize).min(data.len() - cursor);
            match cl.fast_write(
                self.dev,
                now,
                self.lane,
                self.written,
                &data[cursor..cursor + chunk],
                self.mode,
            ) {
                Ok((issued_at, _arrived_at)) => {
                    self.written += chunk as u64;
                    cursor += chunk;
                    now = issued_at;
                }
                Err(CmbError::RingFull) => {
                    // Destaging is behind: the device stops granting
                    // credits, so the writer stalls until it catches up.
                    cl.advance(now);
                    now = self.wait_for_progress(cl, now)?;
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(now)
    }

    /// `fsync()` replacement (paper §5.1): block until the credit counter
    /// covers every byte this handle wrote. Under eager replication that
    /// means persisted locally *and* on every secondary.
    pub fn x_fsync(&mut self, cl: &mut Cluster, now: SimTime) -> Result<SimTime, XApiError> {
        let mut now = now;
        loop {
            cl.advance(now);
            let (t, credit) = cl.read_credit(self.dev, now, self.lane);
            self.credit_seen = self.credit_seen.max(credit);
            if credit >= self.written {
                return Ok(t);
            }
            now = self.wait_for_progress(cl, t)?;
        }
    }

    /// `pread()` replacement with tail-read semantics (paper §5.1): return
    /// the next `len` bytes of the destaged log after the cursor, blocking
    /// until destaging catches up.
    pub fn x_pread(
        &mut self,
        cl: &mut Cluster,
        now: SimTime,
        len: usize,
    ) -> Result<(SimTime, Vec<u8>), XApiError> {
        let mut now = now;
        // Wait until the destage ring holds the requested range.
        loop {
            cl.advance(now);
            if cl.device(self.dev).destaged_upto(self.lane) >= self.read_cursor + len as u64 {
                break;
            }
            now = self.wait_for_progress(cl, now)?;
        }
        let (t, bytes) = cl
            .device_mut(self.dev)
            .read_destaged(now, self.lane, self.read_cursor, len)
            .ok_or(XApiError::Stalled { waiting_for: "log range aged off the destage ring" })?;
        self.read_cursor += len as u64;
        Ok((t, bytes))
    }

    /// Jump virtual time to the next instant the cluster can make progress.
    fn wait_for_progress(&self, cl: &mut Cluster, now: SimTime) -> Result<SimTime, XApiError> {
        match cl.next_event_after(now) {
            Some(t) => Ok(t),
            None => {
                // Nothing pending anywhere: give destage deadlines a nudge;
                // if still nothing, the wait can never finish.
                let nudged = now + SimDuration::from_micros(10);
                cl.advance(nudged);
                match cl.next_event_after(now) {
                    Some(t) => Ok(t),
                    None => Err(XApiError::Stalled { waiting_for: "device progress" }),
                }
            }
        }
    }
}

/// A region handed out by [`XAllocator::x_alloc`] (paper §5.2): the caller
/// may fill it in any order; it becomes destageable when freed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XRegion {
    /// First monotonic log offset of the region.
    pub offset: u64,
    /// Region length in bytes.
    pub len: u64,
}

/// The advanced memory-style API: worker threads allocate adjacent ring
/// regions and fill them in parallel — "known as one of the fastest ways to
/// write to a transaction log" (§5.2, citing Aether).
#[derive(Debug)]
pub struct XAllocator {
    dev: DeviceIndex,
    lane: usize,
    next_offset: u64,
    outstanding: Vec<XRegion>,
}

impl XAllocator {
    /// An allocator over device `dev`, lane `lane`.
    pub fn new(dev: DeviceIndex, lane: usize) -> Self {
        XAllocator { dev, lane, next_offset: 0, outstanding: Vec::new() }
    }

    /// Reserve the next `len` bytes of the ring. Regions are adjacent: "the
    /// next allocated area can be adjacent to the previous one on the ring".
    pub fn x_alloc(&mut self, len: u64) -> XRegion {
        assert!(len > 0);
        let r = XRegion { offset: self.next_offset, len };
        self.next_offset += len;
        self.outstanding.push(r);
        r
    }

    /// Write into an allocated region at `within` (any order within the
    /// region). The CMB holds out-of-order data until the log below it is
    /// contiguous.
    pub fn write_region(
        &mut self,
        cl: &mut Cluster,
        now: SimTime,
        region: XRegion,
        within: u64,
        data: &[u8],
    ) -> Result<SimTime, XApiError> {
        assert!(within + data.len() as u64 <= region.len, "write exceeds the allocated region");
        assert!(self.outstanding.contains(&region), "region already freed or never allocated");
        let (issued_at, _arrived_at) = cl.fast_write(
            self.dev,
            now,
            self.lane,
            region.offset + within,
            data,
            MmioMode::WriteCombining,
        )?;
        Ok(issued_at)
    }

    /// Release a region: once every earlier byte is also contiguous, the
    /// region becomes destageable (the ring head can pass it).
    pub fn x_free(&mut self, region: XRegion) {
        let pos = self
            .outstanding
            .iter()
            .position(|r| *r == region)
            .expect("freeing an unallocated region");
        self.outstanding.swap_remove(pos);
    }

    /// Regions allocated but not yet freed.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VillarsConfig;

    fn standalone() -> (Cluster, XLogFile) {
        let mut cl = Cluster::new();
        let dev = cl.add_device(VillarsConfig::small());
        (cl, XLogFile::open(dev))
    }

    #[test]
    fn pwrite_then_fsync_persists() {
        let (mut cl, mut f) = standalone();
        let t1 = f
            .x_pwrite(&mut cl, SimTime::ZERO, &[0xAB; 1000])
            .expect("x_pwrite rejected by the fast side");
        assert_eq!(f.written(), 1000);
        let t2 = f.x_fsync(&mut cl, t1).expect("x_fsync stalled before the credit covered the log");
        assert!(t2 >= t1);
        let (_t, credit) = cl.read_credit(0, t2, 0);
        assert_eq!(credit, 1000);
    }

    #[test]
    fn pwrite_larger_than_queue_back_pressures() {
        let (mut cl, mut f) = standalone();
        // small() queue is 4 KiB; write 16 KiB.
        let data = vec![7u8; 16 << 10];
        let t1 =
            f.x_pwrite(&mut cl, SimTime::ZERO, &data).expect("x_pwrite rejected by the fast side");
        assert_eq!(f.written(), 16 << 10);
        let t2 = f.x_fsync(&mut cl, t1).expect("x_fsync stalled before the credit covered the log");
        assert!(t2 > SimTime::ZERO);
        // A same-size write with a bigger window would have finished the
        // hand-off sooner: the credit checks cost time.
        assert!(t1 > SimTime::from_micros(8), "back-pressure must cost time: {t1}");
    }

    #[test]
    fn fsync_with_nothing_written_returns_immediately() {
        let (mut cl, mut f) = standalone();
        let t = f
            .x_fsync(&mut cl, SimTime::ZERO)
            .expect("x_fsync stalled before the credit covered the log");
        // Just the MMIO round trip.
        assert!(t.as_micros_f64() < 2.0);
    }

    #[test]
    fn pread_tail_returns_written_content() {
        let (mut cl, mut f) = standalone();
        let payload: Vec<u8> = (0..100u8).cycle().take(5000).collect();
        let t1 = f
            .x_pwrite(&mut cl, SimTime::ZERO, &payload)
            .expect("x_pwrite rejected by the fast side");
        let t2 = f.x_fsync(&mut cl, t1).expect("x_fsync stalled before the credit covered the log");
        // Tail read blocks until destage catches up, then returns content.
        let (t3, bytes) =
            f.x_pread(&mut cl, t2, 4096).expect("x_pread failed against the destage ring");
        assert!(t3 >= t2);
        assert_eq!(bytes, &payload[..4096]);
        // The cursor advanced: the next read returns the following range
        // (once destaged — 5000-4096=904 bytes remain, partial page).
        let (_t4, more) =
            f.x_pread(&mut cl, t3, 900).expect("x_pread failed against the destage ring");
        assert_eq!(more, &payload[4096..4996]);
    }

    #[test]
    fn sequential_pwrites_accumulate_offsets() {
        let (mut cl, mut f) = standalone();
        let mut now = SimTime::ZERO;
        for i in 0..5u8 {
            now = f.x_pwrite(&mut cl, now, &[i; 100]).expect("x_pwrite rejected by the fast side");
        }
        assert_eq!(f.written(), 500);
        now = f.x_fsync(&mut cl, now).expect("x_fsync stalled before the credit covered the log");
        let (_t, credit) = cl.read_credit(0, now, 0);
        assert_eq!(credit, 500);
    }

    #[test]
    fn replicated_fsync_waits_for_secondary() {
        let mut cl = Cluster::new();
        let p = cl.add_device(VillarsConfig::small());
        let _s = cl.add_device(VillarsConfig::small());
        let t0 = cl.configure_replication(SimTime::ZERO, p, &[1]);
        let mut f = XLogFile::open(p);
        let t1 = f.x_pwrite(&mut cl, t0, &[1u8; 2000]).expect("x_pwrite rejected by the fast side");
        let t2 = f.x_fsync(&mut cl, t1).expect("x_fsync stalled before the credit covered the log");
        // fsync must cover mirror + drain + shadow-update round trip: well
        // above the local-only latency.
        let fsync_cost = t2.saturating_since(t1);
        assert!(fsync_cost.as_micros_f64() > 1.0, "replicated fsync too fast: {fsync_cost}");
        // And the secondary really holds the bytes.
        let sec = cl.device_mut(1).local_credit(t2, 0);
        assert_eq!(sec, 2000);
    }

    #[test]
    fn allocator_parallel_fill_out_of_order() {
        let mut cl = Cluster::new();
        let dev = cl.add_device(VillarsConfig::small());
        let mut alloc = XAllocator::new(dev, 0);
        let r1 = alloc.x_alloc(256);
        let r2 = alloc.x_alloc(256);
        assert_eq!(r2.offset, 256);
        // Fill region 2 first (out of order), then region 1.
        let t1 = alloc
            .write_region(&mut cl, SimTime::ZERO, r2, 0, &[2u8; 256])
            .expect("region write rejected");
        let t2 =
            alloc.write_region(&mut cl, t1, r1, 0, &[1u8; 256]).expect("region write rejected");
        alloc.x_free(r1);
        alloc.x_free(r2);
        assert_eq!(alloc.outstanding(), 0);
        // Once both landed, credits cover both regions.
        let settle = t2 + simkit::SimDuration::from_micros(20);
        cl.advance(settle);
        let (_t, credit) = cl.read_credit(dev, settle, 0);
        assert_eq!(credit, 512);
    }

    #[test]
    #[should_panic(expected = "exceeds the allocated region")]
    fn region_overflow_panics() {
        let mut cl = Cluster::new();
        let dev = cl.add_device(VillarsConfig::small());
        let mut alloc = XAllocator::new(dev, 0);
        let r = alloc.x_alloc(64);
        let _ = alloc.write_region(&mut cl, SimTime::ZERO, r, 32, &[0u8; 64]);
    }

    #[test]
    fn multi_lane_handles_are_independent() {
        let mut cl = Cluster::new();
        let mut cfg = VillarsConfig::small();
        cfg.cmb.writer_lanes = 2;
        let dev = cl.add_device(cfg);
        assert_eq!(cl.device(dev).lanes(), 2);
        let mut f0 = XLogFile::open_lane(dev, 0, MmioMode::WriteCombining);
        let mut f1 = XLogFile::open_lane(dev, 1, MmioMode::WriteCombining);
        let t1 = f0
            .x_pwrite(&mut cl, SimTime::ZERO, &[1u8; 500])
            .expect("x_pwrite rejected by the fast side");
        let t2 = f1.x_pwrite(&mut cl, t1, &[2u8; 700]).expect("x_pwrite rejected by the fast side");
        let t3 =
            f0.x_fsync(&mut cl, t2).expect("x_fsync stalled before the credit covered the log");
        let t4 =
            f1.x_fsync(&mut cl, t3).expect("x_fsync stalled before the credit covered the log");
        let (_ta, c0) = cl.read_credit(dev, t4, 0);
        let (_tb, c1) = cl.read_credit(dev, t4, 1);
        assert_eq!((c0, c1), (500, 700));
    }
}
