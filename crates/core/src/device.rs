//! The Villars device — the X-SSD reference design (paper §4, Fig. 4).
//!
//! A Villars is a fully conformant NVMe device: the conventional side is a
//! [`ConventionalSsd`] reached through the standard block interface, and the
//! fast side (CMB + Destage + Transport) is reached through MMIO against the
//! CMB window plus vendor-specific admin commands for setup.

use crate::cmb::{CmbError, CmbModule};
use crate::config::VillarsConfig;
use crate::destage::DestageModule;
use crate::transport::{DeviceIndex, Outbound, Role, TransportModule, TransportStatus};
use nvme::{
    AdminCommand, BackingClass, CmdTag, Command, CommandKind, Completion, CompletionEntry, IoPort,
    Namespace, NvmeController, PortAccounting, QueueError, Status, VendorCommand,
};
use pcie::{MmioMode, StoreIssueModel};
use simkit::{Bandwidth, Grant, SerialResource, SimDuration, SimTime};
use ssd::ConventionalSsd;

/// Vendor-specific opcodes (paper §4.2: role changes are NVMe
/// vendor-specific commands; §7.1 adds promotion/demotion).
pub mod vendor {
    /// Return the device to stand-alone mode.
    pub const SET_STAND_ALONE: u8 = 0xC0;
    /// Become a primary; CDW10 = secondary count, CDW11..15 = indices.
    pub const SET_PRIMARY: u8 = 0xC1;
    /// Become a secondary; CDW10 = primary index.
    pub const SET_SECONDARY: u8 = 0xC2;
    /// Set shadow update period; CDW10 = period in nanoseconds.
    pub const SET_SHADOW_PERIOD: u8 = 0xC3;
    /// Set the channel-scheduler mode; CDW10 = 0 neutral / 1 destage / 2
    /// conventional priority.
    pub const SET_SCHED_MODE: u8 = 0xC4;
    /// Read the transport status register; result = 0 ok / 1 degraded / 2
    /// inactive.
    pub const GET_TRANSPORT_STATUS: u8 = 0xC5;
    /// Set the intake-queue (flow-control window) size; CDW10 = bytes,
    /// CDW11 = lane.
    pub const SET_INTAKE_QUEUE: u8 = 0xC6;
}

/// Result of a fast-side MMIO write burst.
#[derive(Debug)]
pub struct FastWrite {
    /// When the host link accepted the last TLP (wire free): the CPU can
    /// issue the next store from this instant — stores pipeline on the
    /// wire, they do not wait for device-side arrival.
    pub issued_at: SimTime,
    /// When the last TLP of the burst fully arrived at the device.
    pub arrived_at: SimTime,
    /// Cross-device deliveries (mirror traffic) for the cluster to route.
    pub outbound: Vec<Outbound>,
}

/// What the crash-destage protocol salvaged (paper §4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct CrashReport {
    /// Per lane: the monotonic log offset made durable on the conventional
    /// side.
    pub durable_upto: Vec<u64>,
    /// Per lane: bytes abandoned beyond a reordering gap.
    pub lost_beyond_gap: Vec<u64>,
}

/// One fast-side lane: its own CMB ring, credit counter, and destage ring
/// slice (paper §7.1's multi-writer extension; lane 0 is the classic
/// single-counter device).
#[derive(Debug)]
struct Lane {
    cmb: CmbModule,
    destage: DestageModule,
}

/// The Villars device.
pub struct VillarsDevice {
    config: VillarsConfig,
    conventional: ConventionalSsd,
    lanes: Vec<Lane>,
    transport: TransportModule,
    /// Dedicated SRAM backing port (None when DRAM-backed: the shared data
    /// buffer port is used instead).
    sram_port: Option<SerialResource>,
    backing_bw: Bandwidth,
    /// Completions for vendor commands handled by the fast side.
    vendor_out: Vec<(SimTime, CompletionEntry)>,
    /// Total bytes accepted via the fast interface.
    fast_bytes_in: u64,
    /// TLPs issued by fast-side writes (one per WC-flush payload).
    fast_tlps: u64,
    /// Control-interface credit-counter reads (MMIO round trips).
    credit_reads: u64,
    /// Reusable destage-completion drain buffer for the advance loop (one
    /// allocation for the device's lifetime instead of one per event step).
    destage_drain: Vec<(SimTime, u64)>,
    /// Per-port CID allocation + queue-depth accounting for commands
    /// submitted through the [`IoPort`] contract.
    port: PortAccounting,
    /// Reusable drain scratch for [`IoPort::completions_into`].
    port_drain: Vec<(SimTime, CompletionEntry)>,
}

impl std::fmt::Debug for VillarsDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VillarsDevice")
            .field("lanes", &self.lanes.len())
            .field("role", self.transport.role())
            .field("fast_bytes_in", &self.fast_bytes_in)
            .finish()
    }
}

impl VillarsDevice {
    /// Build a device from its configuration.
    pub fn new(config: VillarsConfig) -> Self {
        let conventional = ConventionalSsd::new(config.conventional.clone());
        let page_bytes = config.conventional.geometry.page_bytes as u64;
        let lanes_n = config.cmb.writer_lanes.max(1) as usize;
        let mut lanes = Vec::with_capacity(lanes_n);
        for i in 0..lanes_n {
            let mut cmb_cfg = config.cmb;
            cmb_cfg.size = config.cmb.size / lanes_n as u64;
            cmb_cfg.intake_queue_bytes =
                (config.cmb.intake_queue_bytes / lanes_n as u64).max(page_bytes.min(512));
            let mut destage_cfg = config.destage;
            let slice = config.destage.ring_lbas / lanes_n as u64;
            assert!(slice > 0, "destage ring too small for {lanes_n} lanes");
            destage_cfg.ring_base_lba = config.destage.ring_base_lba + i as u64 * slice;
            destage_cfg.ring_lbas = slice;
            lanes.push(Lane {
                cmb: CmbModule::new(cmb_cfg),
                destage: DestageModule::new(destage_cfg, page_bytes),
            });
        }
        let sram_port = match config.cmb.backing {
            BackingClass::Sram => Some(SerialResource::new()),
            BackingClass::Dram => None,
        };
        let backing_bw = config.cmb.backing_bandwidth();
        VillarsDevice {
            transport: TransportModule::new(config.transport),
            config,
            conventional,
            lanes,
            sram_port,
            backing_bw,
            vendor_out: Vec::new(),
            fast_bytes_in: 0,
            fast_tlps: 0,
            credit_reads: 0,
            destage_drain: Vec::new(),
            port: PortAccounting::new(),
            port_drain: Vec::new(),
        }
    }

    /// Per-port accounting for [`IoPort`] submissions (CID liveness,
    /// in-flight depth, queue-depth histogram). Collected explicitly —
    /// not part of [`simkit::Instrument`] for this device, whose snapshot
    /// layout is byte-frozen by the results gate.
    pub fn port_stats(&self) -> &PortAccounting {
        &self.port
    }

    /// The configuration.
    pub fn config(&self) -> &VillarsConfig {
        &self.config
    }

    /// Number of writer lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The conventional side (block device, stats, media peeks).
    pub fn conventional(&self) -> &ConventionalSsd {
        &self.conventional
    }

    /// Mutable conventional side (for test staging / direct block I/O).
    pub fn conventional_mut(&mut self) -> &mut ConventionalSsd {
        &mut self.conventional
    }

    /// The transport module.
    pub fn transport(&self) -> &TransportModule {
        &self.transport
    }

    /// Mutable transport (direct role setup, as the cluster does).
    pub fn transport_mut(&mut self) -> &mut TransportModule {
        &mut self.transport
    }

    /// The intake-queue size the flow-control protocol negotiates with the
    /// database (paper §4.1).
    pub fn intake_queue_bytes(&self, lane: usize) -> u64 {
        self.lanes[lane].cmb.config().intake_queue_bytes
    }

    /// Total bytes accepted via the fast interface.
    pub fn fast_bytes_in(&self) -> u64 {
        self.fast_bytes_in
    }

    /// CMB statistics for a lane.
    pub fn cmb_stats(&self, lane: usize) -> crate::cmb::CmbStats {
        self.lanes[lane].cmb.stats()
    }

    /// Destage statistics for a lane.
    pub fn destage_stats(&self, lane: usize) -> crate::destage::DestageStats {
        self.lanes[lane].destage.stats()
    }

    /// Grant backing-memory time: dedicated SRAM, or the shared DRAM port
    /// (the derated transfer time models the 64-bit CMB path on the shared
    /// controller, paper §6).
    fn backing_acquire(
        sram_port: &mut Option<SerialResource>,
        conv: &mut ConventionalSsd,
        bw: Bandwidth,
        now: SimTime,
        bytes: u64,
    ) -> Grant {
        match sram_port {
            Some(port) => port.acquire(now, bw.transfer_time(bytes)),
            None => {
                // Hold the shared DRAM port for the CMB-path duration.
                conv.dram_hold(now, bw.transfer_time(bytes))
            }
        }
    }

    /// Host fast-side write: `data` stored to the CMB window at monotonic
    /// ring `offset` on `lane`, issued under `mode` (WC or UC). The TLPs
    /// ride the shared host PCIe link. Mirrors to secondaries when primary.
    pub fn fast_write(
        &mut self,
        now: SimTime,
        lane: usize,
        offset: u64,
        data: &[u8],
        mode: MmioMode,
    ) -> Result<FastWrite, CmbError> {
        let issue = StoreIssueModel { mode };
        // Capacity pre-check: a full ring must stall the writer *before*
        // any TLP is issued, so a retry re-sends the same offsets.
        if !self.lanes[lane].cmb.has_room(offset, data.len() as u64) {
            return Err(CmbError::RingFull);
        }
        let payloads = issue.tlp_payloads(data.len() as u64);
        let mut cursor = 0usize;
        let mut arrived = now;
        let sram_port = &mut self.sram_port;
        let conv = &mut self.conventional;
        let bw = self.backing_bw;
        let lane_ref = &mut self.lanes[lane];
        let mut tlps = 0u64;
        for p in payloads {
            let chunk = &data[cursor..cursor + p as usize];
            let grant = conv.host_link_mut().send_write_burst(now, p, 1);
            arrived = grant.end;
            lane_ref.cmb.ingest(grant.end, offset + cursor as u64, chunk, |t, b| {
                Self::backing_acquire(sram_port, conv, bw, t, b)
            })?;
            cursor += p as usize;
            tlps += 1;
        }
        self.fast_bytes_in += data.len() as u64;
        self.fast_tlps += tlps;
        let issued_at = self.conventional.host_link_busy_until();
        // Mirror the chunk to secondaries (lane 0 carries replication).
        let outbound =
            if lane == 0 { self.transport.mirror(arrived, offset, data) } else { Vec::new() };
        Ok(FastWrite { issued_at, arrived_at: arrived, outbound })
    }

    /// Deliver a mirrored chunk from the primary into this (secondary)
    /// device's CMB intake.
    pub fn receive_mirror(
        &mut self,
        at: SimTime,
        offset: u64,
        data: &[u8],
    ) -> Result<(), CmbError> {
        let sram_port = &mut self.sram_port;
        let conv = &mut self.conventional;
        let bw = self.backing_bw;
        let lane = &mut self.lanes[0];
        lane.cmb
            .ingest(at, offset, data, |t, b| Self::backing_acquire(sram_port, conv, bw, t, b))?;
        self.fast_bytes_in += data.len() as u64;
        Ok(())
    }

    /// Host control-interface read of the credit counter: an MMIO read
    /// round trip on the host link, returning the policy-combined value
    /// (paper §4.2). Returns `(completion instant, counter)`.
    pub fn read_credit(&mut self, now: SimTime, lane: usize) -> (SimTime, u64) {
        self.credit_reads += 1;
        let g = self.conventional.host_link_mut().read_round_trip(now, 0, 8);
        let local = self.lanes[lane].cmb.credit_at(g.end);
        let value = if lane == 0 {
            self.transport.combined_credit(local, self.config.replication)
        } else {
            local
        };
        (g.end, value)
    }

    /// Raw local credit (no PCIe round trip) — device-internal observers.
    pub fn local_credit(&mut self, now: SimTime, lane: usize) -> u64 {
        self.lanes[lane].cmb.credit_at(now)
    }

    /// Policy-combined credit (replication-aware, like
    /// [`VillarsDevice::read_credit`]) but *without* the MMIO round trip —
    /// for host-side completion pollers that resolve already-issued
    /// appends against the durability frontier without perturbing the
    /// link timeline.
    pub fn observed_credit(&mut self, now: SimTime, lane: usize) -> u64 {
        let local = self.lanes[lane].cmb.credit_at(now);
        if lane == 0 {
            self.transport.combined_credit(local, self.config.replication)
        } else {
            local
        }
    }

    /// Secondary: bound shadow-update catch-up work at `bound` — see
    /// [`crate::transport::TransportModule::catch_up_shadow_clock`]. The
    /// cluster calls this once per advance horizon, before any emission.
    pub fn catch_up_shadow_clock(&mut self, bound: SimTime) {
        self.transport.catch_up_shadow_clock(bound);
    }

    /// Secondary: emit shadow-counter updates up to `now` for the cluster.
    pub fn take_shadow_updates(&mut self, now: SimTime, me: DeviceIndex) -> Vec<Outbound> {
        let lane = &mut self.lanes[0];
        let cmb = &mut lane.cmb;
        self.transport.take_shadow_updates(now, me, |at| cmb.credit_at(at))
    }

    /// Primary: apply a shadow-counter update from secondary `src`,
    /// arriving at `at`.
    pub fn apply_shadow(&mut self, src: DeviceIndex, value: u64, at: SimTime) {
        self.transport.apply_shadow(src, value, at);
    }

    /// Drive the device to `t`, stepping through internal event times so
    /// that destage decisions fire when their triggers occur (a credit
    /// crossing a page boundary, a latency deadline) rather than at the
    /// advance horizon.
    pub fn advance(&mut self, t: SimTime) {
        let mut stuck_at: Option<SimTime> = None;
        let mut drained = std::mem::take(&mut self.destage_drain);
        loop {
            // Jump straight to the next internal event at or below the
            // horizon — never step in fixed quanta.
            let step = match self.next_internal_event() {
                Some(e) if e <= t => e,
                _ => t,
            };
            self.conventional.advance_to(step);
            let mut progressed = false;
            // Route destage completions to their owning lanes (tokens are
            // device-global).
            drained.clear();
            self.conventional.drain_destage_completions_into(step, &mut drained);
            for &(_at, token) in &drained {
                for lane in &mut self.lanes {
                    if lane.destage.complete(token) {
                        progressed = true;
                        break;
                    }
                }
            }
            // Discard orphaned internal-read completions (an interrupted
            // recovery read): left in place they would pin the event
            // frontier below real work and stall the loop for good.
            drained.clear();
            self.conventional.drain_internal_reads_into(step, &mut drained);
            progressed |= !drained.is_empty();
            for lane in &mut self.lanes {
                progressed |= lane.destage.pump(step, &mut lane.cmb, &mut self.conventional);
            }
            if progressed {
                stuck_at = None;
                continue;
            }
            if step >= t {
                break;
            }
            // No progress below the horizon: safe only if the event frontier
            // moved past `step`; a second no-progress visit to the same
            // instant means the remaining event there is not actionable.
            if stuck_at == Some(step) {
                break;
            }
            stuck_at = Some(step);
        }
        self.destage_drain = drained;
        self.conventional.advance_to(t);
    }

    /// Earliest device-internal event for the advance stepper (excludes
    /// vendor completions and host-facing outbound completions, which only
    /// the host consumes).
    fn next_internal_event(&self) -> Option<SimTime> {
        let mut next = self.conventional.next_device_event();
        for lane in &self.lanes {
            if let Some(d) = lane.destage.next_deadline() {
                next = Some(next.map_or(d, |n: SimTime| n.min(d)));
            }
            if let Some(d) = lane.cmb.next_pending() {
                next = Some(next.map_or(d, |n: SimTime| n.min(d)));
            }
        }
        next
    }

    /// The earliest pending device event (conventional work or a destage
    /// latency deadline).
    pub fn next_event(&self) -> Option<SimTime> {
        let mut next = self.conventional.next_event_at();
        for lane in &self.lanes {
            if let Some(d) = lane.destage.next_deadline() {
                next = Some(next.map_or(d, |n: SimTime| n.min(d)));
            }
            if let Some(d) = lane.cmb.next_pending() {
                next = Some(next.map_or(d, |n: SimTime| n.min(d)));
            }
        }
        if let Some(t) = self.vendor_out.iter().map(|(at, _)| *at).min() {
            next = Some(next.map_or(t, |n: SimTime| n.min(t)));
        }
        next
    }

    /// Log offset durable on the conventional side for `lane` (x_pread
    /// horizon).
    pub fn destaged_upto(&self, lane: usize) -> u64 {
        self.lanes[lane].destage.persisted()
    }

    /// The lane's monotonic log tail: every byte below it has been
    /// contiguously received into the CMB ring.
    pub fn log_tail(&self, lane: usize) -> u64 {
        self.lanes[lane].cmb.tail()
    }

    /// The lane's destage head: bytes below it have left the CMB ring for
    /// the conventional side (readable via [`VillarsDevice::read_destaged`]).
    pub fn log_head(&self, lane: usize) -> u64 {
        self.lanes[lane].cmb.head()
    }

    /// Oldest log offset still readable from the lane's destage ring —
    /// the ring recycles, so offsets below this are gone from the device
    /// and recoverable only from a host-side archive. `None` when nothing
    /// has been destaged yet.
    pub fn destage_readable_from(&self, lane: usize) -> Option<u64> {
        self.lanes[lane].destage.readable_from()
    }

    /// Copy live CMB ring content `[offset, offset+len)` for `lane`
    /// (panics with the structured invariant report when the range falls
    /// outside the live window `[head, tail]`).
    pub fn log_content(&self, lane: usize, offset: u64, len: usize) -> Vec<u8> {
        self.lanes[lane].cmb.content(offset, len)
    }

    /// Raw flash-array statistics of the conventional side (including the
    /// injected fault counters).
    pub fn flash_stats(&self) -> flash::FlashStats {
        self.conventional.flash_stats()
    }

    /// Arm the conventional side's flash fault layer (transient read /
    /// program retries, permanent program failures) with a dedicated RNG
    /// stream. A device left unarmed takes zero extra RNG draws.
    pub fn arm_flash_faults(&mut self, cfg: simkit::faults::FlashFaultConfig, rng: simkit::DetRng) {
        self.conventional.arm_flash_faults(cfg, rng);
    }

    /// Arm transport (NTB) faults on every replication flow this device
    /// creates — the arming survives role reconfiguration.
    pub fn arm_transport_faults(
        &mut self,
        cfg: simkit::faults::TransportFaultConfig,
        rng: simkit::DetRng,
    ) {
        self.transport.arm_flow_faults(cfg, rng);
    }

    /// Park this device's outgoing transport flows during `window` (a link
    /// retrain). Schedule after replication roles are configured.
    pub fn schedule_link_down(&mut self, window: simkit::faults::LinkDownWindow) {
        self.transport.schedule_link_down(window);
    }

    /// Read destaged log content `[offset, offset+len)` from `lane`,
    /// driving the device until the read completes. Returns `None` if the
    /// range is not (or no longer) on the destage ring.
    pub fn read_destaged(
        &mut self,
        now: SimTime,
        lane: usize,
        offset: u64,
        len: usize,
    ) -> Option<(SimTime, Vec<u8>)> {
        let mut out = Vec::with_capacity(len);
        let mut ready = now;
        let mut cursor = offset;
        let end = offset + len as u64;
        while cursor < end {
            let seg = self.lanes[lane].destage.segment_for(cursor)?;
            // Host-visible content: the write cache may still hold a
            // destaged page the flash program has not retired yet.
            let media = self.conventional.read_content(seg.lba)?;
            let within = (cursor - seg.log_from) as usize;
            let take = ((seg.log_to - cursor) as usize).min((end - cursor) as usize);
            out.extend_from_slice(&media[within..within + take]);
            // Timing: one flash read per touched page.
            if let Some(token) = self.conventional.submit_internal_read(ready, seg.lba) {
                // Drive until *that* read completes, stepping on the flash
                // pipeline's own events — the global next_event_at can sit
                // pinned at an undelivered destage completion (which only
                // the device advance loop routes), and breaking out early
                // would orphan this read's completion, pinning the event
                // frontier in turn.
                'drive: loop {
                    self.conventional.advance_to(ready);
                    for (at, tok) in self.conventional.drain_internal_reads(ready) {
                        if tok == token {
                            ready = at;
                            break 'drive;
                        }
                    }
                    match self.conventional.next_flash_event() {
                        Some(t) if t > ready => ready = t,
                        _ => break,
                    }
                }
            }
            cursor += take as u64;
        }
        Some((ready, out))
    }

    /// Sudden power interruption (paper §4.1 crash consistency): the device
    /// drains the intake queues (stopping at gaps), destages every lane's
    /// ring residue on supercap power, and loses all host-volatile state.
    pub fn power_fail(&mut self, now: SimTime) -> CrashReport {
        self.advance(now);
        let mut frontiers = Vec::with_capacity(self.lanes.len());
        let mut lost = Vec::with_capacity(self.lanes.len());
        for lane in &mut self.lanes {
            let tail_before = lane.cmb.tail();
            let frontier = lane.cmb.crash_drain();
            lost.push(tail_before.saturating_sub(frontier));
            frontiers.push(frontier);
        }
        for (lane, &frontier) in self.lanes.iter_mut().zip(&frontiers) {
            lane.destage.crash_submit(now, frontier, &mut lane.cmb, &mut self.conventional);
        }
        self.conventional.power_fail_rescue_destage(now);
        let durable_upto: Vec<u64> =
            self.lanes.iter_mut().map(|l| l.destage.crash_finalize()).collect();
        // Reboot: CMB content is reset but the log-offset space continues
        // from the durable frontier; destaged data is on the conventional
        // side, readable through the destage ring segments. The transport
        // role does not survive the crash — peers must be reconfigured via
        // vendor commands (paper §7.1).
        for lane in &mut self.lanes {
            let frontier = lane.destage.persisted();
            lane.cmb.reset_to(frontier);
        }
        self.transport.set_stand_alone();
        CrashReport { durable_upto, lost_beyond_gap: lost }
    }

    fn vendor_complete(&mut self, now: SimTime, cid: u16, status: Status, result: u32) {
        // Vendor commands cost one admin round: fetch + decode.
        let at = now + SimDuration::from_micros(2);
        self.vendor_out.push((at, CompletionEntry { cid, status, result }));
    }

    fn handle_vendor(&mut self, now: SimTime, cid: u16, v: VendorCommand) {
        match v.opcode {
            vendor::SET_STAND_ALONE => {
                self.transport.set_stand_alone();
                self.vendor_complete(now, cid, Status::Success, 0);
            }
            vendor::SET_PRIMARY => {
                let n = v.dwords[0] as usize;
                if n == 0 || n > 5 {
                    self.vendor_complete(now, cid, Status::InvalidField, 0);
                    return;
                }
                let secondaries: Vec<DeviceIndex> =
                    v.dwords[1..=n].iter().map(|d| *d as DeviceIndex).collect();
                self.transport.set_primary(secondaries, self.config.ntb, now);
                self.vendor_complete(now, cid, Status::Success, 0);
            }
            vendor::SET_SECONDARY => {
                self.transport.set_secondary(v.dwords[0] as DeviceIndex, self.config.ntb, now);
                self.vendor_complete(now, cid, Status::Success, 0);
            }
            vendor::SET_SHADOW_PERIOD => {
                if v.dwords[0] == 0 {
                    self.vendor_complete(now, cid, Status::InvalidField, 0);
                } else {
                    self.transport.set_shadow_period(SimDuration::from_nanos(v.dwords[0] as u64));
                    self.vendor_complete(now, cid, Status::Success, 0);
                }
            }
            vendor::SET_SCHED_MODE => {
                let mode = match v.dwords[0] {
                    0 => flash::SchedulingMode::Neutral,
                    1 => flash::SchedulingMode::DestagePriority,
                    2 => flash::SchedulingMode::ConventionalPriority,
                    _ => {
                        self.vendor_complete(now, cid, Status::InvalidField, 0);
                        return;
                    }
                };
                self.conventional.set_scheduling_mode(mode);
                self.vendor_complete(now, cid, Status::Success, 0);
            }
            vendor::GET_TRANSPORT_STATUS => {
                let code = match self.transport.status_at(now) {
                    TransportStatus::Ok => 0,
                    TransportStatus::Degraded => 1,
                    TransportStatus::Inactive => 2,
                };
                self.vendor_complete(now, cid, Status::Success, code);
            }
            vendor::SET_INTAKE_QUEUE => {
                let bytes = v.dwords[0] as u64;
                let lane = v.dwords[1] as usize;
                if bytes == 0 || lane >= self.lanes.len() {
                    self.vendor_complete(now, cid, Status::InvalidField, 0);
                } else {
                    // Reconfiguration only applies to an idle lane: the
                    // flow-control window is negotiated at setup time.
                    self.lanes[lane].cmb.set_intake_queue(bytes);
                    self.vendor_complete(now, cid, Status::Success, 0);
                }
            }
            _ => self.vendor_complete(now, cid, Status::InvalidOpcode, 0),
        }
    }

    /// Whether this device currently acts as a primary.
    pub fn is_primary(&self) -> bool {
        matches!(self.transport.role(), Role::Primary { .. })
    }
}

impl simkit::Instrument for VillarsDevice {
    /// Reports the conventional side's cross-stack groups plus the fast
    /// side under `core.*` — the full PCIe-to-flash view of one device.
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        self.conventional.instrument(out);
        for (i, lane) in self.lanes.iter().enumerate() {
            out.collect(&format!("core.cmb.lane{i}"), &lane.cmb);
            out.collect(&format!("core.destage.lane{i}"), &lane.destage);
        }
        out.collect("core.transport", &self.transport);
        let mut fast = out.scope("core.fast");
        fast.counter("bytes_in", self.fast_bytes_in);
        fast.counter("tlps", self.fast_tlps);
        fast.counter("credit_reads", self.credit_reads);
        if let Some(port) = &self.sram_port {
            fast.collect("sram_port", port);
        }
        // Replication lag: bytes the slowest secondary still trails the
        // primary's settled credit frontier by (primary, lane 0).
        if let Some(min_shadow) = self.transport.min_shadow() {
            let local = self.lanes[0].cmb.credit_settled();
            fast.gauge("replication_lag_bytes", local.saturating_sub(min_shadow) as f64);
        }
    }
}

impl NvmeController for VillarsDevice {
    fn submit(&mut self, now: SimTime, cmd: Command) {
        match cmd.kind {
            CommandKind::Admin(AdminCommand::Vendor(v)) => self.handle_vendor(now, cmd.cid, v),
            _ => NvmeController::submit(&mut self.conventional, now, cmd),
        }
    }

    fn advance_to(&mut self, t: SimTime) {
        self.advance(t);
    }

    fn drain_completions(&mut self, t: SimTime) -> Vec<(SimTime, CompletionEntry)> {
        let mut out = Vec::new();
        self.drain_completions_into(t, &mut out);
        out
    }

    fn drain_completions_into(&mut self, t: SimTime, out: &mut Vec<(SimTime, CompletionEntry)>) {
        let start = out.len();
        self.conventional.drain_completions_into(t, out);
        self.vendor_out.retain(|&item| {
            if item.0 <= t {
                out.push(item);
                false
            } else {
                true
            }
        });
        out[start..].sort_by_key(|(at, _)| *at);
    }

    fn next_event_at(&self) -> Option<SimTime> {
        self.next_event()
    }

    fn namespace(&self) -> Namespace {
        self.conventional.namespace()
    }
}

impl IoPort for VillarsDevice {
    /// The device-level port is unbounded (NVMe back-pressure is modelled
    /// by the device internals, not by submission failure): this never
    /// returns an error.
    fn try_submit(&mut self, now: SimTime, kind: CommandKind) -> Result<CmdTag, QueueError> {
        let cid = self.port.begin();
        NvmeController::submit(self, now, Command { cid, kind });
        Ok(CmdTag(cid))
    }

    fn poll(&mut self, now: SimTime) {
        self.advance(now);
    }

    fn completions_into(&mut self, now: SimTime, out: &mut Vec<Completion>) {
        let mut drained = std::mem::take(&mut self.port_drain);
        drained.clear();
        self.drain_completions_into(now, &mut drained);
        for &(at, entry) in &drained {
            self.port.finish(entry.cid);
            out.push(Completion { at, entry });
        }
        self.port_drain = drained;
    }

    fn next_port_event_at(&self) -> Option<SimTime> {
        self.next_event()
    }

    fn in_flight(&self) -> usize {
        self.port.in_flight()
    }
}
