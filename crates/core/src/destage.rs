//! The Destage module — the bridge between the fast and conventional sides
//! (paper §4.3, Fig. 7).
//!
//! It monitors the CMB backing ring, bundles head data into flash pages
//! (padding with filler to honour a latency threshold), writes them onto a
//! ring of LBAs on the conventional side, and advances the CMB head as pages
//! persist. The LBA ring wraps; overwritten slots age out of the readable
//! log window.

use crate::cmb::CmbModule;
use crate::config::DestageConfig;
use simkit::bytes::Bytes;
use simkit::SimTime;
use ssd::ConventionalSsd;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// One destaged (or in-flight) span of the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First monotonic log offset covered.
    pub log_from: u64,
    /// One past the last log offset covered (filler excluded).
    pub log_to: u64,
    /// The conventional-side LBA holding the span.
    pub lba: u64,
}

/// Destage statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct DestageStats {
    /// Full pages destaged.
    pub full_pages: u64,
    /// Partial pages destaged due to the latency threshold.
    pub partial_pages: u64,
    /// Filler bytes written to pad partial pages.
    pub filler_bytes: u64,
}

/// The Destage module state machine.
#[derive(Debug)]
pub struct DestageModule {
    config: DestageConfig,
    page_bytes: u64,
    /// Log offset scheduled for destaging (pages submitted).
    scheduled: u64,
    /// Log offset persisted on NAND (contiguous; head-advance point).
    persisted: u64,
    /// Pages ever written to the LBA ring (cursor = base + n % len).
    pages_written: u64,
    /// In-flight destage writes by conventional-side token, stamped with
    /// their submission sequence number.
    inflight: HashMap<u64, (Segment, u64)>,
    /// Completed segments waiting for contiguous head advance, stamped
    /// with their submission sequence number.
    done: BTreeMap<u64, (Segment, u64)>,
    /// Monotonic page submission counter (sequence source).
    submit_seq: u64,
    /// Latest submission sequence per LBA slot. A completed page only
    /// becomes readable if its slot has not been resubmitted since —
    /// otherwise the media now holds (or will hold) newer bytes and the
    /// old span must not be served.
    slot_seq: HashMap<u64, u64>,
    /// Persisted segments still readable (not yet overwritten), oldest
    /// first.
    readable: VecDeque<Segment>,
    /// When the oldest currently-unscheduled byte was first seen waiting.
    waiting_since: Option<SimTime>,
    stats: DestageStats,
}

impl DestageModule {
    /// A fresh module for a device with `page_bytes` flash pages.
    pub fn new(config: DestageConfig, page_bytes: u64) -> Self {
        assert!(config.ring_lbas > 0, "destage ring cannot be empty");
        assert!(page_bytes > 0);
        DestageModule {
            config,
            page_bytes,
            scheduled: 0,
            persisted: 0,
            pages_written: 0,
            inflight: HashMap::new(),
            done: BTreeMap::new(),
            submit_seq: 0,
            slot_seq: HashMap::new(),
            readable: VecDeque::new(),
            waiting_since: None,
            stats: DestageStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DestageConfig {
        &self.config
    }

    /// Statistics.
    pub fn stats(&self) -> DestageStats {
        self.stats
    }

    /// Log offset persisted on the conventional side (x_pread horizon).
    pub fn persisted(&self) -> u64 {
        self.persisted
    }

    /// Log offset scheduled for destaging.
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// The next LBA slot on the ring.
    fn next_lba(&self) -> u64 {
        self.config.ring_base_lba + self.pages_written % self.config.ring_lbas
    }

    /// The deadline by which a waiting partial page must destage, if any —
    /// the device event loop schedules a wake-up for it.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.waiting_since.map(|t| t + self.config.max_latency)
    }

    /// Deliver one conventional-side destage completion. Returns true when
    /// the token belongs to this lane (the device routes each completion to
    /// the owning lane — tokens are device-global). The persisted frontier
    /// (x_pread horizon) advances contiguously.
    pub fn complete(&mut self, token: u64) -> bool {
        let Some((seg, seq)) = self.inflight.remove(&token) else { return false };
        self.done.insert(seg.log_from, (seg, seq));
        while let Some((&from, &(seg, seq))) = self.done.first_key_value() {
            if from != self.persisted {
                break;
            }
            self.done.pop_first();
            self.persisted = seg.log_to;
            self.push_readable(seg, seq);
        }
        true
    }

    /// Drive destaging at `now`: bundle available CMB data into pages and
    /// submit them to the conventional side. Returns true if any progress
    /// was made. Completions are delivered separately via
    /// [`DestageModule::complete`].
    pub fn pump(&mut self, now: SimTime, cmb: &mut CmbModule, conv: &mut ConventionalSsd) -> bool {
        let mut progressed = false;
        // Bundle new pages from the CMB ring.
        let credit = cmb.credit_at(now);
        loop {
            let avail = credit - self.scheduled;
            if avail >= self.page_bytes {
                self.submit_page(now, self.page_bytes, 0, cmb, conv);
                progressed = true;
                continue;
            }
            if avail > 0 {
                match self.waiting_since {
                    None => self.waiting_since = Some(now),
                    Some(since) if now >= since + self.config.max_latency => {
                        // Latency threshold: flush a partial page with filler.
                        let filler = self.page_bytes - avail;
                        self.submit_page(now, avail, filler, cmb, conv);
                        progressed = true;
                        continue;
                    }
                    Some(_) => {}
                }
            } else {
                self.waiting_since = None;
            }
            break;
        }
        progressed
    }

    fn submit_page(
        &mut self,
        now: SimTime,
        data_bytes: u64,
        filler: u64,
        cmb: &mut CmbModule,
        conv: &mut ConventionalSsd,
    ) {
        let mut content = cmb.content(self.scheduled, data_bytes as usize);
        content.resize((data_bytes + filler) as usize, 0);
        let lba = self.next_lba();
        let seg = Segment { log_from: self.scheduled, log_to: self.scheduled + data_bytes, lba };
        // A reused LBA slot invalidates the old segment there — both the
        // already-readable copy and any completion still pending for the
        // slot (gated by the per-slot sequence at push time).
        self.submit_seq += 1;
        self.slot_seq.insert(lba, self.submit_seq);
        self.evict_slot(lba);
        let token = conv.submit_destage_write(now, lba, Bytes::from(content));
        self.inflight.insert(token, (seg, self.submit_seq));
        self.scheduled += data_bytes;
        self.pages_written += 1;
        // The page content was copied out of the CMB ring into the storage
        // controller at submission, and the supercapacitors guarantee every
        // queued destage write completes even on power loss (paper §4.1) —
        // so the ring space is reusable from this instant, not from program
        // completion. This is what lets a 128 KiB SRAM ring sustain the
        // full destage bandwidth.
        cmb.advance_head(self.scheduled.min(cmb.tail()));
        if filler > 0 {
            self.stats.partial_pages += 1;
            self.stats.filler_bytes += filler;
        } else {
            self.stats.full_pages += 1;
        }
        self.waiting_since = None;
    }

    fn push_readable(&mut self, seg: Segment, seq: u64) {
        if self.slot_seq.get(&seg.lba) == Some(&seq) {
            self.readable.push_back(seg);
        }
    }

    fn evict_slot(&mut self, lba: u64) {
        self.readable.retain(|s| s.lba != lba);
    }

    /// The persisted segment containing monotonic log offset `off`, if it is
    /// still on the ring.
    pub fn segment_for(&self, off: u64) -> Option<Segment> {
        self.readable.iter().find(|s| off >= s.log_from && off < s.log_to).copied()
    }

    /// Oldest readable log offset (ring may have overwritten earlier data).
    pub fn readable_from(&self) -> Option<u64> {
        self.readable.front().map(|s| s.log_from)
    }

    /// Crash protocol, phase 1: submit everything contiguous in the CMB
    /// ring (`frontier` from [`CmbModule::crash_drain`]) as full/filler
    /// pages. The device then runs the conventional side's supercap rescue
    /// once for all lanes, and calls [`DestageModule::crash_finalize`].
    pub fn crash_submit(
        &mut self,
        now: SimTime,
        frontier: u64,
        cmb: &mut CmbModule,
        conv: &mut ConventionalSsd,
    ) {
        while self.scheduled < frontier {
            let avail = frontier - self.scheduled;
            let chunk = avail.min(self.page_bytes);
            let filler = self.page_bytes - chunk;
            self.submit_page(now, chunk, filler, cmb, conv);
        }
    }

    /// Crash protocol, phase 2: after the conventional side's rescue ran
    /// the destage queue dry, account every in-flight page as persisted.
    /// Returns the log offset made durable.
    pub fn crash_finalize(&mut self) -> u64 {
        for (_tok, entry) in self.inflight.drain() {
            self.done.insert(entry.0.log_from, entry);
        }
        while let Some((&from, &(seg, seq))) = self.done.first_key_value() {
            if from != self.persisted {
                break;
            }
            self.done.pop_first();
            self.persisted = seg.log_to;
            self.push_readable(seg, seq);
        }
        self.persisted
    }

    /// Convenience: full single-lane crash protocol (phase 1 + rescue +
    /// phase 2). Multi-lane devices orchestrate the phases themselves.
    pub fn crash_destage(
        &mut self,
        now: SimTime,
        frontier: u64,
        cmb: &mut CmbModule,
        conv: &mut ConventionalSsd,
    ) -> u64 {
        self.crash_submit(now, frontier, cmb, conv);
        conv.power_fail_rescue_destage(now);
        self.crash_finalize()
    }
}

impl simkit::Instrument for DestageModule {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.counter("full_pages", self.stats.full_pages);
        out.counter("partial_pages", self.stats.partial_pages);
        out.counter("filler_bytes", self.stats.filler_bytes);
        // A partial destage happens exactly when the latency deadline fires
        // before a page fills: partial_pages IS the deadline-miss count.
        out.counter("deadline_misses", self.stats.partial_pages);
        out.counter("scheduled_offset", self.scheduled);
        out.counter("persisted_offset", self.persisted);
        out.counter("pages_written", self.pages_written);
        out.gauge("inflight_segments", self.inflight.len() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmb::CmbModule;
    use crate::config::CmbConfig;
    use simkit::{Bandwidth, SerialResource, SimDuration};
    use ssd::{ConventionalSsd, SsdConfig};

    struct Rig {
        cmb: CmbModule,
        destage: DestageModule,
        conv: ConventionalSsd,
        port: SerialResource,
        bw: Bandwidth,
    }

    impl Rig {
        fn new() -> Self {
            let conv = ConventionalSsd::new(SsdConfig::small());
            let page = 4096u64;
            Rig {
                cmb: CmbModule::new(CmbConfig {
                    size: 64 << 10,
                    intake_queue_bytes: 32 << 10,
                    ..CmbConfig::sram()
                }),
                destage: DestageModule::new(
                    DestageConfig {
                        ring_base_lba: 0,
                        ring_lbas: 8,
                        max_latency: SimDuration::from_micros(200),
                    },
                    page,
                ),
                conv,
                port: SerialResource::new(),
                bw: Bandwidth::gbytes_per_sec(4.0),
            }
        }

        fn write(&mut self, now: SimTime, off: u64, data: &[u8]) {
            let (port, bw) = (&mut self.port, self.bw);
            self.cmb
                .ingest(now, off, data, |t, b| port.acquire(t, bw.transfer_time(b)))
                .expect("in-window CMB write rejected");
        }

        fn run_to(&mut self, t: SimTime) {
            use nvme::NvmeController;
            // Step through internal event times (credit settles, destage
            // deadlines, flash completions) so actions fire when their
            // triggers occur — the same stepping VillarsDevice::advance does.
            let mut stuck_at: Option<SimTime> = None;
            loop {
                let mut next = self.conv.next_device_event();
                for c in
                    [self.cmb.next_pending(), self.destage.next_deadline()].into_iter().flatten()
                {
                    next = Some(next.map_or(c, |n: SimTime| n.min(c)));
                }
                let step = match next {
                    Some(e) if e <= t => e,
                    _ => t,
                };
                self.conv.advance_to(step);
                let mut progressed = false;
                for (_at, token) in self.conv.drain_destage_completions(step) {
                    progressed |= self.destage.complete(token);
                }
                progressed |= self.destage.pump(step, &mut self.cmb, &mut self.conv);
                if progressed {
                    stuck_at = None;
                    continue;
                }
                if step >= t || stuck_at == Some(step) {
                    break;
                }
                stuck_at = Some(step);
            }
            self.conv.advance_to(t);
        }
    }

    #[test]
    fn full_page_destages_and_head_advances() {
        let mut rig = Rig::new();
        rig.write(SimTime::ZERO, 0, &[0xAA; 4096]);
        rig.run_to(SimTime::from_millis(10));
        assert_eq!(rig.destage.persisted(), 4096);
        assert_eq!(rig.destage.stats().full_pages, 1);
        assert_eq!(rig.cmb.head(), 4096, "CMB head freed");
        // Content landed on the conventional side.
        let seg = rig.destage.segment_for(0).expect("no destaged segment covers offset 0");
        let media = rig.conv.media_content(seg.lba).expect("destaged LBA missing from flash media");
        assert_eq!(&media[..4096], &[0xAA; 4096][..]);
    }

    #[test]
    fn partial_page_waits_for_latency_threshold() {
        let mut rig = Rig::new();
        rig.write(SimTime::ZERO, 0, &[1u8; 100]);
        // Pump before the deadline: nothing destaged.
        rig.run_to(SimTime::from_micros(100));
        assert_eq!(rig.destage.persisted(), 0);
        assert!(rig.destage.next_deadline().is_some());
        // After the deadline: partial page with filler.
        rig.run_to(SimTime::from_millis(5));
        assert_eq!(rig.destage.persisted(), 100);
        let s = rig.destage.stats();
        assert_eq!(s.partial_pages, 1);
        assert_eq!(s.filler_bytes, 4096 - 100);
    }

    #[test]
    fn segments_map_log_offsets_to_lbas() {
        let mut rig = Rig::new();
        for i in 0..3u64 {
            rig.write(SimTime::from_micros(i * 50), i * 4096, &[i as u8 + 1; 4096]);
        }
        rig.run_to(SimTime::from_millis(20));
        for i in 0..3u64 {
            let seg = rig.destage.segment_for(i * 4096 + 7).expect("segment exists");
            assert_eq!(seg.log_from, i * 4096);
            let media =
                rig.conv.media_content(seg.lba).expect("destaged LBA missing from flash media");
            assert_eq!(media[0], i as u8 + 1);
        }
        assert_eq!(rig.destage.readable_from(), Some(0));
    }

    #[test]
    fn lba_ring_wraps_and_old_segments_age_out() {
        let mut rig = Rig::new();
        // Ring is 8 LBAs; write 12 pages so it wraps.
        let mut t = SimTime::ZERO;
        for i in 0..12u64 {
            rig.write(t, i * 4096, &[(i % 250) as u8; 4096]);
            t += SimDuration::from_micros(400);
            rig.run_to(t);
        }
        rig.run_to(t + SimDuration::from_millis(20));
        assert_eq!(rig.destage.persisted(), 12 * 4096);
        // The first 4 pages were overwritten by wrap.
        assert!(rig.destage.segment_for(0).is_none(), "oldest page aged out");
        assert!(rig.destage.segment_for(11 * 4096).is_some());
        assert!(
            rig.destage.readable_from().expect("destage ring has nothing readable") >= 4 * 4096
        );
    }

    #[test]
    fn slot_reuse_before_completion_never_leaves_stale_readable_entries() {
        // Submit 12 pages in one burst through the crash path — every
        // submission lands before any completion, so LBAs 0..3 are
        // resubmitted while their first write is still in flight. The
        // first-generation pages must not surface in the readable window
        // afterwards: their slots hold newer media.
        let mut rig = Rig::new();
        // Stagger ingests so each page's transfer credit has drained
        // (intake queue is 32 KiB), without ever pumping the destage loop.
        for i in 0..12u64 {
            rig.write(SimTime::from_micros(i * 2), i * 4096, &[(i + 1) as u8; 4096]);
        }
        let frontier = rig.cmb.crash_drain();
        assert_eq!(frontier, 12 * 4096);
        let durable = rig.destage.crash_destage(
            SimTime::from_micros(30),
            frontier,
            &mut rig.cmb,
            &mut rig.conv,
        );
        assert_eq!(durable, 12 * 4096, "durability covers every submitted page");
        // Ring is 8 LBAs: only the last 8 pages are readable, and the
        // overwritten generation must be gone — not mapped to slots that
        // now hold newer bytes.
        assert_eq!(rig.destage.readable_from(), Some(4 * 4096));
        for i in 0..4u64 {
            assert!(
                rig.destage.segment_for(i * 4096).is_none(),
                "page {i} was overwritten in flight and must not be readable"
            );
        }
        for i in 4..12u64 {
            let seg = rig.destage.segment_for(i * 4096).expect("surviving page readable");
            let media =
                rig.conv.media_content(seg.lba).expect("destaged LBA missing from flash media");
            assert_eq!(media[0], (i + 1) as u8, "readable segment maps to current media");
        }
    }

    #[test]
    fn crash_destage_persists_ring_residue() {
        let mut rig = Rig::new();
        // 100 bytes in the ring, no destage yet (below page, below deadline).
        rig.write(SimTime::ZERO, 0, &[0x77; 100]);
        let frontier = rig.cmb.crash_drain();
        assert_eq!(frontier, 100);
        let durable = rig.destage.crash_destage(
            SimTime::from_micros(10),
            frontier,
            &mut rig.cmb,
            &mut rig.conv,
        );
        assert_eq!(durable, 100);
        let seg = rig.destage.segment_for(0).expect("no destaged segment covers offset 0");
        let media = rig.conv.media_content(seg.lba).expect("destaged LBA missing from flash media");
        assert_eq!(&media[..100], &[0x77; 100][..]);
    }

    #[test]
    fn deadline_is_exposed_for_event_scheduling() {
        let mut rig = Rig::new();
        assert!(rig.destage.next_deadline().is_none());
        rig.write(SimTime::ZERO, 0, &[1u8; 10]);
        rig.run_to(SimTime::from_micros(1));
        let dl = rig.destage.next_deadline().expect("partial data waiting");
        // The deadline is the drain-landing instant (a few ns for 10 bytes)
        // plus max_latency (200us).
        assert!(
            (200.0..201.0).contains(&dl.as_micros_f64()),
            "waiting_since + max_latency, got {dl}"
        );
    }
}
