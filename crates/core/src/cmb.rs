//! The CMB module — the fast side's front end (paper §4.1, Fig. 5).
//!
//! Data arriving from the PCIe system is placed on an SRAM intake queue
//! (1), proactively dequeued into the backing-memory ring (2), and only
//! then — never before — the credit counter is incremented (3), which the
//! database reads via the control interface (4).
//!
//! The module keeps *content* as well as timing: the ring holds real bytes
//! so destaging, replication, and crash recovery are verifiable end to end.

use crate::config::CmbConfig;
use simkit::{DiagnosticSnapshot, Grant, SimError, SimTime};
use std::collections::BTreeMap;

/// Errors from CMB ingest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CmbError {
    /// The writer overran the advisory flow-control window (more bytes in
    /// flight than the intake queue holds). A well-behaved client (the
    /// `x_pwrite` implementation) never triggers this.
    QueueOverrun {
        /// Bytes in flight at the attempt.
        inflight: u64,
        /// The configured queue size.
        queue: u64,
    },
    /// The write would overwrite bytes not yet destaged (ring wrap onto the
    /// head).
    RingFull,
    /// The write targets an offset below the contiguous tail (replay or
    /// overlap — the device tolerates only forward, bounded reordering).
    Overlap {
        /// Attempted offset.
        offset: u64,
        /// Current contiguous tail.
        tail: u64,
    },
    /// The write landed too far beyond the contiguous tail: outside the
    /// device's bounded reordering window (paper §4.1).
    BeyondReorderWindow {
        /// Attempted offset.
        offset: u64,
        /// Current contiguous tail.
        tail: u64,
        /// The configured window.
        window: u64,
    },
}

impl std::fmt::Display for CmbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CmbError::QueueOverrun { inflight, queue } => {
                write!(f, "intake queue overrun: {inflight} bytes in flight, queue {queue}")
            }
            CmbError::RingFull => f.write_str("CMB ring full (destaging behind)"),
            CmbError::Overlap { offset, tail } => {
                write!(f, "write at {offset} below contiguous tail {tail}")
            }
            CmbError::BeyondReorderWindow { offset, tail, window } => {
                write!(
                    f,
                    "write at {offset} beyond the reorder window ({window} bytes past tail {tail})"
                )
            }
        }
    }
}

impl std::error::Error for CmbError {}

/// Observable CMB statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CmbStats {
    /// Total bytes ingested into the ring.
    pub bytes_in: u64,
    /// Ingest chunks (TLP payloads) processed.
    pub chunks: u64,
    /// Chunks that arrived out of order and were held for gap fill.
    pub held_chunks: u64,
    /// High-water mark of in-flight (queued, not yet persisted) bytes.
    pub queue_high_water: u64,
}

/// One lane of the CMB module: an intake queue + persistent ring + credit
/// counter. Multi-writer devices instantiate several lanes (paper §7.1).
#[derive(Debug)]
pub struct CmbModule {
    config: CmbConfig,
    /// Ring content; index = offset % size.
    ring: Vec<u8>,
    /// Monotonic byte offset: freed by destaging up to here.
    head: u64,
    /// Monotonic byte offset: persisted (credit counter) up to here, as of
    /// the last settle.
    credit: u64,
    /// Monotonic byte offset: contiguously received up to here (includes
    /// bytes still in the intake queue).
    tail: u64,
    /// Pending credit increments: (drain completion time, new credit value).
    pending: Vec<(SimTime, u64)>,
    /// Out-of-order chunks held until the gap below them fills.
    held: BTreeMap<u64, Vec<u8>>,
    stats: CmbStats,
}

impl CmbModule {
    /// An empty CMB lane.
    pub fn new(config: CmbConfig) -> Self {
        assert!(config.size > 0 && config.intake_queue_bytes > 0);
        CmbModule {
            ring: vec![0u8; config.size as usize],
            config,
            head: 0,
            credit: 0,
            tail: 0,
            pending: Vec::new(),
            held: BTreeMap::new(),
            stats: CmbStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CmbConfig {
        &self.config
    }

    /// Renegotiate the flow-control window (vendor command `SET_INTAKE_QUEUE`).
    /// Takes effect for subsequent ingests.
    pub fn set_intake_queue(&mut self, bytes: u64) {
        assert!(bytes > 0, "intake queue must be positive");
        self.config.intake_queue_bytes = bytes;
    }

    /// Statistics.
    pub fn stats(&self) -> CmbStats {
        self.stats
    }

    /// The contiguous write tail (monotonic offset).
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// The destage head (monotonic offset): everything below is freed.
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Settle drain completions up to `now` and return the credit counter —
    /// what a control-interface read observes (paper Fig. 5 step 4).
    pub fn credit_at(&mut self, now: SimTime) -> u64 {
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].0 <= now {
                self.credit = self.credit.max(self.pending[i].1);
                self.pending.swap_remove(i);
            } else {
                i += 1;
            }
        }
        self.credit
    }

    /// Whether a write of `len` bytes at monotonic `offset` fits the ring
    /// without overrunning undestaged data (callers check before issuing
    /// TLPs so a full ring stalls the writer instead of tearing a burst).
    pub fn has_room(&self, offset: u64, len: u64) -> bool {
        // A stale handle may probe below the head after a reboot; such a
        // write "fits" here and is then rejected as an Overlap by ingest.
        (offset + len).saturating_sub(self.head) <= self.config.size
    }

    /// The earliest pending drain completion, if any — an event-loop hint
    /// so waiters on the credit counter can jump virtual time.
    pub fn next_pending(&self) -> Option<SimTime> {
        self.pending.iter().map(|(at, _)| *at).min()
    }

    /// Bytes currently in flight (received but not yet persisted) at `now`.
    pub fn inflight_at(&mut self, now: SimTime) -> u64 {
        let credit = self.credit_at(now);
        self.tail - credit
    }

    /// Bytes persisted but not yet destaged, at `now`: `[head, credit)`.
    pub fn undestaged_at(&mut self, now: SimTime) -> u64 {
        let credit = self.credit_at(now);
        credit - self.head
    }

    /// Ingest one chunk arriving fully at `arrival` (the end of its TLP's
    /// service window) at monotonic ring `offset`. `acquire` grants backing
    /// memory time (dedicated SRAM or the shared DRAM port).
    ///
    /// In-order chunks drain immediately; bounded out-of-order chunks are
    /// held and drain when the gap below them fills. Credits only advance
    /// with the contiguous frontier — "the counter can only be incremented
    /// when contiguous chunks of data are formed" (§4.1).
    pub fn ingest(
        &mut self,
        arrival: SimTime,
        offset: u64,
        data: &[u8],
        mut acquire: impl FnMut(SimTime, u64) -> Grant,
    ) -> Result<(), CmbError> {
        if data.is_empty() {
            return Ok(());
        }
        if offset < self.tail {
            return Err(CmbError::Overlap { offset, tail: self.tail });
        }
        if offset > self.tail + self.config.reorder_window_bytes {
            return Err(CmbError::BeyondReorderWindow {
                offset,
                tail: self.tail,
                window: self.config.reorder_window_bytes,
            });
        }
        // Flow-control accounting is advisory; a compliant writer keeps
        // in-flight bytes within the queue.
        let credit_now = self.credit_at(arrival);
        let inflight = (self.tail - credit_now) + data.len() as u64;
        if inflight > self.config.intake_queue_bytes {
            return Err(CmbError::QueueOverrun { inflight, queue: self.config.intake_queue_bytes });
        }
        // Ring capacity: the write must not overrun undestaged data.
        if offset + data.len() as u64 - self.head > self.config.size {
            return Err(CmbError::RingFull);
        }
        self.stats.queue_high_water = self.stats.queue_high_water.max(inflight);

        if offset > self.tail {
            // Gap below: hold until filled.
            self.stats.held_chunks += 1;
            self.held.insert(offset, data.to_vec());
            return Ok(());
        }
        self.accept(arrival, data, &mut acquire);
        // Drain any held chunks that are now contiguous.
        while let Some((&o, _)) = self.held.first_key_value() {
            if o != self.tail {
                break;
            }
            let (_, chunk) = self.held.pop_first().expect("just peeked");
            self.accept(arrival, &chunk, &mut acquire);
        }
        Ok(())
    }

    /// Copy a contiguous chunk into the ring at the tail and schedule its
    /// credit increment at the backing-drain completion.
    fn accept(
        &mut self,
        arrival: SimTime,
        data: &[u8],
        acquire: &mut impl FnMut(SimTime, u64) -> Grant,
    ) {
        // Two-segment ring copy (ingest guarantees `data.len() <= size`, so
        // the write wraps at most once).
        let size = self.config.size as usize;
        let start = (self.tail % size as u64) as usize;
        let first = data.len().min(size - start);
        self.ring[start..start + first].copy_from_slice(&data[..first]);
        self.ring[..data.len() - first].copy_from_slice(&data[first..]);
        self.tail += data.len() as u64;
        self.stats.bytes_in += data.len() as u64;
        self.stats.chunks += 1;
        let g = acquire(arrival, data.len() as u64);
        self.pending.push((g.end, self.tail));
    }

    /// Read `len` bytes of ring content starting at monotonic `offset`
    /// (destage module / verification). Panics with the structured
    /// [`SimError`] report on an out-of-window read; fallible callers use
    /// [`CmbModule::try_content`].
    pub fn content(&self, offset: u64, len: usize) -> Vec<u8> {
        self.try_content(offset, len).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`CmbModule::content`]: a read outside the live
    /// ring window `[head, tail)` yields [`SimError::Invariant`] carrying
    /// the ring's full state (head/tail/credit, pending drains, held
    /// chunks) instead of unwinding.
    pub fn try_content(&self, offset: u64, len: usize) -> Result<Vec<u8>, Box<SimError>> {
        if offset < self.head || offset + len as u64 > self.tail {
            let snapshot = DiagnosticSnapshot::new(
                self.pending.iter().map(|(at, _)| *at).max().unwrap_or(SimTime::ZERO),
                0,
            )
            .queue("head", self.head)
            .queue("credit", self.credit)
            .queue("tail", self.tail)
            .queue("pending_drains", self.pending.len() as u64)
            .queue("held_chunks", self.held.len() as u64)
            .detail(format!(
                "content read outside live ring: [{offset}, +{len}) vs [{}, {})",
                self.head, self.tail
            ));
            return Err(Box::new(SimError::invariant("CMB ring", snapshot)));
        }
        let size = self.config.size as usize;
        let start = (offset % size as u64) as usize;
        let first = len.min(size - start);
        let mut out = Vec::with_capacity(len);
        out.extend_from_slice(&self.ring[start..start + first]);
        out.extend_from_slice(&self.ring[..len - first]);
        Ok(out)
    }

    /// Advance the destage head: bytes below `new_head` are freed for
    /// reuse. Called by the Destage module as pages land on NAND.
    pub fn advance_head(&mut self, new_head: u64) {
        assert!(new_head >= self.head, "head must not move backwards");
        assert!(new_head <= self.tail, "head cannot pass the write tail");
        self.head = new_head;
    }

    /// Crash protocol (paper §4.1): drain the intake queue on residual
    /// power, stopping at the first gap. Returns the contiguous frontier —
    /// everything in `[head, frontier)` is destageable; held chunks beyond
    /// a gap are abandoned.
    pub fn crash_drain(&mut self) -> u64 {
        // All pending drains complete on supercap power.
        for (_, v) in self.pending.drain(..) {
            self.credit = self.credit.max(v);
        }
        self.credit = self.credit.max(self.tail);
        // Held chunks above the frontier are lost (the gap never filled).
        self.held.clear();
        self.tail
    }

    /// Reset after a reboot: ring content is gone (destaged or lost), but
    /// the monotonic log-offset space continues from `offset` — the ring
    /// head/tail are device metadata that survives power loss, so post-
    /// reboot appends extend the same log the destage ring holds.
    pub fn reset_to(&mut self, offset: u64) {
        self.ring.fill(0);
        self.head = offset;
        self.credit = offset;
        self.tail = offset;
        self.pending.clear();
        self.held.clear();
    }

    /// [`CmbModule::reset_to`] offset zero (fresh device).
    pub fn reset(&mut self) {
        self.reset_to(0);
    }

    /// The credit counter as settled so far, without advancing drains (a
    /// read-only view for telemetry; [`CmbModule::credit_at`] is the
    /// authoritative time-advancing read).
    pub fn credit_settled(&self) -> u64 {
        self.credit
    }
}

impl simkit::Instrument for CmbModule {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.counter("bytes_in", self.stats.bytes_in);
        out.counter("chunks", self.stats.chunks);
        out.counter("held_chunks", self.stats.held_chunks);
        out.gauge("queue_high_water", self.stats.queue_high_water as f64);
        // Monotonic ring offsets: counters, so a window diff gives the
        // bytes that moved through each stage during the window.
        out.counter("tail_offset", self.tail);
        out.counter("credit_offset", self.credit);
        out.counter("head_offset", self.head);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::{Bandwidth, SerialResource, SimDuration};

    fn cfg(queue: u64, size: u64) -> CmbConfig {
        CmbConfig { intake_queue_bytes: queue, size, ..CmbConfig::sram() }
    }

    /// A 1 GB/s dedicated backing port for tests.
    struct Port {
        res: SerialResource,
        bw: Bandwidth,
    }

    impl Port {
        fn new() -> Self {
            Port { res: SerialResource::new(), bw: Bandwidth::gbytes_per_sec(1.0) }
        }
        fn acquire(&mut self, now: SimTime, bytes: u64) -> Grant {
            self.res.acquire(now, self.bw.transfer_time(bytes))
        }
    }

    #[test]
    fn credit_advances_only_after_drain() {
        let mut cmb = CmbModule::new(cfg(4096, 64 << 10));
        let mut port = Port::new();
        cmb.ingest(SimTime::ZERO, 0, &[1u8; 1000], |t, b| port.acquire(t, b))
            .expect("in-window CMB write rejected");
        // 1000 bytes at 1 GB/s = 1000ns drain.
        assert_eq!(cmb.credit_at(SimTime::from_nanos(500)), 0);
        assert_eq!(cmb.credit_at(SimTime::from_nanos(1000)), 1000);
        assert_eq!(cmb.stats().bytes_in, 1000);
    }

    #[test]
    fn content_round_trips_through_ring() {
        let mut cmb = CmbModule::new(cfg(4096, 8192));
        let mut port = Port::new();
        let payload: Vec<u8> = (0..100u8).collect();
        cmb.ingest(SimTime::ZERO, 0, &payload, |t, b| port.acquire(t, b))
            .expect("in-window CMB write rejected");
        assert_eq!(cmb.content(0, 100), payload);
        assert_eq!(cmb.content(10, 5), &payload[10..15]);
    }

    #[test]
    fn queue_overrun_detected() {
        let mut cmb = CmbModule::new(cfg(1024, 64 << 10));
        let mut port = Port::new();
        cmb.ingest(SimTime::ZERO, 0, &[0u8; 1024], |t, b| port.acquire(t, b))
            .expect("in-window CMB write rejected");
        // Nothing drained yet at t=0: the next byte overruns.
        let err = cmb.ingest(SimTime::ZERO, 1024, &[0u8; 1], |t, b| port.acquire(t, b));
        assert!(matches!(err, Err(CmbError::QueueOverrun { .. })));
        // After the drain completes, there is room again.
        let later = SimTime::from_micros(10);
        cmb.ingest(later, 1024, &[0u8; 1024], |t, b| port.acquire(t, b))
            .expect("in-window CMB write rejected");
    }

    #[test]
    fn ring_full_until_head_advances() {
        let mut cmb = CmbModule::new(cfg(4096, 4096));
        let mut port = Port::new();
        let t = SimTime::from_micros(100);
        cmb.ingest(SimTime::ZERO, 0, &[7u8; 4096], |t2, b| port.acquire(t2, b))
            .expect("in-window CMB write rejected");
        let err = cmb.ingest(t, 4096, &[8u8; 64], |t2, b| port.acquire(t2, b));
        assert_eq!(err, Err(CmbError::RingFull));
        cmb.advance_head(1024);
        cmb.ingest(t, 4096, &[8u8; 64], |t2, b| port.acquire(t2, b))
            .expect("in-window CMB write rejected");
        assert_eq!(cmb.content(4096, 64), vec![8u8; 64]);
    }

    #[test]
    fn out_of_order_chunks_hold_credits_until_gap_fills() {
        let mut cmb = CmbModule::new(cfg(4096, 64 << 10));
        let mut port = Port::new();
        let t = SimTime::ZERO;
        // Chunk at [100, 200) arrives before [0, 100).
        cmb.ingest(t, 100, &[2u8; 100], |t2, b| port.acquire(t2, b))
            .expect("in-window CMB write rejected");
        let settle = SimTime::from_micros(50);
        assert_eq!(cmb.credit_at(settle), 0, "gap blocks credit");
        assert_eq!(cmb.stats().held_chunks, 1);
        cmb.ingest(t, 0, &[1u8; 100], |t2, b| port.acquire(t2, b))
            .expect("in-window CMB write rejected");
        assert_eq!(cmb.credit_at(settle), 200, "gap filled, both chunks persist");
        assert_eq!(cmb.content(0, 100), vec![1u8; 100]);
        assert_eq!(cmb.content(100, 100), vec![2u8; 100]);
    }

    #[test]
    fn reorder_window_is_bounded() {
        let mut config = cfg(64 << 10, 256 << 10);
        config.reorder_window_bytes = 1024;
        let mut cmb = CmbModule::new(config);
        let mut port = Port::new();
        // Within the window: held.
        cmb.ingest(SimTime::ZERO, 512, &[1u8; 64], |t, b| port.acquire(t, b))
            .expect("in-window CMB write rejected");
        // Beyond the window: rejected.
        let err = cmb.ingest(SimTime::ZERO, 2048, &[1u8; 64], |t, b| port.acquire(t, b));
        assert!(matches!(err, Err(CmbError::BeyondReorderWindow { .. })));
    }

    #[test]
    fn overlap_rejected() {
        let mut cmb = CmbModule::new(cfg(4096, 8192));
        let mut port = Port::new();
        cmb.ingest(SimTime::ZERO, 0, &[1u8; 100], |t, b| port.acquire(t, b))
            .expect("in-window CMB write rejected");
        let err = cmb.ingest(SimTime::ZERO, 50, &[2u8; 10], |t, b| port.acquire(t, b));
        assert!(matches!(err, Err(CmbError::Overlap { .. })));
    }

    #[test]
    fn crash_drain_stops_at_gap() {
        let mut cmb = CmbModule::new(cfg(8192, 64 << 10));
        let mut port = Port::new();
        cmb.ingest(SimTime::ZERO, 0, &[1u8; 500], |t, b| port.acquire(t, b))
            .expect("in-window CMB write rejected");
        // Out-of-order chunk leaves a gap at [500, 600).
        cmb.ingest(SimTime::ZERO, 600, &[3u8; 100], |t, b| port.acquire(t, b))
            .expect("in-window CMB write rejected");
        let frontier = cmb.crash_drain();
        assert_eq!(frontier, 500, "destage stops at the gap");
    }

    #[test]
    fn head_cannot_regress_or_pass_tail() {
        let mut cmb = CmbModule::new(cfg(4096, 8192));
        let mut port = Port::new();
        cmb.ingest(SimTime::ZERO, 0, &[0u8; 100], |t, b| port.acquire(t, b))
            .expect("in-window CMB write rejected");
        cmb.advance_head(50);
        let r1 = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut c = CmbModule::new(cfg(4096, 8192));
            c.advance_head(1);
        }));
        assert!(r1.is_err(), "head past tail must panic");
    }

    #[test]
    fn inflight_and_undestaged_accounting() {
        let mut cmb = CmbModule::new(cfg(4096, 64 << 10));
        let mut port = Port::new();
        cmb.ingest(SimTime::ZERO, 0, &[0u8; 2000], |t, b| port.acquire(t, b))
            .expect("in-window CMB write rejected");
        assert_eq!(cmb.inflight_at(SimTime::ZERO), 2000);
        let after = SimTime::from_micros(10);
        assert_eq!(cmb.inflight_at(after), 0);
        assert_eq!(cmb.undestaged_at(after), 2000);
        cmb.advance_head(1500);
        assert_eq!(cmb.undestaged_at(after), 500);
    }

    #[test]
    fn wrap_around_content_is_correct() {
        let size = 256u64;
        let mut cmb = CmbModule::new(cfg(4096, size));
        let mut port = Port::new();
        let mut t = SimTime::ZERO;
        // Fill, destage, and wrap several times.
        for round in 0..5u64 {
            let payload = vec![round as u8 + 1; 200];
            cmb.ingest(t, round * 200, &payload, |t2, b| port.acquire(t2, b))
                .expect("in-window CMB write rejected");
            t += SimDuration::from_micros(10);
            cmb.credit_at(t);
            cmb.advance_head((round + 1) * 200);
        }
        // Last round's content readable at its monotonic offset... head==tail
        // now, so re-ingest and verify.
        cmb.ingest(t, 1000, &[9u8; 100], |t2, b| port.acquire(t2, b))
            .expect("in-window CMB write rejected");
        assert_eq!(cmb.content(1000, 100), vec![9u8; 100]);
    }

    #[test]
    fn out_of_window_content_read_is_a_structured_error() {
        let mut cmb = CmbModule::new(cfg(4096, 8192));
        let mut port = Port::new();
        cmb.ingest(SimTime::ZERO, 0, &[1u8; 100], |t, b| port.acquire(t, b))
            .expect("in-window CMB write rejected");
        cmb.advance_head(50);
        // Below the head: freed bytes.
        let err = cmb.try_content(0, 10).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("CMB ring"), "{msg}");
        assert!(msg.contains("head=50"), "{msg}");
        assert!(msg.contains("tail=100"), "{msg}");
        // Beyond the tail: unwritten bytes.
        assert!(cmb.try_content(90, 20).is_err());
        // In-window reads still work.
        assert_eq!(cmb.try_content(50, 50).unwrap(), vec![1u8; 50]);
    }

    #[test]
    fn reset_clears_state() {
        let mut cmb = CmbModule::new(cfg(4096, 8192));
        let mut port = Port::new();
        cmb.ingest(SimTime::ZERO, 0, &[1u8; 100], |t, b| port.acquire(t, b))
            .expect("in-window CMB write rejected");
        cmb.reset();
        assert_eq!(cmb.tail(), 0);
        assert_eq!(cmb.head(), 0);
        assert_eq!(cmb.credit_at(SimTime::from_secs(1)), 0);
    }
}
