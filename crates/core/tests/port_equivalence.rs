//! Property test: the `*_blocking` helpers are a pure adapter over the
//! `IoPort` surface — a seeded command workload driven through the
//! blocking helpers and the same workload driven through raw
//! `submit`/`poll`/`completions_into` calls must produce identical
//! completion timestamps.

use nvme::{CmdTag, CommandKind, Completion, IoCommand};
use simkit::{DetRng, SimDuration, SimTime};
use xssd_core::{Cluster, VillarsConfig};

/// One step of the seeded workload.
#[derive(Debug, Clone, Copy)]
enum Op {
    Write { lba: u64, blocks: u32 },
    Read { lba: u64, blocks: u32 },
    Flush,
}

fn workload(seed: u64, len: usize) -> Vec<(SimDuration, Op)> {
    let mut rng = DetRng::new(seed);
    (0..len)
        .map(|_| {
            let gap = SimDuration::from_micros(rng.uniform(1, 40));
            // Stay well inside the tiny conventional namespace.
            let lba = rng.uniform(0, 100);
            let blocks = rng.uniform(1, 2) as u32;
            let op = match rng.uniform(0, 9) {
                0..=4 => Op::Write { lba, blocks },
                5..=7 => Op::Read { lba, blocks },
                _ => Op::Flush,
            };
            (gap, op)
        })
        .collect()
}

fn op_kind(op: Op) -> CommandKind {
    CommandKind::Io(match op {
        Op::Write { lba, blocks } => IoCommand::Write { lba, blocks },
        Op::Read { lba, blocks } => IoCommand::Read { lba, blocks },
        Op::Flush => IoCommand::Flush,
    })
}

/// Run the workload through the blocking helpers; returns each op's
/// completion instant.
fn run_blocking(ops: &[(SimDuration, Op)]) -> Vec<SimTime> {
    let mut cl = Cluster::new();
    let dev = cl.add_device(VillarsConfig::small());
    let mut now = SimTime::ZERO;
    let mut times = Vec::with_capacity(ops.len());
    for &(gap, op) in ops {
        now += gap;
        now = match op {
            Op::Write { lba, blocks } => cl.block_write_blocking(dev, now, lba, blocks),
            Op::Read { lba, blocks } => cl.block_read_blocking(dev, now, lba, blocks),
            Op::Flush => cl.block_flush_blocking(dev, now),
        };
        times.push(now);
    }
    times
}

/// The same closed loop hand-rolled on the raw port surface: tagged
/// submission, event-driven polling, virtual-time jumps to the cluster's
/// next event.
fn run_raw_port(ops: &[(SimDuration, Op)]) -> Vec<SimTime> {
    let mut cl = Cluster::new();
    let dev = cl.add_device(VillarsConfig::small());
    let mut now = SimTime::ZERO;
    let mut times = Vec::with_capacity(ops.len());
    let mut drained: Vec<Completion> = Vec::new();
    for &(gap, op) in ops {
        now += gap;
        let tag = cl.submit(dev, now, op_kind(op));
        let done = wait_raw(&mut cl, dev, now, tag, &mut drained);
        assert!(done.entry.status.is_ok(), "op {op:?} failed: {:?}", done.entry.status);
        now = done.at;
        times.push(now);
    }
    times
}

fn wait_raw(
    cl: &mut Cluster,
    dev: usize,
    from: SimTime,
    tag: CmdTag,
    drained: &mut Vec<Completion>,
) -> Completion {
    let mut horizon = from;
    loop {
        cl.poll_device(dev, horizon);
        drained.clear();
        cl.completions_into(dev, horizon, drained);
        if let Some(c) = drained.iter().find(|c| c.entry.cid == tag.0) {
            return *c;
        }
        horizon = cl
            .next_event_after(horizon)
            .unwrap_or_else(|| panic!("cluster idle before cid {} completed", tag.0))
            .max(horizon);
    }
}

#[test]
fn blocking_helpers_equal_raw_port_timestamps() {
    for seed in [1u64, 0xBEEF, 0x5EED_CAFE] {
        let ops = workload(seed, 120);
        let blocking = run_blocking(&ops);
        let raw = run_raw_port(&ops);
        assert_eq!(blocking, raw, "timelines diverged for seed {seed:#x}");
        // Completion instants never run backwards under a closed loop.
        assert!(blocking.windows(2).all(|w| w[0] <= w[1]));
    }
}

#[test]
fn port_accounting_balances_after_closed_loop() {
    let ops = workload(7, 60);
    let mut cl = Cluster::new();
    let dev = cl.add_device(VillarsConfig::small());
    let mut now = SimTime::ZERO;
    for &(gap, op) in &ops {
        now += gap;
        now = match op {
            Op::Write { lba, blocks } => cl.block_write_blocking(dev, now, lba, blocks),
            Op::Read { lba, blocks } => cl.block_read_blocking(dev, now, lba, blocks),
            Op::Flush => cl.block_flush_blocking(dev, now),
        };
    }
    let stats = cl.device(dev).port_stats();
    assert_eq!(stats.submitted(), ops.len() as u64);
    assert_eq!(stats.completed(), ops.len() as u64);
    assert_eq!(stats.in_flight(), 0);
    // Closed loop: the high-water mark is exactly one in-flight command.
    assert_eq!(stats.max_in_flight(), 1);
}
