//! Parallel == sequential equivalence property test.
//!
//! The conservative parallel execution mode (`XSSD_SIM_THREADS >= 2`,
//! `Cluster::with_sim_threads`) must be **event-for-event identical** to
//! the sequential oracle — not statistically close, identical. This test
//! sweeps random scenarios (2–8 devices, random shadow-update periods and
//! replication policies, random fault plans with TLP drops, flash faults,
//! link outages, and mid-run crash/reboot/resync arcs) and asserts that
//! the full observable trace — every policy-combined credit read with its
//! timestamp, every device's final log tail, the per-domain delivery
//! counters, and the complete telemetry snapshot — is equal at
//! `sim_threads = 1` and `4`.
//!
//! Any divergence is a lookahead-contract violation (a cross-domain
//! message arrived inside the window that emitted it) or a barrier
//! exchange-order bug, so the assertion messages carry the scenario seed
//! for replay.

use pcie::MmioMode;
use simkit::faults::{FlashFaultConfig, LinkDownWindow, TransportFaultConfig};
use simkit::{DetRng, FaultPlan, MetricsRegistry, SimDuration, SimTime};
use xssd_core::{Cluster, ReplicationPolicy, VillarsConfig};

/// Everything a scenario run exposes to the host, stringified so a diff
/// points at the first diverging record.
#[derive(Debug, PartialEq)]
struct Trace {
    credit_reads: Vec<(SimTime, u64)>,
    log_tails: Vec<u64>,
    domain_events: Vec<u64>,
    telemetry_json: String,
}

fn run_scenario(seed: u64, sim_threads: usize) -> Trace {
    let mut rng = DetRng::new(seed);
    let n = 2 + rng.uniform(0, 6) as usize; // 2..=8 devices
    let policy = match rng.uniform(0, 3) {
        0 => ReplicationPolicy::Eager,
        1 => ReplicationPolicy::Lazy,
        2 => ReplicationPolicy::Chain,
        _ => ReplicationPolicy::Quorum(2),
    };

    let mut cl = Cluster::with_sim_threads(sim_threads);
    for i in 0..n {
        let mut cfg = VillarsConfig::small();
        cfg.replication = policy;
        // Heterogeneous shadow periods: each secondary reports on its own
        // cycle (0.4–1.6 us), so barrier instants never align trivially.
        cfg.transport.shadow_update_period =
            SimDuration::from_nanos(400 + 200 * rng.uniform(0, 6) * (1 + i as u64 % 2));
        cl.add_device(cfg);
    }
    let secondaries: Vec<usize> = (1..n).collect();
    let mut now = cl.configure_replication(SimTime::ZERO, 0, &secondaries);

    // Random cross-stack fault plan (each knob is a coin flip so plans mix
    // fault classes); the plan seed forks from the scenario seed.
    let mut plan = FaultPlan { seed: rng.next_u64(), ..FaultPlan::disabled() };
    if rng.uniform(0, 1) == 1 {
        plan.transport =
            TransportFaultConfig { tlp_drop: 0.05, replay_timeout: SimDuration::from_micros(10) };
    }
    if rng.uniform(0, 1) == 1 {
        plan.flash = FlashFaultConfig {
            transient_read: 0.02,
            transient_program: 0.02,
            permanent_program: 0.001,
            max_retries: 3,
        };
    }
    cl.arm_faults(&plan);
    if rng.uniform(0, 1) == 1 {
        // A link outage on the primary's mirror flows mid-run.
        let from = now + SimDuration::from_micros(30 + rng.uniform(0, 40));
        cl.schedule_link_down(
            0,
            LinkDownWindow { from, until: from + SimDuration::from_micros(50) },
        );
    }

    let mut trace = Trace {
        credit_reads: Vec::new(),
        log_tails: Vec::new(),
        domain_events: Vec::new(),
        telemetry_json: String::new(),
    };

    // Closed-loop workload: append to the primary's log, advance, observe
    // the policy-combined credit. A crash arc fires once, mid-run.
    let crash_arc = rng.uniform(0, 9) < 4; // 40% of scenarios
    let crash_iter = 8 + rng.uniform(0, 8);
    let victim = 1 + rng.uniform(0, n as u64 - 2) as usize;
    let mut offset = 0u64;
    for i in 0..28u64 {
        if crash_arc && i == crash_iter {
            cl.power_fail(victim, now);
        }
        if crash_arc && i == crash_iter + 6 {
            cl.reboot_device(victim);
            now = cl.resync_secondary(now, 0, victim);
            now = cl.configure_replication(now, 0, &secondaries);
        }
        let len = 64 + 64 * rng.uniform(0, 6) as usize;
        let data = vec![(i % 251) as u8; len];
        match cl.fast_write(0, now, 0, offset, &data, MmioMode::WriteCombining) {
            Ok((_, t1)) => {
                offset += len as u64;
                now = t1;
            }
            Err(_) => {
                // Intake saturated / ring full: drain and retry next round.
                now += SimDuration::from_micros(2);
            }
        }
        for _ in 0..3 {
            cl.advance(now);
            let (t2, credit) = cl.read_credit(0, now, 0);
            trace.credit_reads.push((t2, credit));
            now = cl.next_event_after(t2).unwrap_or(t2 + SimDuration::from_micros(1));
        }
    }
    cl.advance(now + SimDuration::from_millis(1));

    trace.log_tails = (0..n).map(|i| cl.device(i).log_tail(0)).collect();
    trace.domain_events = cl.domain_event_counts().to_vec();
    let mut reg = MetricsRegistry::new();
    reg.collect("cluster", &cl);
    trace.telemetry_json = reg.snapshot().metrics_json().to_string();
    trace
}

#[test]
fn random_topologies_match_the_sequential_oracle() {
    for seed in [0xA11CE_u64, 0xB0B, 0xCAFE, 0xD00D, 0xE66, 0xF00D, 7, 42] {
        let seq = run_scenario(seed, 1);
        let par = run_scenario(seed, 4);
        assert_eq!(
            seq.credit_reads, par.credit_reads,
            "seed {seed:#x}: credit-read timeline diverged"
        );
        assert_eq!(seq.log_tails, par.log_tails, "seed {seed:#x}: log tails diverged");
        assert_eq!(
            seq.domain_events, par.domain_events,
            "seed {seed:#x}: per-domain delivery counts diverged"
        );
        assert_eq!(
            seq.telemetry_json, par.telemetry_json,
            "seed {seed:#x}: telemetry snapshots diverged"
        );
        // The scenario must actually exercise cross-device traffic,
        // otherwise the equivalence is vacuous.
        assert!(
            par.domain_events.iter().sum::<u64>() > 0,
            "seed {seed:#x}: no cross-device deliveries"
        );
    }
}

#[test]
fn executor_count_does_not_change_the_schedule() {
    // 2, 4, and 8 executors must all produce the oracle schedule — the
    // executor count only changes who runs a window, never the windows.
    let seq = run_scenario(0x5EED, 1);
    for threads in [2, 4, 8] {
        let par = run_scenario(0x5EED, threads);
        assert_eq!(seq, par, "sim_threads={threads} diverged from the oracle");
    }
}
