//! Namespaces: the block-address view of the device.

use crate::command::Lba;

/// A contiguous logical-block address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Namespace {
    /// Namespace identifier (1-based per the standard).
    pub nsid: u32,
    /// Bytes per logical block (512 or 4096 in practice).
    pub lba_bytes: u32,
    /// Capacity in logical blocks.
    pub capacity_lbas: u64,
}

impl Namespace {
    /// Create a namespace; validates the LBA size is a power of two >= 512.
    pub fn new(nsid: u32, lba_bytes: u32, capacity_lbas: u64) -> Self {
        assert!(lba_bytes >= 512 && lba_bytes.is_power_of_two(), "bad LBA size {lba_bytes}");
        assert!(nsid >= 1, "nsid is 1-based");
        Namespace { nsid, lba_bytes, capacity_lbas }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_lbas * self.lba_bytes as u64
    }

    /// Whether the range `[lba, lba+blocks)` is inside the namespace.
    pub fn range_ok(&self, lba: Lba, blocks: u32) -> bool {
        blocks > 0 && lba < self.capacity_lbas && blocks as u64 <= self.capacity_lbas - lba
    }

    /// Bytes covered by `blocks` logical blocks.
    pub fn bytes_of(&self, blocks: u32) -> u64 {
        blocks as u64 * self.lba_bytes as u64
    }

    /// Number of LBAs covering `bytes` (rounded up).
    pub fn lbas_for_bytes(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.lba_bytes as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_math() {
        let ns = Namespace::new(1, 4096, 1 << 20);
        assert_eq!(ns.capacity_bytes(), 4 << 30);
        assert_eq!(ns.bytes_of(8), 32768);
        assert_eq!(ns.lbas_for_bytes(4097), 2);
        assert_eq!(ns.lbas_for_bytes(4096), 1);
    }

    #[test]
    fn range_checks() {
        let ns = Namespace::new(1, 512, 100);
        assert!(ns.range_ok(0, 100));
        assert!(ns.range_ok(99, 1));
        assert!(!ns.range_ok(99, 2));
        assert!(!ns.range_ok(100, 1));
        assert!(!ns.range_ok(0, 0), "zero-block transfers are invalid");
        // Overflow probe: huge lba must not wrap.
        assert!(!ns.range_ok(u64::MAX, 1));
    }

    #[test]
    #[should_panic(expected = "bad LBA size")]
    fn odd_lba_size_rejected() {
        let _ = Namespace::new(1, 1000, 10);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_nsid_rejected() {
        let _ = Namespace::new(0, 512, 10);
    }
}
