//! The controller abstraction and the host-side driver.
//!
//! A device model implements [`NvmeController`]; the host wraps it in an
//! [`NvmeDriver`] which provides the blocking submit-and-wait pattern the
//! OS path exhibits ("the application interacts with the OS via calls such
//! as pread() and pwrite()", paper §2.1), including the syscall overhead a
//! kernel round trip costs — the overhead the Villars user-level API
//! deliberately avoids (§5.1).

use crate::command::{Command, CommandKind, CompletionEntry, Status};
use crate::namespace::Namespace;
use crate::port::{drive_to_completion, CmdTag, Completion, IoPort, PortAccounting};
use simkit::faults::NvmeFaultConfig;
use simkit::{DetRng, SimDuration, SimTime};
use std::collections::BTreeMap;

/// The device side of the NVMe contract.
pub trait NvmeController {
    /// Accept a command fetched from a submission queue at `now`.
    fn submit(&mut self, now: SimTime, cmd: Command);

    /// Run device-internal work up to and including instant `t`.
    fn advance_to(&mut self, t: SimTime);

    /// Take all completions posted at or before `t`, in completion order.
    fn drain_completions(&mut self, t: SimTime) -> Vec<(SimTime, CompletionEntry)>;

    /// Append all completions posted at or before `t` to `out`, in
    /// completion order, without allocating a fresh vector. Hot blocking
    /// loops call this once per horizon jump with a reusable buffer;
    /// controllers should override the default (which delegates to
    /// [`NvmeController::drain_completions`]) when they can drain in place.
    fn drain_completions_into(&mut self, t: SimTime, out: &mut Vec<(SimTime, CompletionEntry)>) {
        out.extend(self.drain_completions(t));
    }

    /// The earliest instant device work (a pending completion or internal
    /// event) is scheduled, if any — lets the driver jump virtual time
    /// instead of polling.
    fn next_event_at(&self) -> Option<SimTime>;

    /// The namespace this controller exposes.
    fn namespace(&self) -> Namespace;
}

/// Host-side costs of the conventional syscall data path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostCosts {
    /// One kernel entry/exit + block-layer traversal (pwrite/pread/fsync).
    pub syscall: SimDuration,
    /// Interrupt handling + completion processing.
    pub interrupt: SimDuration,
}

impl Default for HostCosts {
    fn default() -> Self {
        HostCosts { syscall: SimDuration::from_micros(2), interrupt: SimDuration::from_micros(1) }
    }
}

/// Outcome of a blocking driver call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoResult {
    /// When the call returned to the application.
    pub completed_at: SimTime,
    /// Device status.
    pub status: Status,
}

/// The host driver: submit-and-wait over a controller.
///
/// The driver is itself an [`IoPort`] (submission pays the syscall cost,
/// completion delivery pays the interrupt cost); the blocking helpers are
/// a thin closed-loop adapter — [`crate::port::drive_to_completion`] —
/// over that port.
#[derive(Debug)]
pub struct NvmeDriver<C: NvmeController> {
    controller: C,
    costs: HostCosts,
    port: PortAccounting,
    commands: u64,
    /// Reusable completion-drain buffer for [`IoPort::completions_into`]
    /// (one allocation for the driver's lifetime instead of one per poll).
    drain_buf: Vec<(SimTime, CompletionEntry)>,
    /// Reusable scratch for the blocking wait adapter.
    wait_buf: Vec<Completion>,
    /// Command-level fault injection (None = inert, the default).
    faults: Option<CmdFaults>,
}

/// Driver-side command-fault state: per-command fate draws, retry budgets,
/// and abort deadlines. Armed via [`NvmeDriver::arm_faults`].
#[derive(Debug)]
struct CmdFaults {
    cfg: NvmeFaultConfig,
    rng: DetRng,
    /// Fate bookkeeping per live CID. BTreeMap so deadline processing
    /// iterates in a deterministic order.
    cmds: BTreeMap<crate::command::CommandId, CmdFate>,
}

#[derive(Debug, Clone, Copy)]
struct CmdFate {
    kind: CommandKind,
    /// Retries consumed so far (fate rolls stop at the budget, so every
    /// command eventually succeeds).
    attempts: u32,
    /// The next completion carries an injected error status and is
    /// swallowed + retried by the driver.
    error_next: bool,
    /// The next completion is lost (CQE never posted to the host); the
    /// timeout → abort → retry path recovers it.
    drop_next: bool,
    /// Abort deadline armed when a completion was rolled as lost.
    deadline: Option<SimTime>,
    /// Completions from aborted attempts still in flight device-side;
    /// they arrive eventually and must be discarded, not delivered.
    swallow: u32,
}

impl CmdFaults {
    /// Roll the fate of a (re)submission issued at `issue_at`. Draws stop
    /// once the retry budget is consumed.
    fn roll(&mut self, fate: &mut CmdFate, issue_at: SimTime) {
        if fate.attempts >= self.cfg.max_retries {
            return;
        }
        if self.rng.chance(self.cfg.dropped_completion) {
            fate.drop_next = true;
            fate.deadline = Some(issue_at + self.cfg.timeout);
        } else if self.rng.chance(self.cfg.error_completion) {
            fate.error_next = true;
        }
    }

    /// Exponential backoff for retry number `attempt` (1-based).
    fn backoff(&self, attempt: u32) -> SimDuration {
        self.cfg.backoff_base.saturating_mul(1u64 << (attempt - 1).min(16))
    }
}

impl<C: NvmeController> NvmeDriver<C> {
    /// Wrap a controller with default host costs.
    pub fn new(controller: C) -> Self {
        Self::with_costs(controller, HostCosts::default())
    }

    /// Wrap a controller with explicit host costs.
    pub fn with_costs(controller: C, costs: HostCosts) -> Self {
        NvmeDriver {
            controller,
            costs,
            port: PortAccounting::new(),
            commands: 0,
            drain_buf: Vec::new(),
            wait_buf: Vec::new(),
            faults: None,
        }
    }

    /// Arm deterministic command-level fault injection: each submission's
    /// fate (clean / error completion / lost completion) is drawn from
    /// `rng`; injected failures are recovered by the driver itself with
    /// bounded exponential-backoff retries, surfaced in
    /// [`NvmeDriver::port_stats`] (`retry.*` / `fault.*` counters). The
    /// unarmed driver makes zero draws and behaves bit-identically.
    pub fn arm_faults(&mut self, cfg: NvmeFaultConfig, rng: DetRng) {
        self.faults = Some(CmdFaults { cfg, rng, cmds: BTreeMap::new() });
    }

    /// Commands issued through this driver so far.
    pub fn commands_issued(&self) -> u64 {
        self.commands
    }

    /// Access the wrapped controller.
    pub fn controller(&self) -> &C {
        &self.controller
    }

    /// Mutable access to the wrapped controller (for vendor-level setup).
    pub fn controller_mut(&mut self) -> &mut C {
        &mut self.controller
    }

    /// The namespace exposed by the device.
    pub fn namespace(&self) -> Namespace {
        self.controller.namespace()
    }

    /// Per-port accounting: in-flight depth, CID liveness, and queue-depth
    /// telemetry. Collect it explicitly when port metrics are wanted — it
    /// is not part of the default instrument tree (snapshot layouts are
    /// byte-frozen by the results gate).
    pub fn port_stats(&self) -> &PortAccounting {
        &self.port
    }

    /// Submit `kind` at `now` and block until its completion arrives.
    /// Models: syscall entry, command processing, interrupt, return.
    ///
    /// This is the closed-loop adapter over the driver's [`IoPort`]: one
    /// tagged submission, then [`crate::port::drive_to_completion`] jumps
    /// virtual time from device event to device event until the tag
    /// completes.
    pub fn execute_blocking(&mut self, now: SimTime, kind: CommandKind) -> IoResult {
        let tag = IoPort::submit(self, now, kind);
        let from = now + self.costs.syscall;
        let mut scratch = std::mem::take(&mut self.wait_buf);
        let done = drive_to_completion(self, from, tag, &mut scratch);
        self.wait_buf = scratch;
        IoResult { completed_at: done.at, status: done.entry.status }
    }

    /// Blocking write of `blocks` logical blocks at `lba`.
    pub fn write_blocking(&mut self, now: SimTime, lba: u64, blocks: u32) -> IoResult {
        self.execute_blocking(
            now,
            CommandKind::Io(crate::command::IoCommand::Write { lba, blocks }),
        )
    }

    /// Blocking read of `blocks` logical blocks at `lba`.
    pub fn read_blocking(&mut self, now: SimTime, lba: u64, blocks: u32) -> IoResult {
        self.execute_blocking(now, CommandKind::Io(crate::command::IoCommand::Read { lba, blocks }))
    }

    /// Blocking flush of the device write cache.
    pub fn flush_blocking(&mut self, now: SimTime) -> IoResult {
        self.execute_blocking(now, CommandKind::Io(crate::command::IoCommand::Flush))
    }
}

impl<C: NvmeController> IoPort for NvmeDriver<C> {
    fn try_submit(&mut self, now: SimTime, kind: CommandKind) -> Result<CmdTag, QueueError> {
        let cid = self.port.begin();
        self.commands += 1;
        let issue_at = now + self.costs.syscall;
        if let Some(f) = self.faults.as_mut() {
            let mut fate = CmdFate {
                kind,
                attempts: 0,
                error_next: false,
                drop_next: false,
                deadline: None,
                swallow: 0,
            };
            f.roll(&mut fate, issue_at);
            f.cmds.insert(cid, fate);
        }
        // The device sees the command after the kernel round trip.
        self.controller.submit(issue_at, Command { cid, kind });
        Ok(CmdTag(cid))
    }

    fn poll(&mut self, now: SimTime) {
        // Abort commands whose completion deadline expired (their CQE was
        // rolled as lost) and resubmit with exponential backoff. BTreeMap
        // order keeps the RNG draw sequence deterministic.
        if let Some(f) = self.faults.as_mut() {
            let expired: Vec<_> = f
                .cmds
                .iter()
                .filter(|(_, fate)| fate.deadline.is_some_and(|d| d <= now))
                .map(|(&cid, _)| cid)
                .collect();
            for cid in expired {
                let mut fate = f.cmds.remove(&cid).expect("expired fate present");
                // If the aborted attempt's (lost) completion is still in
                // flight device-side, re-mark it stale so it is discarded
                // when it finally drains; if it already drained (consumed
                // by `drop_next`), there is nothing left to discard.
                if fate.drop_next {
                    fate.drop_next = false;
                    fate.swallow += 1;
                }
                fate.deadline = None;
                fate.attempts += 1;
                self.port.record_timeout();
                self.port.record_dropped_completion();
                self.port.record_retry();
                let issue_at = now + f.backoff(fate.attempts) + self.costs.syscall;
                f.roll(&mut fate, issue_at);
                f.cmds.insert(cid, fate);
                self.controller.submit(issue_at, Command { cid, kind: fate.kind });
            }
        }
        self.controller.advance_to(now);
    }

    fn completions_into(&mut self, now: SimTime, out: &mut Vec<Completion>) {
        self.drain_buf.clear();
        self.controller.drain_completions_into(now, &mut self.drain_buf);
        let Some(f) = self.faults.as_mut() else {
            for &(at, entry) in &self.drain_buf {
                self.port.finish(entry.cid);
                // Delivery to the application pays the interrupt cost.
                out.push(Completion { at: at + self.costs.interrupt, entry });
            }
            return;
        };
        for &(at, entry) in &self.drain_buf {
            let Some(fate) = f.cmds.get_mut(&entry.cid) else {
                self.port.finish(entry.cid);
                out.push(Completion { at: at + self.costs.interrupt, entry });
                continue;
            };
            if fate.swallow > 0 {
                // Stale completion of an attempt the driver already
                // aborted and resubmitted.
                fate.swallow -= 1;
                continue;
            }
            if fate.drop_next {
                // The CQE for this attempt is lost; the abort deadline in
                // `poll` drives recovery.
                fate.drop_next = false;
                continue;
            }
            if fate.error_next {
                // Injected error completion: swallow it and retry the
                // same CID with exponential backoff (the caller's tag
                // stays valid across the retry).
                fate.error_next = false;
                fate.attempts += 1;
                self.port.record_error_completion();
                self.port.record_retry();
                let mut next = *fate;
                let issue_at = at + f.backoff(next.attempts) + self.costs.syscall;
                f.roll(&mut next, issue_at);
                f.cmds.insert(entry.cid, next);
                self.controller.submit(issue_at, Command { cid: entry.cid, kind: next.kind });
                continue;
            }
            f.cmds.remove(&entry.cid);
            self.port.finish(entry.cid);
            out.push(Completion { at: at + self.costs.interrupt, entry });
        }
    }

    fn next_port_event_at(&self) -> Option<SimTime> {
        let device = self.controller.next_event_at();
        let deadline = self
            .faults
            .as_ref()
            .and_then(|f| f.cmds.values().filter_map(|fate| fate.deadline).min());
        match (device, deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn in_flight(&self) -> usize {
        self.port.in_flight()
    }
}

use crate::queue::QueueError;

impl<C: NvmeController + simkit::Instrument> simkit::Instrument for NvmeDriver<C> {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.counter("commands", self.commands);
        self.controller.instrument(out);
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use crate::command::{CompletionEntry, IoCommand};

    /// A controller that completes every command after a fixed delay.
    pub(crate) struct FixedDelay {
        delay: SimDuration,
        pending: Vec<(SimTime, CompletionEntry)>,
        ns: Namespace,
    }

    impl FixedDelay {
        pub(crate) fn new(delay_us: u64) -> Self {
            FixedDelay {
                delay: SimDuration::from_micros(delay_us),
                pending: Vec::new(),
                ns: Namespace::new(1, 4096, 1 << 20),
            }
        }
    }

    impl NvmeController for FixedDelay {
        fn submit(&mut self, now: SimTime, cmd: Command) {
            let status = match cmd.kind {
                CommandKind::Io(IoCommand::Write { lba, blocks })
                | CommandKind::Io(IoCommand::Read { lba, blocks })
                    if !self.ns.range_ok(lba, blocks) =>
                {
                    Status::LbaOutOfRange
                }
                _ => Status::Success,
            };
            self.pending
                .push((now + self.delay, CompletionEntry { cid: cmd.cid, status, result: 0 }));
        }

        fn advance_to(&mut self, _t: SimTime) {}

        fn drain_completions(&mut self, t: SimTime) -> Vec<(SimTime, CompletionEntry)> {
            let (ready, rest): (Vec<_>, Vec<_>) =
                self.pending.drain(..).partition(|(at, _)| *at <= t);
            self.pending = rest;
            ready
        }

        fn next_event_at(&self) -> Option<SimTime> {
            self.pending.iter().map(|(at, _)| *at).min()
        }

        fn namespace(&self) -> Namespace {
            self.ns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::FixedDelay;
    use super::*;

    #[test]
    fn blocking_write_includes_all_costs() {
        let mut drv = NvmeDriver::new(FixedDelay::new(50));
        let r = drv.write_blocking(SimTime::ZERO, 0, 8);
        assert!(r.status.is_ok());
        // 2us syscall + 50us device + 1us interrupt.
        assert_eq!(r.completed_at.as_micros_f64(), 53.0);
    }

    #[test]
    fn out_of_range_write_fails() {
        let mut drv = NvmeDriver::new(FixedDelay::new(1));
        let r = drv.write_blocking(SimTime::ZERO, u64::MAX, 1);
        assert_eq!(r.status, Status::LbaOutOfRange);
    }

    #[test]
    fn sequential_blocking_calls_accumulate_time() {
        let mut drv = NvmeDriver::new(FixedDelay::new(10));
        let r1 = drv.write_blocking(SimTime::ZERO, 0, 1);
        let r2 = drv.write_blocking(r1.completed_at, 1, 1);
        assert!(r2.completed_at > r1.completed_at);
        assert_eq!(r2.completed_at.as_micros_f64(), 26.0);
    }

    #[test]
    fn flush_round_trip() {
        let mut drv = NvmeDriver::new(FixedDelay::new(5));
        let r = drv.flush_blocking(SimTime::ZERO);
        assert!(r.status.is_ok());
    }

    #[test]
    fn injected_error_completions_are_retried_transparently() {
        let mut drv = NvmeDriver::new(FixedDelay::new(10));
        drv.arm_faults(
            NvmeFaultConfig { error_completion: 0.4, ..Default::default() },
            DetRng::new(7),
        );
        let mut now = SimTime::ZERO;
        for i in 0..50 {
            let r = drv.write_blocking(now, i, 1);
            assert!(r.status.is_ok(), "retries keep the caller-visible status clean");
            now = r.completed_at;
        }
        let stats = drv.port_stats();
        assert!(stats.error_completions() > 0, "a 40% rate fires within 50 commands");
        assert_eq!(stats.retries(), stats.error_completions());
        assert_eq!(stats.completed(), 50);
        assert_eq!(drv.in_flight(), 0);
    }

    #[test]
    fn lost_completions_time_out_abort_and_retry() {
        let mut drv = NvmeDriver::new(FixedDelay::new(10));
        drv.arm_faults(
            NvmeFaultConfig { dropped_completion: 0.5, ..Default::default() },
            DetRng::new(3),
        );
        let mut now = SimTime::ZERO;
        for i in 0..40 {
            let r = drv.write_blocking(now, i, 1);
            assert!(r.status.is_ok());
            now = r.completed_at;
        }
        let stats = drv.port_stats();
        assert!(stats.timeouts() > 0, "a 50% drop rate forces timeouts");
        assert_eq!(stats.timeouts(), stats.dropped_completions());
        assert_eq!(stats.completed(), 40);
        assert_eq!(drv.in_flight(), 0);
        // A timed-out command pays at least the timeout before retrying.
        assert!(
            now > SimTime::from_micros(500),
            "timeout latency is visible in the virtual clock: {now:?}"
        );
    }

    #[test]
    fn fault_injection_is_deterministic() {
        fn run(seed: u64) -> (f64, u64, u64) {
            let mut drv = NvmeDriver::new(FixedDelay::new(10));
            drv.arm_faults(
                NvmeFaultConfig {
                    error_completion: 0.2,
                    dropped_completion: 0.2,
                    ..Default::default()
                },
                DetRng::new(seed),
            );
            let mut now = SimTime::ZERO;
            for i in 0..60 {
                now = drv.write_blocking(now, i, 1).completed_at;
            }
            (now.as_micros_f64(), drv.port_stats().retries(), drv.port_stats().timeouts())
        }
        assert_eq!(run(11), run(11), "same seed, same fault schedule, same clock");
        assert_ne!(run(11), run(12), "different seeds diverge");
    }

    #[test]
    fn armed_at_zero_rates_is_bit_identical_to_unarmed() {
        let mut plain = NvmeDriver::new(FixedDelay::new(10));
        let mut armed = NvmeDriver::new(FixedDelay::new(10));
        armed.arm_faults(NvmeFaultConfig::default(), DetRng::new(99));
        let mut t1 = SimTime::ZERO;
        let mut t2 = SimTime::ZERO;
        for i in 0..20 {
            t1 = plain.write_blocking(t1, i, 1).completed_at;
            t2 = armed.write_blocking(t2, i, 1).completed_at;
        }
        assert_eq!(t1, t2, "zero-rate fault layer adds no latency");
        assert_eq!(plain.port_stats().retries(), 0);
        assert_eq!(armed.port_stats().retries(), 0);
    }
}

/// A driver that drives a controller through real submission/completion
/// rings with a bounded queue depth — the asynchronous path the OS block
/// layer uses, complementing the synchronous [`NvmeDriver`]. Submission
/// fails with [`crate::queue::QueueError::Full`] when the ring is full; the
/// caller reaps completions to free slots (back-pressure by ring depth,
/// paper §2.1).
#[derive(Debug)]
pub struct QueuedDriver<C: NvmeController> {
    controller: C,
    qp: crate::queue::QueuePair,
    costs: HostCosts,
    port: PortAccounting,
    /// Completion instants (including interrupt cost) for entries posted
    /// to the CQ but not yet reaped, keyed by CID.
    done_at: std::collections::HashMap<CommandId, SimTime>,
    /// Reusable completion-drain buffer for [`QueuedDriver::poll`].
    drain_buf: Vec<(SimTime, CompletionEntry)>,
}

use crate::command::CommandId;

impl<C: NvmeController> QueuedDriver<C> {
    /// Wrap `controller` with an I/O queue pair of `depth` entries.
    pub fn new(controller: C, depth: usize) -> Self {
        QueuedDriver {
            controller,
            qp: crate::queue::QueuePair::new(crate::queue::QueueId(1), depth),
            costs: HostCosts::default(),
            port: PortAccounting::new(),
            done_at: std::collections::HashMap::new(),
            drain_buf: Vec::new(),
        }
    }

    /// Access the wrapped controller.
    pub fn controller(&self) -> &C {
        &self.controller
    }

    /// Mutable access to the wrapped controller.
    pub fn controller_mut(&mut self) -> &mut C {
        &mut self.controller
    }

    /// Commands submitted and not yet reaped.
    pub fn inflight(&self) -> usize {
        self.port.in_flight()
    }

    /// Per-port accounting (CID liveness, depth telemetry). Collected
    /// explicitly by callers that want port metrics.
    pub fn port_stats(&self) -> &PortAccounting {
        &self.port
    }

    /// Submit a command asynchronously. Returns its CID, or `QueueError::Full`
    /// when the ring has no free slot.
    pub fn submit(
        &mut self,
        now: SimTime,
        kind: CommandKind,
    ) -> Result<CommandId, crate::queue::QueueError> {
        if self.port.in_flight() >= self.qp.sq.depth() {
            return Err(crate::queue::QueueError::Full);
        }
        let cid = self.port.begin();
        if let Err(e) = self.qp.sq.push(Command { cid, kind }) {
            self.port.finish(cid);
            return Err(e);
        }
        // The device fetches immediately after the doorbell (fetch cost is
        // modelled device-side).
        let cmd = self
            .qp
            .sq
            .fetch()
            .unwrap_or_else(|| panic!("submission ring empty after pushing cid {cid}"));
        self.controller.submit(now + self.costs.syscall, cmd);
        Ok(cid)
    }

    /// Advance the device and post any due completions into the completion
    /// ring. Returns how many were posted.
    pub fn poll(&mut self, now: SimTime) -> usize {
        self.controller.advance_to(now);
        self.drain_buf.clear();
        self.controller.drain_completions_into(now, &mut self.drain_buf);
        let mut posted = 0;
        for &(at, entry) in &self.drain_buf {
            if self.qp.cq.post(entry).is_err() {
                // CQ full: in real hardware this is fatal; here the caller
                // must reap faster. Drop back into the device queue is not
                // possible, so surface loudly.
                panic!(
                    "completion queue overflow posting cid {}: reap completions faster",
                    entry.cid
                );
            }
            self.done_at.insert(entry.cid, at + self.costs.interrupt);
            posted += 1;
        }
        posted
    }

    /// Reap one completion from the ring, if any.
    pub fn reap(&mut self) -> Option<CompletionEntry> {
        let entry = self.qp.cq.reap()?;
        self.port.finish(entry.cid);
        self.done_at.remove(&entry.cid);
        Some(entry)
    }

    /// The earliest pending device event (to jump virtual time between
    /// polls).
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.controller.next_event_at()
    }

    /// The queue pair backing this driver (doorbell/occupancy telemetry).
    pub fn queue_pair(&self) -> &crate::queue::QueuePair {
        &self.qp
    }
}

impl<C: NvmeController> IoPort for QueuedDriver<C> {
    fn try_submit(&mut self, now: SimTime, kind: CommandKind) -> Result<CmdTag, QueueError> {
        QueuedDriver::submit(self, now, kind).map(CmdTag)
    }

    fn poll(&mut self, now: SimTime) {
        QueuedDriver::poll(self, now);
    }

    fn completions_into(&mut self, _now: SimTime, out: &mut Vec<Completion>) {
        // Everything already posted to the CQ by `poll` is due; reap it
        // all, in posting order.
        while let Some(entry) = self.qp.cq.reap() {
            self.port.finish(entry.cid);
            let at = self.done_at.remove(&entry.cid).unwrap_or_else(|| {
                panic!("no completion instant recorded for reaped cid {}", entry.cid)
            });
            out.push(Completion { at, entry });
        }
    }

    fn next_port_event_at(&self) -> Option<SimTime> {
        self.controller.next_event_at()
    }

    fn in_flight(&self) -> usize {
        self.port.in_flight()
    }
}

impl<C: NvmeController> simkit::Instrument for QueuedDriver<C> {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        self.qp.instrument(out);
        out.gauge("inflight", self.port.in_flight() as f64);
    }
}

#[cfg(test)]
mod queued_tests {
    use super::tests_support::FixedDelay;
    use super::*;
    use crate::command::IoCommand;
    use crate::queue::QueueError;

    #[test]
    fn pipelined_submission_up_to_depth() {
        let mut drv = QueuedDriver::new(FixedDelay::new(100), 4);
        let mut cids = Vec::new();
        for i in 0..4 {
            cids.push(
                drv.submit(SimTime::ZERO, CommandKind::Io(IoCommand::Write { lba: i, blocks: 1 }))
                    .unwrap(),
            );
        }
        assert_eq!(drv.inflight(), 4);
        // Fifth submission back-pressures.
        assert_eq!(
            drv.submit(SimTime::ZERO, CommandKind::Io(IoCommand::Flush)),
            Err(QueueError::Full)
        );
        // All four complete at the same device delay and pipeline (they do
        // NOT serialize: wall time ~102us, not 4x).
        let done_at = drv.next_event_at().expect("pending completions");
        assert_eq!(done_at.as_micros_f64(), 102.0);
        let posted = drv.poll(done_at);
        assert_eq!(posted, 4);
        let mut reaped = Vec::new();
        while let Some(e) = drv.reap() {
            assert!(e.status.is_ok());
            reaped.push(e.cid);
        }
        assert_eq!(reaped, cids);
        assert_eq!(drv.inflight(), 0);
        // A slot is free again.
        drv.submit(done_at, CommandKind::Io(IoCommand::Flush)).unwrap();
    }

    #[test]
    fn queue_depth_one_serializes() {
        let mut drv = QueuedDriver::new(FixedDelay::new(10), 1);
        let mut now = SimTime::ZERO;
        for i in 0..3 {
            drv.submit(now, CommandKind::Io(IoCommand::Write { lba: i, blocks: 1 })).unwrap();
            now = drv.next_event_at().unwrap();
            drv.poll(now);
            assert!(drv.reap().is_some());
        }
        // Three serialized 10us commands (+2us syscall each).
        assert_eq!(now.as_micros_f64(), 36.0);
    }

    #[test]
    fn against_a_real_ssd() {
        // The queued driver also works over the full conventional-SSD model
        // (smoke test via the trait object boundary the bench crates use).
        // Uses only the nvme-crate contract.
        let mut drv = QueuedDriver::new(FixedDelay::new(5), 8);
        for i in 0..8 {
            drv.submit(SimTime::ZERO, CommandKind::Io(IoCommand::Read { lba: i, blocks: 1 }))
                .unwrap();
        }
        let t = drv.next_event_at().unwrap();
        assert_eq!(drv.poll(t), 8);
    }
}
