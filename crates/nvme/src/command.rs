//! NVMe command set: I/O, admin, and vendor-specific commands.
//!
//! The Villars device "is fully compatible with the NVMe standard, even with
//! our extensions" (paper §1): all X-SSD control — transport roles, ring
//! configuration, scheduling mode — travels as *vendor-specific* admin
//! commands (§4.2), which the standard reserves opcode space for.

/// Command identifier, unique within a submission queue.
pub type CommandId = u16;

/// Logical block address.
pub type Lba = u64;

/// An I/O-queue command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoCommand {
    /// Read `blocks` logical blocks starting at `lba`.
    Read {
        /// First block.
        lba: Lba,
        /// Number of blocks.
        blocks: u32,
    },
    /// Write `blocks` logical blocks starting at `lba`.
    Write {
        /// First block.
        lba: Lba,
        /// Number of blocks.
        blocks: u32,
    },
    /// Flush the volatile write cache to media.
    Flush,
}

/// A vendor-specific command: an opcode in the vendor range plus the six
/// command dwords (CDW10–CDW15) the standard hands through untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VendorCommand {
    /// Vendor opcode (the standard reserves 0xC0–0xFF).
    pub opcode: u8,
    /// CDW10–CDW15 payload.
    pub dwords: [u32; 6],
}

impl VendorCommand {
    /// Build a vendor command; panics if the opcode is outside the vendor
    /// range.
    pub fn new(opcode: u8, dwords: [u32; 6]) -> Self {
        assert!(opcode >= 0xC0, "vendor opcodes start at 0xC0, got {opcode:#x}");
        VendorCommand { opcode, dwords }
    }
}

/// An admin-queue command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdminCommand {
    /// Identify controller/namespace.
    Identify,
    /// Get a log page (health, error log).
    GetLogPage,
    /// Set a feature (arbitration, interrupt coalescing, ...).
    SetFeatures {
        /// Feature identifier.
        fid: u8,
        /// Feature value.
        value: u32,
    },
    /// A vendor-specific extension (the X-SSD control plane).
    Vendor(VendorCommand),
}

/// Any command, as it sits in a submission queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandKind {
    /// I/O queue command.
    Io(IoCommand),
    /// Admin queue command.
    Admin(AdminCommand),
}

/// A submission-queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Command {
    /// Command identifier echoed in the completion.
    pub cid: CommandId,
    /// The operation.
    pub kind: CommandKind,
}

/// NVMe status codes (the subset the models produce).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Command completed successfully.
    Success,
    /// Opcode not supported.
    InvalidOpcode,
    /// Field out of range (bad queue id, bad feature).
    InvalidField,
    /// LBA beyond namespace capacity.
    LbaOutOfRange,
    /// Unrecoverable media error (uncorrectable ECC).
    MediaError,
    /// Internal device error.
    InternalError,
    /// Vendor-specific failure (X-SSD control-plane rejection).
    VendorError,
}

impl Status {
    /// Whether the status indicates success.
    pub fn is_ok(&self) -> bool {
        matches!(self, Status::Success)
    }
}

/// A completion-queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletionEntry {
    /// Echo of the command id.
    pub cid: CommandId,
    /// Outcome.
    pub status: Status,
    /// Command-specific result dword (e.g. a vendor command's return value).
    pub result: u32,
}

impl CompletionEntry {
    /// A successful completion with no result payload.
    pub fn ok(cid: CommandId) -> Self {
        CompletionEntry { cid, status: Status::Success, result: 0 }
    }

    /// A failed completion.
    pub fn err(cid: CommandId, status: Status) -> Self {
        CompletionEntry { cid, status, result: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vendor_opcode_range_enforced() {
        let v = VendorCommand::new(0xC1, [1, 2, 3, 4, 5, 6]);
        assert_eq!(v.opcode, 0xC1);
    }

    #[test]
    #[should_panic(expected = "vendor opcodes")]
    fn non_vendor_opcode_panics() {
        let _ = VendorCommand::new(0x01, [0; 6]);
    }

    #[test]
    fn status_predicates() {
        assert!(Status::Success.is_ok());
        assert!(!Status::MediaError.is_ok());
        assert!(CompletionEntry::ok(7).status.is_ok());
        assert_eq!(CompletionEntry::err(7, Status::LbaOutOfRange).cid, 7);
    }

    #[test]
    fn commands_are_copy_and_comparable() {
        let c = Command { cid: 1, kind: CommandKind::Io(IoCommand::Write { lba: 0, blocks: 8 }) };
        let d = c;
        assert_eq!(c, d);
    }
}
