//! # nvme — the NVMe protocol layer
//!
//! "Today's main conduit between devices and the OS/applications is a
//! standard protocol called NVMe" (paper §2.1). This crate provides:
//!
//! - [`command`] — the I/O, admin, and vendor-specific command set (the
//!   X-SSD control plane rides on vendor commands, §4.2);
//! - [`queue`] — submission/completion rings and doorbells;
//! - [`namespace`] — the logical-block address space;
//! - [`regions`] — CMB/PMR descriptors (§2.3);
//! - [`controller`] — the [`NvmeController`] device contract and the
//!   blocking host [`NvmeDriver`] with explicit syscall/interrupt costs;
//! - [`port`] — the unified asynchronous [`IoPort`]
//!   submission/completion contract every device type implements, plus
//!   the closed-loop [`drive_to_completion`] adapter blocking helpers
//!   route through.

#![warn(missing_docs)]

pub mod command;
pub mod controller;
pub mod namespace;
pub mod port;
pub mod queue;
pub mod regions;

pub use command::{
    AdminCommand, Command, CommandId, CommandKind, CompletionEntry, IoCommand, Lba, Status,
    VendorCommand,
};
pub use controller::{HostCosts, IoResult, NvmeController, NvmeDriver, QueuedDriver};
pub use namespace::Namespace;
pub use port::{
    drive_to_completion, try_drive_to_completion, CmdTag, Completion, IoPort, PortAccounting,
};
pub use queue::{CompletionQueue, QueueError, QueueId, QueuePair, SubmissionQueue};
pub use regions::{BackingClass, CmbDescriptor};
