//! Controller Memory Buffer / Persistent Memory Region descriptors.
//!
//! Paper §2.3: CMB optionally exposes device-internal memory via MMIO; PMR
//! additionally promises persistence. "For our purposes, we consider CMB and
//! PMR as functionally equivalent" — the descriptor carries a persistence
//! flag instead of duplicating the machinery.

/// What memory technology backs the exposed region (paper §4.1 evaluates
/// SRAM and DRAM; Z-NAND/Optane are mentioned as drop-ins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackingClass {
    /// FPGA BlockRAM: 128-bit @ 250 MHz = 4 GB/s, small (128 KiB).
    Sram,
    /// Device DRAM (shared with the data buffer): 64-bit @ 250 MHz = 2 GB/s
    /// raw, derated by sharing; larger (128 MiB).
    Dram,
}

/// Descriptor of an exposed controller memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmbDescriptor {
    /// Region size in bytes.
    pub size: u64,
    /// Backing technology.
    pub backing: BackingClass,
    /// Whether writes are persistent on arrival (PMR semantics / battery
    /// backing). The Villars fast side sets this.
    pub persistent: bool,
    /// Whether the host may issue reads against the region (RDS).
    pub reads_supported: bool,
    /// Whether the host may issue writes against the region (WDS).
    pub writes_supported: bool,
}

impl CmbDescriptor {
    /// The Villars SRAM configuration from the paper: 128 KiB of BlockRAM.
    pub fn villars_sram() -> Self {
        CmbDescriptor {
            size: 128 << 10,
            backing: BackingClass::Sram,
            persistent: true,
            reads_supported: true,
            writes_supported: true,
        }
    }

    /// The Villars DRAM configuration from the paper: 128 MiB carved from
    /// the data-buffer pool.
    pub fn villars_dram() -> Self {
        CmbDescriptor {
            size: 128 << 20,
            backing: BackingClass::Dram,
            persistent: true,
            reads_supported: true,
            writes_supported: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations() {
        let s = CmbDescriptor::villars_sram();
        assert_eq!(s.size, 131072);
        assert_eq!(s.backing, BackingClass::Sram);
        assert!(s.persistent);
        let d = CmbDescriptor::villars_dram();
        assert_eq!(d.size, 128 << 20);
        assert_eq!(d.backing, BackingClass::Dram);
    }
}
