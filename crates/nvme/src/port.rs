//! The unified asynchronous submission/completion port.
//!
//! Every host-visible device in the stack — the Villars device, the
//! conventional SSD, and the NVMe host drivers — speaks the same
//! command-lifecycle contract: tagged submissions go in, event-driven
//! completions come out, and the caller decides how many commands to keep
//! in flight. This is the shape the paper's host interface requires
//! (NVMe queue pairs keep many commands outstanding per device, §2.1;
//! CMB fast-writes race destage and replication mirrors overlap local
//! I/O, §4, §6.2): the *port* is asynchronous, and blocking is a policy
//! layered on top — the closed-loop adapter [`drive_to_completion`] —
//! not a property of the device.
//!
//! The port contract is deliberately small:
//!
//! 1. [`IoPort::try_submit`] hands a [`CommandKind`] to the device at a
//!    virtual instant and returns a [`CmdTag`] identifying the in-flight
//!    command (the port allocates the NVMe CID — callers never mint
//!    their own, which is what makes per-port collision checking
//!    possible).
//! 2. [`IoPort::poll`] runs device work up to an instant so due
//!    completions become visible.
//! 3. [`IoPort::completions_into`] delivers every completion due by an
//!    instant, in completion order, retiring their tags.
//! 4. [`IoPort::next_port_event_at`] lets callers jump virtual time
//!    straight to the next device event instead of polling in quanta.
//!
//! [`PortAccounting`] is the bookkeeping every implementation shares:
//! per-port CID allocation that skips live CIDs (a wrapped 16-bit CID
//! must never collide with a still-in-flight command), plus queue-depth
//! telemetry (submitted/completed counters, an in-flight gauge and
//! high-water mark, and an in-flight-depth histogram). It implements
//! [`simkit::Instrument`] but is *not* folded into the device instrument
//! trees by default — snapshot layouts embedded in `results/*.json` are
//! byte-frozen, so port telemetry is collected explicitly by callers who
//! want it (see `docs/OBSERVABILITY.md`).

use crate::command::{CommandId, CommandKind, CompletionEntry};
use crate::queue::QueueError;
use simkit::{DiagnosticSnapshot, Histogram, SimError, SimTime};
use std::collections::HashSet;

/// Identifies one in-flight submission on the port that issued it.
///
/// Tags wrap the NVMe CID the port allocated; they are only meaningful
/// relative to the issuing port, and only until the matching completion
/// is delivered (after which the CID may be reissued).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CmdTag(pub CommandId);

/// One completed command, as delivered by [`IoPort::completions_into`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// When the host observes the completion. For device-level ports this
    /// is the instant the device posted it; host drivers that model
    /// interrupt cost fold it in here.
    pub at: SimTime,
    /// The NVMe completion-queue entry (CID, status, result).
    pub entry: CompletionEntry,
}

/// The unified asynchronous submission/completion contract.
///
/// Implemented by `VillarsDevice`, `ssd::ConventionalSsd`, and the NVMe
/// host drivers ([`crate::NvmeDriver`], [`crate::QueuedDriver`]), so all
/// device types share one command lifecycle: submit → queue → device
/// event → completion. Blocking callers layer [`drive_to_completion`] on
/// top; pipelined callers keep several tags in flight and drain
/// completions as virtual time advances.
pub trait IoPort {
    /// Submit `kind` at `now`. Returns the tag of the in-flight command,
    /// or [`QueueError::Full`] when the port has bounded depth and no
    /// free slot (device-level ports are unbounded and never fail).
    fn try_submit(&mut self, now: SimTime, kind: CommandKind) -> Result<CmdTag, QueueError>;

    /// Infallible submit for unbounded ports. Panics with port context if
    /// the port rejects the submission.
    fn submit(&mut self, now: SimTime, kind: CommandKind) -> CmdTag {
        match self.try_submit(now, kind) {
            Ok(tag) => tag,
            Err(e) => panic!(
                "I/O port rejected submission at t={}us ({} in flight): {e:?}",
                now.as_micros_f64(),
                self.in_flight()
            ),
        }
    }

    /// Run device-internal work up to and including instant `now`, so
    /// completions due by `now` become visible to
    /// [`IoPort::completions_into`].
    fn poll(&mut self, now: SimTime);

    /// Append every completion due at or before `now` to `out`, in
    /// completion order, retiring their tags from the in-flight set.
    fn completions_into(&mut self, now: SimTime, out: &mut Vec<Completion>);

    /// The earliest instant port work (a pending completion or internal
    /// device event) is scheduled, if any. Named to avoid colliding with
    /// [`crate::NvmeController::next_event_at`] on types implementing
    /// both contracts.
    fn next_port_event_at(&self) -> Option<SimTime>;

    /// Commands submitted through this port and not yet delivered.
    fn in_flight(&self) -> usize;
}

/// Per-port command accounting shared by every [`IoPort`] implementation:
/// CID allocation that never reissues a live CID, and queue-depth
/// telemetry.
#[derive(Debug, Clone)]
pub struct PortAccounting {
    next_cid: CommandId,
    live: HashSet<CommandId>,
    submitted: u64,
    completed: u64,
    max_in_flight: usize,
    depth: Histogram,
    /// Driver retries (error-completion resubmits + timeout resubmits).
    retries: u64,
    /// Commands whose completion deadline expired (timeout → abort).
    timeouts: u64,
    /// Injected error completions swallowed by the driver's retry loop.
    error_completions: u64,
    /// Injected lost completions (CQE never posted; timeout path fired).
    dropped_completions: u64,
}

impl PortAccounting {
    /// Fresh accounting: CIDs start at 0, nothing in flight.
    pub fn new() -> Self {
        PortAccounting {
            next_cid: 0,
            live: HashSet::new(),
            submitted: 0,
            completed: 0,
            max_in_flight: 0,
            depth: Histogram::new(),
            retries: 0,
            timeouts: 0,
            error_completions: 0,
            dropped_completions: 0,
        }
    }

    /// Allocate the CID for a new submission and mark it live.
    ///
    /// Allocation is a wrapping scan that skips CIDs still in flight, so
    /// a wrapped 16-bit counter can never collide with an outstanding
    /// command (the bug the old global `wrapping_add(1)` allocator had).
    pub fn begin(&mut self) -> CommandId {
        assert!(
            self.live.len() < usize::from(CommandId::MAX),
            "I/O port exhausted: {} commands in flight, no free CID",
            self.live.len()
        );
        let mut cid = self.next_cid;
        while self.live.contains(&cid) {
            cid = cid.wrapping_add(1);
        }
        self.next_cid = cid.wrapping_add(1);
        let fresh = self.live.insert(cid);
        debug_assert!(fresh, "cid {cid} allocated while still in flight");
        self.submitted += 1;
        self.max_in_flight = self.max_in_flight.max(self.live.len());
        self.depth.record(self.live.len() as f64);
        cid
    }

    /// Retire `cid` after its completion is delivered. Returns whether it
    /// was live on this port (completions for CIDs submitted around the
    /// port — e.g. raw `NvmeController::submit` callers — are ignored).
    pub fn finish(&mut self, cid: CommandId) -> bool {
        let was_live = self.live.remove(&cid);
        if was_live {
            self.completed += 1;
        }
        was_live
    }

    /// Whether `cid` is currently in flight on this port.
    pub fn is_live(&self, cid: CommandId) -> bool {
        self.live.contains(&cid)
    }

    /// Commands currently in flight.
    pub fn in_flight(&self) -> usize {
        self.live.len()
    }

    /// Total commands submitted through this port.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Total completions delivered through this port.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// High-water mark of the in-flight depth.
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    /// Distribution of in-flight depth sampled at each submission.
    pub fn depth_histogram(&self) -> &Histogram {
        &self.depth
    }

    /// Count one driver retry (resubmission of an existing CID).
    pub fn record_retry(&mut self) {
        self.retries += 1;
    }

    /// Count one command timeout (deadline expired, command aborted).
    pub fn record_timeout(&mut self) {
        self.timeouts += 1;
    }

    /// Count one error completion swallowed by the retry loop.
    pub fn record_error_completion(&mut self) {
        self.error_completions += 1;
    }

    /// Count one lost completion (injected drop).
    pub fn record_dropped_completion(&mut self) {
        self.dropped_completions += 1;
    }

    /// Driver retries so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Command timeouts so far.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Error completions swallowed so far.
    pub fn error_completions(&self) -> u64 {
        self.error_completions
    }

    /// Lost completions so far.
    pub fn dropped_completions(&self) -> u64 {
        self.dropped_completions
    }
}

impl Default for PortAccounting {
    fn default() -> Self {
        Self::new()
    }
}

impl simkit::Instrument for PortAccounting {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.counter("submitted", self.submitted);
        out.counter("completed", self.completed);
        out.gauge("inflight", self.live.len() as f64);
        out.gauge("max_inflight", self.max_in_flight as f64);
        out.latency("depth", &self.depth);
        // Fault-path counters appear only once a fault has actually been
        // injected, so fault-free snapshots keep their frozen layout.
        if self.retries > 0 {
            out.counter("retry.resubmits", self.retries);
        }
        if self.timeouts > 0 {
            out.counter("fault.timeouts", self.timeouts);
        }
        if self.error_completions > 0 {
            out.counter("fault.error_completions", self.error_completions);
        }
        if self.dropped_completions > 0 {
            out.counter("fault.dropped_completions", self.dropped_completions);
        }
    }
}

/// The single closed-loop wait every `*_blocking` helper routes through:
/// poll the port, drain its completions, and jump virtual time straight
/// to the port's next scheduled event until the tagged command completes.
///
/// Completions for *other* in-flight commands drained while waiting are
/// discarded (their tags are retired) — exactly the behaviour of the
/// pre-port blocking helpers; pipelined callers drain the port themselves
/// instead of using this adapter.
///
/// Panics with the structured [`SimError::Stall`] report if the port goes
/// idle before the tag completes (a stalled device model is a simulation
/// bug); chaos harnesses that want the error instead use
/// [`try_drive_to_completion`].
pub fn drive_to_completion<P: IoPort + ?Sized>(
    port: &mut P,
    from: SimTime,
    tag: CmdTag,
    scratch: &mut Vec<Completion>,
) -> Completion {
    try_drive_to_completion(port, from, tag, scratch).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`drive_to_completion`]: a port that goes idle with
/// the tag still outstanding yields [`SimError::Stall`] carrying a
/// diagnostic snapshot (virtual time, in-flight count, the waiting CID)
/// instead of unwinding.
pub fn try_drive_to_completion<P: IoPort + ?Sized>(
    port: &mut P,
    from: SimTime,
    tag: CmdTag,
    scratch: &mut Vec<Completion>,
) -> Result<Completion, Box<SimError>> {
    let mut horizon = from;
    loop {
        port.poll(horizon);
        scratch.clear();
        port.completions_into(horizon, scratch);
        if let Some(done) = scratch.iter().find(|c| c.entry.cid == tag.0) {
            return Ok(*done);
        }
        match port.next_port_event_at() {
            Some(t) => horizon = t.max(horizon),
            None => {
                let snapshot = DiagnosticSnapshot::new(horizon, port.in_flight())
                    .detail(format!("command cid={} never completed", tag.0));
                return Err(Box::new(SimError::stall("I/O port", from, snapshot)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cid_allocation_skips_live_cids() {
        let mut acct = PortAccounting::new();
        let a = acct.begin();
        let b = acct.begin();
        assert_ne!(a, b);
        assert_eq!(acct.in_flight(), 2);
        // Force the counter to wrap onto a live CID: it must skip it.
        let mut seen = HashSet::new();
        seen.insert(a);
        seen.insert(b);
        for _ in 0..u32::from(CommandId::MAX) - 1 {
            let cid = acct.begin();
            assert!(seen.insert(cid), "cid {cid} reissued while live");
            acct.finish(cid);
            seen.remove(&cid);
        }
        // The counter has wrapped past `a` and `b`; they stayed unique.
        assert_eq!(acct.in_flight(), 2);
        assert!(acct.finish(a));
        assert!(acct.finish(b));
        assert_eq!(acct.in_flight(), 0);
    }

    #[test]
    fn finish_ignores_foreign_cids() {
        let mut acct = PortAccounting::new();
        let cid = acct.begin();
        assert!(!acct.finish(cid.wrapping_add(7)));
        assert!(acct.finish(cid));
        assert_eq!(acct.completed(), 1);
        assert_eq!(acct.submitted(), 1);
    }

    #[test]
    fn depth_telemetry_tracks_high_water_mark() {
        let mut acct = PortAccounting::new();
        let a = acct.begin();
        let b = acct.begin();
        let c = acct.begin();
        acct.finish(b);
        acct.finish(a);
        assert_eq!(acct.max_in_flight(), 3);
        assert_eq!(acct.in_flight(), 1);
        assert_eq!(acct.depth_histogram().count(), 3);
        acct.finish(c);
        let mut reg = simkit::MetricsRegistry::new();
        reg.collect("port", &acct);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("port.submitted"), 3);
        assert_eq!(snap.counter("port.completed"), 3);
        assert_eq!(snap.gauge("port.max_inflight"), 3.0);
        assert_eq!(snap.gauge("port.inflight"), 0.0);
    }
}
