//! Submission/completion queue rings and doorbells.
//!
//! Paper §2.1: "the OS encodes work as an NVMe command and places it in a
//! command submission queue shared with the device. The OS signals the
//! device whenever it adds new commands through a mechanism called a
//! doorbell." The rings live in host memory; the device fetches entries and
//! posts completions back.

use crate::command::{Command, CompletionEntry};
use std::collections::VecDeque;

/// Errors from ring operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueError {
    /// The ring is full; the host must wait for the device to consume.
    Full,
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::Full => f.write_str("queue full"),
        }
    }
}

impl std::error::Error for QueueError {}

/// Identifies a queue pair (admin queue is 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueueId(pub u16);

impl QueueId {
    /// The admin queue pair.
    pub const ADMIN: QueueId = QueueId(0);
}

/// A bounded submission ring.
#[derive(Debug, Clone)]
pub struct SubmissionQueue {
    id: QueueId,
    depth: usize,
    ring: VecDeque<Command>,
    doorbell: u64,
    fetched: u64,
}

impl SubmissionQueue {
    /// A ring of `depth` entries.
    pub fn new(id: QueueId, depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be positive");
        SubmissionQueue { id, depth, ring: VecDeque::with_capacity(depth), doorbell: 0, fetched: 0 }
    }

    /// The queue id.
    pub fn id(&self) -> QueueId {
        self.id
    }

    /// Configured depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Host side: place a command and ring the doorbell.
    pub fn push(&mut self, cmd: Command) -> Result<(), QueueError> {
        if self.ring.len() >= self.depth {
            return Err(QueueError::Full);
        }
        self.ring.push_back(cmd);
        self.doorbell += 1;
        Ok(())
    }

    /// Device side: fetch the oldest unconsumed command.
    pub fn fetch(&mut self) -> Option<Command> {
        let cmd = self.ring.pop_front();
        if cmd.is_some() {
            self.fetched += 1;
        }
        cmd
    }

    /// Entries currently waiting.
    pub fn occupancy(&self) -> usize {
        self.ring.len()
    }

    /// True if no entries wait.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Doorbell value (total commands ever submitted).
    pub fn doorbell(&self) -> u64 {
        self.doorbell
    }

    /// Total commands the device has fetched.
    pub fn fetched(&self) -> u64 {
        self.fetched
    }
}

/// A bounded completion ring.
#[derive(Debug, Clone)]
pub struct CompletionQueue {
    id: QueueId,
    depth: usize,
    ring: VecDeque<CompletionEntry>,
}

impl CompletionQueue {
    /// A ring of `depth` entries.
    pub fn new(id: QueueId, depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be positive");
        CompletionQueue { id, depth, ring: VecDeque::with_capacity(depth) }
    }

    /// The queue id.
    pub fn id(&self) -> QueueId {
        self.id
    }

    /// Device side: post a completion (raises the "interrupt").
    pub fn post(&mut self, entry: CompletionEntry) -> Result<(), QueueError> {
        if self.ring.len() >= self.depth {
            return Err(QueueError::Full);
        }
        self.ring.push_back(entry);
        Ok(())
    }

    /// Host side: reap the oldest completion.
    pub fn reap(&mut self) -> Option<CompletionEntry> {
        self.ring.pop_front()
    }

    /// Completions waiting to be reaped.
    pub fn occupancy(&self) -> usize {
        self.ring.len()
    }
}

/// A paired submission + completion ring.
#[derive(Debug, Clone)]
pub struct QueuePair {
    /// Submission ring.
    pub sq: SubmissionQueue,
    /// Completion ring.
    pub cq: CompletionQueue,
}

impl QueuePair {
    /// A pair with equal-depth rings.
    pub fn new(id: QueueId, depth: usize) -> Self {
        QueuePair { sq: SubmissionQueue::new(id, depth), cq: CompletionQueue::new(id, depth) }
    }

    /// Commands submitted but not yet completed (in the device).
    pub fn inflight(&self) -> u64 {
        // fetched - completed-so-far is not tracked here; approximate with
        // doorbell - (doorbell - sq occupancy) - cq occupancy... Keep the
        // simple, correct definition: submitted minus reaped is maintained
        // by the driver; the pair exposes ring occupancies.
        self.sq.occupancy() as u64 + self.cq.occupancy() as u64
    }
}

impl simkit::Instrument for SubmissionQueue {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.counter("doorbell_writes", self.doorbell);
        out.counter("fetched", self.fetched);
        out.gauge("occupancy", self.ring.len() as f64);
    }
}

impl simkit::Instrument for CompletionQueue {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.gauge("occupancy", self.ring.len() as f64);
    }
}

impl simkit::Instrument for QueuePair {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.collect("sq", &self.sq);
        out.collect("cq", &self.cq);
        out.gauge("ring_occupancy", self.inflight() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{CommandKind, IoCommand, Status};

    fn write_cmd(cid: u16) -> Command {
        Command { cid, kind: CommandKind::Io(IoCommand::Write { lba: 0, blocks: 8 }) }
    }

    #[test]
    fn fifo_submission_and_fetch() {
        let mut sq = SubmissionQueue::new(QueueId(1), 4);
        sq.push(write_cmd(1)).unwrap();
        sq.push(write_cmd(2)).unwrap();
        assert_eq!(sq.doorbell(), 2);
        assert_eq!(sq.fetch().unwrap().cid, 1);
        assert_eq!(sq.fetch().unwrap().cid, 2);
        assert_eq!(sq.fetch(), None);
        assert_eq!(sq.fetched(), 2);
    }

    #[test]
    fn submission_queue_full() {
        let mut sq = SubmissionQueue::new(QueueId(1), 2);
        sq.push(write_cmd(1)).unwrap();
        sq.push(write_cmd(2)).unwrap();
        assert_eq!(sq.push(write_cmd(3)), Err(QueueError::Full));
        sq.fetch();
        sq.push(write_cmd(3)).unwrap();
    }

    #[test]
    fn completion_round_trip() {
        let mut cq = CompletionQueue::new(QueueId(1), 4);
        cq.post(CompletionEntry::ok(9)).unwrap();
        cq.post(CompletionEntry::err(10, Status::MediaError)).unwrap();
        assert_eq!(cq.occupancy(), 2);
        assert_eq!(cq.reap().unwrap().cid, 9);
        let e = cq.reap().unwrap();
        assert_eq!(e.status, Status::MediaError);
        assert_eq!(cq.reap(), None);
    }

    #[test]
    fn completion_queue_full() {
        let mut cq = CompletionQueue::new(QueueId(1), 1);
        cq.post(CompletionEntry::ok(1)).unwrap();
        assert_eq!(cq.post(CompletionEntry::ok(2)), Err(QueueError::Full));
    }

    #[test]
    fn queue_pair_construction() {
        let qp = QueuePair::new(QueueId(3), 16);
        assert_eq!(qp.sq.id(), QueueId(3));
        assert_eq!(qp.sq.depth(), 16);
        assert_eq!(qp.inflight(), 0);
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_rejected() {
        let _ = SubmissionQueue::new(QueueId(1), 0);
    }
}
