//! Measurement collection for experiments.
//!
//! The paper reports means, log-scale latency curves, throughput series, and
//! candlestick (min/quartile/max) summaries (Fig. 13). Experiments here are
//! small enough that we keep exact samples and compute summaries directly —
//! no sketches, no reservoir sampling, fully reproducible.

use crate::time::{SimDuration, SimTime};

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Five-number summary used for candlestick plots (paper Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candlestick {
    /// Smallest sample.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Largest sample.
    pub max: f64,
}

/// An exact sample collection with percentile queries.
#[derive(Debug, Clone, Default)]
pub struct SampleSeries {
    samples: Vec<f64>,
    sorted: bool,
}

impl SampleSeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Record a duration sample in microseconds (the unit the paper plots).
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros_f64());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Percentile in `[0, 100]` by nearest-rank interpolation. Returns 0 for
    /// an empty series.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let rank = p / 100.0 * (self.samples.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            self.samples[lo]
        } else {
            let frac = rank - lo as f64;
            self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac
        }
    }

    /// Five-number candlestick summary.
    pub fn candlestick(&mut self) -> Candlestick {
        Candlestick {
            min: self.percentile(0.0),
            p25: self.percentile(25.0),
            p50: self.percentile(50.0),
            p75: self.percentile(75.0),
            max: self.percentile(100.0),
        }
    }

    /// Borrow the raw samples (unsorted insertion order is not preserved
    /// after a percentile query).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
    }
}

/// Events-and-bytes throughput accounting over a simulated window.
#[derive(Debug, Clone, Default)]
pub struct ThroughputMeter {
    events: u64,
    bytes: u64,
}

impl ThroughputMeter {
    /// Empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one event carrying `bytes` of payload.
    pub fn record(&mut self, bytes: u64) {
        self.events += 1;
        self.bytes += bytes;
    }

    /// Record `n` events carrying `bytes` total.
    pub fn record_many(&mut self, n: u64, bytes: u64) {
        self.events += n;
        self.bytes += bytes;
    }

    /// Total events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Events per second over the window ending at `elapsed`.
    pub fn events_per_sec(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.events as f64 / elapsed.as_secs_f64()
        }
    }

    /// Decimal megabytes per second over the window.
    pub fn mbytes_per_sec(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.bytes as f64 / 1e6 / elapsed.as_secs_f64()
        }
    }
}

/// A power-of-two-bucketed histogram for latency-class quantities: bucket
/// `i` counts samples in `[2^i, 2^(i+1))` of the base unit. Cheap to
/// record, compact to print, adequate when the exact-sample
/// [`SampleSeries`] would grow too large.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram covering `[1, 2^48)` of the base unit.
    pub fn new() -> Self {
        Histogram { buckets: vec![0; 48], count: 0, sum: 0.0 }
    }

    fn bucket_of(x: f64) -> usize {
        if x < 1.0 {
            0
        } else {
            (x.log2() as usize).min(47)
        }
    }

    /// Record one observation (non-negative).
    pub fn record(&mut self, x: f64) {
        debug_assert!(x >= 0.0);
        self.buckets[Self::bucket_of(x)] += 1;
        self.count += 1;
        self.sum += x;
    }

    /// Record a duration in microseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros_f64());
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate percentile: the lower bound of the bucket where the
    /// p-quantile falls (a guaranteed under-estimate within 2x).
    pub fn percentile_lower_bound(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p));
        if self.count == 0 {
            return 0.0;
        }
        let target = (p / 100.0 * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 0 { 0.0 } else { (1u64 << i) as f64 };
            }
        }
        (1u64 << 47) as f64
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs, ascending.
    pub fn non_empty(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (if i == 0 { 0.0 } else { (1u64 << i) as f64 }, *c))
            .collect()
    }
}

/// A labelled series point for figure output: `(x, value)` plus an optional
/// candlestick. This is the row format the figure harnesses print.
#[derive(Debug, Clone)]
pub struct SeriesPoint {
    /// X-axis value (worker count, write size, period in µs, ...).
    pub x: f64,
    /// Primary Y value (mean latency, throughput, ...).
    pub y: f64,
    /// Optional distribution summary.
    pub candle: Option<Candlestick>,
}

/// Convert a time window to a human-readable observation horizon.
pub fn window(start: SimTime, end: SimTime) -> SimDuration {
    end.saturating_since(start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_mean_var() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let mut s = SampleSeries::new();
        for x in 1..=100 {
            s.record(x as f64);
        }
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert!((s.percentile(50.0) - 50.5).abs() < 1e-9);
        let c = s.candlestick();
        assert!(c.min <= c.p25 && c.p25 <= c.p50 && c.p50 <= c.p75 && c.p75 <= c.max);
    }

    #[test]
    fn percentile_of_empty_is_zero() {
        let mut s = SampleSeries::new();
        assert_eq!(s.percentile(50.0), 0.0);
    }

    #[test]
    fn single_sample_candle_is_flat() {
        let mut s = SampleSeries::new();
        s.record(3.5);
        let c = s.candlestick();
        assert_eq!(c.min, 3.5);
        assert_eq!(c.max, 3.5);
        assert_eq!(c.p50, 3.5);
    }

    #[test]
    fn record_duration_uses_micros() {
        let mut s = SampleSeries::new();
        s.record_duration(SimDuration::from_micros(5));
        assert_eq!(s.samples()[0], 5.0);
    }

    #[test]
    fn throughput_meter() {
        let mut m = ThroughputMeter::new();
        m.record(1000);
        m.record_many(9, 9000);
        assert_eq!(m.events(), 10);
        assert_eq!(m.bytes(), 10_000);
        let w = SimDuration::from_millis(1);
        assert!((m.events_per_sec(w) - 10_000.0).abs() < 1e-6);
        assert!((m.mbytes_per_sec(w) - 10.0).abs() < 1e-9);
        assert_eq!(m.events_per_sec(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = Histogram::new();
        for x in [0.5, 1.0, 3.0, 3.9, 8.0, 9.0, 100.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 7);
        assert!((h.mean() - 125.4 / 7.0).abs() < 1e-9);
        let buckets = h.non_empty();
        // 0.5 -> [0,2); 1.0 -> [1,2); 3.0,3.9 -> [2,4); 8,9 -> [8,16); 100 -> [64,128)
        assert_eq!(buckets.iter().map(|(_, c)| *c).sum::<u64>(), 7);
        // Median falls in the [2,4) bucket -> lower bound 2.
        assert_eq!(h.percentile_lower_bound(50.0), 2.0);
        assert_eq!(h.percentile_lower_bound(100.0), 64.0);
        assert_eq!(Histogram::new().percentile_lower_bound(50.0), 0.0);
    }

    #[test]
    fn histogram_duration_recording() {
        let mut h = Histogram::new();
        h.record_duration(SimDuration::from_micros(33));
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile_lower_bound(50.0), 32.0);
    }

    #[test]
    fn window_helper() {
        let w = window(SimTime::from_nanos(10), SimTime::from_nanos(110));
        assert_eq!(w.as_nanos(), 100);
    }
}
