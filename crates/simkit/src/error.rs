//! Structured simulation errors with diagnostic snapshots.
//!
//! A stalled device model or a violated hot-path invariant used to surface
//! as a bare `panic!` — fine for a unit test, useless in a chaos run where
//! the interesting question is *what the stack looked like* when progress
//! stopped. [`SimError`] packages the failure class together with a
//! [`DiagnosticSnapshot`] (virtual time, in-flight commands, queue depths)
//! so fallible entry points (`Cluster::try_wait_for_completion`,
//! `try_drive_to_completion`) return an actionable report, and the
//! infallible wrappers panic with the same structured text instead of a
//! bare message.

use crate::time::SimTime;
use std::fmt;

/// What the simulation looked like at the instant of failure.
#[derive(Debug, Clone, Default)]
pub struct DiagnosticSnapshot {
    /// Virtual time of the failure.
    pub at: SimTime,
    /// Commands in flight on the failing port/device.
    pub in_flight: usize,
    /// Named queue depths (ring occupancy, pending events, …).
    pub queue_depths: Vec<(&'static str, u64)>,
    /// Per-domain next-event times (`None` = idle): in a multi-device
    /// simulation the *global* frontier alone cannot distinguish "everyone
    /// is idle" from "domain 3 is wedged while the others wait on it", so
    /// stall reports list every domain's frontier.
    pub domain_frontiers: Vec<(usize, Option<SimTime>)>,
    /// Free-form context from the failure site.
    pub detail: String,
}

impl DiagnosticSnapshot {
    /// Snapshot at `at` with `in_flight` commands outstanding.
    pub fn new(at: SimTime, in_flight: usize) -> Self {
        DiagnosticSnapshot {
            at,
            in_flight,
            queue_depths: Vec::new(),
            domain_frontiers: Vec::new(),
            detail: String::new(),
        }
    }

    /// Attach a named queue depth.
    pub fn queue(mut self, name: &'static str, depth: u64) -> Self {
        self.queue_depths.push((name, depth));
        self
    }

    /// Attach one domain's next-event time (`None` = idle).
    pub fn domain_frontier(mut self, domain: usize, next: Option<SimTime>) -> Self {
        self.domain_frontiers.push((domain, next));
        self
    }

    /// Attach free-form context.
    pub fn detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = detail.into();
        self
    }

    /// Append further free-form context, preserving what the original
    /// failure site recorded (used by wrappers enriching a propagated
    /// error).
    pub fn detail_suffix(mut self, detail: impl Into<String>) -> Self {
        if self.detail.is_empty() {
            self.detail = detail.into();
        } else {
            self.detail.push_str("; ");
            self.detail.push_str(&detail.into());
        }
        self
    }
}

impl fmt::Display for DiagnosticSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}us, {} in flight", self.at.as_micros_f64(), self.in_flight)?;
        for (name, depth) in &self.queue_depths {
            write!(f, ", {name}={depth}")?;
        }
        for (dom, next) in &self.domain_frontiers {
            match next {
                Some(t) => write!(f, ", dom{dom}.next={}us", t.as_micros_f64())?,
                None => write!(f, ", dom{dom}.next=idle")?,
            }
        }
        if !self.detail.is_empty() {
            write!(f, "; {}", self.detail)?;
        }
        Ok(())
    }
}

/// A structured simulation failure.
#[derive(Debug, Clone)]
pub enum SimError {
    /// A port/device went idle while a command was still outstanding —
    /// the simulation cannot make progress.
    Stall {
        /// The failing site ("cluster device 2 port", "nvme driver", …).
        site: String,
        /// When the stalled wait began.
        waiting_since: SimTime,
        /// The state of the stack at stall detection.
        snapshot: DiagnosticSnapshot,
    },
    /// A hot-path invariant was violated (e.g. a CMB read outside the live
    /// ring window).
    Invariant {
        /// The failing site.
        site: String,
        /// The state of the stack at the violation.
        snapshot: DiagnosticSnapshot,
    },
}

impl SimError {
    /// Build a stall error.
    pub fn stall(
        site: impl Into<String>,
        waiting_since: SimTime,
        snapshot: DiagnosticSnapshot,
    ) -> Self {
        SimError::Stall { site: site.into(), waiting_since, snapshot }
    }

    /// Build an invariant-violation error.
    pub fn invariant(site: impl Into<String>, snapshot: DiagnosticSnapshot) -> Self {
        SimError::Invariant { site: site.into(), snapshot }
    }

    /// The diagnostic snapshot, whatever the failure class.
    pub fn snapshot(&self) -> &DiagnosticSnapshot {
        match self {
            SimError::Stall { snapshot, .. } | SimError::Invariant { snapshot, .. } => snapshot,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Stall { site, waiting_since, snapshot } => write!(
                f,
                "simulation stalled at {site}: waiting since t={}us [{snapshot}]",
                waiting_since.as_micros_f64()
            ),
            SimError::Invariant { site, snapshot } => {
                write!(f, "invariant violated at {site} [{snapshot}]")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_diagnostics() {
        let snap = DiagnosticSnapshot::new(SimTime::from_micros(42), 3)
            .queue("sq", 7)
            .domain_frontier(0, Some(SimTime::from_micros(50)))
            .domain_frontier(1, None)
            .detail("cid=9 never completed");
        let e = SimError::stall("test port", SimTime::from_micros(10), snap);
        let s = e.to_string();
        assert!(s.contains("test port"), "{s}");
        assert!(s.contains("t=42us"), "{s}");
        assert!(s.contains("3 in flight"), "{s}");
        assert!(s.contains("sq=7"), "{s}");
        assert!(s.contains("dom0.next=50us"), "{s}");
        assert!(s.contains("dom1.next=idle"), "{s}");
        assert!(s.contains("cid=9"), "{s}");
    }

    #[test]
    fn invariant_display() {
        let e = SimError::invariant(
            "cmb ring",
            DiagnosticSnapshot::new(SimTime::ZERO, 0).detail("read outside live window"),
        );
        assert!(e.to_string().contains("invariant violated at cmb ring"));
        assert_eq!(e.snapshot().in_flight, 0);
    }
}
