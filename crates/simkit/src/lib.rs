//! # simkit — discrete-event simulation kernel
//!
//! The foundation every hardware model in the X-SSD reproduction is built on:
//!
//! - [`time`] — virtual nanosecond clock ([`SimTime`], [`SimDuration`]);
//! - [`events`] — deterministic per-device event calendars ([`EventQueue`]):
//!   indexed binary heaps with O(1) frontier peek, O(log n) in-place
//!   cancellation, and generation-tagged [`EventId`] handles; plus the
//!   conservative parallel-discrete-event layer ([`Domain`],
//!   [`DomainScheduler`]) that advances independent event domains
//!   concurrently inside a shared lookahead window;
//! - [`pool`] — the persistent parked-worker pool ([`WorkerPool`]) the
//!   domain scheduler executes windows on;
//! - [`resource`] — contention primitives ([`SerialResource`],
//!   [`BankedResource`], [`Link`]) where interference *emerges* from queueing;
//! - [`bandwidth`] — rate arithmetic in the units hardware specs use;
//! - [`stats`] — exact sample series, candlesticks, throughput meters;
//! - [`rng`] — explicitly seeded randomness for replayable workloads;
//! - [`bytes`] — cheaply cloneable immutable payload buffers;
//! - [`telemetry`] — the cross-stack metrics registry every device model
//!   reports into, with snapshot/diff phase measurement and JSON export;
//! - [`faults`] — deterministic fault injection ([`FaultPlan`],
//!   [`FaultHook`]): seed-reproducible fault schedules threaded through
//!   every layer, inert (zero draws, zero latency) when disarmed;
//! - [`error`] — structured simulation failures ([`SimError`]) carrying a
//!   diagnostic snapshot (time, in-flight commands, queue depths).
//!
//! Design note: there is intentionally no global scheduler or actor runtime.
//! Each device owns its own calendar and exposes `advance_to(t)`; a
//! higher-level coordinator (e.g. `xssd_core::Cluster`) interleaves device
//! calendars in global time order — or, in parallel mode, carves them into
//! [`Domain`]s and lets a [`DomainScheduler`] run them concurrently up to a
//! lookahead barrier, with a deterministic mailbox exchange keeping the
//! schedule event-for-event identical to the sequential interleaving. This
//! keeps ownership simple (no `Rc<RefCell>` graphs) and the simulation
//! fully deterministic.

#![warn(missing_docs)]

pub mod bandwidth;
pub mod bytes;
pub mod error;
pub mod events;
pub mod faults;
pub mod pool;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod time;

pub use bandwidth::Bandwidth;
pub use bytes::Bytes;
pub use error::{DiagnosticSnapshot, SimError};
pub use events::{Domain, DomainScheduler, DomainStats, EventId, EventQueue, Routed};
pub use faults::{FaultHook, FaultPlan};
pub use pool::WorkerPool;
pub use resource::{BankedResource, Grant, Link, LinkStats, SerialResource};
pub use rng::{DetRng, Zipfian};
pub use stats::{Candlestick, Histogram, OnlineStats, SampleSeries, SeriesPoint, ThroughputMeter};
pub use telemetry::{Instrument, MetricValue, MetricsRegistry, Scope, Snapshot};
pub use time::{SimDuration, SimTime};

#[cfg(test)]
mod integration_tests {
    use super::*;

    /// A miniature end-to-end sanity check: pump fixed-size writes through a
    /// link feeding a serial "memory" and confirm the pipeline's steady-state
    /// throughput equals the slower stage.
    #[test]
    fn pipeline_throughput_is_bottleneck_bound() {
        let mut link = Link::new(Bandwidth::gbytes_per_sec(4.0), 24);
        let mut memory = SerialResource::new();
        let mem_bw = Bandwidth::gbytes_per_sec(1.0);

        let write = 4096u64;
        let n = 1000u64;
        let mut now = SimTime::ZERO;
        let mut done = SimTime::ZERO;
        for _ in 0..n {
            let g = link.transmit(now, write);
            let m = memory.acquire(g.end, mem_bw.transfer_time(write));
            done = m.end;
            now = g.end; // issue next write as soon as the link frees
        }
        let elapsed = done.saturating_since(SimTime::ZERO);
        let gbps = (n * write) as f64 / elapsed.as_secs_f64() / 1e9;
        // Memory at 1 GB/s is the bottleneck; expect within 5%.
        assert!((gbps - 1.0).abs() < 0.05, "throughput {gbps} GB/s");
    }

    /// Deterministic replay: the same seed and schedule produce the same
    /// measurement series.
    #[test]
    fn deterministic_replay() {
        fn run(seed: u64) -> Vec<f64> {
            let mut rng = DetRng::new(seed);
            let mut link = Link::new(Bandwidth::gbytes_per_sec(2.0), 20);
            let mut lat = SampleSeries::new();
            let mut now = SimTime::ZERO;
            for _ in 0..200 {
                let size = rng.uniform(64, 4096);
                let g = link.transmit(now, size);
                lat.record_duration(g.latency_from(now));
                now += SimDuration::from_nanos(rng.uniform(0, 500));
            }
            lat.samples().to_vec()
        }
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }
}
