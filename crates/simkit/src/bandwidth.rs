//! Bandwidth arithmetic.
//!
//! Stored internally as **nanoseconds per byte** (`f64`) so that transfer
//! times are a single multiply; constructors accept the units hardware specs
//! are quoted in (GB/s, MB/s, bytes per clock at a given frequency).

use crate::time::SimDuration;
use std::fmt;

/// A data rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bandwidth {
    ns_per_byte: f64,
}

impl Bandwidth {
    /// From bytes per nanosecond (1 B/ns == ~0.93 GiB/s, exactly 1 GB/s).
    pub fn bytes_per_ns(bpn: f64) -> Self {
        assert!(bpn > 0.0 && bpn.is_finite(), "bandwidth must be positive");
        Bandwidth { ns_per_byte: 1.0 / bpn }
    }

    /// From decimal gigabytes per second.
    pub fn gbytes_per_sec(gbps: f64) -> Self {
        Self::bytes_per_ns(gbps)
    }

    /// From decimal megabytes per second.
    pub fn mbytes_per_sec(mbps: f64) -> Self {
        Self::bytes_per_ns(mbps / 1e3)
    }

    /// From a bus description: `width_bits` transferred per cycle at
    /// `mhz` megahertz. This is how the paper quotes the CMB backing
    /// memories (e.g. 128-bit @ 250 MHz = 4 GB/s).
    pub fn bus(width_bits: u32, mhz: f64) -> Self {
        let bytes_per_cycle = width_bits as f64 / 8.0;
        let cycles_per_ns = mhz / 1e3;
        Self::bytes_per_ns(bytes_per_cycle * cycles_per_ns)
    }

    /// Nanoseconds needed to move `bytes` at this rate (rounded up, minimum
    /// 1 ns for a non-empty transfer so no transfer is free).
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let ns = (bytes as f64 * self.ns_per_byte).ceil().max(1.0);
        SimDuration::from_nanos(ns as u64)
    }

    /// The rate in decimal gigabytes per second.
    pub fn as_gbytes_per_sec(&self) -> f64 {
        1.0 / self.ns_per_byte
    }

    /// The rate in bytes per nanosecond.
    pub fn as_bytes_per_ns(&self) -> f64 {
        1.0 / self.ns_per_byte
    }

    /// A rate scaled by `factor` (e.g. contention derating of a shared
    /// DRAM port).
    pub fn scaled(&self, factor: f64) -> Bandwidth {
        assert!(factor > 0.0 && factor.is_finite(), "scale factor must be positive");
        Bandwidth { ns_per_byte: self.ns_per_byte / factor }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = self.as_gbytes_per_sec();
        if g >= 1.0 {
            write!(f, "{g:.2} GB/s")
        } else {
            write!(f, "{:.1} MB/s", g * 1e3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gb_per_sec_round_trip() {
        let bw = Bandwidth::gbytes_per_sec(2.0);
        assert!((bw.as_gbytes_per_sec() - 2.0).abs() < 1e-12);
        // 2 GB/s == 2 bytes per ns -> 1 KiB takes 512 ns.
        assert_eq!(bw.transfer_time(1024).as_nanos(), 512);
    }

    #[test]
    fn mb_per_sec() {
        let bw = Bandwidth::mbytes_per_sec(500.0);
        assert_eq!(bw.transfer_time(500).as_nanos(), 1000);
    }

    #[test]
    fn bus_description_matches_paper_numbers() {
        // Paper §6: 128-bit bus @ 250 MHz = 4 GB/s (SRAM backing).
        let sram = Bandwidth::bus(128, 250.0);
        assert!((sram.as_gbytes_per_sec() - 4.0).abs() < 1e-9);
        // 64-bit bus @ 250 MHz = 2 GB/s (DRAM backing path).
        let dram = Bandwidth::bus(64, 250.0);
        assert!((dram.as_gbytes_per_sec() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_is_free_but_one_byte_is_not() {
        let bw = Bandwidth::gbytes_per_sec(100.0);
        assert_eq!(bw.transfer_time(0), SimDuration::ZERO);
        assert!(bw.transfer_time(1).as_nanos() >= 1);
    }

    #[test]
    fn scaling() {
        let bw = Bandwidth::gbytes_per_sec(4.0).scaled(0.5);
        assert!((bw.as_gbytes_per_sec() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn display_units() {
        assert_eq!(Bandwidth::gbytes_per_sec(2.0).to_string(), "2.00 GB/s");
        assert_eq!(Bandwidth::mbytes_per_sec(80.0).to_string(), "80.0 MB/s");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_bandwidth() {
        let _ = Bandwidth::bytes_per_ns(0.0);
    }
}
