//! Contention primitives.
//!
//! The whole device stack models shared hardware — PCIe links, DRAM ports,
//! flash dies — as *resources* that serialize work. A request against a
//! resource yields a `(start, end)` window; contention emerges from requests
//! queueing behind each other's `busy_until` horizon rather than from
//! closed-form utilization formulas. This keeps interference experiments
//! (paper §6.4) emergent instead of hand-tuned.

use crate::bandwidth::Bandwidth;
use crate::time::{SimDuration, SimTime};

/// The service window granted to a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service actually starts (>= request time under contention).
    pub start: SimTime,
    /// When service completes.
    pub end: SimTime,
}

impl Grant {
    /// Total time from request to completion.
    pub fn latency_from(&self, requested_at: SimTime) -> SimDuration {
        self.end.saturating_since(requested_at)
    }

    /// Time spent waiting before service began.
    pub fn queueing_delay(&self, requested_at: SimTime) -> SimDuration {
        self.start.saturating_since(requested_at)
    }
}

/// A single-server FIFO resource (e.g. one flash die, a DMA engine).
///
/// Work requested at `now` begins at `max(now, busy_until)` and holds the
/// resource for `service` time.
#[derive(Debug, Clone, Default)]
pub struct SerialResource {
    busy_until: SimTime,
    busy_accum: SimDuration,
    requests: u64,
}

impl SerialResource {
    /// A resource that is idle from t=0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `service` time starting no earlier than `now`.
    pub fn acquire(&mut self, now: SimTime, service: SimDuration) -> Grant {
        let start = now.max(self.busy_until);
        let end = start + service;
        self.busy_until = end;
        self.busy_accum += service;
        self.requests += 1;
        Grant { start, end }
    }

    /// The instant the resource next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Whether the resource would be idle at `now`.
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Total service time ever granted.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_accum
    }

    /// Number of requests served.
    pub fn request_count(&self) -> u64 {
        self.requests
    }

    /// Fraction of the window `[SimTime::ZERO, horizon]` spent busy.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.busy_accum.as_nanos() as f64 / horizon.as_nanos() as f64
    }
}

/// A pool of identical servers (e.g. the dies of one flash channel viewed
/// from the channel scheduler, or the lanes of a multi-queue DMA engine).
/// Requests go to the server that frees up first.
#[derive(Debug, Clone)]
pub struct BankedResource {
    banks: Vec<SerialResource>,
}

impl BankedResource {
    /// Create a pool with `n` servers. Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a banked resource needs at least one bank");
        BankedResource { banks: vec![SerialResource::new(); n] }
    }

    /// Number of servers.
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// Request `service` time on the earliest-free server.
    pub fn acquire(&mut self, now: SimTime, service: SimDuration) -> Grant {
        let idx = self.earliest_free();
        self.banks[idx].acquire(now, service)
    }

    /// Request `service` time on a specific server (e.g. a die addressed by
    /// the FTL's physical mapping).
    pub fn acquire_bank(&mut self, bank: usize, now: SimTime, service: SimDuration) -> Grant {
        self.banks[bank].acquire(now, service)
    }

    /// The instant bank `bank` next becomes idle.
    pub fn bank_busy_until(&self, bank: usize) -> SimTime {
        self.banks[bank].busy_until()
    }

    /// The earliest instant any bank becomes idle.
    pub fn earliest_idle(&self) -> SimTime {
        self.banks.iter().map(|b| b.busy_until()).min().unwrap_or(SimTime::ZERO)
    }

    fn earliest_free(&self) -> usize {
        let mut best = 0;
        for (i, b) in self.banks.iter().enumerate().skip(1) {
            if b.busy_until() < self.banks[best].busy_until() {
                best = i;
            }
        }
        best
    }

    /// Mean utilization across banks over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if self.banks.is_empty() {
            return 0.0;
        }
        self.banks.iter().map(|b| b.utilization(horizon)).sum::<f64>() / self.banks.len() as f64
    }
}

/// Cumulative transfer statistics for a [`Link`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkStats {
    /// Payload bytes carried.
    pub payload_bytes: u64,
    /// Overhead bytes carried (headers, framing).
    pub overhead_bytes: u64,
    /// Number of messages.
    pub messages: u64,
}

impl LinkStats {
    /// Fraction of carried bytes that were payload.
    pub fn efficiency(&self) -> f64 {
        let total = self.payload_bytes + self.overhead_bytes;
        if total == 0 {
            0.0
        } else {
            self.payload_bytes as f64 / total as f64
        }
    }
}

/// A serializing interconnect: each message occupies the wire for
/// `(payload + per_message_overhead_bytes) / bandwidth` and messages queue
/// FIFO. Used for PCIe links, NTB hops, and the flash channel bus.
#[derive(Debug, Clone)]
pub struct Link {
    wire: SerialResource,
    bandwidth: Bandwidth,
    per_message_overhead_bytes: u64,
    stats: LinkStats,
}

impl Link {
    /// A link with the given raw bandwidth and fixed per-message byte
    /// overhead (e.g. a TLP header).
    pub fn new(bandwidth: Bandwidth, per_message_overhead_bytes: u64) -> Self {
        Link {
            wire: SerialResource::new(),
            bandwidth,
            per_message_overhead_bytes,
            stats: LinkStats::default(),
        }
    }

    /// Raw bandwidth of the wire.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Per-message byte overhead.
    pub fn overhead_bytes(&self) -> u64 {
        self.per_message_overhead_bytes
    }

    /// Transmit a message of `payload` bytes, queueing behind in-flight
    /// traffic. Returns the service window (ends when the last bit leaves
    /// the wire).
    pub fn transmit(&mut self, now: SimTime, payload: u64) -> Grant {
        let wire_bytes = payload + self.per_message_overhead_bytes;
        let service = self.bandwidth.transfer_time(wire_bytes);
        self.stats.payload_bytes += payload;
        self.stats.overhead_bytes += self.per_message_overhead_bytes;
        self.stats.messages += 1;
        self.wire.acquire(now, service)
    }

    /// Transmit with extra per-message overhead bytes on top of the link's
    /// fixed overhead (e.g. an NTB-translation prefix).
    pub fn transmit_with_overhead(
        &mut self,
        now: SimTime,
        payload: u64,
        extra_overhead: u64,
    ) -> Grant {
        let wire_bytes = payload + self.per_message_overhead_bytes + extra_overhead;
        let service = self.bandwidth.transfer_time(wire_bytes);
        self.stats.payload_bytes += payload;
        self.stats.overhead_bytes += self.per_message_overhead_bytes + extra_overhead;
        self.stats.messages += 1;
        self.wire.acquire(now, service)
    }

    /// The instant the wire next goes idle.
    pub fn busy_until(&self) -> SimTime {
        self.wire.busy_until()
    }

    /// Cumulative transfer statistics.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Total time the wire has been occupied (cumulative serialization
    /// time; divide by any horizon for utilization).
    pub fn busy_time(&self) -> SimDuration {
        self.wire.busy_time()
    }

    /// Fraction of `[0, horizon]` the wire was busy.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.wire.utilization(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::Bandwidth;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }
    fn d(ns: u64) -> SimDuration {
        SimDuration::from_nanos(ns)
    }

    #[test]
    fn serial_resource_serializes() {
        let mut r = SerialResource::new();
        let g1 = r.acquire(t(0), d(100));
        assert_eq!((g1.start, g1.end), (t(0), t(100)));
        // Requested while busy: starts when the first finishes.
        let g2 = r.acquire(t(10), d(50));
        assert_eq!((g2.start, g2.end), (t(100), t(150)));
        assert_eq!(g2.queueing_delay(t(10)).as_nanos(), 90);
        assert_eq!(g2.latency_from(t(10)).as_nanos(), 140);
        // Requested after idle: starts immediately.
        let g3 = r.acquire(t(500), d(10));
        assert_eq!((g3.start, g3.end), (t(500), t(510)));
        assert_eq!(r.request_count(), 3);
        assert_eq!(r.busy_time().as_nanos(), 160);
    }

    #[test]
    fn serial_resource_utilization() {
        let mut r = SerialResource::new();
        r.acquire(t(0), d(250));
        assert!((r.utilization(t(1000)) - 0.25).abs() < 1e-9);
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn banked_resource_parallelism() {
        let mut b = BankedResource::new(2);
        let g1 = b.acquire(t(0), d(100));
        let g2 = b.acquire(t(0), d(100));
        // Two banks: both run in parallel.
        assert_eq!(g1.start, t(0));
        assert_eq!(g2.start, t(0));
        // Third request queues behind the earliest-free bank.
        let g3 = b.acquire(t(0), d(100));
        assert_eq!(g3.start, t(100));
        assert_eq!(b.earliest_idle(), t(100));
    }

    #[test]
    fn banked_resource_explicit_bank() {
        let mut b = BankedResource::new(4);
        b.acquire_bank(2, t(0), d(100));
        assert_eq!(b.bank_busy_until(2), t(100));
        assert_eq!(b.bank_busy_until(0), t(0));
        let g = b.acquire_bank(2, t(0), d(10));
        assert_eq!(g.start, t(100));
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn banked_resource_rejects_zero() {
        let _ = BankedResource::new(0);
    }

    #[test]
    fn link_accounts_overhead() {
        // 1 byte/ns, 24-byte header per message.
        let mut l = Link::new(Bandwidth::bytes_per_ns(1.0), 24);
        let g = l.transmit(t(0), 64);
        assert_eq!(g.end, t(88)); // 64 + 24 bytes at 1 B/ns
        let s = l.stats();
        assert_eq!(s.payload_bytes, 64);
        assert_eq!(s.overhead_bytes, 24);
        assert_eq!(s.messages, 1);
        assert!((s.efficiency() - 64.0 / 88.0).abs() < 1e-12);
    }

    #[test]
    fn link_messages_queue() {
        let mut l = Link::new(Bandwidth::bytes_per_ns(2.0), 0);
        let g1 = l.transmit(t(0), 100); // 50ns
        let g2 = l.transmit(t(0), 100);
        assert_eq!(g1.end, t(50));
        assert_eq!(g2.start, t(50));
        assert_eq!(g2.end, t(100));
    }

    #[test]
    fn link_extra_overhead() {
        let mut l = Link::new(Bandwidth::bytes_per_ns(1.0), 24);
        let g = l.transmit_with_overhead(t(0), 64, 8);
        assert_eq!(g.end, t(96));
        assert_eq!(l.stats().overhead_bytes, 32);
    }

    #[test]
    fn small_payload_efficiency_drops() {
        // The Fig. 10 mechanism in miniature: with a fixed header, small
        // payloads waste most of the wire.
        let mut l = Link::new(Bandwidth::bytes_per_ns(1.0), 24);
        for _ in 0..100 {
            l.transmit(t(0), 8);
        }
        assert!(l.stats().efficiency() < 0.26);
    }
}
