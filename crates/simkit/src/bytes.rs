//! Cheaply cloneable, immutable byte buffers.
//!
//! A minimal stand-in for the `bytes` crate's `Bytes`: payloads staged in
//! the simulated device data-path are shared by reference count, so cloning
//! a page through buffer → FTL → media costs an `Arc` bump, not a memcpy.
//! Only the surface the workspace actually uses is provided.

use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

/// An immutable, reference-counted byte buffer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

/// The shared zero-length buffer: empties are an `Arc` bump, never an
/// allocation (the database hot path builds empty rows and commit-marker
/// payloads constantly).
fn empty_arc() -> Arc<[u8]> {
    static EMPTY: OnceLock<Arc<[u8]>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::from(&[][..])).clone()
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: empty_arc() }
    }

    /// Copy `src` into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        if src.is_empty() {
            return Bytes::new();
        }
        Bytes { data: Arc::from(src) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        if v.is_empty() {
            return Bytes::new();
        }
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes::copy_from_slice(&v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} B)", self.data.len())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    #[test]
    fn copy_from_slice_copies() {
        let v = [9u8; 16];
        let b = Bytes::copy_from_slice(&v);
        assert_eq!(b.len(), 16);
        assert_eq!(&b[..4], &[9, 9, 9, 9]);
    }

    #[test]
    fn empty_default() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default().len(), 0);
    }
}
