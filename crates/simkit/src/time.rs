//! Virtual time for the discrete-event simulation.
//!
//! All device constants in this workspace (flash `tPROG`, PCIe serialization
//! cost, NTB hop latency, CPU work per transaction) are expressed in
//! [`SimTime`] / [`SimDuration`] units. The base unit is the **nanosecond**:
//! fine enough to express a single PCIe TLP on a Gen2 link (~tens of ns) and
//! coarse enough that a `u64` lasts ~584 years of simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The instant the simulation starts at.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct an instant from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable span; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct a span from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct a span from fractional seconds, rounding to nanoseconds.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "duration must be finite and non-negative");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Construct a span from fractional microseconds, rounding to nanoseconds.
    pub fn from_micros_f64(us: f64) -> Self {
        assert!(us >= 0.0 && us.is_finite(), "duration must be finite and non-negative");
        SimDuration((us * 1e3).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by an integer factor, saturating at `SimDuration::MAX`.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "negative duration: {self} - {rhs}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self >= rhs, "negative duration: {self} - {rhs}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_nanos(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_nanos(self.0))
    }
}

/// Human-readable rendering of a nanosecond quantity, scaled to ns/µs/ms/s.
fn format_nanos(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(40);
        assert_eq!((t + d).as_nanos(), 140);
        assert_eq!((t - d).as_nanos(), 60);
        assert_eq!(((t + d) - t).as_nanos(), 40);
        assert_eq!((d + d).as_nanos(), 80);
        assert_eq!((d * 3).as_nanos(), 120);
        assert_eq!((d / 2).as_nanos(), 20);
    }

    #[test]
    fn saturation_behaviour() {
        assert_eq!(SimTime::MAX + SimDuration::from_nanos(1), SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimDuration::from_nanos(1), SimTime::ZERO);
        let later = SimTime::from_nanos(5);
        let earlier = SimTime::from_nanos(9);
        assert_eq!(later.saturating_since(earlier), SimDuration::ZERO);
        assert_eq!(earlier.saturating_since(later).as_nanos(), 4);
    }

    #[test]
    fn fractional_construction_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1.5e-9).as_nanos(), 2);
        assert_eq!(SimDuration::from_micros_f64(0.4).as_nanos(), 400);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_nanos(1_700).to_string(), "1.70us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.00ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_nanos(5).to_string(), "t=5ns");
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_nanos(3);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_nanos(3);
        let y = SimDuration::from_nanos(9);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }
}
