//! A generic event calendar.
//!
//! Each device model in this workspace owns one [`EventQueue`] parameterized
//! over its private event enum. Events scheduled at the same instant are
//! delivered in the order they were scheduled (FIFO tie-break via a
//! monotonically increasing sequence number), which keeps the whole
//! simulation deterministic.
//!
//! # Implementation
//!
//! The queue is an *indexed binary heap*: a min-heap of `(time, seq)` keys
//! over a slot arena that stores the payloads. Every slot remembers its
//! current heap position (the index is maintained through sift-up/sift-down
//! swaps), which buys the three properties the simulator's hot loops need:
//!
//! - [`EventQueue::peek_time`] / [`EventQueue::next_time`] are **O(1)** and
//!   take `&self` — device `next_event_at()` chains can poll the frontier on
//!   every advance step without scanning or compacting anything;
//! - [`EventQueue::cancel`] is a true **O(log n)** in-place removal — no
//!   tombstones are retained and no side table is dragged through
//!   schedule/pop;
//! - [`EventId`]s are **generation-tagged**: a slot's generation is bumped
//!   every time its event fires or is cancelled, so a stale handle (kept
//!   across a slot reuse) is rejected instead of cancelling an unrelated
//!   later event.

use crate::time::SimTime;

/// Opaque handle to a scheduled event, usable for cancellation.
///
/// The handle pairs a slot index with the slot's generation at scheduling
/// time. Once the event fires or is cancelled the generation advances, so a
/// retained handle becomes harmlessly stale: [`EventQueue::cancel`] on it
/// returns `false` and touches nothing, even if the slot has since been
/// reused for a different event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

/// One heap node: the ordering key plus the arena slot holding the payload.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl HeapEntry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// An arena slot. `pos` is only meaningful while `payload` is `Some`.
#[derive(Debug)]
struct Slot<E> {
    gen: u32,
    pos: u32,
    payload: Option<E>,
}

/// A deterministic min-heap of timestamped events (see the module docs for
/// the indexed-heap layout and its complexity guarantees).
pub struct EventQueue<E> {
    heap: Vec<HeapEntry>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty calendar.
    pub fn new() -> Self {
        EventQueue { heap: Vec::new(), slots: Vec::new(), free: Vec::new(), next_seq: 0 }
    }

    /// Schedule `payload` for delivery at `at`. Returns a handle that can be
    /// passed to [`EventQueue::cancel`].
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(s.payload.is_none(), "free-list slot still occupied");
                s.payload = Some(payload);
                slot
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Slot { gen: 0, pos: 0, payload: Some(payload) });
                slot
            }
        };
        let pos = self.heap.len();
        self.heap.push(HeapEntry { at, seq, slot });
        self.slots[slot as usize].pos = pos as u32;
        self.sift_up(pos);
        EventId { slot, gen: self.slots[slot as usize].gen }
    }

    /// Cancel a previously scheduled event, removing it from the heap in
    /// place (O(log n); no tombstone is retained). Returns `true` if the
    /// event was still pending. Cancelling an event that already fired, was
    /// already cancelled, or whose slot has been reused (a stale
    /// generation-tagged [`EventId`]) is a harmless no-op returning `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(s) = self.slots.get(id.slot as usize) else { return false };
        if s.gen != id.gen || s.payload.is_none() {
            return false;
        }
        let pos = s.pos as usize;
        self.remove_at(pos);
        self.release_slot(id.slot);
        true
    }

    /// The delivery time of the next pending event, if any. O(1), `&self`.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.at)
    }

    /// Alias of [`EventQueue::peek_time`], kept for `next_event_at`-style
    /// call sites. O(1), `&self`.
    pub fn next_time(&self) -> Option<SimTime> {
        self.peek_time()
    }

    /// Pop the next event regardless of time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let entry = self.remove_at(0);
        let payload = self.release_slot(entry.slot);
        Some((entry.at, payload))
    }

    /// Pop the next event only if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Free `slot`, bump its generation (invalidating outstanding handles),
    /// and return its payload.
    fn release_slot(&mut self, slot: u32) -> E {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
        s.payload.take().expect("released slot must be occupied")
    }

    /// Remove and return the heap entry at `pos`, restoring the heap
    /// property around the entry swapped into its place.
    fn remove_at(&mut self, pos: usize) -> HeapEntry {
        let last = self.heap.len() - 1;
        self.heap.swap(pos, last);
        let entry = self.heap.pop().expect("heap non-empty");
        if pos < self.heap.len() {
            self.slots[self.heap[pos].slot as usize].pos = pos as u32;
            // The swapped-in tail entry may violate the property in either
            // direction relative to `pos`'s neighbourhood.
            if pos > 0 && self.heap[pos].key() < self.heap[(pos - 1) / 2].key() {
                self.sift_up(pos);
            } else {
                self.sift_down(pos);
            }
        }
        entry
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.heap[pos].key() >= self.heap[parent].key() {
                break;
            }
            self.swap_entries(pos, parent);
            pos = parent;
        }
    }

    fn sift_down(&mut self, mut pos: usize) {
        let len = self.heap.len();
        loop {
            let left = 2 * pos + 1;
            if left >= len {
                break;
            }
            let right = left + 1;
            let smallest = if right < len && self.heap[right].key() < self.heap[left].key() {
                right
            } else {
                left
            };
            if self.heap[pos].key() <= self.heap[smallest].key() {
                break;
            }
            self.swap_entries(pos, smallest);
            pos = smallest;
        }
    }

    /// Swap two heap entries, keeping the slot->position index coherent.
    fn swap_entries(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.slots[self.heap[a].slot as usize].pos = a as u32;
        self.slots[self.heap[b].slot as usize].pos = b as u32;
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "early");
        q.schedule(t(100), "late");
        assert_eq!(q.pop_due(t(50)), Some((t(10), "early")));
        assert_eq!(q.pop_due(t(50)), None);
        assert_eq!(q.pop_due(t(100)), Some((t(100), "late")));
    }

    #[test]
    fn cancellation_removes_events_in_place() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(t(20)));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn double_cancel_is_harmless() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_time_reflects_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(t(42), ());
        q.schedule(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.next_time(), Some(t(7)));
    }

    #[test]
    fn stale_id_after_fire_is_rejected_across_slot_reuse() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        assert_eq!(q.pop(), Some((t(10), "a")));
        // The slot is reused for a new event; the stale handle must not be
        // able to cancel it.
        let b = q.schedule(t(20), "b");
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 1);
        assert!(q.cancel(b));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_middle_keeps_order() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..64u64).map(|i| q.schedule(t(i * 3 % 40), i)).collect();
        for (i, id) in ids.iter().enumerate() {
            if i % 3 == 0 {
                assert!(q.cancel(*id));
            }
        }
        let mut last = (SimTime::ZERO, 0u64);
        let mut n = 0;
        while let Some((at, payload)) = q.pop() {
            assert!((at, payload) > last || n == 0, "pop order regressed at {at} {payload}");
            assert!(payload % 3 != 0, "cancelled event {payload} delivered");
            last = (at, payload);
            n += 1;
        }
        assert_eq!(n, 64 - 22);
    }
}
