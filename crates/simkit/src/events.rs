//! A generic event calendar.
//!
//! Each device model in this workspace owns one [`EventQueue`] parameterized
//! over its private event enum. Events scheduled at the same instant are
//! delivered in the order they were scheduled (FIFO tie-break via a
//! monotonically increasing sequence number), which keeps the whole
//! simulation deterministic.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Opaque handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-heap of timestamped events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    live: HashSet<EventId>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty calendar.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, live: HashSet::new() }
    }

    /// Schedule `payload` for delivery at `at`. Returns a handle that can be
    /// passed to [`EventQueue::cancel`].
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let id = EventId(self.next_seq);
        self.heap.push(Entry { at, seq: self.next_seq, id, payload });
        self.live.insert(id);
        self.next_seq += 1;
        id
    }

    /// Cancel a previously scheduled event. Cancellation is lazy: the entry
    /// stays in the heap but is skipped when popped. Cancelling an event that
    /// already fired (or twice) is a harmless no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.live.remove(&id);
    }

    /// The delivery time of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.at)
    }

    /// Immutable variant of [`EventQueue::peek_time`]: scans for the
    /// earliest live entry without compacting cancelled ones (O(n), for
    /// `&self` contexts like a device's `next_event_at`).
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.iter().filter(|e| self.live.contains(&e.id)).map(|e| e.at).min()
    }

    /// Pop the next event regardless of time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        self.heap.pop().map(|e| {
            self.live.remove(&e.id);
            (e.at, e.payload)
        })
    }

    /// Pop the next event only if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn skip_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.live.contains(&top.id) {
                break;
            }
            self.heap.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "early");
        q.schedule(t(100), "late");
        assert_eq!(q.pop_due(t(50)), Some((t(10), "early")));
        assert_eq!(q.pop_due(t(50)), None);
        assert_eq!(q.pop_due(t(100)), Some((t(100), "late")));
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(t(20)));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn double_cancel_is_harmless() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.cancel(a);
        q.cancel(a);
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_time_reflects_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(t(42), ());
        q.schedule(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
    }
}
