//! A generic event calendar.
//!
//! Each device model in this workspace owns one [`EventQueue`] parameterized
//! over its private event enum. Events scheduled at the same instant are
//! delivered in the order they were scheduled (FIFO tie-break via a
//! monotonically increasing sequence number), which keeps the whole
//! simulation deterministic.
//!
//! # Implementation
//!
//! The queue is an *indexed binary heap*: a min-heap of `(time, seq)` keys
//! over a slot arena that stores the payloads. Every slot remembers its
//! current heap position (the index is maintained through sift-up/sift-down
//! swaps), which buys the three properties the simulator's hot loops need:
//!
//! - [`EventQueue::next_time`] is **O(1)** and takes `&self` — device
//!   `next_event_at()` chains can poll the frontier on every advance step
//!   without scanning or compacting anything;
//! - [`EventQueue::cancel`] is a true **O(log n)** in-place removal — no
//!   tombstones are retained and no side table is dragged through
//!   schedule/pop;
//! - [`EventId`]s are **generation-tagged**: a slot's generation is bumped
//!   every time its event fires or is cancelled, so a stale handle (kept
//!   across a slot reuse) is rejected instead of cancelling an unrelated
//!   later event.

use crate::time::SimTime;

/// Opaque handle to a scheduled event, usable for cancellation.
///
/// The handle pairs a slot index with the slot's generation at scheduling
/// time. Once the event fires or is cancelled the generation advances, so a
/// retained handle becomes harmlessly stale: [`EventQueue::cancel`] on it
/// returns `false` and touches nothing, even if the slot has since been
/// reused for a different event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

/// One heap node: the ordering key plus the arena slot holding the payload.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl HeapEntry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// An arena slot. `pos` is only meaningful while `payload` is `Some`.
#[derive(Debug)]
struct Slot<E> {
    gen: u32,
    pos: u32,
    payload: Option<E>,
}

/// A deterministic min-heap of timestamped events (see the module docs for
/// the indexed-heap layout and its complexity guarantees).
pub struct EventQueue<E> {
    heap: Vec<HeapEntry>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty calendar.
    pub fn new() -> Self {
        EventQueue { heap: Vec::new(), slots: Vec::new(), free: Vec::new(), next_seq: 0 }
    }

    /// Schedule `payload` for delivery at `at`. Returns a handle that can be
    /// passed to [`EventQueue::cancel`].
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(s.payload.is_none(), "free-list slot still occupied");
                s.payload = Some(payload);
                slot
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Slot { gen: 0, pos: 0, payload: Some(payload) });
                slot
            }
        };
        let pos = self.heap.len();
        self.heap.push(HeapEntry { at, seq, slot });
        self.slots[slot as usize].pos = pos as u32;
        self.sift_up(pos);
        EventId { slot, gen: self.slots[slot as usize].gen }
    }

    /// Cancel a previously scheduled event, removing it from the heap in
    /// place (O(log n); no tombstone is retained). Returns `true` if the
    /// event was still pending. Cancelling an event that already fired, was
    /// already cancelled, or whose slot has been reused (a stale
    /// generation-tagged [`EventId`]) is a harmless no-op returning `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(s) = self.slots.get(id.slot as usize) else { return false };
        if s.gen != id.gen || s.payload.is_none() {
            return false;
        }
        let pos = s.pos as usize;
        self.remove_at(pos);
        self.release_slot(id.slot);
        true
    }

    /// The delivery time of the next pending event, if any. O(1), `&self`.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.at)
    }

    /// Pop the next event regardless of time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let entry = self.remove_at(0);
        let payload = self.release_slot(entry.slot);
        Some((entry.at, payload))
    }

    /// Pop the next event only if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.next_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Free `slot`, bump its generation (invalidating outstanding handles),
    /// and return its payload.
    fn release_slot(&mut self, slot: u32) -> E {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
        s.payload.take().expect("released slot must be occupied")
    }

    /// Remove and return the heap entry at `pos`, restoring the heap
    /// property around the entry swapped into its place.
    fn remove_at(&mut self, pos: usize) -> HeapEntry {
        let last = self.heap.len() - 1;
        self.heap.swap(pos, last);
        let entry = self.heap.pop().expect("heap non-empty");
        if pos < self.heap.len() {
            self.slots[self.heap[pos].slot as usize].pos = pos as u32;
            // The swapped-in tail entry may violate the property in either
            // direction relative to `pos`'s neighbourhood.
            if pos > 0 && self.heap[pos].key() < self.heap[(pos - 1) / 2].key() {
                self.sift_up(pos);
            } else {
                self.sift_down(pos);
            }
        }
        entry
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.heap[pos].key() >= self.heap[parent].key() {
                break;
            }
            self.swap_entries(pos, parent);
            pos = parent;
        }
    }

    fn sift_down(&mut self, mut pos: usize) {
        let len = self.heap.len();
        loop {
            let left = 2 * pos + 1;
            if left >= len {
                break;
            }
            let right = left + 1;
            let smallest = if right < len && self.heap[right].key() < self.heap[left].key() {
                right
            } else {
                left
            };
            if self.heap[pos].key() <= self.heap[smallest].key() {
                break;
            }
            self.swap_entries(pos, smallest);
            pos = smallest;
        }
    }

    /// Swap two heap entries, keeping the slot->position index coherent.
    fn swap_entries(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.slots[self.heap[a].slot as usize].pos = a as u32;
        self.slots[self.heap[b].slot as usize].pos = b as u32;
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len())
            .field("next_time", &self.next_time())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Conservative parallel discrete-event execution: domains + lookahead windows
// ---------------------------------------------------------------------------

/// A cross-domain message emitted during a window, addressed by domain
/// index, awaiting the barrier exchange.
#[derive(Debug, Clone)]
pub struct Routed<M> {
    /// Destination domain index.
    pub dst: usize,
    /// Delivery instant. Must satisfy the lookahead contract: at least the
    /// emitting window's upper bound (emission instant + lookahead).
    pub at: SimTime,
    /// The message payload.
    pub msg: M,
}

/// One event domain of a conservative parallel simulation: a partition of
/// the event space (e.g. one device plus its private fabric) that owns its
/// own calendar and only interacts with other domains through timestamped
/// messages subject to a minimum latency — the *lookahead*.
///
/// The contract [`DomainScheduler`] relies on:
///
/// - **Lookahead.** Every message a domain emits during
///   [`Domain::run_window`]`(upto, ..)` has `at >= emission instant +
///   lookahead >= `the window bound the scheduler computed — so no message
///   generated inside a window can be due inside that same window.
/// - **Send horizon.** [`Domain::next_send_at`] is a lower bound on the
///   instant of the domain's next message emission; the scheduler sizes
///   windows as `min(next_send_at) + lookahead`.
/// - **Isolation.** `run_window` touches only domain-local state (plus its
///   own mailbox); domains are advanced concurrently.
pub trait Domain: Send {
    /// The cross-domain message type.
    type Msg: Send;

    /// Lower bound on the instant of this domain's next cross-domain
    /// message emission (`None`: the domain will not emit on its own).
    fn next_send_at(&self) -> Option<SimTime>;

    /// The earliest undelivered message in this domain's mailbox.
    fn next_mailbox_at(&self) -> Option<SimTime>;

    /// Deliver a message into this domain's mailbox (called by the
    /// scheduler during the barrier exchange, never concurrently with
    /// [`Domain::run_window`]). A domain may drop the message (e.g. the
    /// device is powered off).
    fn post(&mut self, at: SimTime, msg: Self::Msg);

    /// Process this domain up to `upto`: drain mailbox events due in the
    /// window and generate outgoing messages, pushing them onto `outbox`
    /// in emission order. Must not deliver anything later than `upto`.
    fn run_window(&mut self, upto: SimTime, outbox: &mut Vec<Routed<Self::Msg>>);

    /// Settle the domain at the advance target `t` after the last window
    /// (the heavyweight per-domain work — e.g. `device.advance(t)`).
    fn finish(&mut self, t: SimTime);
}

/// Counters describing a windowed advance (deterministic except for
/// [`DomainStats::stall_ns_max`], which measures host wall-clock).
#[derive(Debug, Clone, Copy, Default)]
pub struct DomainStats {
    /// Lookahead windows executed (== barrier synchronizations).
    pub windows: u64,
    /// Cross-domain messages exchanged at barriers.
    pub messages: u64,
    /// High-water wall-clock nanoseconds the coordinating thread waited
    /// for the slowest domain at a barrier. Diagnostic only — this is
    /// host time, not virtual time, and varies run to run.
    pub stall_ns_max: u64,
}

/// The conservative parallel scheduler: advances a set of [`Domain`]s to a
/// common target by repeatedly (1) computing the next safe window bound
/// `min(next_send_at) + lookahead`, (2) running every domain's window
/// concurrently on a [`WorkerPool`], and (3) exchanging the emitted
/// messages at the barrier in a deterministic order — sorted by
/// `(timestamp, sender, per-sender sequence)` — so the delivered schedule
/// is event-for-event identical to a sequential execution.
#[derive(Debug)]
pub struct DomainScheduler {
    lookahead: crate::time::SimDuration,
    executors: usize,
    pool: Option<crate::pool::WorkerPool>,
    stats: DomainStats,
}

impl DomainScheduler {
    /// A scheduler synchronizing on `lookahead` (must be positive: a
    /// zero-latency message could be due inside its own emission window)
    /// and executing windows at `executors`-way parallelism (`1` runs
    /// every window inline on the calling thread — same schedule, no
    /// threads).
    pub fn new(lookahead: crate::time::SimDuration, executors: usize) -> Self {
        assert!(!lookahead.is_zero(), "conservative lookahead must be positive");
        assert!(executors >= 1, "need at least the calling thread");
        DomainScheduler { lookahead, executors, pool: None, stats: DomainStats::default() }
    }

    /// The synchronization horizon.
    pub fn lookahead(&self) -> crate::time::SimDuration {
        self.lookahead
    }

    /// Cumulative counters across every `advance` call.
    pub fn stats(&self) -> DomainStats {
        self.stats
    }

    /// Advance every domain to `t`.
    ///
    /// Window loop: while any domain has an undelivered mailbox message
    /// due by `t`, or will emit at or before `t`, run one window up to
    /// `min(t, min(next_send_at) + lookahead)` and exchange the emissions.
    /// The lookahead contract guarantees nothing emitted inside a window
    /// is due inside it, so domains are independent within each window;
    /// the deterministic exchange order makes the overall schedule
    /// independent of executor count and thread timing. A final `finish`
    /// phase settles every domain at `t`.
    pub fn advance<D: Domain>(&mut self, domains: &mut [D], t: SimTime) {
        if domains.is_empty() {
            return;
        }
        let mut exchange: Vec<(SimTime, usize, usize, Routed<D::Msg>)> = Vec::new();
        let mut outboxes: Vec<Vec<Routed<D::Msg>>> = Vec::new();
        outboxes.resize_with(domains.len(), Vec::new);
        loop {
            let next_send = domains.iter().filter_map(|d| d.next_send_at()).min();
            let pending =
                domains.iter().filter_map(|d| d.next_mailbox_at()).min().is_some_and(|m| m <= t);
            if !pending && next_send.is_none_or(|s| s > t) {
                break;
            }
            let upto = next_send.map_or(t, |s| (s + self.lookahead).min(t));
            self.run_phase(domains, &mut outboxes, |d, ob| d.run_window(upto, ob));
            self.stats.windows += 1;
            // Barrier exchange, sorted by (timestamp, sender, sequence):
            // the sequence index makes the order total and preserves each
            // sender's emission order at equal timestamps.
            exchange.clear();
            for (src, ob) in outboxes.iter_mut().enumerate() {
                for (seq, r) in ob.drain(..).enumerate() {
                    debug_assert!(
                        r.at >= upto,
                        "lookahead violated: message for domain {} due at {} inside window \
                         ending {upto}",
                        r.dst,
                        r.at,
                    );
                    exchange.push((r.at, src, seq, r));
                }
            }
            exchange.sort_by_key(|(at, src, seq, _)| (*at, *src, *seq));
            self.stats.messages += exchange.len() as u64;
            for (_, _, _, r) in exchange.drain(..) {
                domains[r.dst].post(r.at, r.msg);
            }
        }
        self.run_phase(domains, &mut outboxes, |d, _| d.finish(t));
    }

    /// Run one phase (`f` once per domain) — concurrently when the
    /// scheduler has executors to spend and more than one domain, inline
    /// in index order otherwise. Phase results are identical either way:
    /// domains are independent within a phase, and each writes only its
    /// own outbox slot.
    fn run_phase<D: Domain>(
        &mut self,
        domains: &mut [D],
        outboxes: &mut [Vec<Routed<D::Msg>>],
        f: impl Fn(&mut D, &mut Vec<Routed<D::Msg>>) + Sync,
    ) {
        if self.executors <= 1 || domains.len() <= 1 {
            for (d, ob) in domains.iter_mut().zip(outboxes.iter_mut()) {
                f(d, ob);
            }
            return;
        }
        let workers = self.executors - 1;
        let pool = self.pool.get_or_insert_with(|| crate::pool::WorkerPool::new(workers));
        let mut jobs: Vec<(&mut D, &mut Vec<Routed<D::Msg>>)> =
            domains.iter_mut().zip(outboxes.iter_mut()).collect();
        let stall = pool.run_mut(&mut jobs, |_, (d, ob)| f(d, ob));
        self.stats.stall_ns_max = self.stats.stall_ns_max.max(stall);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "early");
        q.schedule(t(100), "late");
        assert_eq!(q.pop_due(t(50)), Some((t(10), "early")));
        assert_eq!(q.pop_due(t(50)), None);
        assert_eq!(q.pop_due(t(100)), Some((t(100), "late")));
    }

    #[test]
    fn cancellation_removes_events_in_place() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_time(), Some(t(20)));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn double_cancel_is_harmless() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn next_time_reflects_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.schedule(t(42), ());
        q.schedule(t(7), ());
        assert_eq!(q.next_time(), Some(t(7)));
    }

    #[test]
    fn stale_id_after_fire_is_rejected_across_slot_reuse() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        assert_eq!(q.pop(), Some((t(10), "a")));
        // The slot is reused for a new event; the stale handle must not be
        // able to cancel it.
        let b = q.schedule(t(20), "b");
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 1);
        assert!(q.cancel(b));
        assert!(q.is_empty());
    }

    /// A toy ring of domains: domain `i` emits a numbered message to
    /// domain `(i + 1) % n` every `period`, delivered after `hop` (the
    /// lookahead). Every delivery is logged as `(at, payload)`.
    struct ToyDomain {
        index: usize,
        n: usize,
        period: crate::time::SimDuration,
        hop: crate::time::SimDuration,
        next_emit: SimTime,
        counter: u64,
        mailbox: EventQueue<u64>,
        log: Vec<(SimTime, u64)>,
        finished_at: SimTime,
    }

    impl ToyDomain {
        fn ring(n: usize, period_ns: u64, hop_ns: u64) -> Vec<ToyDomain> {
            (0..n)
                .map(|index| ToyDomain {
                    index,
                    n,
                    period: crate::time::SimDuration::from_nanos(period_ns),
                    hop: crate::time::SimDuration::from_nanos(hop_ns),
                    next_emit: SimTime::from_nanos(period_ns * (index as u64 + 1)),
                    counter: (index as u64) << 32,
                    mailbox: EventQueue::new(),
                    log: Vec::new(),
                    finished_at: SimTime::ZERO,
                })
                .collect()
        }
    }

    impl Domain for ToyDomain {
        type Msg = u64;

        fn next_send_at(&self) -> Option<SimTime> {
            Some(self.next_emit)
        }

        fn next_mailbox_at(&self) -> Option<SimTime> {
            self.mailbox.next_time()
        }

        fn post(&mut self, at: SimTime, msg: u64) {
            self.mailbox.schedule(at, msg);
        }

        fn run_window(&mut self, upto: SimTime, outbox: &mut Vec<Routed<u64>>) {
            loop {
                // Interleave emissions and deliveries in local time order,
                // like a real device's advance loop.
                let deliver = self.mailbox.next_time().filter(|&m| m <= upto);
                if self.next_emit <= upto && deliver.is_none_or(|m| self.next_emit <= m) {
                    let v = self.counter;
                    self.counter += 1;
                    outbox.push(Routed {
                        dst: (self.index + 1) % self.n,
                        at: self.next_emit + self.hop,
                        msg: v,
                    });
                    self.next_emit += self.period;
                } else if let Some((at, v)) = self.mailbox.pop_due(upto) {
                    self.log.push((at, v));
                } else {
                    break;
                }
            }
        }

        fn finish(&mut self, t: SimTime) {
            self.finished_at = t;
        }
    }

    fn toy_logs(executors: usize, n: usize, steps: &[u64]) -> Vec<Vec<(SimTime, u64)>> {
        let hop = 700;
        let mut domains = ToyDomain::ring(n, 500, hop);
        let mut sched = DomainScheduler::new(crate::time::SimDuration::from_nanos(hop), executors);
        for &s in steps {
            sched.advance(&mut domains, SimTime::from_nanos(s));
        }
        assert!(sched.stats().windows > 0);
        for d in &domains {
            assert_eq!(d.finished_at, SimTime::from_nanos(*steps.last().unwrap()));
        }
        domains.into_iter().map(|d| d.log).collect()
    }

    #[test]
    fn scheduler_is_executor_count_invariant() {
        let steps = [40_000u64];
        let base = toy_logs(1, 5, &steps);
        assert!(base.iter().map(Vec::len).sum::<usize>() > 100, "toy ring must exchange");
        for executors in [2, 4, 8] {
            assert_eq!(toy_logs(executors, 5, &steps), base, "{executors} executors diverged");
        }
    }

    #[test]
    fn incremental_advances_match_one_big_advance() {
        let big = toy_logs(4, 3, &[30_000]);
        let stepped = toy_logs(4, 3, &[1_000, 1_700, 9_999, 10_000, 29_999, 30_000]);
        assert_eq!(big, stepped);
    }

    #[test]
    fn deliveries_arrive_in_time_order_with_nothing_lost() {
        let logs = toy_logs(4, 4, &[25_000]);
        for (i, log) in logs.iter().enumerate() {
            for w in log.windows(2) {
                assert!(w[0].0 <= w[1].0, "domain {i}: out-of-order delivery {w:?}");
            }
            // Messages from the ring predecessor arrive gap-free in
            // emission order: payloads are consecutive from its counter.
            let src = (i + logs.len() - 1) % logs.len();
            for (k, (_, v)) in log.iter().enumerate() {
                assert_eq!(*v, ((src as u64) << 32) + k as u64, "domain {i} lost a message");
            }
        }
    }

    #[test]
    #[should_panic(expected = "lookahead must be positive")]
    fn zero_lookahead_is_rejected() {
        DomainScheduler::new(crate::time::SimDuration::from_nanos(0), 2);
    }

    #[test]
    fn cancel_middle_keeps_order() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..64u64).map(|i| q.schedule(t(i * 3 % 40), i)).collect();
        for (i, id) in ids.iter().enumerate() {
            if i % 3 == 0 {
                assert!(q.cancel(*id));
            }
        }
        let mut last = (SimTime::ZERO, 0u64);
        let mut n = 0;
        while let Some((at, payload)) = q.pop() {
            assert!((at, payload) > last || n == 0, "pop order regressed at {at} {payload}");
            assert!(payload % 3 != 0, "cancelled event {payload} delivered");
            last = (at, payload);
            n += 1;
        }
        assert_eq!(n, 64 - 22);
    }
}
