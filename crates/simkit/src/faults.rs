//! Deterministic, seed-reproducible fault injection.
//!
//! Real devices fail constantly and recover quietly: NAND pages take
//! transient read disturbs, programs fail and retire blocks, PCIe TLPs are
//! dropped and replayed, NVMe commands time out and are retried, replicas
//! crash and are re-synced. A simulator that only models the happy path
//! cannot support the paper's failure-handling claims (§4.1 crash-consistent
//! logging, §5 bounded-delay replication), so every layer of this workspace
//! accepts an *armed* fault hook threaded from a single [`FaultPlan`].
//!
//! Two properties are load-bearing:
//!
//! 1. **Determinism.** Every probabilistic fault draws from a [`DetRng`]
//!    child stream forked from the plan's master seed with a per-site salt
//!    (see [`site`]). The same plan against the same workload produces the
//!    same faults at the same virtual instants, bit for bit — a failing
//!    chaos run is replayable from its seed alone.
//! 2. **Zero perturbation when disabled.** A disarmed [`FaultHook`] makes
//!    *no* RNG draws, adds *no* latency, and emits *no* telemetry. The ten
//!    byte-frozen `results/*.json` goldens stay identical with the fault
//!    layer compiled in but disabled (enforced by `scripts/check_results.sh`).
//!
//! Layer wiring (each site documents its own semantics):
//!
//! - `flash::FlashArray::arm_faults` — transient read/program retries,
//!   permanent program failures that route through FTL block retirement;
//! - `pcie::NtbPort::arm_faults` / `schedule_link_down` — TLP drop → replay
//!   timer, link-down windows that park traffic until retrain;
//! - `nvme::NvmeDriver::arm_faults` — error completions and lost
//!   completions → timeout, abort, bounded exponential-backoff retry;
//! - `xssd_core::Cluster::power_fail` + `memdb::failover` — replica crash,
//!   primary-driven failover, log re-sync of the rejoined secondary.

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// Per-site fork salts, so each injection point owns an independent stream
/// and arming one site never perturbs another's draws.
pub mod site {
    /// Flash transient read faults.
    pub const FLASH_READ: u64 = 0xFA17_0001;
    /// Flash transient program faults.
    pub const FLASH_PROGRAM: u64 = 0xFA17_0002;
    /// Flash permanent program failures (bad-block growth).
    pub const FLASH_PERMANENT: u64 = 0xFA17_0003;
    /// NTB TLP drop → replay.
    pub const NTB_TLP: u64 = 0xFA17_0004;
    /// NVMe command fate (error completion / lost completion).
    pub const NVME_CMD: u64 = 0xFA17_0005;
    /// WAL segment tail corruption (torn/garbled bytes past the last
    /// durable record, exercised by the segment-recovery property tests).
    pub const SEGMENT_TAIL: u64 = 0xFA17_0006;
}

/// A probabilistic fault injector for one site.
///
/// Disarmed hooks (the default) are inert: [`FaultHook::fire`] returns
/// `false` without touching any RNG, so a model carrying a disarmed hook
/// behaves bit-identically to one compiled without the fault layer.
#[derive(Debug, Clone, Default)]
pub struct FaultHook {
    rng: Option<DetRng>,
    prob: f64,
    injected: u64,
    /// Stop injecting after this many faults (None = unbounded).
    budget: Option<u64>,
}

impl FaultHook {
    /// An inert hook that never fires and never draws.
    pub fn disabled() -> Self {
        FaultHook::default()
    }

    /// An armed hook firing with probability `prob` per call, drawing from
    /// its own child stream.
    pub fn armed(rng: DetRng, prob: f64) -> Self {
        FaultHook { rng: Some(rng), prob, injected: 0, budget: None }
    }

    /// Cap the number of injections (useful for "exactly one bad block"
    /// style schedules).
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Whether this hook can ever fire.
    pub fn is_armed(&self) -> bool {
        self.rng.is_some() && self.prob > 0.0
    }

    /// One Bernoulli draw. Disarmed hooks return `false` without drawing.
    pub fn fire(&mut self) -> bool {
        let Some(rng) = self.rng.as_mut() else {
            return false;
        };
        if self.prob <= 0.0 {
            return false;
        }
        if let Some(b) = self.budget {
            if self.injected >= b {
                return false;
            }
        }
        let hit = rng.chance(self.prob);
        if hit {
            self.injected += 1;
        }
        hit
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

/// Flash-layer fault rates (per page operation).
#[derive(Debug, Clone, Copy, Default)]
pub struct FlashFaultConfig {
    /// Probability a page read takes a transient error and must be retried
    /// in-device (each retry re-pays the array read time).
    pub transient_read: f64,
    /// Probability a page program takes a transient error and must be
    /// retried in-device (each retry re-pays the program time).
    pub transient_program: f64,
    /// Probability a page program fails permanently: the block is marked
    /// bad and the FTL must retire it, remap, and rewrite elsewhere.
    pub permanent_program: f64,
    /// Bound on in-device retries for transient faults; the retry that
    /// exceeds it succeeds anyway (transient errors clear by definition —
    /// permanent damage is modeled by `permanent_program`).
    pub max_retries: u32,
}

impl FlashFaultConfig {
    /// Whether any rate is nonzero.
    pub fn is_active(&self) -> bool {
        self.transient_read > 0.0 || self.transient_program > 0.0 || self.permanent_program > 0.0
    }
}

/// One scheduled link outage: traffic entering during `[from, until)` is
/// parked until the link retrains at `until`, then replayed.
#[derive(Debug, Clone, Copy)]
pub struct LinkDownWindow {
    /// Outage start (inclusive).
    pub from: SimTime,
    /// Retrain instant (exclusive end of the outage).
    pub until: SimTime,
}

impl LinkDownWindow {
    /// Whether `t` falls inside the outage.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.from && t < self.until
    }
}

/// Transport (NTB/PCIe) fault rates.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransportFaultConfig {
    /// Probability a forwarded TLP (or burst) is dropped and must wait for
    /// the replay timer before its retransmission delivers.
    pub tlp_drop: f64,
    /// The replay-timer delay a dropped TLP pays before redelivery.
    pub replay_timeout: SimDuration,
}

impl TransportFaultConfig {
    /// Whether the drop rate is nonzero.
    pub fn is_active(&self) -> bool {
        self.tlp_drop > 0.0
    }
}

/// NVMe command-level fault rates (injected in the host driver).
#[derive(Debug, Clone, Copy)]
pub struct NvmeFaultConfig {
    /// Probability a command completes with an error status and is retried
    /// by the driver with exponential backoff.
    pub error_completion: f64,
    /// Probability a command's completion is lost (never posted to the
    /// host), forcing the driver's timeout → abort → retry path.
    pub dropped_completion: f64,
    /// How long the driver waits before declaring a command timed out.
    pub timeout: SimDuration,
    /// Bound on driver retries per command; fate rolls stop once a command
    /// has consumed its retry budget, so every command eventually succeeds.
    pub max_retries: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff_base: SimDuration,
}

impl Default for NvmeFaultConfig {
    fn default() -> Self {
        NvmeFaultConfig {
            error_completion: 0.0,
            dropped_completion: 0.0,
            timeout: SimDuration::from_micros(500),
            max_retries: 4,
            backoff_base: SimDuration::from_micros(10),
        }
    }
}

impl NvmeFaultConfig {
    /// Whether any rate is nonzero.
    pub fn is_active(&self) -> bool {
        self.error_completion > 0.0 || self.dropped_completion > 0.0
    }
}

/// A scheduled (non-probabilistic) fault event.
#[derive(Debug, Clone, Copy)]
pub struct ScheduledFault {
    /// When the fault strikes.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// The scheduled fault vocabulary.
#[derive(Debug, Clone, Copy)]
pub enum FaultKind {
    /// Power-fail a whole device (the cluster's crash protocol runs).
    DeviceCrash {
        /// Cluster index of the crashing device.
        device: usize,
    },
    /// An NTB link outage on one device's outbound flows.
    LinkDown {
        /// Cluster index of the device whose flows go dark.
        device: usize,
        /// The outage window.
        window: LinkDownWindow,
    },
}

/// The cross-stack fault schedule a chaos run is configured with.
///
/// One master seed; each site forks its own child stream via
/// [`FaultPlan::rng_for`], so arming or re-rating one site never perturbs
/// another's draws. All-default plans are fully inert.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Master seed all per-site streams fork from.
    pub seed: u64,
    /// Flash-layer rates.
    pub flash: FlashFaultConfig,
    /// Transport-layer rates.
    pub transport: TransportFaultConfig,
    /// NVMe command-level rates.
    pub nvme: NvmeFaultConfig,
    /// Scheduled crash / outage events.
    pub schedule: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// An inert plan (no rates, no schedule).
    pub fn disabled() -> Self {
        FaultPlan::default()
    }

    /// The deterministic child stream for one injection site. Equal
    /// `(seed, salt)` pairs always yield equal streams.
    pub fn rng_for(&self, salt: u64) -> DetRng {
        DetRng::new(self.seed).fork(salt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hook_never_fires_and_never_draws() {
        let mut h = FaultHook::disabled();
        assert!(!h.is_armed());
        for _ in 0..1000 {
            assert!(!h.fire());
        }
        assert_eq!(h.injected(), 0);
    }

    #[test]
    fn armed_hook_is_deterministic() {
        let plan = FaultPlan { seed: 42, ..FaultPlan::disabled() };
        let mut a = FaultHook::armed(plan.rng_for(site::FLASH_READ), 0.3);
        let mut b = FaultHook::armed(plan.rng_for(site::FLASH_READ), 0.3);
        let fa: Vec<bool> = (0..200).map(|_| a.fire()).collect();
        let fb: Vec<bool> = (0..200).map(|_| b.fire()).collect();
        assert_eq!(fa, fb);
        assert!(a.injected() > 0, "a 30% hook fires within 200 draws");
    }

    #[test]
    fn sites_are_independent() {
        let plan = FaultPlan { seed: 7, ..FaultPlan::disabled() };
        let mut read = plan.rng_for(site::FLASH_READ);
        let mut tlp = plan.rng_for(site::NTB_TLP);
        let same = (0..64).filter(|_| read.next_u64() == tlp.next_u64()).count();
        assert!(same < 4, "differently salted site streams must diverge");
    }

    #[test]
    fn budget_caps_injections() {
        let mut h = FaultHook::armed(DetRng::new(1), 1.0).with_budget(3);
        let fired = (0..100).filter(|_| h.fire()).count();
        assert_eq!(fired, 3);
        assert_eq!(h.injected(), 3);
    }

    #[test]
    fn link_down_window_membership() {
        let w = LinkDownWindow { from: SimTime::from_micros(10), until: SimTime::from_micros(20) };
        assert!(!w.contains(SimTime::from_micros(9)));
        assert!(w.contains(SimTime::from_micros(10)));
        assert!(w.contains(SimTime::from_micros(19)));
        assert!(!w.contains(SimTime::from_micros(20)));
    }
}
