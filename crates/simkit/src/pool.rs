//! A persistent worker pool for intra-simulation parallelism.
//!
//! [`crate::events::DomainScheduler`] advances all event domains of one
//! simulation concurrently inside each lookahead window. Windows are short
//! (microseconds of virtual time, microseconds of host work), and a
//! simulation issues *millions* of them — spawning OS threads per window
//! (or per `advance` call) would dominate the work being parallelized.
//! [`WorkerPool`] therefore keeps its workers alive for the lifetime of the
//! simulation: between batches they park on a condvar, and a batch hand-off
//! costs two uncontended mutex hops per item instead of a thread spawn.
//!
//! # Execution model
//!
//! A *batch* is `n` independent items; [`WorkerPool::run_mut`] runs
//! `f(i, &mut items[i])` for every item exactly once, distributing indexes
//! over the workers **and the calling thread** (a pool of `workers` threads
//! executes batches at `workers + 1`-way parallelism). The call returns
//! only when every item has finished, so borrowed state in `f` and `items`
//! stays valid for exactly as long as the pool can touch it.
//!
//! # Determinism
//!
//! The pool intentionally provides **no ordering** within a batch — callers
//! must only submit items that are independent of each other (the domain
//! scheduler guarantees this via the lookahead window). Which thread runs
//! which item, and in what order, varies run to run; anything order- or
//! wall-clock-dependent must live outside the batch.
//!
//! # Panics
//!
//! A panic inside an item is caught on the worker, the batch is drained to
//! completion, and the first payload is re-raised on the calling thread —
//! exactly like `std::thread::scope`. Invariant panics from device models
//! (e.g. a stall report) therefore surface to the caller unchanged.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// Type-erased batch closure: callers hand `run` a `&dyn Fn(usize)` whose
/// borrows outlive the batch; the pointer is only dereferenced between
/// batch publication and the last item's completion, both of which happen
/// inside the caller's `run` frame.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and `run` guarantees it outlives every dereference (it blocks until
// `done == n`, and workers only dereference while holding an index < n).
unsafe impl Send for JobPtr {}

struct State {
    /// Batch generation; bumped on publication so parked workers can tell
    /// a new batch from a spurious wakeup.
    epoch: u64,
    /// The current batch closure; `None` between batches.
    job: Option<JobPtr>,
    /// Item count of the current batch.
    n: usize,
    /// Next item index to hand out.
    next: usize,
    /// Items completed (success or panic).
    done: usize,
    /// Panic payloads captured from items, re-raised by the caller.
    panics: Vec<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between batches.
    work_cv: Condvar,
    /// The caller parks here waiting for stragglers.
    done_cv: Condvar,
}

/// A fixed-size pool of parked worker threads executing batches of
/// independent items (see the module docs for the execution model).
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.handles.len()).finish()
    }
}

impl WorkerPool {
    /// Spawn a pool of `workers` parked threads. `workers` is the number of
    /// *extra* threads: batches run at `workers + 1`-way parallelism
    /// because the calling thread participates.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                n: 0,
                next: 0,
                done: 0,
                panics: Vec::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("simkit-domain-{i}"))
                    .spawn(move || Self::worker_loop(&shared))
                    .expect("spawn simkit worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads (the caller adds one more executor).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    fn worker_loop(shared: &Shared) {
        let mut seen = 0u64;
        let mut st = shared.state.lock().expect("pool state poisoned");
        loop {
            while !st.shutdown && (st.epoch == seen || st.job.is_none()) {
                st = shared.work_cv.wait(st).expect("pool state poisoned");
            }
            if st.shutdown {
                return;
            }
            seen = st.epoch;
            st = Self::participate(shared, st);
        }
    }

    /// Pull indexes from the current batch until none remain, running each
    /// item with the state lock released. Shared by workers and the caller.
    fn participate<'a>(shared: &'a Shared, mut st: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        loop {
            if st.next >= st.n {
                return st;
            }
            let i = st.next;
            st.next += 1;
            // `job` is Some whenever `next < n`: it is only cleared after
            // `done == n`, which requires every index to have been handed
            // out first.
            let job = st.job.expect("batch job cleared while items remain");
            drop(st);
            // SAFETY: `run` keeps the closure alive until `done == n`, and
            // this item's completion is counted only below.
            let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(i) }));
            st = shared.state.lock().expect("pool state poisoned");
            if let Err(payload) = result {
                st.panics.push(payload);
            }
            st.done += 1;
            if st.done == st.n {
                st.job = None;
                shared.done_cv.notify_all();
            }
        }
    }

    /// Run `f(0) .. f(n - 1)`, each exactly once, across the workers and
    /// the calling thread. Returns the wall-clock nanoseconds the caller
    /// spent waiting for straggling workers after finishing its own share —
    /// the barrier-stall diagnostic the domain scheduler reports.
    ///
    /// Panics from items are re-raised here after the batch drains. Must
    /// not be called reentrantly (an item must not call back into `run`).
    pub fn run(&self, n: usize, f: &(dyn Fn(usize) + Sync)) -> u64 {
        if n == 0 {
            return 0;
        }
        // Erase the borrow lifetime: see `JobPtr` — we do not return until
        // every dereference has happened.
        let job = JobPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(f as *const _)
        });
        let mut st = self.shared.state.lock().expect("pool state poisoned");
        assert!(st.job.is_none(), "WorkerPool::run is not reentrant");
        st.epoch += 1;
        st.job = Some(job);
        st.n = n;
        st.next = 0;
        st.done = 0;
        self.shared.work_cv.notify_all();
        st = Self::participate(&self.shared, st);
        // Our share is done; wait for stragglers, measuring the stall.
        let waited = if st.done < st.n {
            let t0 = Instant::now();
            while st.done < st.n {
                st = self.shared.done_cv.wait(st).expect("pool state poisoned");
            }
            t0.elapsed().as_nanos() as u64
        } else {
            st.job = None;
            0
        };
        let panics = std::mem::take(&mut st.panics);
        drop(st);
        if let Some(payload) = panics.into_iter().next() {
            resume_unwind(payload);
        }
        waited
    }

    /// Run `f(i, &mut items[i])` for every item, each exactly once, across
    /// the workers and the calling thread. Returns the caller's
    /// barrier-stall nanoseconds (see [`WorkerPool::run`]).
    pub fn run_mut<T, F>(&self, items: &mut [T], f: F) -> u64
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        struct SharedItems<'a, T>(&'a [std::cell::UnsafeCell<T>]);
        // SAFETY: each index is handed to exactly one executor (the pool's
        // `next` counter is monotonic under the lock), so no `&mut` aliases.
        unsafe impl<T: Send> Sync for SharedItems<'_, T> {}
        impl<T> SharedItems<'_, T> {
            /// SAFETY: caller must be the only executor holding index `i`.
            #[allow(clippy::mut_from_ref)]
            unsafe fn get(&self, i: usize) -> &mut T {
                unsafe { &mut *self.0[i].get() }
            }
        }

        // `&mut [T] -> &[UnsafeCell<T>]` is sound: UnsafeCell<T> has the
        // same layout as T and we hold the unique borrow for the duration.
        let cells = unsafe {
            std::slice::from_raw_parts(
                items.as_ptr().cast::<std::cell::UnsafeCell<T>>(),
                items.len(),
            )
        };
        let shared = &SharedItems(cells);
        self.run(items.len(), &|i| {
            // SAFETY: unique index per executor, see above.
            f(i, unsafe { shared.get(i) });
        })
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_item_runs_exactly_once() {
        let pool = WorkerPool::new(3);
        for round in 0..50 {
            let n = 1 + (round % 17);
            let mut hits = vec![0u32; n];
            pool.run_mut(&mut hits, |_, h| *h += 1);
            assert!(hits.iter().all(|&h| h == 1), "round {round}: {hits:?}");
        }
    }

    #[test]
    fn caller_participates_with_zero_workers() {
        let pool = WorkerPool::new(0);
        let mut out = vec![0usize; 8];
        pool.run_mut(&mut out, |i, v| *v = i * i);
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn batches_reuse_parked_workers() {
        let pool = WorkerPool::new(2);
        let total = AtomicUsize::new(0);
        for _ in 0..200 {
            pool.run(5, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn item_panic_reaches_the_caller_after_drain() {
        let pool = WorkerPool::new(2);
        let survivors = AtomicUsize::new(0);
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 3 {
                    panic!("item 3 exploded");
                }
                survivors.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(res.is_err(), "item panic must propagate");
        // The batch drained: all other items still ran.
        assert_eq!(survivors.load(Ordering::Relaxed), 7);
        // And the pool is reusable afterwards.
        let mut v = vec![0u8; 4];
        pool.run_mut(&mut v, |_, x| *x = 9);
        assert_eq!(v, vec![9; 4]);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.run(0, &|_| unreachable!("no items")), 0);
    }

    #[test]
    fn borrowed_state_is_visible_after_run() {
        // The lifetime-erased closure writes through borrows that live on
        // the caller's stack; run() must not return before they complete.
        let pool = WorkerPool::new(3);
        let mut sums = vec![0u64; 64];
        let inputs: Vec<u64> = (0..64).map(|i| i * 3 + 1).collect();
        pool.run_mut(&mut sums, |i, s| *s = inputs[i] * 2);
        for (i, s) in sums.iter().enumerate() {
            assert_eq!(*s, (i as u64 * 3 + 1) * 2);
        }
    }
}
