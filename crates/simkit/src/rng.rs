//! Deterministic randomness for workloads and fault injection.
//!
//! Every stochastic choice in the workspace draws from a [`DetRng`] seeded
//! explicitly, so any experiment or failing test can be replayed bit-for-bit.

/// A small, fast, explicitly seeded RNG.
///
/// The core is xoshiro256++ (Blackman & Vigna) with SplitMix64 seed
/// expansion — self-contained so the workspace carries no external RNG
/// dependency, and bit-for-bit reproducible across platforms.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Seeded construction; equal seeds produce equal streams.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        DetRng {
            state: [splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s)],
        }
    }

    fn next(&mut self) -> u64 {
        let out =
            self.state[0].wrapping_add(self.state[3]).rotate_left(23).wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        out
    }

    /// Derive an independent child stream, e.g. one per worker thread, so
    /// adding a consumer does not perturb the others' draws.
    pub fn fork(&mut self, salt: u64) -> DetRng {
        let s = self.next() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::new(s)
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform bounds inverted: [{lo}, {hi}]");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next();
        }
        // Debiased modular reduction: reject draws from the tail that would
        // over-weight low residues.
        let n = span + 1;
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next();
            if v < zone {
                return lo + v % n;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` as i64.
    pub fn uniform_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "uniform bounds inverted: [{lo}, {hi}]");
        let span = (hi as i128 - lo as i128) as u64;
        if span == u64::MAX {
            return self.next() as i64;
        }
        (lo as i128 + self.uniform(0, span) as i128) as i64
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.unit() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        let i = self.uniform(0, items.len() as u64 - 1) as usize;
        &items[i]
    }

    /// Exponentially distributed value with the given mean (for inter-arrival
    /// times). Clamped away from infinity.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        let u = self.unit().max(1e-12);
        -mean * u.ln()
    }

    /// A raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = DetRng::new(7);
        for _ in 0..1000 {
            let x = r.uniform(10, 20);
            assert!((10..=20).contains(&x));
        }
        assert_eq!(r.uniform(5, 5), 5);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut root1 = DetRng::new(9);
        let mut root2 = DetRng::new(9);
        let mut c1 = root1.fork(1);
        let mut c2 = root2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());
        // A differently salted fork differs.
        let mut root3 = DetRng::new(9);
        let mut c3 = root3.fork(2);
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(3);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn exponential_mean_roughly_correct() {
        let mut r = DetRng::new(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean was {mean}");
    }

    #[test]
    fn pick_covers_slice() {
        let mut r = DetRng::new(13);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*r.pick(&items) as usize - 1] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
