//! Deterministic randomness for workloads and fault injection.
//!
//! Every stochastic choice in the workspace draws from a [`DetRng`] seeded
//! explicitly, so any experiment or failing test can be replayed bit-for-bit.

/// A small, fast, explicitly seeded RNG.
///
/// The core is xoshiro256++ (Blackman & Vigna) with SplitMix64 seed
/// expansion — self-contained so the workspace carries no external RNG
/// dependency, and bit-for-bit reproducible across platforms.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Seeded construction; equal seeds produce equal streams.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        DetRng {
            state: [splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s)],
        }
    }

    fn next(&mut self) -> u64 {
        let out =
            self.state[0].wrapping_add(self.state[3]).rotate_left(23).wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        out
    }

    /// Derive an independent child stream, e.g. one per worker thread, so
    /// adding a consumer does not perturb the others' draws.
    pub fn fork(&mut self, salt: u64) -> DetRng {
        let s = self.next() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::new(s)
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform bounds inverted: [{lo}, {hi}]");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next();
        }
        // Debiased modular reduction: reject draws from the tail that would
        // over-weight low residues.
        let n = span + 1;
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next();
            if v < zone {
                return lo + v % n;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` as i64.
    pub fn uniform_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "uniform bounds inverted: [{lo}, {hi}]");
        let span = (hi as i128 - lo as i128) as u64;
        if span == u64::MAX {
            return self.next() as i64;
        }
        (lo as i128 + self.uniform(0, span) as i128) as i64
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.unit() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        let i = self.uniform(0, items.len() as u64 - 1) as usize;
        &items[i]
    }

    /// Exponentially distributed value with the given mean (for inter-arrival
    /// times). Clamped away from infinity.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        let u = self.unit().max(1e-12);
        -mean * u.ln()
    }

    /// A raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

/// Zipfian rank chooser over `[0, n)` — the YCSB hot-key distribution.
///
/// Implements the Gray et al. "Quickly generating billion-record synthetic
/// databases" inverse-CDF approximation (the same construction YCSB's
/// `ZipfianGenerator` uses): one `unit()` draw per sample, with the
/// harmonic normalizer computed once at construction. `theta = 0` is the
/// uniform distribution; YCSB's default skew is `theta = 0.99`. Rank 0 is
/// the most popular item — callers that want popular items scattered
/// through the keyspace hash the rank (cf. YCSB's *scrambled* zipfian).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
    half_pow_theta: f64,
}

impl Zipfian {
    /// Chooser over ranks `[0, n)` with skew `theta` in `[0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1, "zipfian needs a non-empty universe");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1), got {theta}");
        let zeta = |upto: u64| (1..=upto).map(|i| 1.0 / (i as f64).powf(theta)).sum::<f64>();
        let zeta_n = zeta(n);
        let zeta_2 = zeta(2.min(n));
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_2 / zeta_n);
        Zipfian { n, theta, alpha, zeta_n, eta, half_pow_theta: 0.5f64.powf(theta) }
    }

    /// The universe size the chooser was built for.
    pub fn universe(&self) -> u64 {
        self.n
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draw one rank in `[0, n)`; rank 0 is the hottest.
    pub fn next(&mut self, rng: &mut DetRng) -> u64 {
        let u = rng.unit();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + self.half_pow_theta {
            return 1.min(self.n - 1);
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = DetRng::new(7);
        for _ in 0..1000 {
            let x = r.uniform(10, 20);
            assert!((10..=20).contains(&x));
        }
        assert_eq!(r.uniform(5, 5), 5);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut root1 = DetRng::new(9);
        let mut root2 = DetRng::new(9);
        let mut c1 = root1.fork(1);
        let mut c2 = root2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());
        // A differently salted fork differs.
        let mut root3 = DetRng::new(9);
        let mut c3 = root3.fork(2);
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(3);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn exponential_mean_roughly_correct() {
        let mut r = DetRng::new(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean was {mean}");
    }

    #[test]
    fn pick_covers_slice() {
        let mut r = DetRng::new(13);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*r.pick(&items) as usize - 1] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn zipfian_is_deterministic_per_seed() {
        let draw = |seed: u64| -> Vec<u64> {
            let mut rng = DetRng::new(seed);
            let mut z = Zipfian::new(1000, 0.9);
            (0..500).map(|_| z.next(&mut rng)).collect()
        };
        let a = draw(0x21bf);
        assert_eq!(a, draw(0x21bf));
        // A different seed must produce a different stream.
        assert_ne!(a, draw(0x21c0));
    }

    #[test]
    fn zipfian_stays_in_bounds() {
        let mut rng = DetRng::new(17);
        for &n in &[1u64, 2, 3, 1000] {
            let mut z = Zipfian::new(n, 0.99);
            for _ in 0..2000 {
                assert!(z.next(&mut rng) < n);
            }
        }
    }

    /// More skew ⇒ more probability mass on the hottest ranks: the share
    /// of draws landing in the top 1% of ranks must grow monotonically
    /// with `theta`.
    #[test]
    fn zipfian_skew_is_monotone_in_theta() {
        let hot_share = |theta: f64| -> f64 {
            let n = 10_000u64;
            let mut rng = DetRng::new(0x21bf);
            let mut z = Zipfian::new(n, theta);
            let draws = 20_000;
            let hot = (0..draws).filter(|_| z.next(&mut rng) < n / 100).count();
            hot as f64 / draws as f64
        };
        let shares: Vec<f64> = [0.0, 0.5, 0.8, 0.99].iter().map(|&t| hot_share(t)).collect();
        for w in shares.windows(2) {
            assert!(w[0] < w[1], "hot-key share not monotone in theta: {shares:?}");
        }
        // theta = 0 is uniform: the top 1% of ranks get ~1% of draws.
        assert!((0.005..0.02).contains(&shares[0]), "theta=0 share {}", shares[0]);
    }

    /// Chi-squared sanity check against the uniform chooser: `theta = 0`
    /// draws must be statistically compatible with a flat histogram, and
    /// skewed draws must reject it by orders of magnitude.
    #[test]
    fn zipfian_chi_squared_vs_uniform() {
        let chi2 = |theta: f64| -> f64 {
            let bins = 50u64;
            let draws = 50_000u64;
            let mut rng = DetRng::new(0xC417);
            let mut z = Zipfian::new(bins, theta);
            let mut counts = vec![0u64; bins as usize];
            for _ in 0..draws {
                counts[z.next(&mut rng) as usize] += 1;
            }
            let expected = draws as f64 / bins as f64;
            counts.iter().map(|&c| (c as f64 - expected).powi(2) / expected).sum()
        };
        // 49 degrees of freedom: P(chi2 > 90) < 0.0005 for a true uniform.
        let flat = chi2(0.0);
        assert!(flat < 90.0, "uniform chooser failed its own chi-squared test: {flat}");
        let skewed = chi2(0.99);
        assert!(skewed > 1_000.0, "zipfian draws look uniform: chi2 = {skewed}");
    }
}
