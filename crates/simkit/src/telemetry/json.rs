//! A small, dependency-free JSON document builder.
//!
//! The workspace runs in hermetic environments with no crates.io access, so
//! metric export carries its own writer instead of `serde_json`. Only
//! *emission* is provided — nothing in the simulation parses JSON. Output is
//! deterministic: object fields print in insertion order (the telemetry
//! registry inserts in sorted path order), floats use Rust's shortest
//! round-trip formatting, and non-finite floats emit `null` (JSON has no
//! NaN/Infinity).

use std::fmt;
use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, printed exactly (no float rounding).
    U64(u64),
    /// A signed integer, printed exactly.
    I64(i64),
    /// A double; non-finite values print as `null`.
    F64(f64),
    /// A string, escaped per RFC 8259.
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object; fields print in the order given.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience object constructor from `(&str, Json)` pairs.
    pub fn object<'a>(fields: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Object(fields.into_iter().map(|(k, v)| (String::from(k), v)).collect())
    }

    /// Compact rendering (no whitespace).
    #[allow(clippy::inherent_to_string_shadow_display)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string())
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's shortest round-trip Display; force a fractional marker so the
    // value stays typed as a float when read back by strict parsers.
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::U64(u64::MAX).to_string(), "18446744073709551615");
        assert_eq!(Json::I64(-42).to_string(), "-42");
        assert_eq!(Json::F64(1.5).to_string(), "1.5");
        assert_eq!(Json::F64(3.0).to_string(), "3.0");
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(Json::str("a\"b\\c\nd").to_string(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::str("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn containers() {
        let j = Json::object([
            ("xs", Json::Array(vec![Json::U64(1), Json::U64(2)])),
            ("empty", Json::Array(vec![])),
        ]);
        assert_eq!(j.to_string(), "{\"xs\":[1,2],\"empty\":[]}");
    }

    #[test]
    fn pretty_indents() {
        let j = Json::object([("a", Json::U64(1))]);
        assert_eq!(j.pretty(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn field_order_preserved() {
        let j = Json::object([("z", Json::U64(1)), ("a", Json::U64(2))]);
        assert_eq!(j.to_string(), "{\"z\":1,\"a\":2}");
    }
}
