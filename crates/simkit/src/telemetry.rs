//! Cross-stack metrics: a unified registry every layer reports into.
//!
//! The paper's experiments (§6.1–§6.5, Figs. 9–13) are claims about latency,
//! throughput, and interference. To make every such number auditable, each
//! hardware and software model in the workspace exposes its counters through
//! one mechanism instead of private tallies:
//!
//! - Components keep **cheap local fields** on their hot paths (plain `u64`
//!   bumps — no clocks, no atomics, no shared registry references), following
//!   simkit's no-global-runtime ownership rule.
//! - At observation points a [`MetricsRegistry`] *collects* those fields via
//!   the [`Instrument`] trait, under a hierarchical dotted path such as
//!   `ssd.ftl.gc_moves` or `pcie.link0.tlp_bytes`.
//! - A frozen [`Snapshot`] supports [`Snapshot::diff`] so a phase (warmup vs.
//!   measurement window) can be measured exactly, and [`Snapshot::to_json`]
//!   exports the whole tree as a stable, machine-readable document — the
//!   `results/*.json` files next to each figure's `.txt` output.
//!
//! # Naming convention
//!
//! `"<crate>.<component>[<index>].<metric>"`, lower_snake_case segments
//! joined by `.`; units are suffixes (`_bytes`, `_ns`, `_us`, `_pct`).
//! See `docs/OBSERVABILITY.md` for the full catalog.
//!
//! # Kinds and merge rules
//!
//! | kind      | recorded via                  | repeat-record rule   | diff rule          |
//! |-----------|-------------------------------|----------------------|--------------------|
//! | counter   | [`Scope::counter`]            | values accumulate    | later − earlier    |
//! | gauge     | [`Scope::gauge`]              | last write wins      | later value        |
//! | latency   | [`Scope::latency`]            | last write wins      | later summary      |
//!
//! Recording the **same path with a different kind** is a programming error
//! and panics immediately, naming the path — silent coercion would corrupt
//! the export. A leaf and a deeper path may share a prefix
//! (`ssd.ftl` and `ssd.ftl.gc_moves` can both exist): the export is flat, so
//! hierarchical prefixes never collide with leaves.

use crate::stats::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

pub mod json;

use json::Json;

/// One recorded metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonically accumulated event count (ops, bytes, hits, misses).
    Counter(u64),
    /// Point-in-time level (queue depth, hit rate, utilization).
    Gauge(f64),
    /// Summary of a latency distribution, in microseconds.
    Latency {
        /// Number of recorded observations.
        count: u64,
        /// Arithmetic mean, µs.
        mean_us: f64,
        /// Median lower bound (power-of-two bucket), µs.
        p50_us: f64,
        /// 99th-percentile lower bound (power-of-two bucket), µs.
        p99_us: f64,
    },
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Latency { .. } => "latency",
        }
    }

    fn to_json(&self) -> Json {
        match self {
            MetricValue::Counter(v) => Json::U64(*v),
            MetricValue::Gauge(v) => Json::F64(*v),
            MetricValue::Latency { count, mean_us, p50_us, p99_us } => Json::object([
                ("count", Json::U64(*count)),
                ("mean_us", Json::F64(*mean_us)),
                ("p50_us", Json::F64(*p50_us)),
                ("p99_us", Json::F64(*p99_us)),
            ]),
        }
    }
}

/// A component that can report its counters into a registry scope.
///
/// Implementations only *read* their local fields; recording on the hot path
/// stays plain field arithmetic owned by the component itself.
pub trait Instrument {
    /// Report this component's metrics under the scope's prefix.
    fn instrument(&self, out: &mut Scope<'_>);
}

/// The mutable registry metrics are collected into.
///
/// Keys are full dotted paths; the map is ordered so iteration and export
/// are deterministic.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, MetricValue>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A recording scope rooted at `prefix` (pass `""` for the root).
    pub fn scope(&mut self, prefix: &str) -> Scope<'_> {
        Scope { registry: self, prefix: String::from(prefix) }
    }

    /// Collect `component`'s metrics under `prefix`.
    pub fn collect(&mut self, prefix: &str, component: &impl Instrument) {
        component.instrument(&mut self.scope(prefix));
    }

    /// Record directly at an absolute path (rarely needed; prefer scopes).
    pub fn counter(&mut self, path: &str, value: u64) {
        self.scope("").counter(path, value);
    }

    /// Record a gauge at an absolute path.
    pub fn gauge(&mut self, path: &str, value: f64) {
        self.scope("").gauge(path, value);
    }

    /// Freeze the current contents.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot { metrics: self.metrics.clone() }
    }

    /// Drop all recorded metrics (e.g. between collection passes, so gauges
    /// from a dead phase don't leak into the next snapshot).
    pub fn clear(&mut self) {
        self.metrics.clear();
    }

    /// Number of distinct paths currently recorded.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    fn record(&mut self, path: String, value: MetricValue) {
        use std::collections::btree_map::Entry;
        match self.metrics.entry(path) {
            Entry::Vacant(e) => {
                e.insert(value);
            }
            Entry::Occupied(mut e) => match (e.get_mut(), value) {
                (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                (slot @ MetricValue::Gauge(_), v @ MetricValue::Gauge(_)) => *slot = v,
                (slot @ MetricValue::Latency { .. }, v @ MetricValue::Latency { .. }) => {
                    *slot = v;
                }
                (old, new) => {
                    let (old_kind, new_kind) = (old.kind(), new.kind());
                    panic!(
                        "metric kind collision at `{}`: recorded as {old_kind}, now {new_kind}",
                        e.key(),
                    )
                }
            },
        }
    }
}

/// A recording handle that prefixes every path with a component's location.
#[derive(Debug)]
pub struct Scope<'a> {
    registry: &'a mut MetricsRegistry,
    prefix: String,
}

impl Scope<'_> {
    fn join(&self, name: &str) -> String {
        debug_assert!(!name.is_empty(), "metric name must be non-empty");
        if self.prefix.is_empty() {
            String::from(name)
        } else {
            let mut p = String::with_capacity(self.prefix.len() + 1 + name.len());
            p.push_str(&self.prefix);
            p.push('.');
            p.push_str(name);
            p
        }
    }

    /// A child scope at `<prefix>.<name>`.
    pub fn scope(&mut self, name: &str) -> Scope<'_> {
        let prefix = self.join(name);
        Scope { registry: self.registry, prefix }
    }

    /// Collect a sub-component under `<prefix>.<name>`.
    pub fn collect(&mut self, name: &str, component: &impl Instrument) {
        component.instrument(&mut self.scope(name));
    }

    /// Record (accumulate) a counter.
    pub fn counter(&mut self, name: &str, value: u64) {
        let path = self.join(name);
        self.registry.record(path, MetricValue::Counter(value));
    }

    /// Record (overwrite) a gauge.
    pub fn gauge(&mut self, name: &str, value: f64) {
        let path = self.join(name);
        self.registry.record(path, MetricValue::Gauge(value));
    }

    /// Record (overwrite) a latency summary from a [`Histogram`] of
    /// microsecond samples.
    pub fn latency(&mut self, name: &str, hist: &Histogram) {
        let path = self.join(name);
        self.registry.record(
            path,
            MetricValue::Latency {
                count: hist.count(),
                mean_us: hist.mean(),
                p50_us: hist.percentile_lower_bound(50.0),
                p99_us: hist.percentile_lower_bound(99.0),
            },
        );
    }
}

/// A frozen, ordered view of the registry at one instant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    metrics: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// Look up a metric by full path.
    pub fn get(&self, path: &str) -> Option<&MetricValue> {
        self.metrics.get(path)
    }

    /// Counter value at `path`, or 0 if absent or not a counter.
    pub fn counter(&self, path: &str) -> u64 {
        match self.metrics.get(path) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value at `path`, or 0.0 if absent or not a gauge.
    pub fn gauge(&self, path: &str) -> f64 {
        match self.metrics.get(path) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0.0,
        }
    }

    /// Iterate `(path, value)` in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics captured.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True if the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The change from `earlier` to `self`: counters subtract (saturating, so
    /// a cleared registry yields zeros rather than wrapping), gauges and
    /// latency summaries keep the later value. Paths present only in
    /// `earlier` are dropped; paths new in `self` are kept whole.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = BTreeMap::new();
        for (path, value) in &self.metrics {
            let v = match (value, earlier.metrics.get(path)) {
                (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                    MetricValue::Counter(now.saturating_sub(*then))
                }
                (v, _) => v.clone(),
            };
            out.insert(path.clone(), v);
        }
        Snapshot { metrics: out }
    }

    /// Just the flat `path → value` metrics object (for embedding in a
    /// larger document, e.g. a figure-results file).
    pub fn metrics_json(&self) -> Json {
        Json::Object(self.metrics.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }

    /// Export as a JSON document (see `docs/OBSERVABILITY.md` for schema).
    ///
    /// The layout is flat and stable: a `schema` tag, an optional `meta`
    /// object supplied by the caller, and a `metrics` object whose keys are
    /// full dotted paths in sorted order.
    pub fn to_json(&self, meta: &[(&str, Json)]) -> Json {
        let metrics = self.metrics_json();
        let mut fields = vec![(String::from("schema"), Json::str("xssd-metrics/v1"))];
        if !meta.is_empty() {
            fields.push((
                String::from("meta"),
                Json::Object(meta.iter().map(|(k, v)| (String::from(*k), v.clone())).collect()),
            ));
        }
        fields.push((String::from("metrics"), metrics));
        Json::Object(fields)
    }

    /// Render [`Snapshot::to_json`] pretty-printed, trailing newline
    /// included, ready to write to a `results/*.json` file.
    pub fn to_json_string(&self, meta: &[(&str, Json)]) -> String {
        let mut s = self.to_json(meta).pretty();
        s.push('\n');
        s
    }

    /// A short human-readable listing (debugging aid).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        for (path, v) in &self.metrics {
            match v {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{path:<48} {c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "{path:<48} {g:.3}");
                }
                MetricValue::Latency { count, mean_us, p50_us, p99_us } => {
                    let _ = writeln!(
                        out,
                        "{path:<48} n={count} mean={mean_us:.2}us p50>={p50_us}us p99>={p99_us}us"
                    );
                }
            }
        }
        out
    }
}

impl Instrument for crate::resource::SerialResource {
    fn instrument(&self, out: &mut Scope<'_>) {
        out.counter("busy_ns", self.busy_time().as_nanos());
        out.counter("requests", self.request_count());
    }
}

impl Instrument for crate::resource::Link {
    fn instrument(&self, out: &mut Scope<'_>) {
        let s = self.stats();
        out.counter("payload_bytes", s.payload_bytes);
        out.counter("overhead_bytes", s.overhead_bytes);
        out.counter("messages", s.messages);
        out.counter("busy_ns", self.busy_time().as_nanos());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_round_trips() {
        let mut reg = MetricsRegistry::new();
        let mut scope = reg.scope("pcie.link0");
        scope.counter("tlp_count", 3);
        scope.counter("tlp_count", 4);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("pcie.link0.tlp_count"), 7);
        assert_eq!(snap.counter("absent.path"), 0);
    }

    #[test]
    fn gauge_overwrites_and_round_trips() {
        let mut reg = MetricsRegistry::new();
        reg.gauge("ssd.buffer.hit_rate_pct", 10.0);
        reg.gauge("ssd.buffer.hit_rate_pct", 93.5);
        assert_eq!(reg.snapshot().gauge("ssd.buffer.hit_rate_pct"), 93.5);
    }

    #[test]
    fn latency_summarizes_histogram() {
        let mut reg = MetricsRegistry::new();
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(4.0);
        }
        h.record(1000.0);
        reg.scope("core.destage").latency("write_us", &h);
        match reg.snapshot().get("core.destage.write_us") {
            Some(MetricValue::Latency { count, p50_us, p99_us, .. }) => {
                assert_eq!(*count, 100);
                assert_eq!(*p50_us, 4.0);
                assert!(*p99_us <= 1000.0);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn nested_scopes_compose_paths() {
        let mut reg = MetricsRegistry::new();
        let mut ssd = reg.scope("ssd");
        let mut ftl = ssd.scope("ftl");
        ftl.counter("gc_moves", 11);
        assert_eq!(reg.snapshot().counter("ssd.ftl.gc_moves"), 11);
    }

    #[test]
    fn instrument_trait_collects() {
        struct Ftl {
            map_reads: u64,
        }
        impl Instrument for Ftl {
            fn instrument(&self, out: &mut Scope<'_>) {
                out.counter("map_reads", self.map_reads);
            }
        }
        let mut reg = MetricsRegistry::new();
        reg.collect("ssd.ftl", &Ftl { map_reads: 42 });
        assert_eq!(reg.snapshot().counter("ssd.ftl.map_reads"), 42);
    }

    #[test]
    fn kind_collision_panics() {
        let result = std::panic::catch_unwind(|| {
            let mut reg = MetricsRegistry::new();
            reg.counter("a.b", 1);
            reg.gauge("a.b", 1.0);
        });
        let err = result.expect_err("kind collision must panic");
        let msg = err.downcast_ref::<String>().expect("panic payload");
        assert!(msg.contains("a.b"), "panic names the path: {msg}");
        assert!(msg.contains("counter") && msg.contains("gauge"));
    }

    #[test]
    fn leaf_and_subtree_paths_coexist() {
        // The export is flat, so `ssd.ftl` (a leaf) and `ssd.ftl.gc_moves`
        // (deeper) are distinct keys, not a collision.
        let mut reg = MetricsRegistry::new();
        reg.counter("ssd.ftl", 1);
        reg.counter("ssd.ftl.gc_moves", 2);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("ssd.ftl"), 1);
        assert_eq!(snap.counter("ssd.ftl.gc_moves"), 2);
        assert_eq!(snap.len(), 2);
    }

    #[test]
    fn snapshot_diff_across_phases() {
        let mut reg = MetricsRegistry::new();
        reg.counter("memdb.commits", 100);
        reg.gauge("nvme.sq_depth", 7.0);
        let warmup = reg.snapshot();

        reg.counter("memdb.commits", 150); // now 250 cumulative
        reg.gauge("nvme.sq_depth", 3.0);
        reg.counter("memdb.aborts", 5); // new in measurement phase
        let end = reg.snapshot();

        let phase = end.diff(&warmup);
        assert_eq!(phase.counter("memdb.commits"), 150);
        assert_eq!(phase.counter("memdb.aborts"), 5);
        assert_eq!(phase.gauge("nvme.sq_depth"), 3.0);
    }

    #[test]
    fn diff_drops_paths_missing_later() {
        let mut reg = MetricsRegistry::new();
        reg.counter("gone", 9);
        let earlier = reg.snapshot();
        reg.clear();
        reg.counter("kept", 1);
        let later = reg.snapshot();
        let d = later.diff(&earlier);
        assert_eq!(d.len(), 1);
        assert_eq!(d.counter("kept"), 1);
    }

    #[test]
    fn json_export_schema_is_stable() {
        let mut reg = MetricsRegistry::new();
        reg.counter("b.count", 2);
        reg.gauge("a.level", 1.5);
        let out = reg.snapshot().to_json(&[("fig", Json::str("fig09"))]).to_string();
        // Deterministic, sorted, flat-keyed document.
        assert_eq!(
            out,
            "{\"schema\":\"xssd-metrics/v1\",\"meta\":{\"fig\":\"fig09\"},\
             \"metrics\":{\"a.level\":1.5,\"b.count\":2}}"
        );
        // And re-rendering is byte-identical.
        assert_eq!(out, reg.snapshot().to_json(&[("fig", Json::str("fig09"))]).to_string());
    }

    #[test]
    fn json_export_latency_shape() {
        let mut reg = MetricsRegistry::new();
        let mut h = Histogram::new();
        h.record(8.0);
        reg.scope("flash").latency("t_prog_us", &h);
        let out = reg.snapshot().to_json(&[]).to_string();
        assert!(
            out.contains("\"flash.t_prog_us\":{\"count\":1,\"mean_us\":8"),
            "latency object shape changed: {out}"
        );
    }
}
