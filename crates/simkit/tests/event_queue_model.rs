//! Model-based property test for the indexed-heap [`simkit::EventQueue`].
//!
//! A naive `Vec`-backed reference model and the real queue are driven
//! through ~10k random schedule/cancel/pop/pop_due/peek operations from a
//! seeded [`simkit::DetRng`]; every observable (delivery order, FIFO
//! tie-break at equal timestamps, lengths, peeked times, cancellation
//! results including generation-tag rejection of stale ids) must match
//! exactly.

use simkit::{DetRng, EventId, EventQueue, SimTime};

/// The reference model: a flat list of live `(at, seq)` entries, popped by
/// linear minimum scan — trivially correct, trivially slow.
#[derive(Default)]
struct NaiveModel {
    live: Vec<(SimTime, u64)>,
    next_seq: u64,
}

impl NaiveModel {
    fn schedule(&mut self, at: SimTime) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.push((at, seq));
        seq
    }

    /// Cancel by seq; true if the entry was still live.
    fn cancel(&mut self, seq: u64) -> bool {
        match self.live.iter().position(|&(_, s)| s == seq) {
            Some(i) => {
                self.live.remove(i);
                true
            }
            None => false,
        }
    }

    fn peek(&self) -> Option<SimTime> {
        self.live.iter().map(|&(at, _)| at).min()
    }

    fn pop(&mut self) -> Option<(SimTime, u64)> {
        let min = self.live.iter().enumerate().min_by_key(|(_, &(at, seq))| (at, seq));
        let i = min.map(|(i, _)| i)?;
        Some(self.live.remove(i))
    }

    fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, u64)> {
        match self.peek() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }
}

#[test]
fn indexed_heap_matches_naive_model_over_random_ops() {
    let mut rng = DetRng::new(0xE7E7_0001);
    let mut real: EventQueue<u64> = EventQueue::new();
    let mut model = NaiveModel::default();
    // Every id ever issued (seq -> EventId), including long-fired ones, so
    // cancellation regularly targets stale handles across slot reuse.
    let mut issued: Vec<(u64, EventId)> = Vec::new();

    for step in 0..10_000u64 {
        match rng.uniform(0, 99) {
            // Schedule — coarse time grid so equal timestamps are common
            // and the FIFO tie-break is exercised constantly.
            0..=44 => {
                let at = SimTime::from_nanos(rng.uniform(0, 400) * 10);
                let seq = model.schedule(at);
                let id = real.schedule(at, seq);
                issued.push((seq, id));
            }
            // Cancel a random id from the full issued history (live, fired,
            // or already cancelled).
            45..=64 => {
                if issued.is_empty() {
                    continue;
                }
                let pick = rng.uniform(0, issued.len() as u64 - 1) as usize;
                let (seq, id) = issued[pick];
                let model_cancelled = model.cancel(seq);
                let real_cancelled = real.cancel(id);
                assert_eq!(
                    real_cancelled, model_cancelled,
                    "step {step}: cancel(seq={seq}) diverged"
                );
            }
            // Pop the frontier.
            65..=84 => {
                let expect = model.pop();
                let got = real.pop();
                assert_eq!(got, expect, "step {step}: pop diverged");
            }
            // Pop only if due.
            85..=94 => {
                let now = SimTime::from_nanos(rng.uniform(0, 4200));
                let expect = model.pop_due(now);
                let got = real.pop_due(now);
                assert_eq!(got, expect, "step {step}: pop_due({now}) diverged");
            }
            // Pure observation of the frontier.
            _ => {
                assert_eq!(real.next_time(), model.peek(), "step {step}: next_time diverged");
            }
        }
        assert_eq!(real.len(), model.live.len(), "step {step}: len diverged");
        assert_eq!(real.is_empty(), model.live.is_empty(), "step {step}: is_empty diverged");
        assert_eq!(real.next_time(), model.peek(), "step {step}: frontier diverged");
    }

    // Drain both completely: full delivery order must match, including
    // FIFO tie-breaks among the surviving events.
    let mut drained = 0;
    loop {
        let expect = model.pop();
        let got = real.pop();
        assert_eq!(got, expect, "drain diverged after {drained} pops");
        if got.is_none() {
            break;
        }
        drained += 1;
    }
    assert!(drained > 0, "test degenerated: nothing left to drain");
}

#[test]
fn every_stale_id_is_rejected_after_a_full_drain() {
    let mut rng = DetRng::new(0xE7E7_0002);
    let mut q: EventQueue<u64> = EventQueue::new();
    let ids: Vec<EventId> =
        (0..500).map(|i| q.schedule(SimTime::from_nanos(rng.uniform(0, 50)), i)).collect();
    while q.pop().is_some() {}
    // Refill, reusing every slot.
    let fresh: Vec<EventId> =
        (0..500).map(|i| q.schedule(SimTime::from_nanos(rng.uniform(0, 50)), 1000 + i)).collect();
    for id in ids {
        assert!(!q.cancel(id), "stale id cancelled a reused slot");
    }
    assert_eq!(q.len(), 500);
    for id in fresh {
        assert!(q.cancel(id));
    }
    assert!(q.is_empty());
}
