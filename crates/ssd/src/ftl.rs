//! Flash Translation Layer.
//!
//! "The Firmware runs the Flash Translation Layer (FTL), which is
//! responsible for finding empty Flash page(s) in which to place the data"
//! (paper §2.2). This is a page-mapping FTL: logical page number → physical
//! page address, with per-die active blocks, a free-block pool, validity
//! accounting, and greedy garbage collection.

use flash::{BlockAddr, DieAddr, FlashArray, FlashGeometry, Ppa};
use std::collections::{HashMap, VecDeque};

/// Logical page number (namespace LBA when LBA size == flash page size).
pub type Lpn = u64;

/// Which write stream an allocation serves. Each stream gets its own active
/// block per die so that streams never interleave pages within one block —
/// NAND requires in-order programming per block, and the channel scheduler
/// only guarantees order within a traffic class. (This is also a small
/// multi-stream separation win, cf. multi-streamed SSDs in paper §8.1.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocStream {
    /// Host writes through the data buffer.
    Host,
    /// GC relocations.
    Gc,
    /// Fast-side destage writes.
    Destage,
}

impl AllocStream {
    const COUNT: usize = 3;

    fn index(self) -> usize {
        match self {
            AllocStream::Host => 0,
            AllocStream::Gc => 1,
            AllocStream::Destage => 2,
        }
    }
}

/// Validity/occupancy state of one physical block.
#[derive(Debug, Clone, Copy, Default)]
struct BlockInfo {
    /// Pages allocated (programmed or scheduled) so far.
    allocated: u32,
    /// Pages still holding live data.
    valid: u32,
    /// Permanently out of circulation (grown bad / failed erase).
    retired: bool,
}

/// What garbage collection decided to do.
#[derive(Debug, Clone)]
pub struct GcPlan {
    /// The victim block to erase once its live pages move.
    pub victim: BlockAddr,
    /// Live pages to relocate: `(lpn, old_ppa, new_ppa)`.
    pub moves: Vec<(Lpn, Ppa, Ppa)>,
}

/// FTL statistics (write amplification observability).
#[derive(Debug, Clone, Copy, Default)]
pub struct FtlStats {
    /// Host-initiated page allocations.
    pub host_writes: u64,
    /// GC-initiated page relocations.
    pub gc_writes: u64,
    /// Blocks erased by GC.
    pub gc_erases: u64,
    /// Mapping-table lookups (lpn -> ppa translations).
    pub map_reads: u64,
    /// Mapping-table mutations (binds, rebinds, trims).
    pub map_updates: u64,
}

impl FtlStats {
    /// Write amplification factor: (host + gc writes) / host writes.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            1.0
        } else {
            (self.host_writes + self.gc_writes) as f64 / self.host_writes as f64
        }
    }
}

/// The page-mapping FTL.
#[derive(Debug)]
pub struct Ftl {
    geometry: FlashGeometry,
    /// lpn -> current physical page.
    map: HashMap<Lpn, Ppa>,
    /// physical page -> owning lpn (for GC validity scans).
    reverse: HashMap<Ppa, Lpn>,
    /// Per-die free (erased, not yet active) blocks.
    free_blocks: Vec<VecDeque<u32>>,
    /// Per-die, per-stream block currently receiving writes.
    active: Vec<[Option<BlockAddr>; AllocStream::COUNT]>,
    /// Per-block accounting, indexed like the array.
    blocks: Vec<BlockInfo>,
    /// Round-robin die cursor for allocation striping.
    next_die: usize,
    /// Free blocks (total) below which GC should run.
    gc_threshold: usize,
    stats: FtlStats,
    /// Lookup count; interior-mutable because [`Ftl::lookup`] takes `&self`.
    map_reads: std::cell::Cell<u64>,
}

impl Ftl {
    /// Build an FTL over `geometry`, skipping blocks `array` reports bad.
    pub fn new(geometry: FlashGeometry, array: &FlashArray, gc_threshold: usize) -> Self {
        let dies = geometry.total_dies() as usize;
        let mut free_blocks = vec![VecDeque::new(); dies];
        for ch in 0..geometry.channels {
            for die in 0..geometry.dies_per_channel {
                let d = DieAddr { channel: ch, die };
                let di = (ch * geometry.dies_per_channel + die) as usize;
                for b in 0..geometry.blocks_per_die {
                    let addr = BlockAddr { die: d, block: b };
                    if !array.is_bad(addr) {
                        free_blocks[di].push_back(b);
                    }
                }
            }
        }
        Ftl {
            geometry,
            map: HashMap::new(),
            reverse: HashMap::new(),
            free_blocks,
            active: vec![[None; AllocStream::COUNT]; dies],
            blocks: vec![BlockInfo::default(); geometry.total_blocks() as usize],
            next_die: 0,
            gc_threshold,
            stats: FtlStats::default(),
            map_reads: std::cell::Cell::new(0),
        }
    }

    fn die_index(&self, die: DieAddr) -> usize {
        (die.channel * self.geometry.dies_per_channel + die.die) as usize
    }

    fn block_index(&self, b: BlockAddr) -> usize {
        self.die_index(b.die) * self.geometry.blocks_per_die as usize + b.block as usize
    }

    fn die_of_index(&self, di: usize) -> DieAddr {
        DieAddr {
            channel: (di as u32) / self.geometry.dies_per_channel,
            die: (di as u32) % self.geometry.dies_per_channel,
        }
    }

    /// Current mapping of `lpn`, if any.
    pub fn lookup(&self, lpn: Lpn) -> Option<Ppa> {
        self.map_reads.set(self.map_reads.get() + 1);
        self.map.get(&lpn).copied()
    }

    /// Total free blocks across all dies.
    pub fn free_block_count(&self) -> usize {
        self.free_blocks.iter().map(|q| q.len()).sum()
    }

    /// Whether GC should run now.
    pub fn needs_gc(&self) -> bool {
        self.free_block_count() < self.gc_threshold
    }

    /// FTL statistics.
    pub fn stats(&self) -> FtlStats {
        FtlStats { map_reads: self.map_reads.get(), ..self.stats }
    }

    /// Number of live logical pages.
    pub fn mapped_pages(&self) -> usize {
        self.map.len()
    }

    /// Allocate a physical page for (a new version of) `lpn` on `stream`,
    /// striping across dies round-robin. Invalidates the previous mapping.
    /// Returns `None` when no die has a free page (device full — callers
    /// must GC).
    pub fn allocate(&mut self, lpn: Lpn, stream: AllocStream) -> Option<Ppa> {
        let ppa = self.allocate_raw(stream)?;
        match stream {
            AllocStream::Gc => self.stats.gc_writes += 1,
            _ => self.stats.host_writes += 1,
        }
        self.install(lpn, ppa);
        Some(ppa)
    }

    /// Allocate without binding to an lpn (GC relocation destination).
    fn allocate_raw(&mut self, stream: AllocStream) -> Option<Ppa> {
        let dies = self.active.len();
        for probe in 0..dies {
            let di = (self.next_die + probe) % dies;
            if let Some(ppa) = self.allocate_on_die(di, stream) {
                self.next_die = (di + 1) % dies;
                return Some(ppa);
            }
        }
        None
    }

    fn allocate_on_die(&mut self, di: usize, stream: AllocStream) -> Option<Ppa> {
        let si = stream.index();
        // Refill the active block if missing or full.
        let need_new = match self.active[di][si] {
            None => true,
            Some(b) => self.blocks[self.block_index(b)].allocated >= self.geometry.pages_per_block,
        };
        if need_new {
            let block = self.free_blocks[di].pop_front()?;
            self.active[di][si] = Some(BlockAddr { die: self.die_of_index(di), block });
        }
        let b = self.active[di][si].expect("active block just ensured");
        let bi = self.block_index(b);
        let page = self.blocks[bi].allocated;
        self.blocks[bi].allocated += 1;
        Some(Ppa { block: b, page })
    }

    /// Bind `lpn` to `ppa`, releasing any previous physical page.
    fn install(&mut self, lpn: Lpn, ppa: Ppa) {
        self.stats.map_updates += 1;
        if let Some(old) = self.map.insert(lpn, ppa) {
            let oi = self.block_index(old.block);
            debug_assert!(self.blocks[oi].valid > 0);
            self.blocks[oi].valid = self.blocks[oi].valid.saturating_sub(1);
            self.reverse.remove(&old);
        }
        let bi = self.block_index(ppa.block);
        self.blocks[bi].valid += 1;
        self.reverse.insert(ppa, lpn);
    }

    /// Explicitly invalidate `lpn` (trim).
    pub fn invalidate(&mut self, lpn: Lpn) {
        self.stats.map_updates += 1;
        if let Some(old) = self.map.remove(&lpn) {
            let oi = self.block_index(old.block);
            self.blocks[oi].valid = self.blocks[oi].valid.saturating_sub(1);
            self.reverse.remove(&old);
        }
    }

    /// Mark a block bad after a failed program: drop it from circulation and
    /// return a replacement allocation for the lpn that failed.
    pub fn retire_block(&mut self, block: BlockAddr) {
        let di = self.die_index(block.die);
        for slot in self.active[di].iter_mut() {
            if *slot == Some(block) {
                *slot = None;
            }
        }
        let bi = self.block_index(block);
        self.blocks[bi].retired = true;
        self.free_blocks[di].retain(|b| *b != block.block);
        // Live pages in the retired block must be rewritten by the caller;
        // validity bookkeeping stays until each lpn is reallocated.
    }

    /// Plan one round of greedy GC: pick the full block with the fewest
    /// valid pages, allocate destinations for its live data. Returns `None`
    /// when no victim exists (nothing reclaimable).
    pub fn plan_gc(&mut self) -> Option<GcPlan> {
        self.plan_gc_excluding(|_| false)
    }

    /// [`Ftl::plan_gc`] with a victim filter: blocks for which `exclude`
    /// returns true are skipped (the device excludes blocks with in-flight
    /// programs — firmware never collects a block still being written).
    pub fn plan_gc_excluding(&mut self, exclude: impl Fn(BlockAddr) -> bool) -> Option<GcPlan> {
        self.plan_gc_weighted(exclude, |_| 0)
    }

    /// Greedy GC with a wear-aware cost: the victim minimizes
    /// `valid_pages + wear_penalty(block)`. Passing the block's P/E count
    /// (scaled) as the penalty steers collection away from worn blocks —
    /// simple cost-based wear leveling layered on greedy reclamation.
    pub fn plan_gc_weighted(
        &mut self,
        exclude: impl Fn(BlockAddr) -> bool,
        wear_penalty: impl Fn(BlockAddr) -> u32,
    ) -> Option<GcPlan> {
        // Victim: a block that is fully allocated, not active, with minimum
        // valid count.
        let mut victim: Option<(BlockAddr, u32)> = None;
        for di in 0..self.active.len() {
            let die = self.die_of_index(di);
            for b in 0..self.geometry.blocks_per_die {
                let addr = BlockAddr { die, block: b };
                let bi = self.block_index(addr);
                let info = self.blocks[bi];
                let in_free = self.free_blocks[di].contains(&b);
                let is_active = self.active[di].contains(&Some(addr));
                if in_free
                    || is_active
                    || info.retired
                    || info.allocated < self.geometry.pages_per_block
                    || exclude(addr)
                {
                    continue;
                }
                let score = info.valid + wear_penalty(addr);
                if victim.is_none_or(|(_, v)| score < v) {
                    victim = Some((addr, score));
                }
            }
        }
        let (victim, _) = victim?;
        // Collect live pages of the victim.
        let vi = self.block_index(victim);
        let live: Vec<(Lpn, Ppa)> = self
            .reverse
            .iter()
            .filter(|(ppa, _)| ppa.block == victim)
            .map(|(ppa, lpn)| (*lpn, *ppa))
            .collect();
        let mut moves = Vec::with_capacity(live.len());
        for (lpn, old) in live {
            let new = self.allocate_raw(AllocStream::Gc)?;
            self.stats.gc_writes += 1;
            self.install(lpn, new);
            moves.push((lpn, old, new));
        }
        debug_assert_eq!(self.blocks[vi].valid, 0, "victim must be empty after moves");
        Some(GcPlan { victim, moves })
    }

    /// Record that `block` was erased: it returns to the free pool.
    pub fn block_erased(&mut self, block: BlockAddr) {
        let bi = self.block_index(block);
        self.blocks[bi] = BlockInfo::default();
        let di = self.die_index(block.die);
        self.free_blocks[di].push_back(block.block);
        self.stats.gc_erases += 1;
    }
}

impl simkit::Instrument for Ftl {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        let stats = self.stats();
        out.counter("host_writes", stats.host_writes);
        out.counter("gc_writes", stats.gc_writes);
        out.counter("gc_erases", stats.gc_erases);
        out.counter("map_reads", stats.map_reads);
        out.counter("map_updates", stats.map_updates);
        out.gauge("write_amplification", stats.write_amplification());
        out.gauge("mapped_pages", self.map.len() as f64);
        out.gauge("free_blocks", self.free_block_count() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash::{FlashTiming, ReliabilityConfig};

    fn setup() -> (FlashArray, Ftl) {
        let g = FlashGeometry::tiny();
        let array = FlashArray::new(g, FlashTiming::fast(), ReliabilityConfig::perfect(), 1);
        let ftl = Ftl::new(g, &array, 2);
        (array, ftl)
    }

    #[test]
    fn allocation_stripes_across_dies() {
        let (_a, mut ftl) = setup();
        let p0 = ftl.allocate(0, AllocStream::Host).unwrap();
        let p1 = ftl.allocate(1, AllocStream::Host).unwrap();
        let p2 = ftl.allocate(2, AllocStream::Host).unwrap();
        let p3 = ftl.allocate(3, AllocStream::Host).unwrap();
        let dies: std::collections::HashSet<_> = [p0, p1, p2, p3].iter().map(|p| p.die()).collect();
        assert_eq!(dies.len(), 4, "four dies in tiny geometry, all used");
        assert_eq!(ftl.lookup(0), Some(p0));
    }

    #[test]
    fn pages_allocate_in_order_within_block() {
        let (_a, mut ftl) = setup();
        // Allocate enough to revisit the same die: tiny has 4 dies.
        let first = ftl.allocate(0, AllocStream::Host).unwrap();
        for lpn in 1..4 {
            ftl.allocate(lpn, AllocStream::Host).unwrap();
        }
        let second = ftl.allocate(4, AllocStream::Host).unwrap();
        assert_eq!(second.block, first.block);
        assert_eq!(second.page, first.page + 1);
    }

    #[test]
    fn overwrite_invalidates_old_version() {
        let (_a, mut ftl) = setup();
        let old = ftl.allocate(7, AllocStream::Host).unwrap();
        let new = ftl.allocate(7, AllocStream::Host).unwrap();
        assert_ne!(old, new);
        assert_eq!(ftl.lookup(7), Some(new));
        assert_eq!(ftl.mapped_pages(), 1);
    }

    #[test]
    fn invalidate_unmaps() {
        let (_a, mut ftl) = setup();
        ftl.allocate(3, AllocStream::Host).unwrap();
        ftl.invalidate(3);
        assert_eq!(ftl.lookup(3), None);
        assert_eq!(ftl.mapped_pages(), 0);
        // Double invalidate is a no-op.
        ftl.invalidate(3);
    }

    #[test]
    fn device_fills_then_gc_reclaims() {
        let g = FlashGeometry::tiny();
        let (_a, mut ftl) = setup();
        let total = g.total_pages();
        // Overwrite a small working set repeatedly until allocation fails.
        let working_set = 8u64;
        let mut writes = 0u64;
        loop {
            let lpn = writes % working_set;
            if ftl.allocate(lpn, AllocStream::Host).is_none() {
                break;
            }
            writes += 1;
            assert!(writes <= total, "must exhaust within total page count");
        }
        assert_eq!(ftl.free_block_count(), 0);
        // GC finds victims with zero valid pages (fully overwritten blocks).
        let plan = ftl.plan_gc().expect("reclaimable victim exists");
        assert!(plan.moves.len() <= working_set as usize);
        ftl.block_erased(plan.victim);
        assert_eq!(ftl.free_block_count(), 1);
        // And allocation works again.
        assert!(ftl.allocate(0, AllocStream::Host).is_some());
    }

    #[test]
    fn gc_relocates_live_pages() {
        let (_a, mut ftl) = setup();
        let g = FlashGeometry::tiny();
        // Fill one block's worth on die 0 only by forcing round-robin to
        // wrap: allocate pages for distinct lpns until one block fills.
        let per_block = g.pages_per_block as u64;
        let dies = g.total_dies() as u64;
        for lpn in 0..per_block * dies {
            ftl.allocate(lpn, AllocStream::Host).unwrap();
        }
        // Overwrite most lpns, leaving a few live in early blocks.
        for lpn in 0..per_block * dies - 4 {
            ftl.allocate(lpn, AllocStream::Host).unwrap();
        }
        let live_before = ftl.mapped_pages();
        let plan = ftl.plan_gc().expect("victim with few live pages");
        // Every move rebinds the same lpn to a fresh page.
        for (lpn, old, new) in &plan.moves {
            assert_ne!(old, new);
            assert_eq!(ftl.lookup(*lpn), Some(*new));
        }
        assert_eq!(ftl.mapped_pages(), live_before);
        assert!(ftl.stats().gc_writes as usize >= plan.moves.len());
    }

    #[test]
    fn retire_block_removes_from_circulation() {
        let (_a, mut ftl) = setup();
        let p = ftl.allocate(0, AllocStream::Host).unwrap();
        let free_before = ftl.free_block_count();
        ftl.retire_block(p.block);
        // The active block was retired; next allocation opens a new block.
        let q = ftl.allocate(1, AllocStream::Host).unwrap();
        assert_ne!(q.block, p.block);
        assert!(ftl.free_block_count() <= free_before);
    }

    #[test]
    fn write_amplification_starts_at_one() {
        let (_a, mut ftl) = setup();
        assert_eq!(ftl.stats().write_amplification(), 1.0);
        ftl.allocate(0, AllocStream::Host).unwrap();
        assert_eq!(ftl.stats().write_amplification(), 1.0);
    }

    #[test]
    fn ftl_skips_initially_bad_blocks() {
        let g = FlashGeometry::tiny();
        let rel = ReliabilityConfig { initial_bad_block_rate: 0.3, ..ReliabilityConfig::perfect() };
        let array = FlashArray::new(g, FlashTiming::fast(), rel, 11);
        let ftl = Ftl::new(g, &array, 2);
        assert!(ftl.free_block_count() < g.total_blocks() as usize);
        assert!(ftl.free_block_count() > 0);
    }
}
