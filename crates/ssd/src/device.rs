//! The conventional SSD device.
//!
//! Ties together the three subsystems of paper Fig. 2 (bottom): the Host
//! Interface Controller, the Firmware (FTL, data-buffer management,
//! scheduling), and the Storage Controller (flash arrays). This device is
//! also the *conventional side* of a Villars: the fast side's Destage module
//! injects `Destage`-class writes directly into the storage controller via
//! [`ConventionalSsd::submit_destage_write`], bypassing the host data path.

use crate::buffer::DataBuffer;
use crate::ftl::{AllocStream, Ftl, Lpn};
use crate::hic::{Hic, HicConfig};
use flash::{
    ChannelScheduler, FlashArray, FlashError, FlashGeometry, FlashTiming, OpKind, OpRequest, Ppa,
    Priority, ReliabilityConfig, SchedulingMode,
};
use nvme::{
    AdminCommand, CmdTag, Command, CommandId, CommandKind, Completion, CompletionEntry, IoCommand,
    IoPort, Namespace, NvmeController, PortAccounting, QueueError, Status,
};
use pcie::{DmaConfig, LinkConfig};
use simkit::bytes::Bytes;
use simkit::{Bandwidth, EventQueue, SimTime};
use std::collections::{HashMap, HashSet};

/// Device-wide configuration.
#[derive(Debug, Clone)]
pub struct SsdConfig {
    /// Flash shape.
    pub geometry: FlashGeometry,
    /// Flash timing.
    pub timing: FlashTiming,
    /// Flash reliability.
    pub reliability: ReliabilityConfig,
    /// Host PCIe link.
    pub link: LinkConfig,
    /// HIC timing.
    pub hic: HicConfig,
    /// DMA engine parameters.
    pub dma: DmaConfig,
    /// Data-buffer capacity in pages.
    pub buffer_pages: usize,
    /// Device DRAM port bandwidth (shared with a DRAM-backed CMB).
    pub dram_bandwidth: Bandwidth,
    /// Whether writes complete from the volatile cache (true for consumer
    /// behaviour; an fsync/Flush is then required for durability).
    pub write_cache: bool,
    /// Free-block low-water mark that triggers GC.
    pub gc_threshold: usize,
    /// Initial channel-scheduler policy.
    pub scheduling: SchedulingMode,
    /// RNG seed for reliability sampling.
    pub seed: u64,
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig {
            geometry: FlashGeometry::default(),
            timing: FlashTiming::default(),
            reliability: ReliabilityConfig::perfect(),
            link: LinkConfig::villars_host(),
            hic: HicConfig::default(),
            dma: DmaConfig::default(),
            buffer_pages: 2048,
            dram_bandwidth: Bandwidth::bus(64, 250.0).scaled(2.0), // DDR3 ctrl: 4 GB/s
            write_cache: true,
            gc_threshold: 8,
            scheduling: SchedulingMode::Neutral,
            seed: 0x55D,
        }
    }
}

impl SsdConfig {
    /// Small/fast configuration for unit tests.
    pub fn small() -> Self {
        SsdConfig {
            geometry: FlashGeometry::tiny(),
            timing: FlashTiming::fast(),
            buffer_pages: 16,
            gc_threshold: 2,
            ..SsdConfig::default()
        }
    }
}

/// What an in-flight flash op is doing for the device.
#[derive(Debug, Clone)]
enum PendingOp {
    /// Program for a host write page. `wait_cid` is set when the write
    /// command completes only on durability (write cache disabled).
    HostWrite { lpn: Lpn, data: Bytes, wait_cid: Option<CommandId> },
    /// Read for a host read command page.
    HostReadPage { cid: CommandId },
    /// GC relocation write (timing only: content stays keyed by lpn).
    GcWrite,
    /// Fast-side destage program.
    DestageWrite { token: u64, lpn: Lpn, data: Bytes },
    /// Fast-side (or recovery) media read.
    InternalRead { token: u64 },
}

#[derive(Debug)]
struct ReadState {
    remaining: usize,
    ready_at: SimTime,
    bytes: u64,
    status: Status,
}

#[derive(Debug)]
struct WriteState {
    remaining: usize,
    last_at: SimTime,
    status: Status,
}

#[derive(Debug)]
struct FlushState {
    cid: CommandId,
    waiting_on: HashSet<u64>,
    last_at: SimTime,
}

#[derive(Debug, Clone)]
enum SsdEvent {
    /// A host command completion fires.
    Complete { cid: CommandId, status: Status },
    /// A flash operation finishes; its effects (media update, durability)
    /// apply at this instant, not when the grant was computed.
    Flash(flash::Completion),
}

/// The conventional SSD.
pub struct ConventionalSsd {
    config: SsdConfig,
    ns: Namespace,
    array: FlashArray,
    sched: ChannelScheduler,
    ftl: Ftl,
    buffer: DataBuffer,
    hic: Hic,
    /// Durable content by logical page (what survives power loss).
    media: HashMap<Lpn, Bytes>,
    /// Host-staged write payloads awaiting the next write command.
    staged: HashMap<Lpn, Bytes>,
    pending: HashMap<u64, PendingOp>,
    /// Program ops host-flush semantics wait on.
    outstanding_host_programs: HashSet<u64>,
    reads: HashMap<CommandId, ReadState>,
    writes_waiting: HashMap<CommandId, WriteState>,
    flushes: Vec<FlushState>,
    next_op: u64,
    next_token: u64,
    /// Per-class monotonic arrival clamps (retries keep order legal).
    last_arrival: HashMap<Priority, SimTime>,
    /// Queued/in-flight program counts per block: GC must not collect a
    /// block that is still being written.
    inflight_programs: HashMap<flash::BlockAddr, u32>,
    /// Program op id -> target block, to settle `inflight_programs`.
    program_blocks: HashMap<u64, flash::BlockAddr>,
    events: EventQueue<SsdEvent>,
    out: Vec<(SimTime, CompletionEntry)>,
    destage_done: Vec<(SimTime, u64)>,
    internal_reads_done: Vec<(SimTime, u64)>,
    /// Host-write page bytes whose programs have completed (served
    /// conventional bandwidth, counted at completion time).
    served_conventional_bytes: u64,
    /// Destage page bytes whose programs have completed.
    served_destage_bytes: u64,
    /// Per-port CID allocation + queue-depth accounting for commands
    /// submitted through the [`IoPort`] contract (raw
    /// [`NvmeController::submit`] callers bypass it and mint their own
    /// CIDs).
    port: PortAccounting,
    /// Reusable drain scratch for [`IoPort::completions_into`].
    port_drain: Vec<(SimTime, CompletionEntry)>,
}

impl std::fmt::Debug for ConventionalSsd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConventionalSsd")
            .field("pending_ops", &self.pending.len())
            .field("dirty_pages", &self.buffer.dirty_count())
            .field("media_pages", &self.media.len())
            .finish()
    }
}

impl ConventionalSsd {
    /// Build the device.
    pub fn new(config: SsdConfig) -> Self {
        let array =
            FlashArray::new(config.geometry, config.timing, config.reliability, config.seed);
        let ftl = Ftl::new(config.geometry, &array, config.gc_threshold);
        let sched = ChannelScheduler::new(config.geometry.channels, config.scheduling);
        let buffer =
            DataBuffer::new(config.buffer_pages, config.geometry.page_bytes, config.dram_bandwidth);
        let hic = Hic::new(config.hic, config.link, config.dma);
        // Export 7/8 of raw capacity (over-provisioning for GC headroom).
        let capacity = config.geometry.total_pages() * 7 / 8;
        let ns = Namespace::new(1, config.geometry.page_bytes, capacity);
        ConventionalSsd {
            config,
            ns,
            array,
            sched,
            ftl,
            buffer,
            hic,
            media: HashMap::new(),
            staged: HashMap::new(),
            pending: HashMap::new(),
            outstanding_host_programs: HashSet::new(),
            reads: HashMap::new(),
            writes_waiting: HashMap::new(),
            flushes: Vec::new(),
            next_op: 0,
            next_token: 0,
            last_arrival: HashMap::new(),
            inflight_programs: HashMap::new(),
            program_blocks: HashMap::new(),
            events: EventQueue::new(),
            out: Vec::new(),
            destage_done: Vec::new(),
            internal_reads_done: Vec::new(),
            served_conventional_bytes: 0,
            served_destage_bytes: 0,
            port: PortAccounting::new(),
            port_drain: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// Per-port accounting for [`IoPort`] submissions (CID liveness,
    /// in-flight depth, queue-depth histogram). Collected explicitly —
    /// not part of [`simkit::Instrument`] for this device, whose snapshot
    /// layout is byte-frozen by the results gate.
    pub fn port_stats(&self) -> &PortAccounting {
        &self.port
    }

    /// Arm the flash fault layer (see [`FlashArray::arm_faults`]):
    /// deterministic transient read/program retries plus permanent program
    /// failures, drawn from `rng`. Permanent failures surface as
    /// [`FlashError::ProgramFailed`] and ride the existing FTL
    /// retire-remap-resubmit path. An unarmed device makes zero fault
    /// draws.
    pub fn arm_flash_faults(&mut self, cfg: simkit::faults::FlashFaultConfig, rng: simkit::DetRng) {
        self.array.arm_faults(cfg, rng);
    }

    /// Raw flash-array statistics (programs/reads/erases plus the injected
    /// fault counters — retries, grown bad blocks).
    pub fn flash_stats(&self) -> flash::FlashStats {
        self.array.stats()
    }

    /// Change the channel-scheduler policy (an X-SSD vendor command).
    pub fn set_scheduling_mode(&mut self, mode: SchedulingMode) {
        self.sched.set_mode(mode);
    }

    /// Per-class scheduler statistics (counted at grant time).
    pub fn class_stats(&self, class: Priority) -> flash::ClassStats {
        self.sched.class_stats(class)
    }

    /// Page bytes whose flash programs have *completed* within advanced
    /// time, per traffic class — the achieved-bandwidth observable behind
    /// Fig. 12. (Grant-time stats over-count under backlog.)
    pub fn served_bytes(&self, class: Priority) -> u64 {
        match class {
            Priority::Conventional => self.served_conventional_bytes,
            Priority::Destage => self.served_destage_bytes,
        }
    }

    /// FTL statistics.
    pub fn ftl_stats(&self) -> crate::ftl::FtlStats {
        self.ftl.stats()
    }

    /// Buffer statistics.
    pub fn buffer_stats(&self) -> crate::buffer::BufferStats {
        self.buffer.stats()
    }

    /// Host-link statistics.
    pub fn link_stats(&self) -> simkit::LinkStats {
        self.hic.link_stats()
    }

    /// Durable content of `lpn`, if any (media only — what a post-crash
    /// read would find).
    pub fn media_content(&self, lpn: Lpn) -> Option<Bytes> {
        self.media.get(&lpn).cloned()
    }

    /// Current content of `lpn` as the host would read it (cache, then
    /// media).
    pub fn read_content(&self, lpn: Lpn) -> Option<Bytes> {
        self.buffer.peek(lpn).or_else(|| self.media.get(&lpn).cloned())
    }

    /// Stage payload bytes for an upcoming host write to `lpn`. Writes
    /// without staged data store zero-filled pages.
    pub fn stage_write_data(&mut self, lpn: Lpn, data: Bytes) {
        assert!(
            data.len() <= self.config.geometry.page_bytes as usize,
            "staged data exceeds page size"
        );
        self.staged.insert(lpn, data);
    }

    /// Access the DRAM data-buffer port (shared by a DRAM-backed CMB).
    pub fn dram_access(&mut self, now: SimTime, bytes: u64) -> simkit::Grant {
        self.buffer.port_access(now, bytes)
    }

    /// Hold the DRAM port for an explicit duration (the CMB path's derated
    /// transfer time on the shared controller).
    pub fn dram_hold(&mut self, now: SimTime, duration: simkit::SimDuration) -> simkit::Grant {
        self.buffer.port_hold(now, duration)
    }

    /// Borrow the host PCIe link (shared by CMB MMIO traffic).
    pub fn host_link_mut(&mut self) -> &mut pcie::PcieLink {
        self.hic.link_mut()
    }

    /// When the host link wire next goes idle (store-issue pipelining).
    pub fn host_link_busy_until(&self) -> SimTime {
        self.hic.link_busy_until()
    }

    fn alloc_op(&mut self) -> u64 {
        let id = self.next_op;
        self.next_op += 1;
        id
    }

    /// Submit a flash op keeping per-class arrivals monotonic.
    fn submit_op(
        &mut self,
        mut arrival: SimTime,
        kind: OpKind,
        class: Priority,
        op: PendingOp,
    ) -> u64 {
        let clamp = self.last_arrival.entry(class).or_insert(SimTime::ZERO);
        arrival = arrival.max(*clamp);
        *clamp = arrival;
        let id = self.alloc_op();
        if let OpKind::Program(p) = kind {
            *self.inflight_programs.entry(p.block).or_insert(0) += 1;
            self.program_blocks.insert(id, p.block);
        }
        self.pending.insert(id, op);
        self.sched.submit(OpRequest { id, kind, arrival, class });
        id
    }

    /// Settle the in-flight program accounting for a finished op.
    fn settle_program_block(&mut self, id: u64) {
        if let Some(block) = self.program_blocks.remove(&id) {
            if let Some(n) = self.inflight_programs.get_mut(&block) {
                *n -= 1;
                if *n == 0 {
                    self.inflight_programs.remove(&block);
                }
            }
        }
    }

    /// Fast-side entry point: program one page of destage data. The data
    /// path is CMB backing memory → flash, with no data-buffer copy (the
    /// two-data-movement argument of paper §5.1).
    pub fn submit_destage_write(&mut self, now: SimTime, lpn: Lpn, data: Bytes) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        let ppa = self.allocate_or_gc(now, lpn, AllocStream::Destage);
        self.submit_op(
            now,
            OpKind::Program(ppa),
            Priority::Destage,
            PendingOp::DestageWrite { token, lpn, data },
        );
        token
    }

    /// Fast-side/recovery entry point: read one page from media. Returns a
    /// token; completion arrives via [`ConventionalSsd::drain_internal_reads`].
    pub fn submit_internal_read(&mut self, now: SimTime, lpn: Lpn) -> Option<u64> {
        let ppa = self.ftl.lookup(lpn)?;
        let token = self.next_token;
        self.next_token += 1;
        self.submit_op(
            now,
            OpKind::Read(ppa),
            Priority::Conventional,
            PendingOp::InternalRead { token },
        );
        Some(token)
    }

    /// Take destage completions at or before `t`: `(time, token)`.
    pub fn drain_destage_completions(&mut self, t: SimTime) -> Vec<(SimTime, u64)> {
        let mut ready = Vec::new();
        self.drain_destage_completions_into(t, &mut ready);
        ready
    }

    /// Append destage completions at or before `t` to `out` without
    /// allocating — the Villars advance loop drains once per event step
    /// with a reusable buffer.
    pub fn drain_destage_completions_into(&mut self, t: SimTime, out: &mut Vec<(SimTime, u64)>) {
        Self::drain_tokens_into(&mut self.destage_done, t, out);
    }

    /// Take internal-read completions at or before `t`.
    pub fn drain_internal_reads(&mut self, t: SimTime) -> Vec<(SimTime, u64)> {
        let mut ready = Vec::new();
        self.drain_internal_reads_into(t, &mut ready);
        ready
    }

    /// Append internal-read completions at or before `t` to `out` without
    /// allocating.
    pub fn drain_internal_reads_into(&mut self, t: SimTime, out: &mut Vec<(SimTime, u64)>) {
        Self::drain_tokens_into(&mut self.internal_reads_done, t, out);
    }

    /// Stable in-place split of a `(time, token)` queue: due entries append
    /// to `out` sorted by time, the rest compact down in place.
    fn drain_tokens_into(src: &mut Vec<(SimTime, u64)>, t: SimTime, out: &mut Vec<(SimTime, u64)>) {
        let start = out.len();
        src.retain(|&item| {
            if item.0 <= t {
                out.push(item);
                false
            } else {
                true
            }
        });
        out[start..].sort_by_key(|(at, _)| *at);
    }

    /// Allocate a physical page, running GC first if the pools are low.
    /// Space reclamation is synchronous (the FTL must not run dry); the
    /// *time* GC costs still flows through the die resources and the
    /// scheduler, so foreground traffic feels the interference.
    fn allocate_or_gc(&mut self, now: SimTime, lpn: Lpn, stream: AllocStream) -> Ppa {
        if self.ftl.needs_gc() {
            self.run_gc(now);
        }
        loop {
            if let Some(ppa) = self.ftl.allocate(lpn, stream) {
                return ppa;
            }
            if self.run_gc(now) {
                continue;
            }
            // Every reclaimable victim still has in-flight programs: force
            // the backlog through the arrays and settle it, freeing blocks
            // for collection. (This is the firmware throttling the host
            // under GC pressure; completion *times* are unchanged — grants
            // are fully determined by arrivals and resource horizons.)
            assert!(self.force_settle_programs(), "device out of space: GC could not reclaim");
        }
    }

    /// Pump all queued flash work and apply every resulting completion
    /// immediately (regardless of its timestamp). Host-facing completion
    /// events keep their scheduled times. Returns true if anything settled.
    fn force_settle_programs(&mut self) -> bool {
        let completions = self.sched.pump(&mut self.array, SimTime::MAX);
        for c in completions {
            self.events.schedule(c.at, SsdEvent::Flash(c));
        }
        let mut settled = false;
        let mut keep = Vec::new();
        while let Some((at, ev)) = self.events.pop() {
            match ev {
                SsdEvent::Flash(c) => {
                    self.handle_flash(c);
                    settled = true;
                }
                other => keep.push((at, other)),
            }
        }
        for (at, ev) in keep {
            self.events.schedule(at, ev);
        }
        settled
    }

    /// Run one GC round. Returns false when nothing is reclaimable.
    /// Victim selection is wear-aware: a block's P/E count (relative to the
    /// device average) raises its collection cost, spreading erases.
    fn run_gc(&mut self, now: SimTime) -> bool {
        let inflight = &self.inflight_programs;
        let array = &self.array;
        let pages_per_block = self.config.geometry.pages_per_block;
        let Some(plan) = self.ftl.plan_gc_weighted(
            |b| inflight.contains_key(&b),
            // One page of penalty per 4 P/E cycles: wear only outweighs
            // reclaim efficiency when blocks diverge substantially.
            |b| (array.pe_cycles(b) / 4).min(pages_per_block),
        ) else {
            return false;
        };
        // Relocation programs: async timing ops; content stays keyed by lpn
        // in `media`, so a relocation is a no-op for content.
        for (_lpn, _old, new) in &plan.moves {
            self.submit_op(now, OpKind::Program(*new), Priority::Conventional, PendingOp::GcWrite);
        }
        // The erase applies its array state immediately (die time is still
        // charged through the die's serial resource), so the block is safe
        // to reuse the moment the FTL returns it to the free pool.
        match self.array.erase(now, plan.victim) {
            Ok(_) => self.ftl.block_erased(plan.victim),
            Err(_) => self.ftl.retire_block(plan.victim),
        }
        true
    }

    fn page_bytes(&self) -> u64 {
        self.config.geometry.page_bytes as u64
    }

    fn handle_io(&mut self, now: SimTime, cid: CommandId, io: IoCommand) {
        let fetch = self.hic.fetch(now);
        match io {
            IoCommand::Write { lba, blocks } => {
                if !self.ns.range_ok(lba, blocks) {
                    self.events.schedule(
                        fetch.end,
                        SsdEvent::Complete { cid, status: Status::LbaOutOfRange },
                    );
                    return;
                }
                let bytes = self.ns.bytes_of(blocks);
                let dma = self.hic.dma_in(fetch.end, bytes);
                let mut last = dma.end;
                let wait_cid = if self.config.write_cache { None } else { Some(cid) };
                let mut programs = 0usize;
                for i in 0..blocks as u64 {
                    let lpn = lba + i;
                    let data = self
                        .staged
                        .remove(&lpn)
                        .unwrap_or_else(|| Bytes::from(vec![0u8; self.page_bytes() as usize]));
                    let g = self.buffer.write(dma.end, lpn, data.clone());
                    last = last.max(g.end);
                    let ppa = self.allocate_or_gc(g.end, lpn, AllocStream::Host);
                    let id = self.submit_op(
                        g.end,
                        OpKind::Program(ppa),
                        Priority::Conventional,
                        PendingOp::HostWrite { lpn, data, wait_cid },
                    );
                    self.outstanding_host_programs.insert(id);
                    programs += 1;
                }
                if self.config.write_cache {
                    let at = last + self.hic.completion_post();
                    self.events.schedule(at, SsdEvent::Complete { cid, status: Status::Success });
                } else {
                    self.writes_waiting.insert(
                        cid,
                        WriteState { remaining: programs, last_at: last, status: Status::Success },
                    );
                }
            }
            IoCommand::Read { lba, blocks } => {
                if !self.ns.range_ok(lba, blocks) {
                    self.events.schedule(
                        fetch.end,
                        SsdEvent::Complete { cid, status: Status::LbaOutOfRange },
                    );
                    return;
                }
                let bytes = self.ns.bytes_of(blocks);
                let mut remaining = 0usize;
                let mut ready_at = fetch.end;
                for i in 0..blocks as u64 {
                    let lpn = lba + i;
                    if let Some((_data, g)) = self.buffer.read(fetch.end, lpn) {
                        ready_at = ready_at.max(g.end);
                    } else if let Some(ppa) = self.ftl.lookup(lpn) {
                        self.submit_op(
                            fetch.end,
                            OpKind::Read(ppa),
                            Priority::Conventional,
                            PendingOp::HostReadPage { cid },
                        );
                        remaining += 1;
                    }
                    // Never-written pages read as zeros instantly.
                }
                if remaining == 0 {
                    let dma = self.hic.dma_out(ready_at, bytes);
                    let at = dma.end + self.hic.completion_post();
                    self.events.schedule(at, SsdEvent::Complete { cid, status: Status::Success });
                } else {
                    self.reads.insert(
                        cid,
                        ReadState { remaining, ready_at, bytes, status: Status::Success },
                    );
                }
            }
            IoCommand::Flush => {
                if self.outstanding_host_programs.is_empty() {
                    let at = fetch.end + self.hic.completion_post();
                    self.events.schedule(at, SsdEvent::Complete { cid, status: Status::Success });
                } else {
                    self.flushes.push(FlushState {
                        cid,
                        waiting_on: self.outstanding_host_programs.clone(),
                        last_at: fetch.end,
                    });
                }
            }
        }
    }

    fn handle_admin(&mut self, now: SimTime, cid: CommandId, cmd: AdminCommand) {
        let fetch = self.hic.fetch(now);
        let status = match cmd {
            AdminCommand::Identify
            | AdminCommand::GetLogPage
            | AdminCommand::SetFeatures { .. } => Status::Success,
            // The base device knows no vendor commands; the Villars wrapper
            // intercepts them before they reach here.
            AdminCommand::Vendor(_) => Status::InvalidOpcode,
        };
        self.events
            .schedule(fetch.end + self.hic.completion_post(), SsdEvent::Complete { cid, status });
    }

    fn handle_flash(&mut self, c: flash::Completion) {
        self.settle_program_block(c.id);
        let Some(op) = self.pending.remove(&c.id) else { return };
        match op {
            PendingOp::HostWrite { lpn, data, wait_cid } => match c.result {
                Ok(_) => {
                    self.served_conventional_bytes += self.config.geometry.page_bytes as u64;
                    self.media.insert(lpn, data);
                    self.buffer.mark_clean(lpn);
                    self.settle_host_program(c.id, c.at);
                    if let Some(cid) = wait_cid {
                        self.settle_waiting_write(cid, c.at, Status::Success);
                    }
                }
                Err(FlashError::ProgramFailed(b)) | Err(FlashError::BadBlock(b)) => {
                    self.ftl.retire_block(b);
                    let ppa = self.allocate_or_gc(c.at, lpn, AllocStream::Host);
                    let new_id = self.submit_op(
                        c.at,
                        OpKind::Program(ppa),
                        Priority::Conventional,
                        PendingOp::HostWrite { lpn, data, wait_cid },
                    );
                    self.replace_outstanding(c.id, new_id);
                }
                Err(e) => panic!(
                    "{}",
                    simkit::SimError::invariant(
                        "ssd host-write path",
                        simkit::DiagnosticSnapshot::new(c.at, self.pending.len())
                            .queue(
                                "outstanding_host_programs",
                                self.outstanding_host_programs.len() as u64
                            )
                            .detail(format!("flash op {} (lpn {lpn}) failed: {e}", c.id)),
                    )
                ),
            },
            PendingOp::HostReadPage { cid } => {
                if let Some(state) = self.reads.get_mut(&cid) {
                    state.remaining -= 1;
                    state.ready_at = state.ready_at.max(c.at);
                    if c.result.is_err() {
                        state.status = Status::MediaError;
                    }
                    if state.remaining == 0 {
                        let state = self.reads.remove(&cid).expect("just seen");
                        let dma = self.hic.dma_out(state.ready_at, state.bytes);
                        let at = dma.end + self.hic.completion_post();
                        self.events.schedule(at, SsdEvent::Complete { cid, status: state.status });
                    }
                }
            }
            PendingOp::GcWrite => {
                // Timing-only relocation; tolerate a failed program (the
                // mapping already points at the new page; a real device
                // would re-relocate, which the next GC round effectively
                // does).
            }
            PendingOp::DestageWrite { token, lpn, data } => match c.result {
                Ok(_) => {
                    self.served_destage_bytes += self.config.geometry.page_bytes as u64;
                    self.media.insert(lpn, data);
                    self.destage_done.push((c.at, token));
                }
                Err(FlashError::ProgramFailed(b)) | Err(FlashError::BadBlock(b)) => {
                    self.ftl.retire_block(b);
                    let ppa = self.allocate_or_gc(c.at, lpn, AllocStream::Destage);
                    self.submit_op(
                        c.at,
                        OpKind::Program(ppa),
                        Priority::Destage,
                        PendingOp::DestageWrite { token, lpn, data },
                    );
                }
                Err(e) => panic!(
                    "{}",
                    simkit::SimError::invariant(
                        "ssd destage path",
                        simkit::DiagnosticSnapshot::new(c.at, self.pending.len())
                            .queue("destage_done", self.destage_done.len() as u64)
                            .detail(format!(
                                "flash op {} (lpn {lpn}, token {token}) failed: {e}",
                                c.id
                            )),
                    )
                ),
            },
            PendingOp::InternalRead { token } => {
                self.internal_reads_done.push((c.at, token));
            }
        }
    }

    fn settle_waiting_write(&mut self, cid: CommandId, at: SimTime, status: Status) {
        let finished = if let Some(w) = self.writes_waiting.get_mut(&cid) {
            w.remaining -= 1;
            w.last_at = w.last_at.max(at);
            if !status.is_ok() {
                w.status = status;
            }
            w.remaining == 0
        } else {
            false
        };
        if finished {
            let w = self.writes_waiting.remove(&cid).expect("just seen");
            let when = w.last_at + self.hic.completion_post();
            self.events.schedule(when, SsdEvent::Complete { cid, status: w.status });
        }
    }

    fn settle_host_program(&mut self, id: u64, at: SimTime) {
        self.outstanding_host_programs.remove(&id);
        // Flushes.
        let mut i = 0;
        while i < self.flushes.len() {
            let f = &mut self.flushes[i];
            f.waiting_on.remove(&id);
            f.last_at = f.last_at.max(at);
            if f.waiting_on.is_empty() {
                let f = self.flushes.remove(i);
                let when = f.last_at + self.hic.completion_post();
                self.events
                    .schedule(when, SsdEvent::Complete { cid: f.cid, status: Status::Success });
            } else {
                i += 1;
            }
        }
    }

    fn replace_outstanding(&mut self, old: u64, new: u64) {
        if self.outstanding_host_programs.remove(&old) {
            self.outstanding_host_programs.insert(new);
        }
        for f in &mut self.flushes {
            if f.waiting_on.remove(&old) {
                f.waiting_on.insert(new);
            }
        }
    }

    /// Power loss without fast-side rescue: volatile state is gone —
    /// unflushed host writes, queued conventional work, pending commands.
    /// Durable media and FTL state survive.
    pub fn power_fail(&mut self, now: SimTime) {
        self.advance_to(now);
        self.buffer.crash();
        self.sched.drop_all();
        self.pending.clear();
        self.inflight_programs.clear();
        self.program_blocks.clear();
        self.outstanding_host_programs.clear();
        self.reads.clear();
        self.writes_waiting.clear();
        self.flushes.clear();
        self.events = EventQueue::new();
        self.out.clear();
        self.staged.clear();
    }

    /// Power loss with supercapacitor rescue of the destage class: queued
    /// and in-flight `Destage` writes complete on residual energy; all
    /// host-side volatile state is lost. Returns the instant the rescue
    /// finished.
    pub fn power_fail_rescue_destage(&mut self, now: SimTime) -> SimTime {
        self.advance_to(now);
        // Drop conventional queued work; keep the destage queue.
        self.sched.drop_class(Priority::Conventional);
        // In-flight flash completions: destage ones finish on supercap power,
        // everything else is torn and lost.
        let mut rescued = Vec::new();
        while let Some((_, ev)) = self.events.pop() {
            if let SsdEvent::Flash(c) = ev {
                if matches!(self.pending.get(&c.id), Some(PendingOp::DestageWrite { .. })) {
                    rescued.push(c);
                }
            }
        }
        self.buffer.crash();
        self.outstanding_host_programs.clear();
        self.reads.clear();
        self.writes_waiting.clear();
        self.flushes.clear();
        self.out.clear();
        self.staged.clear();
        self.pending.retain(|_, op| matches!(op, PendingOp::DestageWrite { .. }));
        // Burn residual energy: finish in-flight destage ops, then run the
        // destage queue dry.
        let mut last = now;
        for c in rescued {
            last = last.max(c.at);
            self.handle_flash(c);
        }
        loop {
            let completions = self.sched.pump(&mut self.array, SimTime::MAX);
            if completions.is_empty() && self.events.is_empty() {
                break;
            }
            for c in completions {
                last = last.max(c.at);
                self.handle_flash(c);
            }
            while let Some((at, ev)) = self.events.pop() {
                if let SsdEvent::Flash(c) = ev {
                    last = last.max(at);
                    self.handle_flash(c);
                }
            }
        }
        last
    }
}

impl ConventionalSsd {
    /// Earliest *device-internal* pending instant: scheduled events (flash
    /// completions, command completions not yet fired) and queued flash
    /// work — excluding completions already sitting in the outbound queue,
    /// which only the host can consume. Event-loop steppers use this;
    /// drivers use [`NvmeController::next_event_at`].
    pub fn next_device_event(&self) -> Option<SimTime> {
        let mut next = self.next_flash_event();
        // Undelivered fast-side completions are pending work for the upper
        // layer (the destage module / recovery reader).
        for t in self.destage_done.iter().chain(self.internal_reads_done.iter()).map(|(at, _)| *at)
        {
            next = Some(next.map_or(t, |e: SimTime| e.min(t)));
        }
        next
    }

    /// Earliest instant the flash pipeline itself moves (a scheduled
    /// event fires or queued flash work can start) — excluding the
    /// fast-side completion queues, which sit at their posting time until
    /// their owner drains them. Waiters driving one specific flash op use
    /// this: the global [`ConventionalSsd::next_device_event`] can be
    /// pinned below their op by a completion a *different* loop owns.
    pub fn next_flash_event(&self) -> Option<SimTime> {
        let mut next = self.events.next_time();
        if let Some(t) = self.sched.next_start_hint(&self.array) {
            next = Some(next.map_or(t, |e: SimTime| e.min(t)));
        }
        next
    }
}

impl simkit::Instrument for ConventionalSsd {
    /// Reports the whole device stack under crate-qualified groups
    /// (`pcie.*`, `ssd.*`, `flash.*`), so collecting at the registry root
    /// yields the cross-stack paths of the naming convention.
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.collect("pcie.host_link", self.hic.link());
        out.collect("pcie.host_dma", self.hic.dma());
        out.collect("ssd.hic", &self.hic);
        out.collect("ssd.buffer", &self.buffer);
        out.collect("ssd.ftl", &self.ftl);
        {
            let mut ssd = out.scope("ssd");
            ssd.counter("served_conventional_bytes", self.served_conventional_bytes);
            ssd.counter("served_destage_bytes", self.served_destage_bytes);
            ssd.gauge("media_pages", self.media.len() as f64);
            ssd.gauge("pending_ops", self.pending.len() as f64);
        }
        out.collect("flash.array", &self.array);
        out.collect("flash.sched", &self.sched);
    }
}

impl NvmeController for ConventionalSsd {
    fn submit(&mut self, now: SimTime, cmd: Command) {
        match cmd.kind {
            CommandKind::Io(io) => self.handle_io(now, cmd.cid, io),
            CommandKind::Admin(a) => self.handle_admin(now, cmd.cid, a),
        }
    }

    fn advance_to(&mut self, t: SimTime) {
        loop {
            let completions = self.sched.pump(&mut self.array, t);
            let mut progressed = !completions.is_empty();
            for c in completions {
                // Effects apply at the op's completion instant, which may be
                // beyond `t`; hold them as timed events.
                self.events.schedule(c.at, SsdEvent::Flash(c));
            }
            while let Some((at, ev)) = self.events.pop_due(t) {
                progressed = true;
                match ev {
                    SsdEvent::Complete { cid, status } => {
                        self.out.push((at, CompletionEntry { cid, status, result: 0 }));
                    }
                    SsdEvent::Flash(c) => self.handle_flash(c),
                }
            }
            if !progressed {
                break;
            }
        }
    }

    fn drain_completions(&mut self, t: SimTime) -> Vec<(SimTime, CompletionEntry)> {
        let mut ready = Vec::new();
        self.drain_completions_into(t, &mut ready);
        ready
    }

    fn drain_completions_into(&mut self, t: SimTime, out: &mut Vec<(SimTime, CompletionEntry)>) {
        let start = out.len();
        // Stable in-place split: due entries move to `out` in posting order,
        // the rest compact down without reallocating.
        self.out.retain(|&item| {
            if item.0 <= t {
                out.push(item);
                false
            } else {
                true
            }
        });
        out[start..].sort_by_key(|(at, _)| *at);
    }

    fn next_event_at(&self) -> Option<SimTime> {
        let mut events = self.next_device_event();
        if let Some(t) = self.out.iter().map(|(at, _)| *at).min() {
            events = Some(events.map_or(t, |e: SimTime| e.min(t)));
        }
        events
    }

    fn namespace(&self) -> Namespace {
        self.ns
    }
}

impl IoPort for ConventionalSsd {
    /// The device-level port is unbounded (back-pressure is modelled by
    /// the HIC/scheduler, not by submission failure): this never returns
    /// an error.
    fn try_submit(&mut self, now: SimTime, kind: CommandKind) -> Result<CmdTag, QueueError> {
        let cid = self.port.begin();
        NvmeController::submit(self, now, Command { cid, kind });
        Ok(CmdTag(cid))
    }

    fn poll(&mut self, now: SimTime) {
        self.advance_to(now);
    }

    fn completions_into(&mut self, now: SimTime, out: &mut Vec<Completion>) {
        let mut drained = std::mem::take(&mut self.port_drain);
        drained.clear();
        self.drain_completions_into(now, &mut drained);
        for &(at, entry) in &drained {
            self.port.finish(entry.cid);
            out.push(Completion { at, entry });
        }
        self.port_drain = drained;
    }

    fn next_port_event_at(&self) -> Option<SimTime> {
        self.next_event_at()
    }

    fn in_flight(&self) -> usize {
        self.port.in_flight()
    }
}
