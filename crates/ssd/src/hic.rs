//! Host Interface Controller.
//!
//! "The HIC is capable of fetching these commands and recognizing the NVMe
//! vocabulary. Given that the command is a write, the HIC uses a DMA engine
//! to bring the data into the device" (paper §2.2). The HIC owns the
//! device's host-facing PCIe link and its DMA engine; CMB MMIO traffic (on a
//! Villars device) shares the same link.

use pcie::{DmaConfig, DmaDirection, DmaEngine, LinkConfig, PcieLink};
use simkit::{Grant, SerialResource, SimDuration, SimTime};

/// HIC timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HicConfig {
    /// Doorbell-to-decoded command fetch cost (includes the SQ-entry read
    /// over PCIe).
    pub fetch: SimDuration,
    /// Posting one completion entry + interrupt generation.
    pub completion_post: SimDuration,
}

impl Default for HicConfig {
    fn default() -> Self {
        HicConfig {
            fetch: SimDuration::from_micros(1),
            completion_post: SimDuration::from_nanos(500),
        }
    }
}

/// The host interface controller: command fetch engine + host link + DMA.
#[derive(Debug)]
pub struct Hic {
    config: HicConfig,
    link: PcieLink,
    dma: DmaEngine,
    fetch_engine: SerialResource,
}

impl Hic {
    /// Build a HIC over a host link.
    pub fn new(config: HicConfig, link: LinkConfig, dma: DmaConfig) -> Self {
        Hic {
            config,
            link: PcieLink::new(link),
            dma: DmaEngine::new(dma),
            fetch_engine: SerialResource::new(),
        }
    }

    /// Fetch and decode one command starting at `now`. Fetches serialize
    /// (one decode engine).
    pub fn fetch(&mut self, now: SimTime) -> Grant {
        self.fetch_engine.acquire(now, self.config.fetch)
    }

    /// DMA `bytes` from host memory into the device.
    pub fn dma_in(&mut self, now: SimTime, bytes: u64) -> Grant {
        self.dma.transfer(&mut self.link, now, bytes, DmaDirection::HostToDevice)
    }

    /// DMA `bytes` from the device to host memory.
    pub fn dma_out(&mut self, now: SimTime, bytes: u64) -> Grant {
        self.dma.transfer(&mut self.link, now, bytes, DmaDirection::DeviceToHost)
    }

    /// Cost of posting a completion entry.
    pub fn completion_post(&self) -> SimDuration {
        self.config.completion_post
    }

    /// Borrow the host link (shared with CMB MMIO traffic on a Villars).
    pub fn link_mut(&mut self) -> &mut PcieLink {
        &mut self.link
    }

    /// When the host link wire next goes idle.
    pub fn link_busy_until(&self) -> SimTime {
        self.link.busy_until()
    }

    /// Host-link statistics.
    pub fn link_stats(&self) -> simkit::LinkStats {
        self.link.stats()
    }

    /// Bytes moved by DMA so far.
    pub fn dma_bytes(&self) -> u64 {
        self.dma.bytes_moved()
    }

    /// Borrow the host link read-only (telemetry).
    pub fn link(&self) -> &PcieLink {
        &self.link
    }

    /// Borrow the DMA engine read-only (telemetry).
    pub fn dma(&self) -> &DmaEngine {
        &self.dma
    }
}

impl simkit::Instrument for Hic {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.counter("fetch_busy_ns", self.fetch_engine.busy_time().as_nanos());
        out.counter("fetches", self.fetch_engine.request_count());
        out.counter("dma_transfers", self.dma.transfer_count());
        out.counter("dma_bytes", self.dma.bytes_moved());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hic() -> Hic {
        Hic::new(HicConfig::default(), LinkConfig::villars_host(), DmaConfig::default())
    }

    #[test]
    fn fetches_serialize() {
        let mut h = hic();
        let a = h.fetch(SimTime::ZERO);
        let b = h.fetch(SimTime::ZERO);
        assert_eq!(a.end.as_micros_f64(), 1.0);
        assert_eq!(b.start, a.end);
    }

    #[test]
    fn dma_rides_the_host_link() {
        let mut h = hic();
        let g = h.dma_in(SimTime::ZERO, 16 << 10);
        assert!(g.end > SimTime::ZERO);
        assert_eq!(h.dma_bytes(), 16 << 10);
        assert!(h.link_stats().messages > 0);
    }

    #[test]
    fn dma_and_mmio_share_the_wire() {
        let mut h = hic();
        let dma = h.dma_in(SimTime::ZERO, 64 << 10);
        // An MMIO burst issued concurrently queues behind DMA TLPs.
        let mmio = h.link_mut().send_write_burst(SimTime::ZERO, 64, 1);
        assert!(mmio.end > SimTime::ZERO);
        // Total wire time reflects both.
        assert!(
            h.link_mut().busy_until() >= dma.end - pcie::LinkConfig::villars_host().propagation
        );
    }
}
