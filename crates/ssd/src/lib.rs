//! # ssd — the conventional SSD
//!
//! The block-interface device of paper Fig. 2 (bottom), which also serves as
//! the *conventional side* of a Villars device:
//!
//! - [`hic`] — Host Interface Controller: command fetch, DMA, the host link;
//! - [`buffer`] — the DRAM Data Buffer (write-back cache) whose port a
//!   DRAM-backed CMB shares;
//! - [`ftl`] — page-mapping Flash Translation Layer with per-stream active
//!   blocks and greedy GC;
//! - [`device`] — [`ConventionalSsd`]: the full NVMe block device, plus the
//!   internal destage-write/read entry points the X-SSD fast side uses.

#![warn(missing_docs)]

pub mod buffer;
pub mod device;
pub mod ftl;
pub mod hic;

pub use buffer::{BufferStats, DataBuffer};
pub use device::{ConventionalSsd, SsdConfig};
pub use ftl::{AllocStream, Ftl, FtlStats, GcPlan, Lpn};
pub use hic::{Hic, HicConfig};

#[cfg(test)]
mod crate_tests {
    use super::*;
    use nvme::{NvmeController, NvmeDriver, Status};
    use simkit::bytes::Bytes;
    use simkit::SimTime;

    fn driver() -> NvmeDriver<ConventionalSsd> {
        NvmeDriver::new(ConventionalSsd::new(SsdConfig::small()))
    }

    #[test]
    fn write_read_round_trip_with_content() {
        let mut drv = driver();
        let payload = Bytes::from(vec![0xAB; 4096]);
        drv.controller_mut().stage_write_data(5, payload.clone());
        let w = drv.write_blocking(SimTime::ZERO, 5, 1);
        assert!(w.status.is_ok());
        let r = drv.read_blocking(w.completed_at, 5, 1);
        assert!(r.status.is_ok());
        assert!(r.completed_at > w.completed_at);
        assert_eq!(drv.controller().read_content(5).unwrap(), payload);
    }

    #[test]
    fn cached_write_is_fast_flush_is_slow() {
        let mut drv = driver();
        let w = drv.write_blocking(SimTime::ZERO, 0, 1);
        // Write-cache ack: syscall + fetch + DMA + buffer, well under tPROG.
        assert!(w.completed_at.as_micros_f64() < 50.0, "cached ack took {}", w.completed_at);
        let f = drv.flush_blocking(w.completed_at);
        assert!(f.status.is_ok());
        // Flush waits for the 50us (fast-timing) program.
        assert!(
            f.completed_at.as_micros_f64() >= 50.0,
            "flush returned too early: {}",
            f.completed_at
        );
    }

    #[test]
    fn flush_makes_data_durable() {
        let mut drv = driver();
        let payload = Bytes::from(vec![7u8; 4096]);
        drv.controller_mut().stage_write_data(3, payload.clone());
        let w = drv.write_blocking(SimTime::ZERO, 3, 1);
        let f = drv.flush_blocking(w.completed_at);
        drv.controller_mut().power_fail(f.completed_at);
        // Flushed data survives on media.
        assert_eq!(drv.controller().media_content(3).unwrap(), payload);
    }

    #[test]
    fn unflushed_write_lost_on_power_failure() {
        let mut drv = driver();
        drv.controller_mut().stage_write_data(9, Bytes::from(vec![1u8; 4096]));
        let w = drv.write_blocking(SimTime::ZERO, 9, 1);
        // Crash right after the cached ack, before tPROG can finish.
        drv.controller_mut().power_fail(w.completed_at);
        assert!(drv.controller().media_content(9).is_none(), "dirty page must be lost");
    }

    #[test]
    fn out_of_range_io_rejected() {
        let mut drv = driver();
        let cap = drv.namespace().capacity_lbas;
        let w = drv.write_blocking(SimTime::ZERO, cap, 1);
        assert_eq!(w.status, Status::LbaOutOfRange);
        let r = drv.read_blocking(w.completed_at, cap - 1, 2);
        assert_eq!(r.status, Status::LbaOutOfRange);
    }

    #[test]
    fn read_of_never_written_page_returns_zeros_fast() {
        let mut drv = driver();
        let r = drv.read_blocking(SimTime::ZERO, 7, 1);
        assert!(r.status.is_ok());
        assert!(drv.controller().read_content(7).is_none());
    }

    #[test]
    fn write_cache_off_waits_for_flash() {
        let mut cfg = SsdConfig::small();
        cfg.write_cache = false;
        let mut drv = NvmeDriver::new(ConventionalSsd::new(cfg));
        let w = drv.write_blocking(SimTime::ZERO, 0, 1);
        assert!(w.status.is_ok());
        assert!(
            w.completed_at.as_micros_f64() >= 50.0,
            "uncached write must include tPROG, got {}",
            w.completed_at
        );
    }

    #[test]
    fn destage_path_bypasses_buffer_and_lands_on_media() {
        let mut ssd = ConventionalSsd::new(SsdConfig::small());
        let data = Bytes::from(vec![0xDD; 4096]);
        let token = ssd.submit_destage_write(SimTime::ZERO, 100, data.clone());
        ssd.advance_to(SimTime::from_millis(10));
        let done = ssd.drain_destage_completions(SimTime::from_millis(10));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, token);
        assert_eq!(ssd.media_content(100).unwrap(), data);
        // Destage never touched the data buffer.
        assert_eq!(ssd.buffer_stats().writes, 0);
    }

    #[test]
    fn destage_rescue_completes_on_power_loss() {
        let mut ssd = ConventionalSsd::new(SsdConfig::small());
        let data = Bytes::from(vec![0xEE; 4096]);
        // Queue destage writes and crash immediately, before any complete.
        for i in 0..4u64 {
            ssd.submit_destage_write(SimTime::ZERO, 200 + i, data.clone());
        }
        let finished = ssd.power_fail_rescue_destage(SimTime::ZERO);
        assert!(finished > SimTime::ZERO);
        for i in 0..4u64 {
            assert_eq!(ssd.media_content(200 + i).unwrap(), data, "page {i} rescued");
        }
    }

    #[test]
    fn internal_read_completes() {
        let mut ssd = ConventionalSsd::new(SsdConfig::small());
        ssd.submit_destage_write(SimTime::ZERO, 50, Bytes::from(vec![1u8; 4096]));
        ssd.advance_to(SimTime::from_millis(1));
        let token = ssd.submit_internal_read(SimTime::from_millis(1), 50).expect("page mapped");
        ssd.advance_to(SimTime::from_millis(2));
        let done = ssd.drain_internal_reads(SimTime::from_millis(2));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, token);
        // Unmapped page: no read possible.
        assert!(ssd.submit_internal_read(SimTime::from_millis(2), 999).is_none());
    }

    #[test]
    fn sustained_overwrites_trigger_gc() {
        let mut drv = NvmeDriver::new(ConventionalSsd::new(SsdConfig::small()));
        // Overwrite a small working set far beyond raw capacity.
        let total_pages = SsdConfig::small().geometry.total_pages();
        let mut now = SimTime::ZERO;
        for i in 0..total_pages * 2 {
            let w = drv.write_blocking(now, i % 8, 1);
            assert!(w.status.is_ok(), "write {i} failed");
            now = w.completed_at;
        }
        // Let background flushing/GC settle.
        drv.controller_mut().advance_to(now + simkit::SimDuration::from_secs(1));
        let stats = drv.controller().ftl_stats();
        assert!(stats.gc_erases > 0, "GC must have reclaimed blocks: {stats:?}");
    }

    #[test]
    fn link_sees_dma_traffic() {
        let mut drv = driver();
        drv.write_blocking(SimTime::ZERO, 0, 2);
        let stats = drv.controller().link_stats();
        assert!(stats.payload_bytes >= 8192, "two pages DMAed: {stats:?}");
    }
}
