//! The device Data Buffer.
//!
//! "It is very common for an SSD to cache data in this temporary area"
//! (paper §2.2). The buffer is device DRAM behind a shared port; in the
//! Villars DRAM configuration the CMB backing memory is carved from this
//! same pool (paper §6), so the port resource is exposed for sharing — that
//! sharing is what derates the DRAM-backed fast side in Fig. 9/10.

use simkit::bytes::Bytes;
use simkit::{Bandwidth, Grant, SerialResource, SimTime};
use std::collections::{HashMap, VecDeque};

/// Logical page number (buffer key).
pub type Lpn = u64;

/// A cached page.
#[derive(Debug, Clone)]
struct Slot {
    data: Bytes,
    dirty: bool,
}

/// Buffer statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct BufferStats {
    /// Read hits served from DRAM.
    pub read_hits: u64,
    /// Read misses that went to flash.
    pub read_misses: u64,
    /// Pages written into the buffer.
    pub writes: u64,
    /// Clean pages evicted to make room.
    pub evictions: u64,
}

/// The DRAM data buffer with a write-back cache policy.
#[derive(Debug)]
pub struct DataBuffer {
    capacity_pages: usize,
    page_bytes: u32,
    slots: HashMap<Lpn, Slot>,
    /// LRU order of clean pages (dirty pages are never evicted — they are
    /// pinned until flushed).
    lru: VecDeque<Lpn>,
    port: SerialResource,
    port_bw: Bandwidth,
    stats: BufferStats,
}

impl DataBuffer {
    /// A buffer of `capacity_pages` pages of `page_bytes` each, behind a
    /// DRAM port of `port_bw`.
    pub fn new(capacity_pages: usize, page_bytes: u32, port_bw: Bandwidth) -> Self {
        assert!(capacity_pages > 0);
        DataBuffer {
            capacity_pages,
            page_bytes,
            slots: HashMap::new(),
            lru: VecDeque::new(),
            port: SerialResource::new(),
            port_bw,
            stats: BufferStats::default(),
        }
    }

    /// Page size.
    pub fn page_bytes(&self) -> u32 {
        self.page_bytes
    }

    /// Occupied pages.
    pub fn occupancy(&self) -> usize {
        self.slots.len()
    }

    /// Number of dirty (unflushed) pages.
    pub fn dirty_count(&self) -> usize {
        self.slots.values().filter(|s| s.dirty).count()
    }

    /// Statistics.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Acquire the DRAM port for an arbitrary transfer of `bytes` (used by
    /// the Villars DRAM-backed CMB, which shares this port).
    pub fn port_access(&mut self, now: SimTime, bytes: u64) -> Grant {
        self.port.acquire(now, self.port_bw.transfer_time(bytes))
    }

    /// Hold the DRAM port for an explicit duration. The CMB path runs at
    /// its own (narrower, derated) rate while still occupying the shared
    /// controller (paper §6: 64-bit CMB path on the shared DDR3 port).
    pub fn port_hold(&mut self, now: SimTime, duration: simkit::SimDuration) -> Grant {
        self.port.acquire(now, duration)
    }

    /// Utilization of the DRAM port over `[0, horizon]`.
    pub fn port_utilization(&self, horizon: SimTime) -> f64 {
        self.port.utilization(horizon)
    }

    /// Write a page into the buffer (dirty). Returns the port grant; the
    /// write is visible at `grant.end`. Evicts clean LRU pages over
    /// capacity; dirty pages never evict, so the buffer may exceed capacity
    /// under flush backlog (the flash scheduler is then the back-pressure).
    pub fn write(&mut self, now: SimTime, lpn: Lpn, data: Bytes) -> Grant {
        let g = self.port_access(now, data.len() as u64);
        self.touch_lru(lpn);
        self.slots.insert(lpn, Slot { data, dirty: true });
        self.stats.writes += 1;
        self.evict_if_needed();
        g
    }

    /// Look up a page. A hit pays a port access and refreshes LRU.
    pub fn read(&mut self, now: SimTime, lpn: Lpn) -> Option<(Bytes, Grant)> {
        if let Some(slot) = self.slots.get(&lpn) {
            let data = slot.data.clone();
            let g = self.port_access(now, data.len() as u64);
            self.touch_lru(lpn);
            self.stats.read_hits += 1;
            Some((data, g))
        } else {
            self.stats.read_misses += 1;
            None
        }
    }

    /// Install a page fetched from flash as a clean cache entry.
    pub fn fill(&mut self, now: SimTime, lpn: Lpn, data: Bytes) -> Grant {
        let g = self.port_access(now, data.len() as u64);
        self.touch_lru(lpn);
        self.slots.insert(lpn, Slot { data, dirty: false });
        self.evict_if_needed();
        g
    }

    /// The dirty page set, oldest-written first (flush candidates).
    pub fn dirty_pages(&self) -> Vec<Lpn> {
        // LRU front is oldest; filter to dirty.
        let mut out: Vec<Lpn> = self
            .lru
            .iter()
            .filter(|l| self.slots.get(l).is_some_and(|s| s.dirty))
            .copied()
            .collect();
        // Dirty pages not in LRU (shouldn't happen, but be safe).
        for (lpn, s) in &self.slots {
            if s.dirty && !out.contains(lpn) {
                out.push(*lpn);
            }
        }
        out
    }

    /// Fetch page content (no timing), e.g. for a flush's program data.
    pub fn peek(&self, lpn: Lpn) -> Option<Bytes> {
        self.slots.get(&lpn).map(|s| s.data.clone())
    }

    /// Mark a page clean once its flash program completed.
    pub fn mark_clean(&mut self, lpn: Lpn) {
        if let Some(s) = self.slots.get_mut(&lpn) {
            s.dirty = false;
        }
        self.evict_if_needed();
    }

    /// Drop every entry (power loss: device DRAM is volatile).
    pub fn crash(&mut self) {
        self.slots.clear();
        self.lru.clear();
    }

    fn touch_lru(&mut self, lpn: Lpn) {
        if let Some(pos) = self.lru.iter().position(|l| *l == lpn) {
            self.lru.remove(pos);
        }
        self.lru.push_back(lpn);
    }

    fn evict_if_needed(&mut self) {
        while self.slots.len() > self.capacity_pages {
            // Find the oldest clean page.
            let victim = self.lru.iter().position(|l| self.slots.get(l).is_some_and(|s| !s.dirty));
            match victim {
                Some(pos) => {
                    let lpn = self.lru.remove(pos).expect("position valid");
                    self.slots.remove(&lpn);
                    self.stats.evictions += 1;
                }
                None => break, // all dirty: allow overflow, flusher will drain
            }
        }
    }
}

impl simkit::Instrument for DataBuffer {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.counter("read_hits", self.stats.read_hits);
        out.counter("read_misses", self.stats.read_misses);
        out.counter("writes", self.stats.writes);
        out.counter("evictions", self.stats.evictions);
        let lookups = self.stats.read_hits + self.stats.read_misses;
        if lookups > 0 {
            out.gauge("hit_rate_pct", 100.0 * self.stats.read_hits as f64 / lookups as f64);
        }
        out.gauge("occupancy_pages", self.slots.len() as f64);
        out.gauge("dirty_pages", self.dirty_count() as f64);
        out.counter("port_busy_ns", self.port.busy_time().as_nanos());
        out.counter("port_requests", self.port.request_count());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buffer(cap: usize) -> DataBuffer {
        DataBuffer::new(cap, 4096, Bandwidth::gbytes_per_sec(2.0))
    }

    fn page(b: u8) -> Bytes {
        Bytes::from(vec![b; 4096])
    }

    #[test]
    fn write_then_read_hits() {
        let mut buf = buffer(4);
        buf.write(SimTime::ZERO, 1, page(0xAA));
        let (data, _g) = buf.read(SimTime::ZERO, 1).expect("hit");
        assert_eq!(data[0], 0xAA);
        assert_eq!(buf.stats().read_hits, 1);
        assert!(buf.read(SimTime::ZERO, 2).is_none());
        assert_eq!(buf.stats().read_misses, 1);
    }

    #[test]
    fn port_serializes_accesses() {
        let mut buf = buffer(4);
        let g1 = buf.write(SimTime::ZERO, 1, page(1));
        let g2 = buf.write(SimTime::ZERO, 2, page(2));
        assert!(g2.start >= g1.end, "DRAM port is serial");
        // 4096B at 2 GB/s = 2048ns each.
        assert_eq!(g1.end.as_nanos(), 2048);
        assert_eq!(g2.end.as_nanos(), 4096);
    }

    #[test]
    fn dirty_pages_pin_until_clean() {
        let mut buf = buffer(2);
        buf.write(SimTime::ZERO, 1, page(1));
        buf.write(SimTime::ZERO, 2, page(2));
        buf.write(SimTime::ZERO, 3, page(3));
        // Over capacity but all dirty: nothing evicted.
        assert_eq!(buf.occupancy(), 3);
        buf.mark_clean(1);
        // Now the clean page can go.
        assert_eq!(buf.occupancy(), 2);
        assert!(buf.peek(1).is_none());
        assert!(buf.peek(2).is_some());
    }

    #[test]
    fn clean_fill_evicts_lru_first() {
        let mut buf = buffer(2);
        buf.fill(SimTime::ZERO, 1, page(1));
        buf.fill(SimTime::ZERO, 2, page(2));
        // Touch 1 so 2 becomes LRU.
        buf.read(SimTime::ZERO, 1);
        buf.fill(SimTime::ZERO, 3, page(3));
        assert!(buf.peek(2).is_none(), "LRU page 2 evicted");
        assert!(buf.peek(1).is_some());
        assert_eq!(buf.stats().evictions, 1);
    }

    #[test]
    fn dirty_list_is_oldest_first() {
        let mut buf = buffer(8);
        buf.write(SimTime::ZERO, 5, page(5));
        buf.write(SimTime::ZERO, 6, page(6));
        buf.write(SimTime::ZERO, 7, page(7));
        assert_eq!(buf.dirty_pages(), vec![5, 6, 7]);
        buf.mark_clean(6);
        assert_eq!(buf.dirty_pages(), vec![5, 7]);
        assert_eq!(buf.dirty_count(), 2);
    }

    #[test]
    fn crash_clears_everything() {
        let mut buf = buffer(4);
        buf.write(SimTime::ZERO, 1, page(1));
        buf.crash();
        assert_eq!(buf.occupancy(), 0);
        assert!(buf.read(SimTime::ZERO, 1).is_none());
    }

    #[test]
    fn overwrite_replaces_content() {
        let mut buf = buffer(4);
        buf.write(SimTime::ZERO, 1, page(1));
        buf.write(SimTime::ZERO, 1, page(9));
        assert_eq!(buf.peek(1).unwrap()[0], 9);
        assert_eq!(buf.occupancy(), 1);
    }

    #[test]
    fn shared_port_contention_is_observable() {
        let mut buf = buffer(64);
        // Sustained "data buffering activity" then a CMB-style access: the
        // CMB access queues behind it (the Fig. 9 DRAM derating mechanism).
        for i in 0..8 {
            buf.write(SimTime::ZERO, i, page(i as u8));
        }
        let g = buf.port_access(SimTime::ZERO, 4096);
        assert!(g.start.as_nanos() >= 8 * 2048);
    }
}
