//! Randomized FTL invariant tests: mapping uniqueness, capacity accounting,
//! and GC state preservation under workloads drawn from [`DetRng`] across
//! many fixed seeds (replayable by seed, no external framework).

use flash::{FlashArray, FlashGeometry, FlashTiming, ReliabilityConfig};
use simkit::DetRng;
use ssd::{AllocStream, Ftl};
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone)]
enum Op {
    /// Write (allocate a new version of) lpn % working-set.
    Write(u64),
    /// Trim lpn % working-set.
    Trim(u64),
    /// Run one GC round (plan + erase bookkeeping).
    Gc,
}

fn random_ops(rng: &mut DetRng) -> Vec<Op> {
    let len = rng.uniform(1, 400) as usize;
    (0..len)
        .map(|_| match rng.uniform(0, 8) {
            0..=5 => Op::Write(rng.uniform(0, 64)),
            6 => Op::Trim(rng.uniform(0, 64)),
            _ => Op::Gc,
        })
        .collect()
}

fn fresh() -> (FlashGeometry, Ftl) {
    let g = FlashGeometry::tiny();
    let array = FlashArray::new(g, FlashTiming::fast(), ReliabilityConfig::perfect(), 99);
    let ftl = Ftl::new(g, &array, 2);
    (g, ftl)
}

#[test]
fn mapping_stays_unique_and_consistent() {
    for seed in 0..64u64 {
        let mut rng = DetRng::new(0xF71_0000 + seed);
        let ops = random_ops(&mut rng);
        let (g, mut ftl) = fresh();
        let mut model: HashMap<u64, ()> = HashMap::new();
        for op in ops {
            match op {
                Op::Write(lpn) => {
                    // Allocation may legitimately fail when space is
                    // exhausted and nothing is reclaimable without erases;
                    // run GC rounds until it succeeds or truly stuck.
                    let mut tries = 0;
                    loop {
                        if ftl.allocate(lpn, AllocStream::Host).is_some() {
                            model.insert(lpn, ());
                            break;
                        }
                        match ftl.plan_gc() {
                            Some(plan) => ftl.block_erased(plan.victim),
                            None => break, // genuinely full of live data
                        }
                        tries += 1;
                        assert!(tries < 128, "seed {seed}: GC loop runaway");
                    }
                }
                Op::Trim(lpn) => {
                    ftl.invalidate(lpn);
                    model.remove(&lpn);
                }
                Op::Gc => {
                    if let Some(plan) = ftl.plan_gc() {
                        // Moves must rebind exactly the live lpns of the victim.
                        for (lpn, old, new) in &plan.moves {
                            assert_ne!(old, new, "seed {seed}");
                            assert_eq!(ftl.lookup(*lpn), Some(*new), "seed {seed}");
                        }
                        ftl.block_erased(plan.victim);
                    }
                }
            }
            // Invariant 1: the mapped set equals the model's live set.
            assert_eq!(ftl.mapped_pages(), model.len(), "seed {seed}");
            for lpn in model.keys() {
                assert!(ftl.lookup(*lpn).is_some(), "seed {seed}: live lpn {lpn} unmapped");
            }
            // Invariant 2: physical addresses are unique across live lpns.
            let mut seen = HashSet::new();
            for lpn in model.keys() {
                let ppa = ftl.lookup(*lpn).expect("checked above");
                assert!(ppa.in_bounds(&g), "seed {seed}");
                assert!(seen.insert(ppa), "seed {seed}: ppa {ppa:?} mapped twice");
            }
            // Invariant 3: free-block accounting bounded by geometry.
            assert!(ftl.free_block_count() <= g.total_blocks() as usize, "seed {seed}");
        }
    }
}

#[test]
fn write_amplification_grows_only_with_gc() {
    for seed in 0..16u64 {
        let mut rng = DetRng::new(0x3A_0000 + seed);
        let overwrites = rng.uniform(1, 300) as usize;
        let (_g, mut ftl) = fresh();
        for i in 0..overwrites {
            let lpn = (i % 8) as u64;
            let mut tries = 0;
            while ftl.allocate(lpn, AllocStream::Host).is_none() {
                let plan = ftl.plan_gc().expect("overwritten blocks reclaimable");
                ftl.block_erased(plan.victim);
                tries += 1;
                assert!(tries < 64);
            }
        }
        let stats = ftl.stats();
        // Overwriting a tiny working set produces (almost) empty victims:
        // WA must stay close to 1.
        assert!(
            stats.write_amplification() < 1.5,
            "seed {seed}: WA {}",
            stats.write_amplification()
        );
    }
}

#[test]
fn wear_penalty_steers_victim_selection() {
    use flash::{FlashTiming, ReliabilityConfig};
    let g = FlashGeometry::tiny();
    let array = FlashArray::new(g, FlashTiming::fast(), ReliabilityConfig::perfect(), 7);
    let mut ftl = Ftl::new(g, &array, 2);
    // Fill two full blocks' worth of distinct lpns, then overwrite all of
    // them so several blocks are fully invalid (equal valid counts).
    let per_block = g.pages_per_block as u64;
    let dies = g.total_dies() as u64;
    for lpn in 0..per_block * dies {
        ftl.allocate(lpn, AllocStream::Host).unwrap();
    }
    for lpn in 0..per_block * dies {
        ftl.allocate(lpn, AllocStream::Host).unwrap();
    }
    // Without wear, greedy picks some victim V. With a huge penalty on V,
    // the planner must pick a different one.
    let baseline = ftl.plan_gc_weighted(|_| false, |_| 0).expect("victims exist");
    let avoided = baseline.victim;
    let alternative = ftl
        .plan_gc_weighted(|_| false, |b| if b == avoided { 1_000 } else { 0 })
        .expect("other victims exist");
    assert_ne!(alternative.victim, avoided, "penalty must steer selection");
}
