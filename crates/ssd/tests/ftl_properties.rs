//! Property-based FTL invariants under randomized workloads:
//! mapping uniqueness, capacity accounting, and GC state preservation.

use flash::{FlashArray, FlashGeometry, FlashTiming, ReliabilityConfig};
use proptest::prelude::*;
use ssd::{AllocStream, Ftl};
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone)]
enum Op {
    /// Write (allocate a new version of) lpn % working-set.
    Write(u64),
    /// Trim lpn % working-set.
    Trim(u64),
    /// Run one GC round (plan + erase bookkeeping).
    Gc,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0u64..64).prop_map(Op::Write),
        1 => (0u64..64).prop_map(Op::Trim),
        1 => Just(Op::Gc),
    ]
}

fn fresh() -> (FlashGeometry, Ftl) {
    let g = FlashGeometry::tiny();
    let array = FlashArray::new(g, FlashTiming::fast(), ReliabilityConfig::perfect(), 99);
    let ftl = Ftl::new(g, &array, 2);
    (g, ftl)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn mapping_stays_unique_and_consistent(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let (g, mut ftl) = fresh();
        let mut model: HashMap<u64, ()> = HashMap::new();
        for op in ops {
            match op {
                Op::Write(lpn) => {
                    // Allocation may legitimately fail when space is
                    // exhausted and nothing is reclaimable without erases;
                    // run GC rounds until it succeeds or truly stuck.
                    let mut tries = 0;
                    loop {
                        if ftl.allocate(lpn, AllocStream::Host).is_some() {
                            model.insert(lpn, ());
                            break;
                        }
                        match ftl.plan_gc() {
                            Some(plan) => ftl.block_erased(plan.victim),
                            None => break, // genuinely full of live data
                        }
                        tries += 1;
                        prop_assert!(tries < 128, "GC loop runaway");
                    }
                }
                Op::Trim(lpn) => {
                    ftl.invalidate(lpn);
                    model.remove(&lpn);
                }
                Op::Gc => {
                    if let Some(plan) = ftl.plan_gc() {
                        // Moves must rebind exactly the live lpns of the victim.
                        for (lpn, old, new) in &plan.moves {
                            prop_assert_ne!(old, new);
                            prop_assert_eq!(ftl.lookup(*lpn), Some(*new));
                        }
                        ftl.block_erased(plan.victim);
                    }
                }
            }
            // Invariant 1: the mapped set equals the model's live set.
            prop_assert_eq!(ftl.mapped_pages(), model.len());
            for lpn in model.keys() {
                prop_assert!(ftl.lookup(*lpn).is_some(), "live lpn {lpn} unmapped");
            }
            // Invariant 2: physical addresses are unique across live lpns.
            let mut seen = HashSet::new();
            for lpn in model.keys() {
                let ppa = ftl.lookup(*lpn).expect("checked above");
                prop_assert!(ppa.in_bounds(&g));
                prop_assert!(seen.insert(ppa), "ppa {ppa:?} mapped twice");
            }
            // Invariant 3: free-block accounting bounded by geometry.
            prop_assert!(ftl.free_block_count() <= g.total_blocks() as usize);
        }
    }

    #[test]
    fn write_amplification_grows_only_with_gc(overwrites in 1usize..300) {
        let (_g, mut ftl) = fresh();
        for i in 0..overwrites {
            let lpn = (i % 8) as u64;
            let mut tries = 0;
            while ftl.allocate(lpn, AllocStream::Host).is_none() {
                let plan = ftl.plan_gc().expect("overwritten blocks reclaimable");
                ftl.block_erased(plan.victim);
                tries += 1;
                assert!(tries < 64);
            }
        }
        let stats = ftl.stats();
        // Overwriting a tiny working set produces (almost) empty victims:
        // WA must stay close to 1.
        prop_assert!(stats.write_amplification() < 1.5, "WA {}", stats.write_amplification());
    }
}

#[test]
fn wear_penalty_steers_victim_selection() {
    use flash::{FlashTiming, ReliabilityConfig};
    let g = FlashGeometry::tiny();
    let array = FlashArray::new(g, FlashTiming::fast(), ReliabilityConfig::perfect(), 7);
    let mut ftl = Ftl::new(g, &array, 2);
    // Fill two full blocks' worth of distinct lpns, then overwrite all of
    // them so several blocks are fully invalid (equal valid counts).
    let per_block = g.pages_per_block as u64;
    let dies = g.total_dies() as u64;
    for lpn in 0..per_block * dies {
        ftl.allocate(lpn, AllocStream::Host).unwrap();
    }
    for lpn in 0..per_block * dies {
        ftl.allocate(lpn, AllocStream::Host).unwrap();
    }
    // Without wear, greedy picks some victim V. With a huge penalty on V,
    // the planner must pick a different one.
    let baseline = ftl.plan_gc_weighted(|_| false, |_| 0).expect("victims exist");
    let avoided = baseline.victim;
    let alternative = ftl
        .plan_gc_weighted(|_| false, |b| if b == avoided { 1_000 } else { 0 })
        .expect("other victims exist");
    assert_ne!(alternative.victim, avoided, "penalty must steer selection");
}
