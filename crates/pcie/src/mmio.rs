//! MMIO address space: BAR windows and routing.
//!
//! The CMB is "an internal memory area exposed to applications via memory
//! mapping" (paper §2.3): the device claims a Base Address Register window
//! and loads/stores against it become PCIe TLPs. This module models the
//! fabric's address map so TLPs can be routed to the owning device region.

use crate::tlp::BusAddr;

/// Identifies a device function on the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceId(pub u16);

/// What an address window maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// NVMe register file (doorbells, controller config).
    NvmeRegisters,
    /// Controller Memory Buffer / Persistent Memory Region data window.
    Cmb,
    /// CMB control window (credit counter, ring head/tail, status registers).
    CmbControl,
    /// An NTB translation window into a peer fabric.
    NtbWindow,
}

/// One mapped window of the bus address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Owning device.
    pub device: DeviceId,
    /// Window role.
    pub kind: RegionKind,
    /// First bus address of the window.
    pub base: BusAddr,
    /// Window length in bytes.
    pub len: u64,
}

impl Region {
    /// Whether `addr` falls inside this window.
    pub fn contains(&self, addr: BusAddr) -> bool {
        addr >= self.base && addr - self.base < self.len
    }

    /// Offset of `addr` within the window. Panics if outside.
    pub fn offset(&self, addr: BusAddr) -> u64 {
        assert!(self.contains(addr), "address {addr:#x} outside region");
        addr - self.base
    }
}

/// Errors from address-map operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MmioError {
    /// The requested window overlaps an existing one.
    Overlap {
        /// Base of the conflicting existing window.
        existing_base: BusAddr,
    },
    /// No window covers the address.
    Unmapped(BusAddr),
}

impl std::fmt::Display for MmioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmioError::Overlap { existing_base } => {
                write!(f, "window overlaps existing region at {existing_base:#x}")
            }
            MmioError::Unmapped(a) => write!(f, "no region maps address {a:#x}"),
        }
    }
}

impl std::error::Error for MmioError {}

/// The fabric's address map: an allocator plus router.
#[derive(Debug, Clone, Default)]
pub struct AddressMap {
    regions: Vec<Region>,
    next_free: BusAddr,
}

/// Alignment for allocated windows (1 MiB keeps the math simple and mimics
/// BAR alignment rules).
const BAR_ALIGN: u64 = 1 << 20;

impl AddressMap {
    /// An empty map whose allocations start at 4 GiB (above typical RAM
    /// windows, purely cosmetic).
    pub fn new() -> Self {
        AddressMap { regions: Vec::new(), next_free: 4 << 30 }
    }

    /// Allocate a fresh window of at least `len` bytes for `device`/`kind`.
    pub fn allocate(&mut self, device: DeviceId, kind: RegionKind, len: u64) -> Region {
        let aligned = len.div_ceil(BAR_ALIGN) * BAR_ALIGN;
        let region = Region { device, kind, base: self.next_free, len };
        self.next_free += aligned.max(BAR_ALIGN);
        self.regions.push(region);
        region
    }

    /// Map a window at an explicit base (used by NTB peers that mirror each
    /// other's layouts). Fails on overlap.
    pub fn map_at(
        &mut self,
        device: DeviceId,
        kind: RegionKind,
        base: BusAddr,
        len: u64,
    ) -> Result<Region, MmioError> {
        for r in &self.regions {
            let disjoint = base + len <= r.base || r.base + r.len <= base;
            if !disjoint {
                return Err(MmioError::Overlap { existing_base: r.base });
            }
        }
        let region = Region { device, kind, base, len };
        self.regions.push(region);
        self.next_free = self.next_free.max(base + len);
        Ok(region)
    }

    /// Route an address to its owning window.
    pub fn route(&self, addr: BusAddr) -> Result<&Region, MmioError> {
        self.regions.iter().find(|r| r.contains(addr)).ok_or(MmioError::Unmapped(addr))
    }

    /// All windows owned by `device`.
    pub fn regions_of(&self, device: DeviceId) -> impl Iterator<Item = &Region> {
        self.regions.iter().filter(move |r| r.device == device)
    }

    /// Total number of mapped windows.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True if no windows are mapped.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_disjoint_and_routable() {
        let mut map = AddressMap::new();
        let d0 = DeviceId(0);
        let d1 = DeviceId(1);
        let cmb = map.allocate(d0, RegionKind::Cmb, 128 << 10);
        let ctl = map.allocate(d0, RegionKind::CmbControl, 4096);
        let peer = map.allocate(d1, RegionKind::Cmb, 128 << 20);
        assert_ne!(cmb.base, ctl.base);
        assert_eq!(map.route(cmb.base + 17).unwrap().kind, RegionKind::Cmb);
        assert_eq!(map.route(ctl.base).unwrap().kind, RegionKind::CmbControl);
        assert_eq!(map.route(peer.base + (64 << 20)).unwrap().device, d1);
    }

    #[test]
    fn unmapped_addresses_error() {
        let map = AddressMap::new();
        assert_eq!(map.route(0x1234), Err(MmioError::Unmapped(0x1234)));
    }

    #[test]
    fn region_offset_math() {
        let r = Region { device: DeviceId(0), kind: RegionKind::Cmb, base: 0x1000, len: 0x100 };
        assert!(r.contains(0x1000));
        assert!(r.contains(0x10FF));
        assert!(!r.contains(0x1100));
        assert_eq!(r.offset(0x1080), 0x80);
    }

    #[test]
    #[should_panic(expected = "outside region")]
    fn offset_outside_panics() {
        let r = Region { device: DeviceId(0), kind: RegionKind::Cmb, base: 0x1000, len: 0x100 };
        let _ = r.offset(0x2000);
    }

    #[test]
    fn explicit_mapping_detects_overlap() {
        let mut map = AddressMap::new();
        map.map_at(DeviceId(0), RegionKind::NtbWindow, 0x10_0000, 0x1000).unwrap();
        let err = map.map_at(DeviceId(1), RegionKind::NtbWindow, 0x10_0800, 0x1000);
        assert!(matches!(err, Err(MmioError::Overlap { .. })));
        // Adjacent (non-overlapping) is fine.
        map.map_at(DeviceId(1), RegionKind::NtbWindow, 0x10_1000, 0x1000).unwrap();
    }

    #[test]
    fn regions_of_filters_by_device() {
        let mut map = AddressMap::new();
        map.allocate(DeviceId(0), RegionKind::Cmb, 4096);
        map.allocate(DeviceId(1), RegionKind::Cmb, 4096);
        map.allocate(DeviceId(0), RegionKind::NvmeRegisters, 4096);
        assert_eq!(map.regions_of(DeviceId(0)).count(), 2);
        assert_eq!(map.regions_of(DeviceId(1)).count(), 1);
        assert_eq!(map.len(), 3);
    }
}
