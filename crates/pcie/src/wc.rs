//! CPU store-issue model: Write-Combining vs. Uncached MMIO.
//!
//! Paper §4.1/§6.2: the CMB region can be mapped Write-Combining (WC), in
//! which case the CPU's 64-byte WC buffers merge consecutive stores into a
//! single large TLP, or Uncached (UC), in which case every store instruction
//! becomes its own word-sized TLP. Fig. 10 measures the throughput effect;
//! this module reproduces the *mechanism*: the TLP payload sizes each mode
//! emits for a given application write size.

/// How an MMIO region is mapped by the host (paper references Intel SDM
/// ch. 11 memory cache control).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmioMode {
    /// Write-Combining: stores are merged in 64-byte CPU buffers and flushed
    /// as one TLP per full (or explicitly flushed partial) buffer.
    WriteCombining,
    /// Uncached: each store issues immediately as its own TLP, at most one
    /// machine word (8 bytes) of payload.
    Uncached,
}

/// The 64-byte CPU write-combining buffer granularity.
pub const WC_BUFFER_BYTES: u64 = 64;
/// The widest store an uncached mapping issues per TLP.
pub const UC_STORE_BYTES: u64 = 8;

/// Model of the CPU store-issue path for one MMIO mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreIssueModel {
    /// The mapping mode.
    pub mode: MmioMode,
}

impl StoreIssueModel {
    /// A write-combining mapping.
    pub fn wc() -> Self {
        StoreIssueModel { mode: MmioMode::WriteCombining }
    }

    /// An uncached mapping.
    pub fn uc() -> Self {
        StoreIssueModel { mode: MmioMode::Uncached }
    }

    /// The TLP payload sizes emitted when the application writes `len`
    /// contiguous bytes and then makes them globally visible (sfence /
    /// credit check), which flushes any partial WC buffer.
    ///
    /// WC: `len` splits into 64-byte TLPs plus one trailing partial.
    /// UC: `len` splits into 8-byte (word) TLPs plus one trailing partial.
    pub fn tlp_payloads(&self, len: u64) -> Vec<u32> {
        let unit = match self.mode {
            MmioMode::WriteCombining => WC_BUFFER_BYTES,
            MmioMode::Uncached => UC_STORE_BYTES,
        };
        let mut out = Vec::with_capacity(len.div_ceil(unit) as usize);
        let mut rem = len;
        while rem > 0 {
            let chunk = rem.min(unit);
            out.push(chunk as u32);
            rem -= chunk;
        }
        out
    }

    /// Number of TLPs for a `len`-byte write (without materializing them).
    pub fn tlp_count(&self, len: u64) -> u64 {
        let unit = match self.mode {
            MmioMode::WriteCombining => WC_BUFFER_BYTES,
            MmioMode::Uncached => UC_STORE_BYTES,
        };
        len.div_ceil(unit)
    }

    /// Wire bytes (payload + per-TLP overhead) for a `len`-byte write.
    pub fn wire_bytes(&self, len: u64, per_tlp_overhead: u64) -> u64 {
        len + self.tlp_count(len) * per_tlp_overhead
    }

    /// Payload efficiency of a `len`-byte write: `len / wire_bytes`.
    pub fn efficiency(&self, len: u64, per_tlp_overhead: u64) -> f64 {
        if len == 0 {
            return 0.0;
        }
        len as f64 / self.wire_bytes(len, per_tlp_overhead) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wc_combines_to_64() {
        let m = StoreIssueModel::wc();
        assert_eq!(m.tlp_payloads(64), vec![64]);
        assert_eq!(m.tlp_payloads(128), vec![64, 64]);
        assert_eq!(m.tlp_payloads(100), vec![64, 36]);
        assert_eq!(m.tlp_payloads(16), vec![16]);
        assert_eq!(m.tlp_count(129), 3);
    }

    #[test]
    fn uc_issues_words() {
        let m = StoreIssueModel::uc();
        assert_eq!(m.tlp_payloads(64), vec![8; 8]);
        assert_eq!(m.tlp_payloads(12), vec![8, 4]);
        assert_eq!(m.tlp_count(64), 8);
    }

    #[test]
    fn zero_length_write_is_empty() {
        assert!(StoreIssueModel::wc().tlp_payloads(0).is_empty());
        assert_eq!(StoreIssueModel::uc().tlp_count(0), 0);
        assert_eq!(StoreIssueModel::wc().efficiency(0, 24), 0.0);
    }

    #[test]
    fn wc_beats_uc_at_every_size() {
        // The Fig. 10 claim: "WC is faster than UC mode in all sizes we
        // tested" — holds structurally because WC never emits more TLPs.
        let wc = StoreIssueModel::wc();
        let uc = StoreIssueModel::uc();
        for len in [1u64, 2, 4, 8, 16, 32, 64, 128, 256] {
            assert!(wc.efficiency(len, 24) >= uc.efficiency(len, 24), "WC < UC at len={len}");
        }
    }

    #[test]
    fn wc_efficiency_peaks_at_64() {
        let wc = StoreIssueModel::wc();
        let e16 = wc.efficiency(16, 24);
        let e64 = wc.efficiency(64, 24);
        let e128 = wc.efficiency(128, 24);
        assert!(e64 > e16);
        // Beyond 64 the ratio is already at the 64-byte plateau.
        assert!((e128 - e64).abs() < 1e-12);
        assert!((e64 - 64.0 / 88.0).abs() < 1e-12);
    }

    #[test]
    fn wire_bytes_accounting() {
        let wc = StoreIssueModel::wc();
        // 100 bytes -> 2 TLPs -> 100 + 2*24 wire bytes.
        assert_eq!(wc.wire_bytes(100, 24), 148);
        let uc = StoreIssueModel::uc();
        // 100 bytes -> 13 TLPs.
        assert_eq!(uc.wire_bytes(100, 24), 100 + 13 * 24);
    }
}
