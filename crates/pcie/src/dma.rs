//! Device DMA engine.
//!
//! The SSD's Host Interface Controller "uses a Direct Memory Access (DMA)
//! engine to bring the data into the device" (paper §2.2). A DMA transfer is
//! a train of Max-Payload-Size TLPs on the host link plus a fixed
//! setup/descriptor-fetch cost.

use crate::link::PcieLink;
use crate::tlp::MaxPayloadSize;
use simkit::{Grant, SimDuration, SimTime};

/// DMA engine parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaConfig {
    /// Largest payload per TLP.
    pub mps: MaxPayloadSize,
    /// Per-transfer setup cost (descriptor fetch, engine arbitration).
    pub setup: SimDuration,
}

impl Default for DmaConfig {
    fn default() -> Self {
        DmaConfig { mps: MaxPayloadSize::default(), setup: SimDuration::from_nanos(300) }
    }
}

/// Direction of a DMA transfer, from the device's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaDirection {
    /// Host memory -> device (an NVMe write command's data phase).
    HostToDevice,
    /// Device -> host memory (an NVMe read command's data phase).
    DeviceToHost,
}

/// The DMA engine. It shares the device's host link, so DMA traffic and CMB
/// MMIO traffic contend for the same wire — the reason the paper constrains
/// the CMB experiments to a ×4 link.
#[derive(Debug, Clone, Copy, Default)]
pub struct DmaEngine {
    config: DmaConfig,
    transfers: u64,
    bytes: u64,
}

impl DmaEngine {
    /// Engine with the given parameters.
    pub fn new(config: DmaConfig) -> Self {
        DmaEngine { config, transfers: 0, bytes: 0 }
    }

    /// Execute a transfer of `len` bytes over `link`. Returns the window
    /// whose `end` is when the last byte has landed.
    ///
    /// Both directions serialize the same number of data-bearing TLPs: for
    /// device-to-host the data rides completions/writes toward the host; the
    /// wire cost is symmetric at this abstraction level.
    pub fn transfer(
        &mut self,
        link: &mut PcieLink,
        now: SimTime,
        len: u64,
        _dir: DmaDirection,
    ) -> Grant {
        self.transfers += 1;
        self.bytes += len;
        let start = now + self.config.setup;
        if len == 0 {
            return Grant { start, end: start };
        }
        let mps = self.config.mps.0 as u64;
        let full = len / mps;
        let tail = (len % mps) as u32;
        let mut g = Grant { start, end: start };
        if full > 0 {
            g = link.send_write_burst(start, self.config.mps.0, full);
        }
        if tail > 0 {
            let t = link.send_write_burst(g.end.max(start), tail, 1);
            g = Grant { start: g.start.min(t.start), end: t.end };
        }
        Grant { start, end: g.end }
    }

    /// Transfers executed.
    pub fn transfer_count(&self) -> u64 {
        self.transfers
    }

    /// Total bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes
    }
}

impl simkit::Instrument for DmaEngine {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.counter("transfers", self.transfers);
        out.counter("bytes", self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;

    #[test]
    fn transfer_splits_into_mps_tlps() {
        let mut link = PcieLink::new(LinkConfig::villars_host());
        let mut dma = DmaEngine::new(DmaConfig::default());
        let g = dma.transfer(&mut link, SimTime::ZERO, 4096, DmaDirection::HostToDevice);
        // 16 TLPs of 256B payload + 24B overhead = 4480 wire bytes at 2 B/ns
        // = 2240ns + 300ns setup + 150ns propagation.
        assert_eq!(g.end.as_nanos(), 300 + 2240 + 150);
        assert_eq!(link.stats().messages, 16);
        assert_eq!(dma.bytes_moved(), 4096);
    }

    #[test]
    fn tail_packet_handled() {
        let mut link = PcieLink::new(LinkConfig::villars_host());
        let mut dma = DmaEngine::new(DmaConfig::default());
        dma.transfer(&mut link, SimTime::ZERO, 300, DmaDirection::DeviceToHost);
        assert_eq!(link.stats().messages, 2);
        assert_eq!(link.stats().payload_bytes, 300);
    }

    #[test]
    fn zero_length_transfer_costs_only_setup() {
        let mut link = PcieLink::new(LinkConfig::villars_host());
        let mut dma = DmaEngine::new(DmaConfig::default());
        let g = dma.transfer(&mut link, SimTime::ZERO, 0, DmaDirection::HostToDevice);
        assert_eq!(g.end.as_nanos(), 300);
        assert_eq!(link.stats().messages, 0);
    }

    #[test]
    fn dma_contends_with_other_link_traffic() {
        let mut link = PcieLink::new(LinkConfig::villars_host());
        let mut dma = DmaEngine::new(DmaConfig::default());
        let a = dma.transfer(&mut link, SimTime::ZERO, 4096, DmaDirection::HostToDevice);
        let b = dma.transfer(&mut link, SimTime::ZERO, 4096, DmaDirection::HostToDevice);
        assert!(b.end > a.end, "second transfer must queue on the shared wire");
    }
}
