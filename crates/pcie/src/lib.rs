//! # pcie — PCIe transaction-layer, MMIO, and interconnect models
//!
//! "PCI may have been a bus, but PCIe is a full-fledged networking system"
//! (paper §2.1). This crate models the parts of that networking system the
//! X-SSD architecture leans on:
//!
//! - [`tlp`] — Transaction Layer Packets and their fixed per-packet costs;
//! - [`link`] — generation/lane-width bandwidth arithmetic and a serializing
//!   [`PcieLink`];
//! - [`mmio`] — BAR windows and address routing (how CMB reaches userspace);
//! - [`wc`] — the CPU Write-Combining vs. Uncached store-issue model behind
//!   paper Fig. 10;
//! - [`dma`] — the device DMA engine (NVMe data phases);
//! - [`ntb`] — Non-Transparent Bridging between hosts (paper §2.3), the
//!   transport under log shipping;
//! - [`rdma`] — an RDMA-verbs-class model used as the ablation baseline.

#![warn(missing_docs)]

pub mod dma;
pub mod link;
pub mod mmio;
pub mod ntb;
pub mod rdma;
pub mod tlp;
pub mod wc;

pub use dma::{DmaConfig, DmaDirection, DmaEngine};
pub use link::{Generation, LaneWidth, LinkConfig, PcieLink};
pub use mmio::{AddressMap, DeviceId, MmioError, Region, RegionKind};
pub use ntb::{HostId, NtbConfig, NtbFaultStats, NtbPort, TranslationWindow};
pub use rdma::{RdmaConfig, RdmaTransport};
pub use tlp::{BusAddr, MaxPayloadSize, Tlp, TlpKind, TlpOverhead};
pub use wc::{MmioMode, StoreIssueModel, UC_STORE_BYTES, WC_BUFFER_BYTES};

#[cfg(test)]
mod crate_tests {
    use super::*;
    use simkit::SimTime;

    /// End-to-end across the crate: an application write lands in a CMB
    /// window, the TLPs are forwarded over NTB, and the NTB path is faster
    /// than the equivalent RDMA-persistent path (the paper's §2.3 claim).
    #[test]
    fn ntb_beats_rdma_for_persistent_small_writes() {
        let mut map = AddressMap::new();
        let cmb = map.allocate(DeviceId(0), RegionKind::Cmb, 128 << 10);

        let mut port = NtbPort::new(NtbConfig::default(), HostId(1));
        port.add_window(TranslationWindow {
            local_base: cmb.base,
            len: cmb.len,
            remote_host: HostId(1),
            remote_base: 0x9000_0000,
        });

        // A 64-byte log record: one WC-combined TLP.
        let issue = StoreIssueModel::wc();
        let payloads = issue.tlp_payloads(64);
        assert_eq!(payloads.len(), 1);
        let (_fwd, ntb_grant) = port
            .forward(SimTime::ZERO, &Tlp::write(cmb.base, payloads[0]))
            .expect("window covers the CMB");

        let mut rdma = RdmaTransport::new(RdmaConfig::default());
        let rdma_grant = rdma.write_persistent(SimTime::ZERO, 64);

        assert!(ntb_grant.end < rdma_grant.end, "NTB {} vs RDMA {}", ntb_grant.end, rdma_grant.end);
    }
}
