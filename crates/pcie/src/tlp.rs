//! Transaction Layer Packets.
//!
//! PCIe carries all traffic — MMIO stores against a CMB region, DMA bursts,
//! NTB-forwarded mirror streams — as TLPs (paper §2.1). What matters to the
//! experiments is the *cost structure*: each TLP pays a fixed header/framing
//! overhead regardless of payload, which is exactly the mechanism behind the
//! write-combining results (paper Fig. 10).

/// Physical/bus address inside a PCIe fabric.
pub type BusAddr = u64;

/// The TLP types the models exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlpKind {
    /// Posted memory write (MMIO store, DMA write). No completion returned.
    MemWrite,
    /// Non-posted memory read request; a `Completion` carries the data back.
    MemRead,
    /// Completion with data for an earlier `MemRead`.
    Completion,
    /// Message (interrupt, doorbell, vendor-defined).
    Message,
}

/// A transaction-layer packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tlp {
    /// Packet type.
    pub kind: TlpKind,
    /// Target bus address.
    pub addr: BusAddr,
    /// Payload bytes carried (0 for read requests).
    pub payload: u32,
}

impl Tlp {
    /// A posted memory write.
    pub fn write(addr: BusAddr, payload: u32) -> Self {
        Tlp { kind: TlpKind::MemWrite, addr, payload }
    }

    /// A memory read request for `len` bytes (the request itself carries no
    /// payload; `len` is recorded so the completion can be costed).
    pub fn read(addr: BusAddr, len: u32) -> Self {
        Tlp { kind: TlpKind::MemRead, addr, payload: len }
    }

    /// A completion carrying `payload` bytes back to the requester.
    pub fn completion(addr: BusAddr, payload: u32) -> Self {
        Tlp { kind: TlpKind::Completion, addr, payload }
    }

    /// A message TLP (doorbell/interrupt); fixed small payload.
    pub fn message(addr: BusAddr) -> Self {
        Tlp { kind: TlpKind::Message, addr, payload: 4 }
    }

    /// Bytes this packet puts on the wire *in the request direction*:
    /// header + framing + payload (read requests carry no data).
    pub fn wire_bytes(&self, overhead: &TlpOverhead) -> u64 {
        let data = match self.kind {
            TlpKind::MemRead => 0,
            _ => self.payload as u64,
        };
        overhead.per_tlp_bytes() + data
    }
}

/// Per-TLP fixed costs. Defaults follow the PCIe spec for a 3-DW header
/// plus physical/data-link framing: 12 B header + 4 B ECRC-less framing +
/// 8 B DLLP/sequence ≈ 24 B per packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlpOverhead {
    /// Transaction-layer header bytes.
    pub header_bytes: u64,
    /// Data-link + physical framing bytes.
    pub framing_bytes: u64,
}

impl Default for TlpOverhead {
    fn default() -> Self {
        TlpOverhead { header_bytes: 16, framing_bytes: 8 }
    }
}

impl TlpOverhead {
    /// Total fixed bytes each TLP pays on the wire.
    pub fn per_tlp_bytes(&self) -> u64 {
        self.header_bytes + self.framing_bytes
    }
}

/// Maximum payload a single memory-write TLP may carry. 256 B is the common
/// server default; large transfers split into `ceil(len / mps)` packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxPayloadSize(pub u32);

impl Default for MaxPayloadSize {
    fn default() -> Self {
        MaxPayloadSize(256)
    }
}

impl MaxPayloadSize {
    /// Split a transfer of `len` bytes into TLP payload sizes.
    pub fn split(&self, len: u64) -> Vec<u32> {
        let mps = self.0 as u64;
        assert!(mps > 0);
        let mut out = Vec::with_capacity(len.div_ceil(mps) as usize);
        let mut rem = len;
        while rem > 0 {
            let chunk = rem.min(mps);
            out.push(chunk as u32);
            rem -= chunk;
        }
        out
    }

    /// Number of TLPs a transfer of `len` bytes needs.
    pub fn packet_count(&self, len: u64) -> u64 {
        len.div_ceil(self.0 as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_by_kind() {
        let oh = TlpOverhead::default();
        assert_eq!(oh.per_tlp_bytes(), 24);
        assert_eq!(Tlp::write(0x1000, 64).wire_bytes(&oh), 88);
        // Read requests carry no data.
        assert_eq!(Tlp::read(0x1000, 4096).wire_bytes(&oh), 24);
        assert_eq!(Tlp::completion(0x1000, 8).wire_bytes(&oh), 32);
        assert_eq!(Tlp::message(0x0).wire_bytes(&oh), 28);
    }

    #[test]
    fn mps_split_exact_and_remainder() {
        let mps = MaxPayloadSize(256);
        assert_eq!(mps.split(512), vec![256, 256]);
        assert_eq!(mps.split(300), vec![256, 44]);
        assert_eq!(mps.split(0), Vec::<u32>::new());
        assert_eq!(mps.packet_count(512), 2);
        assert_eq!(mps.packet_count(513), 3);
        assert_eq!(mps.packet_count(1), 1);
    }

    #[test]
    fn small_payload_overhead_dominates() {
        // An 8-byte UC store pays 24 bytes of overhead: 25% efficiency.
        let oh = TlpOverhead::default();
        let tlp = Tlp::write(0, 8);
        let eff = 8.0 / tlp.wire_bytes(&oh) as f64;
        assert!((eff - 0.25).abs() < 1e-12);
    }
}
