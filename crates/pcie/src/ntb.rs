//! Non-Transparent Bridging between PCIe fabrics.
//!
//! NTB interconnects the PCIe systems of different hosts (paper §2.3): a
//! write landing in a local NTB window is address-translated and re-emitted
//! on the peer fabric. The paper chose NTB over RDMA because forwarding TLPs
//! "involves very little additional effort, mainly address translations and
//! sometimes minor formatting" — which is exactly what this model costs:
//! a per-hop latency plus serialization on the inter-host link, with a small
//! translation-prefix overhead per TLP.

use crate::link::{LinkConfig, PcieLink};
use crate::tlp::{BusAddr, Tlp};
use simkit::faults::{FaultHook, LinkDownWindow, TransportFaultConfig};
use simkit::{DetRng, Grant, LinkStats, SimDuration, SimTime};

/// Identifies a host/fabric connected by NTB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostId(pub u16);

/// One address-translation window: `[local_base, local_base+len)` on the
/// local fabric forwards to `[remote_base, ...)` on `remote_host`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslationWindow {
    /// Window base on the local fabric.
    pub local_base: BusAddr,
    /// Window length.
    pub len: u64,
    /// Peer fabric.
    pub remote_host: HostId,
    /// Base address on the peer fabric.
    pub remote_base: BusAddr,
}

impl TranslationWindow {
    /// Translate a local address to the peer fabric. Returns `None` if the
    /// address is outside the window.
    pub fn translate(&self, addr: BusAddr) -> Option<(HostId, BusAddr)> {
        if addr >= self.local_base && addr - self.local_base < self.len {
            Some((self.remote_host, self.remote_base + (addr - self.local_base)))
        } else {
            None
        }
    }
}

/// Timing characteristics of the NTB adapter pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NtbConfig {
    /// The inter-host cable/link (defaults to ×8 Gen3-class, the Dolphin
    /// PXH830's envelope).
    pub link: LinkConfig,
    /// One-way latency added by the bridge pair (translation + retimers).
    pub hop_latency: SimDuration,
    /// Extra bytes prepended per forwarded TLP (translation prefix /
    /// "minor formatting", paper §2.3).
    pub translation_overhead_bytes: u64,
    /// Whether the adapter multicasts one ingress TLP to several peers in
    /// hardware. The paper's prototype deliberately does NOT use multicast:
    /// "for simplicity we chose not to use it" — the primary creates one
    /// mirror flow per secondary.
    pub hardware_multicast: bool,
}

impl Default for NtbConfig {
    fn default() -> Self {
        NtbConfig {
            link: LinkConfig {
                generation: crate::link::Generation::Gen3,
                // The paper daisy-chains Dolphin PXH830 adapters; the
                // effective per-flow share is x4 Gen3 (~3.9 GB/s).
                lanes: crate::link::LaneWidth::X4,
                overhead: crate::tlp::TlpOverhead::default(),
                propagation: SimDuration::from_nanos(0),
            },
            // Application-level one-way latency of a daisy-chained NTB
            // path: adapter + cable + intermediate switch hops.
            hop_latency: SimDuration::from_nanos(1_400),
            translation_overhead_bytes: 4,
            hardware_multicast: false,
        }
    }
}

/// A point-to-point NTB connection from a local fabric to one peer fabric.
///
/// Each secondary gets its own `NtbPort` on the primary (one mirror flow per
/// secondary, paper §4.2), so per-secondary pacing is independent.
#[derive(Debug, Clone)]
pub struct NtbPort {
    config: NtbConfig,
    peer: HostId,
    windows: Vec<TranslationWindow>,
    wire: PcieLink,
    forwarded_tlps: u64,
    /// Fault injection (None = inert, the default).
    faults: Option<NtbFaults>,
}

/// Armed transport-fault state for one port (see [`NtbPort::arm_faults`]).
#[derive(Debug, Clone)]
struct NtbFaults {
    cfg: TransportFaultConfig,
    drop: FaultHook,
    /// Scheduled outages; traffic entering a window is parked until the
    /// link retrains at the window end, then replayed.
    link_down: Vec<LinkDownWindow>,
    replays: u64,
    deferrals: u64,
}

/// Fault counters for one NTB port.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NtbFaultStats {
    /// TLPs (or bursts) dropped and replayed after the replay timer.
    pub replays: u64,
    /// TLPs (or bursts) parked by a link-down window until retrain.
    pub deferrals: u64,
}

impl NtbPort {
    /// Open a port towards `peer`.
    pub fn new(config: NtbConfig, peer: HostId) -> Self {
        let wire = PcieLink::new(config.link);
        NtbPort { config, peer, windows: Vec::new(), wire, forwarded_tlps: 0, faults: None }
    }

    /// Arm deterministic transport-fault injection: each forwarded TLP (or
    /// burst) is dropped with probability `cfg.tlp_drop` and redelivered
    /// after the replay timer — the PCIe data-link layer's ACK/NAK replay,
    /// so a drop is pure latency, never loss. `rng` should be forked from
    /// the fault plan's master seed. The unarmed port makes zero draws and
    /// behaves bit-identically.
    pub fn arm_faults(&mut self, cfg: TransportFaultConfig, rng: DetRng) {
        self.faults = Some(NtbFaults {
            drop: FaultHook::armed(rng, cfg.tlp_drop),
            cfg,
            link_down: Vec::new(),
            replays: 0,
            deferrals: 0,
        });
    }

    /// Schedule a link outage: traffic entering `[window.from, window.until)`
    /// is parked until the link retrains at `window.until`, then replayed.
    /// Arms the fault layer (at zero drop rate) if it was not armed yet.
    pub fn schedule_link_down(&mut self, window: LinkDownWindow) {
        let f = self.faults.get_or_insert_with(|| NtbFaults {
            cfg: TransportFaultConfig::default(),
            drop: FaultHook::disabled(),
            link_down: Vec::new(),
            replays: 0,
            deferrals: 0,
        });
        f.link_down.push(window);
    }

    /// Fault counters (zero when never armed).
    pub fn fault_stats(&self) -> NtbFaultStats {
        self.faults
            .as_ref()
            .map(|f| NtbFaultStats { replays: f.replays, deferrals: f.deferrals })
            .unwrap_or_default()
    }

    /// Extra delivery delay the fault layer imposes on traffic entering at
    /// `now`: time parked in a link-down window, plus the replay timer if
    /// the drop hook fires. Zero (and zero draws) when unarmed.
    fn fault_delay(&mut self, now: SimTime) -> SimDuration {
        let Some(f) = self.faults.as_mut() else {
            return SimDuration::ZERO;
        };
        let mut extra = SimDuration::ZERO;
        if let Some(w) = f.link_down.iter().find(|w| w.contains(now)) {
            // Parked until retrain, then the TLP goes out.
            extra += w.until.saturating_since(now);
            f.deferrals += 1;
        }
        if f.drop.fire() {
            extra += f.cfg.replay_timeout;
            f.replays += 1;
        }
        extra
    }

    /// The peer this port reaches.
    pub fn peer(&self) -> HostId {
        self.peer
    }

    /// Add a translation window. Windows must target this port's peer.
    pub fn add_window(&mut self, w: TranslationWindow) {
        assert_eq!(w.remote_host, self.peer, "window targets a different peer");
        self.windows.push(w);
    }

    /// Translate a local address through this port's windows.
    pub fn translate(&self, addr: BusAddr) -> Option<BusAddr> {
        self.windows.iter().find_map(|w| w.translate(addr).map(|(_, a)| a))
    }

    /// Forward one TLP to the peer. Returns the translated packet and the
    /// window whose `end` is when it has fully arrived on the peer fabric.
    ///
    /// Returns `None` if no window covers the address (the bridge drops it,
    /// as real NTBs do for unmapped traffic).
    pub fn forward(&mut self, now: SimTime, tlp: &Tlp) -> Option<(Tlp, Grant)> {
        let remote_addr = self.translate(tlp.addr)?;
        let fault = self.fault_delay(now);
        let g = self.wire.send(now + fault, &Tlp { addr: remote_addr, ..*tlp });
        self.forwarded_tlps += 1;
        let extra =
            self.config.link.bandwidth().transfer_time(self.config.translation_overhead_bytes);
        let arrive = g.end + self.config.hop_latency + extra;
        Some((Tlp { addr: remote_addr, ..*tlp }, Grant { start: g.start, end: arrive }))
    }

    /// Forward a burst of `n` write TLPs of `payload` bytes each into the
    /// window containing `addr`. Used by the transport module's mirror flow.
    pub fn forward_burst(
        &mut self,
        now: SimTime,
        addr: BusAddr,
        payload: u32,
        n: u64,
    ) -> Option<Grant> {
        let _remote = self.translate(addr)?;
        let fault = self.fault_delay(now);
        let g = self.wire.send_write_burst(now + fault, payload, n);
        self.forwarded_tlps += n;
        Some(Grant { start: g.start, end: g.end + self.config.hop_latency })
    }

    /// Number of TLPs forwarded so far.
    pub fn forwarded_tlps(&self) -> u64 {
        self.forwarded_tlps
    }

    /// Traffic statistics of the inter-host wire.
    pub fn stats(&self) -> LinkStats {
        self.wire.stats()
    }

    /// Wire utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.wire.utilization(horizon)
    }

    /// The configured hop latency (exposed for experiment reporting).
    pub fn hop_latency(&self) -> SimDuration {
        self.config.hop_latency
    }
}

impl simkit::Instrument for NtbPort {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.counter("forwarded_tlps", self.forwarded_tlps);
        // Fault metrics exist only when injection is armed — fault-free
        // snapshots keep their byte-frozen layout.
        if let Some(f) = &self.faults {
            out.counter("retry.tlp_replays", f.replays);
            out.counter("fault.link_down_deferrals", f.deferrals);
        }
        self.wire.instrument(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn port() -> NtbPort {
        let mut p = NtbPort::new(NtbConfig::default(), HostId(1));
        p.add_window(TranslationWindow {
            local_base: 0x8000_0000,
            len: 1 << 20,
            remote_host: HostId(1),
            remote_base: 0x4000_0000,
        });
        p
    }

    #[test]
    fn translation_maps_offsets() {
        let w = TranslationWindow {
            local_base: 0x1000,
            len: 0x100,
            remote_host: HostId(2),
            remote_base: 0x9000,
        };
        assert_eq!(w.translate(0x1080), Some((HostId(2), 0x9080)));
        assert_eq!(w.translate(0x1100), None);
        assert_eq!(w.translate(0x0FFF), None);
    }

    #[test]
    fn forward_translates_and_costs_hop() {
        let mut p = port();
        let (tlp, g) = p.forward(SimTime::ZERO, &Tlp::write(0x8000_0040, 64)).unwrap();
        assert_eq!(tlp.addr, 0x4000_0040);
        // Must include at least the hop latency.
        assert!(g.end.as_nanos() >= 900);
        assert_eq!(p.forwarded_tlps(), 1);
    }

    #[test]
    fn unmapped_traffic_is_dropped() {
        let mut p = port();
        assert!(p.forward(SimTime::ZERO, &Tlp::write(0x1234, 8)).is_none());
        assert_eq!(p.forwarded_tlps(), 0);
    }

    #[test]
    #[should_panic(expected = "different peer")]
    fn window_peer_mismatch_panics() {
        let mut p = NtbPort::new(NtbConfig::default(), HostId(1));
        p.add_window(TranslationWindow {
            local_base: 0,
            len: 4096,
            remote_host: HostId(9),
            remote_base: 0,
        });
    }

    #[test]
    fn burst_forwarding_queues_on_wire() {
        let mut p = port();
        let g1 = p.forward_burst(SimTime::ZERO, 0x8000_0000, 64, 100).unwrap();
        let g2 = p.forward_burst(SimTime::ZERO, 0x8000_0000, 64, 100).unwrap();
        assert!(g2.end > g1.end, "second burst must queue behind the first");
        assert_eq!(p.forwarded_tlps(), 200);
    }

    /// The conservative-PDES lookahead contract (`simkit::DomainScheduler`,
    /// `xssd_core::Cluster` parallel mode): every cross-device delivery
    /// arrives at least `hop_latency` after its emission instant, no matter
    /// what faults or outages are armed — faults only ever *add* delay.
    /// This lower bound is what makes `hop_latency` a safe lookahead
    /// horizon.
    #[test]
    fn every_delivery_respects_the_hop_latency_lookahead() {
        let mut rng = DetRng::new(0x10C4_AEAD);
        let mut p = port();
        p.arm_faults(
            TransportFaultConfig { tlp_drop: 0.5, replay_timeout: SimDuration::from_micros(10) },
            DetRng::new(11),
        );
        p.schedule_link_down(LinkDownWindow {
            from: SimTime::from_micros(20),
            until: SimTime::from_micros(60),
        });
        let hop = p.hop_latency();
        let mut now = SimTime::ZERO;
        for i in 0..500u64 {
            now += SimDuration::from_nanos(rng.uniform(0, 300));
            let g = if i % 3 == 0 {
                p.forward_burst(now, 0x8000_0000, 64, 1 + rng.uniform(0, 4)).unwrap()
            } else {
                p.forward(now, &Tlp::write(0x8000_0040, 64)).unwrap().1
            };
            assert!(
                g.end >= now + hop,
                "delivery at {} beat the lookahead bound {} (sent {now}, step {i})",
                g.end,
                now + hop,
            );
        }
    }

    #[test]
    fn tlp_drop_pays_replay_timer_not_loss() {
        let mut clean = port();
        let mut faulty = port();
        faulty.arm_faults(
            TransportFaultConfig { tlp_drop: 1.0, replay_timeout: SimDuration::from_micros(10) },
            DetRng::new(4),
        );
        let (_, gc) = clean.forward(SimTime::ZERO, &Tlp::write(0x8000_0000, 64)).unwrap();
        let (_, gf) = faulty.forward(SimTime::ZERO, &Tlp::write(0x8000_0000, 64)).unwrap();
        assert_eq!(
            gf.end.as_nanos(),
            gc.end.as_nanos() + 10_000,
            "a dropped TLP is delayed by exactly the replay timer, never lost"
        );
        assert_eq!(faulty.fault_stats().replays, 1);
        assert_eq!(faulty.forwarded_tlps(), 1);
    }

    #[test]
    fn link_down_window_parks_traffic_until_retrain() {
        let mut p = port();
        p.schedule_link_down(LinkDownWindow {
            from: SimTime::from_micros(10),
            until: SimTime::from_micros(50),
        });
        // Before the outage: normal latency.
        let g0 = p.forward_burst(SimTime::ZERO, 0x8000_0000, 64, 1).unwrap();
        assert!(g0.end < SimTime::from_micros(10));
        // Inside the outage: parked until retrain at 50us.
        let g1 = p.forward_burst(SimTime::from_micros(20), 0x8000_0000, 64, 1).unwrap();
        assert!(g1.end >= SimTime::from_micros(50), "parked until retrain: {:?}", g1.end);
        // After the outage: normal again.
        let g2 = p.forward_burst(SimTime::from_micros(60), 0x8000_0000, 64, 1).unwrap();
        assert!(g2.end < SimTime::from_micros(62));
        assert_eq!(p.fault_stats().deferrals, 1);
    }

    #[test]
    fn fault_injection_is_deterministic() {
        fn run(seed: u64) -> Vec<u64> {
            let mut p = port();
            p.arm_faults(
                TransportFaultConfig { tlp_drop: 0.3, replay_timeout: SimDuration::from_micros(5) },
                DetRng::new(seed),
            );
            (0..50)
                .map(|i| {
                    p.forward_burst(SimTime::from_micros(i * 10), 0x8000_0000, 64, 4)
                        .unwrap()
                        .end
                        .as_nanos()
                })
                .collect()
        }
        assert_eq!(run(8), run(8));
        assert_ne!(run(8), run(9));
    }

    #[test]
    fn ntb_latency_is_microsecond_class() {
        // Sanity for Fig. 13 calibration: a single small write arrives in
        // ~1us, far below RDMA-style multi-us paths.
        let mut p = port();
        let (_, g) = p.forward(SimTime::ZERO, &Tlp::write(0x8000_0000, 8)).unwrap();
        let us = g.end.as_micros_f64();
        assert!(us > 0.5 && us < 2.0, "one-way {us}us");
    }
}
