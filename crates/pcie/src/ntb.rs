//! Non-Transparent Bridging between PCIe fabrics.
//!
//! NTB interconnects the PCIe systems of different hosts (paper §2.3): a
//! write landing in a local NTB window is address-translated and re-emitted
//! on the peer fabric. The paper chose NTB over RDMA because forwarding TLPs
//! "involves very little additional effort, mainly address translations and
//! sometimes minor formatting" — which is exactly what this model costs:
//! a per-hop latency plus serialization on the inter-host link, with a small
//! translation-prefix overhead per TLP.

use crate::link::{LinkConfig, PcieLink};
use crate::tlp::{BusAddr, Tlp};
use simkit::{Grant, LinkStats, SimDuration, SimTime};

/// Identifies a host/fabric connected by NTB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostId(pub u16);

/// One address-translation window: `[local_base, local_base+len)` on the
/// local fabric forwards to `[remote_base, ...)` on `remote_host`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslationWindow {
    /// Window base on the local fabric.
    pub local_base: BusAddr,
    /// Window length.
    pub len: u64,
    /// Peer fabric.
    pub remote_host: HostId,
    /// Base address on the peer fabric.
    pub remote_base: BusAddr,
}

impl TranslationWindow {
    /// Translate a local address to the peer fabric. Returns `None` if the
    /// address is outside the window.
    pub fn translate(&self, addr: BusAddr) -> Option<(HostId, BusAddr)> {
        if addr >= self.local_base && addr - self.local_base < self.len {
            Some((self.remote_host, self.remote_base + (addr - self.local_base)))
        } else {
            None
        }
    }
}

/// Timing characteristics of the NTB adapter pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NtbConfig {
    /// The inter-host cable/link (defaults to ×8 Gen3-class, the Dolphin
    /// PXH830's envelope).
    pub link: LinkConfig,
    /// One-way latency added by the bridge pair (translation + retimers).
    pub hop_latency: SimDuration,
    /// Extra bytes prepended per forwarded TLP (translation prefix /
    /// "minor formatting", paper §2.3).
    pub translation_overhead_bytes: u64,
    /// Whether the adapter multicasts one ingress TLP to several peers in
    /// hardware. The paper's prototype deliberately does NOT use multicast:
    /// "for simplicity we chose not to use it" — the primary creates one
    /// mirror flow per secondary.
    pub hardware_multicast: bool,
}

impl Default for NtbConfig {
    fn default() -> Self {
        NtbConfig {
            link: LinkConfig {
                generation: crate::link::Generation::Gen3,
                // The paper daisy-chains Dolphin PXH830 adapters; the
                // effective per-flow share is x4 Gen3 (~3.9 GB/s).
                lanes: crate::link::LaneWidth::X4,
                overhead: crate::tlp::TlpOverhead::default(),
                propagation: SimDuration::from_nanos(0),
            },
            // Application-level one-way latency of a daisy-chained NTB
            // path: adapter + cable + intermediate switch hops.
            hop_latency: SimDuration::from_nanos(1_400),
            translation_overhead_bytes: 4,
            hardware_multicast: false,
        }
    }
}

/// A point-to-point NTB connection from a local fabric to one peer fabric.
///
/// Each secondary gets its own `NtbPort` on the primary (one mirror flow per
/// secondary, paper §4.2), so per-secondary pacing is independent.
#[derive(Debug, Clone)]
pub struct NtbPort {
    config: NtbConfig,
    peer: HostId,
    windows: Vec<TranslationWindow>,
    wire: PcieLink,
    forwarded_tlps: u64,
}

impl NtbPort {
    /// Open a port towards `peer`.
    pub fn new(config: NtbConfig, peer: HostId) -> Self {
        let wire = PcieLink::new(config.link);
        NtbPort { config, peer, windows: Vec::new(), wire, forwarded_tlps: 0 }
    }

    /// The peer this port reaches.
    pub fn peer(&self) -> HostId {
        self.peer
    }

    /// Add a translation window. Windows must target this port's peer.
    pub fn add_window(&mut self, w: TranslationWindow) {
        assert_eq!(w.remote_host, self.peer, "window targets a different peer");
        self.windows.push(w);
    }

    /// Translate a local address through this port's windows.
    pub fn translate(&self, addr: BusAddr) -> Option<BusAddr> {
        self.windows.iter().find_map(|w| w.translate(addr).map(|(_, a)| a))
    }

    /// Forward one TLP to the peer. Returns the translated packet and the
    /// window whose `end` is when it has fully arrived on the peer fabric.
    ///
    /// Returns `None` if no window covers the address (the bridge drops it,
    /// as real NTBs do for unmapped traffic).
    pub fn forward(&mut self, now: SimTime, tlp: &Tlp) -> Option<(Tlp, Grant)> {
        let remote_addr = self.translate(tlp.addr)?;
        let g = self.wire.send(now, &Tlp { addr: remote_addr, ..*tlp });
        self.forwarded_tlps += 1;
        let extra =
            self.config.link.bandwidth().transfer_time(self.config.translation_overhead_bytes);
        let arrive = g.end + self.config.hop_latency + extra;
        Some((Tlp { addr: remote_addr, ..*tlp }, Grant { start: g.start, end: arrive }))
    }

    /// Forward a burst of `n` write TLPs of `payload` bytes each into the
    /// window containing `addr`. Used by the transport module's mirror flow.
    pub fn forward_burst(
        &mut self,
        now: SimTime,
        addr: BusAddr,
        payload: u32,
        n: u64,
    ) -> Option<Grant> {
        let _remote = self.translate(addr)?;
        let g = self.wire.send_write_burst(now, payload, n);
        self.forwarded_tlps += n;
        Some(Grant { start: g.start, end: g.end + self.config.hop_latency })
    }

    /// Number of TLPs forwarded so far.
    pub fn forwarded_tlps(&self) -> u64 {
        self.forwarded_tlps
    }

    /// Traffic statistics of the inter-host wire.
    pub fn stats(&self) -> LinkStats {
        self.wire.stats()
    }

    /// Wire utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.wire.utilization(horizon)
    }

    /// The configured hop latency (exposed for experiment reporting).
    pub fn hop_latency(&self) -> SimDuration {
        self.config.hop_latency
    }
}

impl simkit::Instrument for NtbPort {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.counter("forwarded_tlps", self.forwarded_tlps);
        self.wire.instrument(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn port() -> NtbPort {
        let mut p = NtbPort::new(NtbConfig::default(), HostId(1));
        p.add_window(TranslationWindow {
            local_base: 0x8000_0000,
            len: 1 << 20,
            remote_host: HostId(1),
            remote_base: 0x4000_0000,
        });
        p
    }

    #[test]
    fn translation_maps_offsets() {
        let w = TranslationWindow {
            local_base: 0x1000,
            len: 0x100,
            remote_host: HostId(2),
            remote_base: 0x9000,
        };
        assert_eq!(w.translate(0x1080), Some((HostId(2), 0x9080)));
        assert_eq!(w.translate(0x1100), None);
        assert_eq!(w.translate(0x0FFF), None);
    }

    #[test]
    fn forward_translates_and_costs_hop() {
        let mut p = port();
        let (tlp, g) = p.forward(SimTime::ZERO, &Tlp::write(0x8000_0040, 64)).unwrap();
        assert_eq!(tlp.addr, 0x4000_0040);
        // Must include at least the hop latency.
        assert!(g.end.as_nanos() >= 900);
        assert_eq!(p.forwarded_tlps(), 1);
    }

    #[test]
    fn unmapped_traffic_is_dropped() {
        let mut p = port();
        assert!(p.forward(SimTime::ZERO, &Tlp::write(0x1234, 8)).is_none());
        assert_eq!(p.forwarded_tlps(), 0);
    }

    #[test]
    #[should_panic(expected = "different peer")]
    fn window_peer_mismatch_panics() {
        let mut p = NtbPort::new(NtbConfig::default(), HostId(1));
        p.add_window(TranslationWindow {
            local_base: 0,
            len: 4096,
            remote_host: HostId(9),
            remote_base: 0,
        });
    }

    #[test]
    fn burst_forwarding_queues_on_wire() {
        let mut p = port();
        let g1 = p.forward_burst(SimTime::ZERO, 0x8000_0000, 64, 100).unwrap();
        let g2 = p.forward_burst(SimTime::ZERO, 0x8000_0000, 64, 100).unwrap();
        assert!(g2.end > g1.end, "second burst must queue behind the first");
        assert_eq!(p.forwarded_tlps(), 200);
    }

    #[test]
    fn ntb_latency_is_microsecond_class() {
        // Sanity for Fig. 13 calibration: a single small write arrives in
        // ~1us, far below RDMA-style multi-us paths.
        let mut p = port();
        let (_, g) = p.forward(SimTime::ZERO, &Tlp::write(0x8000_0000, 8)).unwrap();
        let us = g.end.as_micros_f64();
        assert!(us > 0.5 && us < 2.0, "one-way {us}us");
    }
}
