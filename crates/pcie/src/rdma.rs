//! RDMA-class transport model (ablation baseline).
//!
//! The paper's related work (Query Fresh, Active-Memory) ships logs over
//! RDMA; §2.3 argues NTB is both faster and simpler because RDMA NICs must
//! convert PCIe traffic into network packets and back. This module models an
//! RDMA write verb with that conversion cost so the `ablation_transport`
//! bench can compare the two paths. It also models the DDIO hazard the paper
//! highlights: an RDMA write is *visible* when it lands in the remote cache,
//! but *persistent* only after an explicit flush round-trip.

use simkit::{Bandwidth, Grant, Link, SimDuration, SimTime};

/// RDMA NIC/network parameters, defaulting to a 100 Gb/s RoCE ConnectX-5
/// class card (the paper's testbed NIC).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RdmaConfig {
    /// Network bandwidth (100 Gb/s = 12.5 GB/s raw).
    pub bandwidth_gbps: f64,
    /// One-way latency for a posted write verb (NIC processing + packet
    /// conversion + switch): measured RoCE is ~1.5-2.5 µs.
    pub one_way_latency: SimDuration,
    /// Per-message protocol overhead bytes (Ethernet + IP + UDP + IB BTH).
    pub per_message_overhead: u64,
    /// Extra round trip needed to guarantee *persistence* (not just
    /// visibility) of a remote PM write — an RDMA read or flush after the
    /// write, per the paper's discussion of DDIO (reference \[37\] there).
    pub persistence_flush: bool,
}

impl Default for RdmaConfig {
    fn default() -> Self {
        RdmaConfig {
            bandwidth_gbps: 100.0,
            one_way_latency: SimDuration::from_nanos(1_800),
            per_message_overhead: 90,
            persistence_flush: true,
        }
    }
}

/// A one-directional RDMA transport (requester -> responder).
#[derive(Debug, Clone)]
pub struct RdmaTransport {
    config: RdmaConfig,
    wire: Link,
    writes: u64,
}

impl RdmaTransport {
    /// Transport with the given NIC configuration.
    pub fn new(config: RdmaConfig) -> Self {
        let wire = Link::new(
            Bandwidth::gbytes_per_sec(config.bandwidth_gbps / 8.0),
            config.per_message_overhead,
        );
        RdmaTransport { config, wire, writes: 0 }
    }

    /// Post an RDMA write of `len` bytes. Returns the instant the data is
    /// **visible** at the responder.
    pub fn write_visible(&mut self, now: SimTime, len: u64) -> Grant {
        self.writes += 1;
        let g = self.wire.transmit(now, len);
        Grant { start: g.start, end: g.end + self.config.one_way_latency }
    }

    /// Post an RDMA write and wait until it is **persistent** at the
    /// responder. With `persistence_flush` this adds a zero-byte read
    /// round-trip that forces the remote write out of the DDIO cache path.
    pub fn write_persistent(&mut self, now: SimTime, len: u64) -> Grant {
        let vis = self.write_visible(now, len);
        if !self.config.persistence_flush {
            return vis;
        }
        // Flush = tiny read verb out + completion back: two one-way trips.
        let flush_out = self.wire.transmit(vis.end, 0);
        let done = flush_out.end + self.config.one_way_latency + self.config.one_way_latency;
        Grant { start: vis.start, end: done }
    }

    /// Number of write verbs posted.
    pub fn writes_posted(&self) -> u64 {
        self.writes
    }

    /// Wire utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.wire.utilization(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visibility_latency_is_microsecond_class() {
        let mut t = RdmaTransport::new(RdmaConfig::default());
        let g = t.write_visible(SimTime::ZERO, 64);
        let us = g.end.as_micros_f64();
        assert!(us > 1.5 && us < 3.0, "one-way {us}us");
    }

    #[test]
    fn persistence_costs_a_round_trip_more() {
        let mut a = RdmaTransport::new(RdmaConfig::default());
        let mut b = RdmaTransport::new(RdmaConfig::default());
        let vis = a.write_visible(SimTime::ZERO, 64);
        let per = b.write_persistent(SimTime::ZERO, 64);
        let delta = per.end.saturating_since(vis.end);
        // At least two extra one-way latencies.
        assert!(delta.as_nanos() >= 2 * 1_800, "delta {delta}");
    }

    #[test]
    fn flush_can_be_disabled() {
        let cfg = RdmaConfig { persistence_flush: false, ..RdmaConfig::default() };
        let mut t = RdmaTransport::new(cfg);
        let vis = t.write_visible(SimTime::ZERO, 64);
        let mut t2 = RdmaTransport::new(cfg);
        let per = t2.write_persistent(SimTime::ZERO, 64);
        assert_eq!(vis.end, per.end);
    }

    #[test]
    fn bandwidth_bound_for_large_messages() {
        let mut t = RdmaTransport::new(RdmaConfig::default());
        let g = t.write_visible(SimTime::ZERO, 1 << 20);
        // 1 MiB at 12.5 GB/s ~ 84us plus fixed costs.
        let us = g.end.as_micros_f64();
        assert!(us > 80.0 && us < 100.0, "1MiB took {us}us");
    }
}
