//! PCIe link bandwidth model.
//!
//! The Villars prototype constrains its interface to ×4 Gen2 — 2 GB/s —
//! "to better reflect the fact that the full PCIe bandwidth may seldom be
//! available for CMB to consume" (paper §6). This module provides the
//! generation/lane-width arithmetic and a [`PcieLink`] that serializes TLPs.

use crate::tlp::{Tlp, TlpOverhead};
use simkit::{Bandwidth, Grant, Link, LinkStats, SimDuration, SimTime};

/// PCIe protocol generation; determines per-lane raw rate and line encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Generation {
    /// 2.5 GT/s, 8b/10b encoding.
    Gen1,
    /// 5.0 GT/s, 8b/10b encoding.
    Gen2,
    /// 8.0 GT/s, 128b/130b encoding.
    Gen3,
    /// 16.0 GT/s, 128b/130b encoding.
    Gen4,
    /// 32.0 GT/s, 128b/130b encoding.
    Gen5,
}

impl Generation {
    /// Effective (post-encoding) bandwidth per lane, decimal GB/s.
    pub fn gbytes_per_sec_per_lane(self) -> f64 {
        match self {
            Generation::Gen1 => 2.5 / 10.0, // 0.25 GB/s
            Generation::Gen2 => 5.0 / 10.0, // 0.5 GB/s
            Generation::Gen3 => 8.0 * (128.0 / 130.0) / 8.0,
            Generation::Gen4 => 16.0 * (128.0 / 130.0) / 8.0,
            Generation::Gen5 => 32.0 * (128.0 / 130.0) / 8.0,
        }
    }
}

/// Number of lanes (×1 .. ×16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneWidth(pub u8);

impl LaneWidth {
    /// ×1 link.
    pub const X1: LaneWidth = LaneWidth(1);
    /// ×4 link (the Villars configuration).
    pub const X4: LaneWidth = LaneWidth(4);
    /// ×8 link (the unconstrained Cosmos+ configuration).
    pub const X8: LaneWidth = LaneWidth(8);
    /// ×16 link.
    pub const X16: LaneWidth = LaneWidth(16);
}

/// Static description of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Protocol generation.
    pub generation: Generation,
    /// Lane count.
    pub lanes: LaneWidth,
    /// Per-TLP fixed overhead.
    pub overhead: TlpOverhead,
    /// Propagation latency added to every packet (switch + flight time).
    pub propagation: SimDuration,
}

impl LinkConfig {
    /// The Villars host link: ×4 Gen2 = 2 GB/s (paper §6).
    pub fn villars_host() -> Self {
        LinkConfig {
            generation: Generation::Gen2,
            lanes: LaneWidth::X4,
            overhead: TlpOverhead::default(),
            propagation: SimDuration::from_nanos(150),
        }
    }

    /// The unconstrained Cosmos+ link: ×8 Gen2 = 4 GB/s.
    pub fn cosmos_native() -> Self {
        LinkConfig { lanes: LaneWidth::X8, ..Self::villars_host() }
    }

    /// Raw bandwidth of the configured link.
    pub fn bandwidth(&self) -> Bandwidth {
        Bandwidth::gbytes_per_sec(self.generation.gbytes_per_sec_per_lane() * self.lanes.0 as f64)
    }
}

/// A serializing PCIe link carrying TLPs.
///
/// Latency of a packet = queueing (FIFO behind in-flight TLPs)
/// + serialization (wire bytes / bandwidth) + propagation.
#[derive(Debug, Clone)]
pub struct PcieLink {
    config: LinkConfig,
    wire: Link,
}

impl PcieLink {
    /// Build a link from its static description.
    pub fn new(config: LinkConfig) -> Self {
        // Overhead is accounted per-TLP by `send`, not per-message by the
        // inner Link, so the inner link gets zero fixed overhead.
        let wire = Link::new(config.bandwidth(), 0);
        PcieLink { config, wire }
    }

    /// The static configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Transmit one TLP. Returns the window whose `end` is the instant the
    /// packet has fully arrived at the far side (serialization done +
    /// propagation).
    pub fn send(&mut self, now: SimTime, tlp: &Tlp) -> Grant {
        let overhead = tlp.wire_bytes(&self.config.overhead) - tlp.payload_data_bytes();
        let g = self.wire.transmit_with_overhead(now, tlp.payload_data_bytes(), overhead);
        Grant { start: g.start, end: g.end + self.config.propagation }
    }

    /// Transmit a burst of `n` identical write TLPs of `payload` bytes each,
    /// back to back. Returns the arrival instant of the last packet. This is
    /// the fast path used by the DMA and WC models to avoid allocating one
    /// `Tlp` per packet.
    pub fn send_write_burst(&mut self, now: SimTime, payload: u32, n: u64) -> Grant {
        assert!(n > 0, "burst must contain at least one TLP");
        let per_tlp = self.config.overhead.per_tlp_bytes();
        let mut first_start = None;
        let mut last_end = now;
        for _ in 0..n {
            let g = self.wire.transmit_with_overhead(last_end, payload as u64, per_tlp);
            first_start.get_or_insert(g.start);
            last_end = g.end;
        }
        Grant { start: first_start.unwrap_or(now), end: last_end + self.config.propagation }
    }

    /// Round-trip read: a read-request TLP travels out, the completion with
    /// `len` payload travels back. Returns when the completion data is fully
    /// received.
    pub fn read_round_trip(&mut self, now: SimTime, addr: u64, len: u32) -> Grant {
        let req = self.send(now, &Tlp::read(addr, len));
        let comp = self.send(req.end, &Tlp::completion(addr, len));
        Grant { start: req.start, end: comp.end }
    }

    /// The instant the wire next goes idle.
    pub fn busy_until(&self) -> SimTime {
        self.wire.busy_until()
    }

    /// Cumulative traffic statistics.
    pub fn stats(&self) -> LinkStats {
        self.wire.stats()
    }

    /// Wire utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.wire.utilization(horizon)
    }
}

impl simkit::Instrument for PcieLink {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        // TLP payload/overhead/message counters plus wire occupancy, from
        // the inner serializing link.
        self.wire.instrument(out);
    }
}

impl Tlp {
    /// Data bytes this packet carries in its travel direction (reads carry
    /// none; the completion carries them instead).
    pub fn payload_data_bytes(&self) -> u64 {
        match self.kind {
            crate::tlp::TlpKind::MemRead => 0,
            _ => self.payload as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlp::TlpKind;

    #[test]
    fn generation_rates() {
        assert!((Generation::Gen2.gbytes_per_sec_per_lane() - 0.5).abs() < 1e-12);
        assert!((Generation::Gen3.gbytes_per_sec_per_lane() - 0.985).abs() < 0.01);
    }

    #[test]
    fn villars_link_is_2_gbps() {
        let cfg = LinkConfig::villars_host();
        assert!((cfg.bandwidth().as_gbytes_per_sec() - 2.0).abs() < 1e-9);
        let cfg8 = LinkConfig::cosmos_native();
        assert!((cfg8.bandwidth().as_gbytes_per_sec() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn send_costs_serialization_plus_propagation() {
        let mut link = PcieLink::new(LinkConfig {
            generation: Generation::Gen2,
            lanes: LaneWidth::X4, // 2 B/ns
            overhead: TlpOverhead::default(),
            propagation: SimDuration::from_nanos(100),
        });
        let g = link.send(SimTime::ZERO, &Tlp::write(0x0, 64));
        // (64 + 24) / 2 = 44ns serialization + 100ns propagation.
        assert_eq!(g.end.as_nanos(), 144);
    }

    #[test]
    fn packets_queue_fifo() {
        let mut link = PcieLink::new(LinkConfig::villars_host());
        let a = link.send(SimTime::ZERO, &Tlp::write(0, 232)); // 256 wire bytes -> 128ns
        let b = link.send(SimTime::ZERO, &Tlp::write(0, 232));
        assert_eq!(a.end.as_nanos(), 128 + 150);
        assert_eq!(b.start.as_nanos(), 128);
        assert_eq!(b.end.as_nanos(), 256 + 150);
    }

    #[test]
    fn burst_matches_individual_sends() {
        let mut a = PcieLink::new(LinkConfig::villars_host());
        let mut b = PcieLink::new(LinkConfig::villars_host());
        let burst = a.send_write_burst(SimTime::ZERO, 64, 10);
        let mut end = SimTime::ZERO;
        for _ in 0..10 {
            // Individual sends chained serially (next starts when wire frees).
            let g = b.send(end, &Tlp::write(0, 64));
            end = g.end - b.config.propagation;
        }
        assert_eq!(burst.end, end + b.config.propagation);
        assert_eq!(a.stats().payload_bytes, b.stats().payload_bytes);
    }

    #[test]
    fn read_round_trip_includes_completion_payload() {
        let mut link = PcieLink::new(LinkConfig {
            generation: Generation::Gen2,
            lanes: LaneWidth::X4,
            overhead: TlpOverhead::default(),
            propagation: SimDuration::from_nanos(0),
        });
        let g = link.read_round_trip(SimTime::ZERO, 0x0, 8);
        // Request: 24B -> 12ns. Completion: 32B -> 16ns. Total 28ns.
        assert_eq!(g.end.as_nanos(), 28);
        assert_eq!(link.stats().messages, 2);
    }

    #[test]
    fn utilization_reflects_traffic() {
        let mut link = PcieLink::new(LinkConfig::villars_host());
        // 2000 wire bytes at 2 B/ns = 1000 ns busy.
        link.send(SimTime::ZERO, &Tlp { kind: TlpKind::MemWrite, addr: 0, payload: 1976 });
        let u = link.utilization(SimTime::from_nanos(2000));
        assert!((u - 0.5).abs() < 0.01);
    }
}
