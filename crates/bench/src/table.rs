//! Shared aligned-table printing for the harness binaries.
//!
//! Reproduces the `format!("{:<20} {:>8} {:>14.1} …")` tables the
//! harnesses printed by hand, from a declarative column list — so every
//! binary aligns its header and rows the same way, and stdout stays
//! byte-identical with the pre-refactor format strings.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right (labels).
    Left,
    /// Pad on the left (numbers).
    Right,
}

/// One table column: header, width, alignment.
#[derive(Debug, Clone, Copy)]
pub struct Col {
    /// Header text.
    pub head: &'static str,
    /// Minimum field width.
    pub width: usize,
    /// Field alignment (applies to the header too).
    pub align: Align,
}

impl Col {
    /// A left-aligned column (labels).
    pub const fn left(head: &'static str, width: usize) -> Self {
        Col { head, width, align: Align::Left }
    }

    /// A right-aligned column (numbers).
    pub const fn right(head: &'static str, width: usize) -> Self {
        Col { head, width, align: Align::Right }
    }
}

/// One formatted cell.
#[derive(Debug, Clone)]
pub enum Cell {
    /// Verbatim text.
    Str(String),
    /// An unsigned integer.
    Int(u64),
    /// A float printed with the given number of decimals.
    Float(f64, usize),
}

impl Cell {
    /// Label cell.
    pub fn str(s: impl Into<String>) -> Self {
        Cell::Str(s.into())
    }

    fn render(&self) -> String {
        match self {
            Cell::Str(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::Float(v, prec) => format!("{v:.prec$}"),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Str(s.to_string())
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(v)
    }
}

impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Int(v as u64)
    }
}

/// A column layout; renders a header line and data rows.
#[derive(Debug, Clone)]
pub struct Table {
    cols: Vec<Col>,
}

impl Table {
    /// Build a layout from its columns.
    pub fn new(cols: &[Col]) -> Self {
        assert!(!cols.is_empty());
        Table { cols: cols.to_vec() }
    }

    fn pad(out: &mut String, text: &str, col: &Col) {
        match col.align {
            Align::Left => {
                let _ = write!(out, "{text:<width$}", width = col.width);
            }
            Align::Right => {
                let _ = write!(out, "{text:>width$}", width = col.width);
            }
        }
    }

    /// The header line (column names, aligned like their cells).
    pub fn header(&self) -> String {
        let mut out = String::new();
        for (i, c) in self.cols.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            Self::pad(&mut out, c.head, c);
        }
        out
    }

    /// One data row; `cells` must match the column count.
    pub fn row(&self, cells: &[Cell]) -> String {
        assert_eq!(cells.len(), self.cols.len(), "row width mismatch");
        let mut out = String::new();
        for (i, (cell, col)) in cells.iter().zip(&self.cols).enumerate() {
            if i > 0 {
                out.push(' ');
            }
            Self::pad(&mut out, &cell.render(), col);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_legacy_format_strings() {
        let t = Table::new(&[
            Col::left("setup", 20),
            Col::right("workers", 8),
            Col::right("ktxn/s", 14),
        ]);
        assert_eq!(t.header(), format!("{:<20} {:>8} {:>14}", "setup", "workers", "ktxn/s"));
        let row = t.row(&[Cell::str("villars-sram"), Cell::Int(4), Cell::Float(123.456, 1)]);
        assert_eq!(row, format!("{:<20} {:>8} {:>14.1}", "villars-sram", 4, 123.456));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_checked() {
        Table::new(&[Col::left("a", 4)]).row(&[]);
    }
}
