//! Parallel sweep runner: every figure grid on all host cores, with
//! results collected in deterministic grid order.
//!
//! Every figure/ablation harness is a grid of independent *cells* — one
//! `(config, seed)` simulation with its own world and its own
//! [`MetricsRegistry`](simkit::MetricsRegistry) snapshot. Nothing crosses
//! cell boundaries, so the sweep is embarrassingly parallel; the only thing
//! that must stay sequential is the *presentation*: rows, telemetry labels,
//! and `results/*.json` contents are emitted in grid order, whatever order
//! the cells finished in.
//!
//! # The determinism contract
//!
//! 1. **Cell isolation.** A cell closure builds everything it simulates —
//!    cluster, database, RNGs — from its grid index alone. It must not
//!    read or write shared mutable state, and it must not print (stdout
//!    belongs to the collection loop, which runs after the sweep).
//! 2. **Ordered collection.** [`run`] returns cell results indexed by grid
//!    position. Completion order is irrelevant: a harness that iterates
//!    the returned `Vec` emits rows exactly as the sequential loop did.
//! 3. **The sequential oracle.** `XSSD_BENCH_THREADS=1` runs every cell
//!    in-order on the calling thread with no pool at all — the reference
//!    execution. Because cells are isolated and collection is ordered,
//!    `results/*.json` is byte-identical at any thread count; the
//!    `sweep_determinism` integration test and `scripts/check_results.sh`
//!    enforce exactly that.
//!
//! `docs/HARNESSES.md` walks through porting a harness onto this module.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment knob selecting the sweep worker count.
pub const THREADS_ENV: &str = "XSSD_BENCH_THREADS";

/// The worker count sweeps run with: `XSSD_BENCH_THREADS` if set (must be
/// a positive integer; `1` selects the sequential oracle path), otherwise
/// the host's available parallelism.
pub fn threads() -> usize {
    threads_from(std::env::var(THREADS_ENV).ok().as_deref())
}

/// [`threads`] with the environment value passed explicitly (unit-testable
/// without mutating process-global state).
fn threads_from(var: Option<&str>) -> usize {
    match var {
        Some(raw) => {
            let n: usize = raw.trim().parse().unwrap_or_else(|_| {
                panic!("{THREADS_ENV} must be a positive integer, got {raw:?}")
            });
            assert!(n >= 1, "{THREADS_ENV} must be >= 1, got {raw:?}");
            n
        }
        None => std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1),
    }
}

/// Run `cells` independent grid cells — `f(0)` … `f(cells - 1)` — on a
/// scoped worker pool of [`threads`] threads and return the results in
/// grid order (`out[i] == f(i)`).
///
/// The closure must uphold the cell-isolation contract (see the module
/// docs): self-contained worlds, no shared mutable state, no printing.
/// A panicking cell propagates to the caller after the pool drains.
pub fn run<T, F>(cells: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_on(threads(), cells, f)
}

/// [`run`] with an explicit worker count. `threads <= 1` is the sequential
/// oracle: cells execute in grid order on the calling thread, no pool.
pub fn run_on<T, F>(threads: usize, cells: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || cells <= 1 {
        return (0..cells).map(f).collect();
    }
    // One pre-allocated slot per cell: workers race only on the shared
    // index counter, never on a slot, and collection reads the slots in
    // grid order regardless of which worker finished when.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..cells).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(cells) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells {
                    break;
                }
                let out = f(i);
                *slots[i].lock().expect("sweep slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner().expect("sweep slot poisoned").unwrap_or_else(|| {
                panic!("sweep cell {i} produced no result (worker died without panicking?)")
            })
        })
        .collect()
}

/// Convenience wrapper: map `f` over a parameter slice, returning results
/// in slice order. Equivalent to `run(cells.len(), |i| f(&cells[i]))`.
pub fn map<C, T, F>(cells: &[C], f: F) -> Vec<T>
where
    C: Sync,
    T: Send,
    F: Fn(&C) -> T + Sync,
{
    run(cells.len(), |i| f(&cells[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn grid_order_survives_out_of_order_completion() {
        // Later cells finish first (decreasing sleeps), so on a real pool
        // the completion order is roughly the reverse of the grid order.
        let out = run_on(4, 8, |i| {
            std::thread::sleep(Duration::from_millis((8 - i as u64) * 3));
            i * i
        });
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn sequential_oracle_matches_parallel() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        assert_eq!(run_on(1, 32, f), run_on(6, 32, f));
    }

    #[test]
    fn pool_larger_than_grid() {
        assert_eq!(run_on(16, 3, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn empty_grid() {
        assert_eq!(run_on(4, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn map_preserves_slice_order() {
        let cells = ["a", "bb", "ccc"];
        assert_eq!(map(&cells, |c| c.len()), vec![1, 2, 3]);
    }

    #[test]
    fn threads_env_parsing() {
        assert_eq!(threads_from(Some("1")), 1);
        assert_eq!(threads_from(Some(" 12 ")), 12);
        assert!(threads_from(None) >= 1);
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn threads_env_rejects_zero() {
        threads_from(Some("0"));
    }

    #[test]
    #[should_panic(expected = "must be a positive integer")]
    fn threads_env_rejects_garbage() {
        threads_from(Some("many"));
    }

    #[test]
    fn panicking_cell_propagates() {
        let res = std::panic::catch_unwind(|| {
            run_on(4, 8, |i| {
                assert!(i != 5, "cell 5 exploded");
                i
            })
        });
        assert!(res.is_err(), "a cell panic must reach the caller");
    }
}
