//! YCSB-style key-value workload over `memdb`.
//!
//! The standard A–F operation mixes over a single `usertable`, with a
//! zipfian/uniform/latest key chooser, a read-ratio knob (any custom
//! mix through [`YcsbConfig::mix`] / `DriverConfig::mix`), and a
//! value-size knob. Where TPC-C fills 16 KiB commit groups with
//! multi-row transactions, YCSB commits one small random update at a
//! time — the small-append regime of the log path.
//!
//! Operation kinds (the [`crate::driver::Workload`] axis): `read`,
//! `update`, `insert`, `scan`, `rmw`.

use crate::driver::Workload;
use memdb::{Database, Key, Row, TableId, TxnOutcome};
use simkit::{DetRng, Zipfian};

/// The six standard YCSB workload letters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbMix {
    /// 50% read / 50% update — update heavy.
    A,
    /// 95% read / 5% update — read mostly.
    B,
    /// 100% read.
    C,
    /// 95% read / 5% insert, reads skewed to the latest keys.
    D,
    /// 95% scan / 5% insert — short ranges.
    E,
    /// 50% read / 50% read-modify-write.
    F,
}

impl YcsbMix {
    /// All six letters, in order.
    pub const ALL: [YcsbMix; 6] =
        [YcsbMix::A, YcsbMix::B, YcsbMix::C, YcsbMix::D, YcsbMix::E, YcsbMix::F];

    /// The letter as a label.
    pub fn label(self) -> &'static str {
        match self {
            YcsbMix::A => "A",
            YcsbMix::B => "B",
            YcsbMix::C => "C",
            YcsbMix::D => "D",
            YcsbMix::E => "E",
            YcsbMix::F => "F",
        }
    }

    /// Weights over `[read, update, insert, scan, rmw]`.
    pub fn weights(self) -> &'static [u32] {
        match self {
            YcsbMix::A => &[50, 50, 0, 0, 0],
            YcsbMix::B => &[95, 5, 0, 0, 0],
            YcsbMix::C => &[100, 0, 0, 0, 0],
            YcsbMix::D => &[95, 0, 5, 0, 0],
            YcsbMix::E => &[0, 0, 5, 95, 0],
            YcsbMix::F => &[50, 0, 0, 0, 50],
        }
    }

    /// True for the mixes that read the most recently inserted keys
    /// (YCSB's *latest* request distribution).
    fn latest_distribution(self) -> bool {
        matches!(self, YcsbMix::D)
    }
}

/// YCSB knobs.
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Rows loaded before the run.
    pub records: u64,
    /// Value payload bytes per row.
    pub value_size: usize,
    /// Zipfian skew `theta` in `[0, 1)`; `0.0` selects the uniform
    /// chooser. YCSB's default is `0.99`.
    pub theta: f64,
    /// Which standard mix to run (the default mix; override per run via
    /// `DriverConfig::mix` for a custom read ratio).
    pub mix: YcsbMix,
    /// Maximum rows returned by one scan (YCSB-E); the actual length is
    /// drawn uniformly in `[1, max_scan_len]`.
    pub max_scan_len: u64,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig {
            records: 8192,
            value_size: 100,
            theta: 0.8,
            mix: YcsbMix::A,
            max_scan_len: 100,
        }
    }
}

/// Per-kind execution counters (the `db.ycsb.*` metrics).
#[derive(Debug, Clone, Copy, Default)]
pub struct YcsbStats {
    /// Point reads.
    pub read: u64,
    /// Whole-value updates.
    pub update: u64,
    /// New-key inserts.
    pub insert: u64,
    /// Range scans.
    pub scan: u64,
    /// Read-modify-writes.
    pub rmw: u64,
}

/// How operation keys are chosen.
#[derive(Debug, Clone)]
enum Chooser {
    /// Every loaded key equally likely.
    Uniform,
    /// Zipfian over ranks, scrambled through the keyspace.
    Zipfian(Zipfian),
    /// Zipfian over recency: rank 0 is the newest key.
    Latest(Zipfian),
}

/// A loaded YCSB workload: table handle + key chooser + mix stats.
#[derive(Debug, Clone)]
pub struct YcsbWorkload {
    table: TableId,
    config: YcsbConfig,
    /// Keys `[0, key_count)` exist; inserts extend the range.
    key_count: u64,
    chooser: Chooser,
    stats: YcsbStats,
    /// Reusable value scratch: payloads are staged here and frozen into
    /// one refcounted image per write, so steady state re-allocates
    /// nothing on the operation path.
    val_buf: Vec<u8>,
}

/// 8-byte big-endian key — order-preserving, so scans walk key order.
/// Built inline on the stack (no heap).
fn encode_key(k: u64) -> Key {
    let mut out = Key::new();
    out.push_u64(k);
    out
}

/// Fill `buf` with a fresh value payload. Deterministic per RNG stream;
/// the first bytes vary so updates actually change row contents.
fn fill_value(buf: &mut Vec<u8>, size: usize, rng: &mut DetRng) {
    buf.clear();
    buf.resize(size, 0x59u8);
    let stamp = rng.next_u64().to_be_bytes();
    let n = stamp.len().min(buf.len());
    buf[..n].copy_from_slice(&stamp[..n]);
}

/// Spread zipfian ranks across the keyspace (YCSB's *scrambled* zipfian):
/// the hot ranks stay hot, but are not clustered at the low keys.
fn scramble(rank: u64, universe: u64) -> u64 {
    let mut z = rank.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % universe
}

impl YcsbWorkload {
    /// The per-kind counters so far.
    pub fn stats(&self) -> YcsbStats {
        self.stats
    }

    /// Rows currently addressable (loaded + inserted).
    pub fn key_count(&self) -> u64 {
        self.key_count
    }

    /// Draw the target key for a read/update/scan/rmw.
    fn choose_key(&mut self, rng: &mut DetRng) -> u64 {
        match &mut self.chooser {
            Chooser::Uniform => rng.uniform(0, self.key_count - 1),
            Chooser::Zipfian(z) => {
                let rank = z.next(rng);
                scramble(rank, z.universe()) % self.key_count
            }
            Chooser::Latest(z) => {
                // Rank 0 → the newest key; clamp ranks past the loaded
                // range onto the oldest key.
                let rank = z.next(rng).min(self.key_count - 1);
                self.key_count - 1 - rank
            }
        }
    }
}

impl Workload for YcsbWorkload {
    fn kinds(&self) -> &'static [&'static str] {
        &["read", "update", "insert", "scan", "rmw"]
    }

    fn default_mix(&self) -> &'static [u32] {
        self.config.mix.weights()
    }

    fn execute(
        &mut self,
        db: &mut Database,
        rng: &mut DetRng,
        kind: usize,
        _now_ns: u64,
    ) -> TxnOutcome {
        let t = self.table;
        match kind {
            // read: one point lookup.
            0 => {
                self.stats.read += 1;
                let key = encode_key(self.choose_key(rng));
                let mut ctx = db.begin();
                db.get(&mut ctx, t, &key);
                db.commit(ctx)
            }
            // update: overwrite the whole value.
            1 => {
                self.stats.update += 1;
                let key = encode_key(self.choose_key(rng));
                fill_value(&mut self.val_buf, self.config.value_size, rng);
                let mut ctx = db.begin();
                db.update(&mut ctx, t, key, Row::copy_from_slice(&self.val_buf));
                db.commit(ctx)
            }
            // insert: append a brand-new key.
            2 => {
                self.stats.insert += 1;
                let k = self.key_count;
                fill_value(&mut self.val_buf, self.config.value_size, rng);
                let mut ctx = db.begin();
                db.insert(&mut ctx, t, encode_key(k), Row::copy_from_slice(&self.val_buf));
                let out = db.commit(ctx);
                if out.is_ok() {
                    self.key_count += 1;
                }
                out
            }
            // scan: a short key-ordered range, visited without cloning.
            3 => {
                self.stats.scan += 1;
                let len = rng.uniform(1, self.config.max_scan_len) as usize;
                let from = self.choose_key(rng);
                let mut ctx = db.begin();
                db.scan_visit(
                    &mut ctx,
                    t,
                    &encode_key(from),
                    &encode_key(u64::MAX),
                    len,
                    |_k, _v| {},
                );
                db.commit(ctx)
            }
            // rmw: read the row, flip a byte, write it back.
            4 => {
                self.stats.rmw += 1;
                let key = encode_key(self.choose_key(rng));
                let mut ctx = db.begin();
                match db.get(&mut ctx, t, &key) {
                    Some(row) => {
                        self.val_buf.clear();
                        self.val_buf.extend_from_slice(row);
                    }
                    None => fill_value(&mut self.val_buf, self.config.value_size, rng),
                }
                self.val_buf[0] = self.val_buf[0].wrapping_add(1);
                db.update(&mut ctx, t, key, Row::copy_from_slice(&self.val_buf));
                db.commit(ctx)
            }
            _ => unreachable!("ycsb kind {kind} out of range"),
        }
    }
}

impl simkit::Instrument for YcsbWorkload {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        let mut db = out.scope("db");
        let mut y = db.scope("ycsb");
        y.counter("read", self.stats.read);
        y.counter("update", self.stats.update);
        y.counter("insert", self.stats.insert);
        y.counter("scan", self.stats.scan);
        y.counter("rmw", self.stats.rmw);
        y.counter("keys", self.key_count);
    }
}

/// Load `usertable` with `cfg.records` rows and return the database,
/// the workload, and the loader RNG (mirrors `tpcc::setup`).
pub fn setup(cfg: YcsbConfig, seed: u64) -> (Database, YcsbWorkload, DetRng) {
    assert!(cfg.records >= 1, "ycsb needs at least one loaded row");
    assert!(cfg.value_size >= 8, "values carry an 8-byte stamp");
    let mut rng = DetRng::new(seed);
    let mut db = Database::new();
    let table = db.create_table("usertable");
    for k in 0..cfg.records {
        let mut v = vec![0x59u8; cfg.value_size];
        let stamp = rng.next_u64().to_be_bytes();
        v[..8].copy_from_slice(&stamp);
        db.install_row(table, encode_key(k), v);
    }
    let chooser = if cfg.mix.latest_distribution() {
        Chooser::Latest(Zipfian::new(cfg.records, cfg.theta.max(0.01)))
    } else if cfg.theta == 0.0 {
        Chooser::Uniform
    } else {
        Chooser::Zipfian(Zipfian::new(cfg.records, cfg.theta))
    };
    let key_count = cfg.records;
    let workload = YcsbWorkload {
        table,
        config: cfg,
        key_count,
        chooser,
        stats: YcsbStats::default(),
        val_buf: Vec::new(),
    };
    (db, workload, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{self, DriverConfig};
    use memdb::{PmConfig, PmLog, WalConfig, WalManager};
    use simkit::SimDuration;

    fn run_mix(mix: YcsbMix, seed: u64) -> driver::DriverReport {
        let (mut db, mut wl, _rng) = setup(YcsbConfig { mix, ..YcsbConfig::default() }, seed);
        let mut wal = WalManager::new(PmLog::new(PmConfig::default()), WalConfig::default());
        let cfg = DriverConfig {
            workers: 2,
            measure: SimDuration::from_millis(20),
            seed,
            ..DriverConfig::default()
        };
        driver::run(&mut db, &mut wal, &mut wl, &cfg)
    }

    #[test]
    fn ycsb_runs_every_mix_and_is_deterministic() {
        for mix in YcsbMix::ALL {
            let a = run_mix(mix, 0x5EED);
            let b = run_mix(mix, 0x5EED);
            assert!(a.run.committed > 50, "{}: only {} commits", mix.label(), a.run.committed);
            assert_eq!(a.run.committed, b.run.committed, "{}", mix.label());
            assert_eq!(a.run.latency_us.samples(), b.run.latency_us.samples(), "{}", mix.label());
        }
    }

    #[test]
    fn mixes_exercise_their_kinds() {
        let a = run_mix(YcsbMix::A, 1);
        assert!(a.per_kind[0].committed > 0, "A runs reads");
        assert!(a.per_kind[1].committed > 0, "A runs updates");
        assert_eq!(a.per_kind[3].committed, 0, "A never scans");
        let e = run_mix(YcsbMix::E, 1);
        assert!(e.per_kind[3].committed > 0, "E runs scans");
        assert!(e.per_kind[2].committed > 0, "E runs inserts");
        // Inserts made the keyspace grow.
        let c = run_mix(YcsbMix::C, 1);
        assert_eq!(c.per_kind[0].committed, c.run.committed, "C is read-only");
    }

    #[test]
    fn zipfian_chooser_concentrates_traffic() {
        let hot_mass = |theta: f64| {
            let cfg = YcsbConfig { theta, records: 1000, ..YcsbConfig::default() };
            let (_db, mut wl, mut rng) = setup(cfg, 7);
            let mut counts = vec![0u64; 1000];
            for _ in 0..20_000 {
                counts[wl.choose_key(&mut rng) as usize] += 1;
            }
            counts.sort_unstable_by(|a, b| b.cmp(a));
            counts[..10].iter().sum::<u64>() as f64 / 20_000.0
        };
        let uniform = hot_mass(0.0);
        let skewed = hot_mass(0.99);
        assert!(uniform < 0.05, "uniform top-10 mass {uniform}");
        assert!(skewed > 3.0 * uniform, "zipfian mass {skewed} vs uniform {uniform}");
    }
}
