//! The declarative benchmark driver: one config-driven engine behind
//! every workload harness.
//!
//! A [`Workload`] names its transaction kinds and executes one
//! transaction of a given kind; the driver owns everything else — the
//! weighted kind pick, the pinned-worker schedule (via
//! [`memdb::run_observed`]), the ramp-up window excluded from statistics,
//! and the per-kind / time-series accounting that lands in the
//! [`DriverReport`]. A harness cell shrinks to a [`DriverConfig`]
//! literal plus a mapper from the report to its table row.
//!
//! Determinism contract: for a zero ramp and a workload whose mix totals
//! 100, the driver's weighted pick draws `rng.uniform(1, total)` — the
//! exact draw `TpccWorkload::pick` made — so refactoring a harness onto
//! the driver must keep its `results/*.json` golden byte-identical
//! (`crates/bench/tests/driver.rs` pins this; `scripts/check_results.sh`
//! enforces it against the committed goldens).

use memdb::{
    run_observed, Database, LogBackend, ObserveConfig, RunReport, RunnerConfig, TxnOutcome,
    WalManager,
};
use simkit::{DetRng, SimDuration};

/// A deterministic per-seed transaction stream with weighted kinds.
///
/// Implementations must be pure functions of `(db, rng, kind)`: every
/// stochastic choice draws from `rng`, so equal seeds replay bit-for-bit.
pub trait Workload {
    /// The transaction kind labels, aligned with the mix weights.
    fn kinds(&self) -> &'static [&'static str];

    /// The workload's standard mix weights (overridable per run through
    /// [`DriverConfig::mix`]). Same length as [`Workload::kinds`].
    fn default_mix(&self) -> &'static [u32];

    /// Execute one transaction of `kinds()[kind]` against `db`.
    /// `now_ns` is the transaction's simulated start instant, for
    /// workloads that stamp wall-clock-like fields into rows.
    fn execute(
        &mut self,
        db: &mut Database,
        rng: &mut DetRng,
        kind: usize,
        now_ns: u64,
    ) -> TxnOutcome;
}

/// The TPC-C mix as driver kinds: the index order matches
/// [`tpcc::TxnKind`] and the weights are the spec percentages
/// `TpccWorkload::pick` encodes, so the driver's pick reproduces the
/// same `uniform(1, 100)` → kind mapping draw-for-draw.
impl Workload for tpcc::TpccWorkload {
    fn kinds(&self) -> &'static [&'static str] {
        &["new_order", "payment", "order_status", "delivery", "stock_level"]
    }

    fn default_mix(&self) -> &'static [u32] {
        &[45, 43, 4, 4, 4]
    }

    fn execute(
        &mut self,
        db: &mut Database,
        rng: &mut DetRng,
        kind: usize,
        now_ns: u64,
    ) -> TxnOutcome {
        match kind {
            0 => self.new_order(db, rng, now_ns),
            1 => self.payment(db, rng, now_ns),
            2 => self.order_status(db, rng),
            3 => self.delivery(db, rng, now_ns),
            4 => self.stock_level(db, rng),
            _ => unreachable!("tpcc kind {kind} out of range"),
        }
    }
}

/// One driver run, declaratively.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Simulated worker cores.
    pub workers: usize,
    /// Warm-up window: executed, logged, but excluded from every counter
    /// and percentile in the report.
    pub ramp_up: SimDuration,
    /// Measured window; the run lasts `ramp_up + measure`.
    pub measure: SimDuration,
    /// Workload RNG seed.
    pub seed: u64,
    /// Mix weights per kind; `None` uses the workload's default mix.
    pub mix: Option<Vec<u32>>,
    /// When set, bucket committed transactions by durability instant
    /// into windows of this width (the per-simulated-second series).
    pub series_bucket: Option<SimDuration>,
    /// Mean CPU time per transaction (see [`RunnerConfig::cpu_per_txn`]).
    pub cpu_per_txn: SimDuration,
    /// ±fractional CPU jitter per transaction.
    pub cpu_jitter: f64,
    /// Log-buffer back-pressure horizon (see
    /// [`RunnerConfig::max_log_deficit`]).
    pub max_log_deficit: SimDuration,
    /// Maximum group commits in flight (1 = the blocking log writer).
    pub log_pipeline_depth: usize,
}

impl Default for DriverConfig {
    /// Mirrors [`RunnerConfig::default`] with a zero ramp and no series,
    /// so a driver run with the defaults is the classic closed loop.
    fn default() -> Self {
        let runner = RunnerConfig::default();
        DriverConfig {
            workers: runner.workers,
            ramp_up: SimDuration::ZERO,
            measure: runner.duration,
            seed: runner.seed,
            mix: None,
            series_bucket: None,
            cpu_per_txn: runner.cpu_per_txn,
            cpu_jitter: runner.cpu_jitter,
            max_log_deficit: runner.max_log_deficit,
            log_pipeline_depth: runner.log_pipeline_depth,
        }
    }
}

/// Measured-window statistics for one transaction kind.
#[derive(Debug)]
pub struct KindReport {
    /// The kind's label (from [`Workload::kinds`]).
    pub label: &'static str,
    /// Its weight in the mix that ran.
    pub weight: u32,
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transactions.
    pub aborted: u64,
    /// Mean commit-to-durable latency, µs (0 when nothing committed).
    pub mean_us: f64,
    /// Exact-sample p99 latency, µs.
    pub p99_us: f64,
}

/// One time-series bucket of the measured window.
#[derive(Debug)]
pub struct TimeBucket {
    /// Transactions that became durable inside the bucket.
    pub committed: u64,
    /// Their mean latency, µs.
    pub mean_us: f64,
    /// Their exact-sample p99 latency, µs.
    pub p99_us: f64,
}

/// What one driver run measured.
///
/// Collecting the report itself into a [`simkit::MetricsRegistry`] emits
/// exactly the legacy `db.*` aggregate metrics (what `run_workload`'s
/// [`RunReport`] emitted — golden-compatible); the per-kind and
/// time-series breakdowns are a separate opt-in via
/// [`DriverReport::extended`].
#[derive(Debug)]
pub struct DriverReport {
    /// The aggregate measured-window report (legacy shape).
    pub run: RunReport,
    /// Per-kind breakdown, in [`Workload::kinds`] order.
    pub per_kind: Vec<KindReport>,
    /// Time-series buckets (empty unless `series_bucket` was set).
    pub series: Vec<TimeBucket>,
    /// The bucket width the series was collected at.
    pub series_bucket: Option<SimDuration>,
    /// Committed transactions excluded by the ramp window.
    pub ramp_excluded: u64,
}

impl DriverReport {
    /// Committed transactions per second of measured time.
    pub fn throughput_tps(&self) -> f64 {
        self.run.throughput_tps()
    }

    /// Committed transactions per minute of measured time.
    pub fn tpm(&self) -> f64 {
        self.run.throughput_tps() * 60.0
    }

    /// Mean commit-to-durable latency, µs.
    pub fn mean_latency_us(&self) -> f64 {
        self.run.mean_latency_us()
    }

    /// Exact-sample p99 latency over the measured window, µs.
    ///
    /// Like any [`simkit::SampleSeries`] percentile query this sorts the
    /// series in place, which perturbs the float-summation order of a
    /// later `mean()`. The driver never queries it on its own: a harness
    /// that printed the exact p99 before this refactor queried (and
    /// sorted) before collecting, and one that did not never sorted —
    /// call this in the same place the legacy code did and the collected
    /// `db.commit_latency_us.mean_us` stays bit-identical either way.
    pub fn exact_p99_us(&mut self) -> f64 {
        self.run.latency_us.percentile(99.0)
    }

    /// The per-kind / time-series metrics as a collectable component
    /// (`db.mix.*`, `db.series.*`, `db.ramp_excluded`). Kept out of the
    /// default [`simkit::Instrument`] impl so refactored legacy harnesses
    /// serialize byte-identical snapshots.
    pub fn extended(&self) -> Extended<'_> {
        Extended(self)
    }
}

impl simkit::Instrument for DriverReport {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        self.run.instrument(out);
    }
}

/// Opt-in view of [`DriverReport`]'s per-kind and time-series metrics
/// (see [`DriverReport::extended`]).
#[derive(Debug)]
pub struct Extended<'a>(&'a DriverReport);

impl simkit::Instrument for Extended<'_> {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        let r = self.0;
        let mut db = out.scope("db");
        db.counter("ramp_excluded", r.ramp_excluded);
        {
            let mut mix = db.scope("mix");
            for k in &r.per_kind {
                let mut s = mix.scope(k.label);
                s.counter("committed", k.committed);
                s.counter("aborted", k.aborted);
                s.gauge("mean_us", k.mean_us);
                s.gauge("p99_us", k.p99_us);
            }
        }
        if let Some(width) = r.series_bucket {
            let mut series = db.scope("series");
            series.counter("bucket_ns", width.as_nanos());
            for (i, b) in r.series.iter().enumerate() {
                // Zero-padded so the BTreeMap-sorted JSON keeps buckets
                // in time order.
                let mut s = series.scope(&format!("t{i:04}"));
                s.counter("committed", b.committed);
                s.gauge("mean_us", b.mean_us);
                s.gauge("p99_us", b.p99_us);
            }
        }
    }
}

/// Drive `workload` through `wal` under `cfg`. The schedule is the exact
/// [`memdb::run_workload`] closed loop (same worker timeline, same RNG
/// stream); the config only adds what gets *measured*.
pub fn run<B, W>(
    db: &mut Database,
    wal: &mut WalManager<B>,
    workload: &mut W,
    cfg: &DriverConfig,
) -> DriverReport
where
    B: LogBackend,
    W: Workload + ?Sized,
{
    let labels = workload.kinds();
    let mix: Vec<u32> = match &cfg.mix {
        Some(m) => m.clone(),
        None => workload.default_mix().to_vec(),
    };
    assert_eq!(
        mix.len(),
        labels.len(),
        "mix weights must align with the workload's kinds ({labels:?})"
    );
    let total: u64 = mix.iter().map(|&w| w as u64).sum();
    assert!(total > 0, "mix weights must not all be zero");
    let cum: Vec<u64> = mix
        .iter()
        .scan(0u64, |acc, &w| {
            *acc += w as u64;
            Some(*acc)
        })
        .collect();

    let runner = RunnerConfig {
        workers: cfg.workers,
        cpu_per_txn: cfg.cpu_per_txn,
        cpu_jitter: cfg.cpu_jitter,
        duration: cfg.ramp_up + cfg.measure,
        max_log_deficit: cfg.max_log_deficit,
        seed: cfg.seed,
        log_pipeline_depth: cfg.log_pipeline_depth,
    };
    let obs = ObserveConfig {
        kinds: labels.len(),
        ramp_up: cfg.ramp_up,
        series_bucket: cfg.series_bucket,
    };
    let observed = run_observed(db, wal, runner, obs, |db, rng, _w, t0| {
        // One debiased draw in [1, total], mapped through the cumulative
        // weights: for the TPC-C percentages this is bit-identical to the
        // workload's own `pick`.
        let p = rng.uniform(1, total);
        let kind = cum.iter().position(|&c| p <= c).expect("draw exceeds total weight");
        (kind, workload.execute(db, rng, kind, t0.as_nanos()))
    });

    let per_kind = observed
        .per_kind
        .into_iter()
        .zip(labels.iter().zip(mix.iter()))
        .map(|(mut k, (&label, &weight))| KindReport {
            label,
            weight,
            committed: k.committed,
            aborted: k.aborted,
            mean_us: k.latency_us.mean(),
            p99_us: k.latency_us.percentile(99.0),
        })
        .collect();
    let series = observed
        .series
        .into_iter()
        .map(|mut b| TimeBucket {
            committed: b.committed,
            mean_us: b.latency_us.mean(),
            p99_us: b.latency_us.percentile(99.0),
        })
        .collect();
    DriverReport {
        run: observed.report,
        per_kind,
        series,
        series_bucket: cfg.series_bucket,
        ramp_excluded: observed.ramp_excluded,
    }
}
