//! Reusable end-to-end simulation kernels.
//!
//! These are scaled-down versions of the inner loops of two figure
//! harnesses — the Fig. 9 TPC-C/Villars-SRAM cell and the Fig. 11
//! `x_pwrite`+`x_fsync` cycle — factored out so that
//!
//! - `cargo bench -p xssd-bench` can time whole-stack simulation throughput
//!   (not just isolated components), and
//! - the determinism regression test can run the same cell twice with the
//!   same seed and assert bit-identical telemetry and completion times.
//!
//! The figure binaries themselves are intentionally untouched: their
//! `results/*.json` output is the byte-identical baseline the event-loop
//! work is gated on.

use memdb::{run_workload, RunnerConfig, WalConfig, WalManager, XssdLog};
use simkit::{Histogram, MetricsRegistry, SampleSeries, SimDuration, SimTime, Snapshot};
use tpcc::{setup, TpccConfig};
use xssd_core::{Cluster, VillarsConfig, XLogFile};

/// One Fig. 9 `villars-sram` cell: TPC-C (bench scale) with `workers`
/// workers logging through a Villars-SRAM device for `duration` of simulated
/// time, using the same seeds and 16 KiB group-commit threshold as the
/// figure harness. Returns the full cross-stack telemetry snapshot.
pub fn tpcc_villars_sram_cell(workers: usize, duration: SimDuration) -> Snapshot {
    let (mut db, mut workload, _rng) = setup(TpccConfig::bench(), 0x716 + workers as u64);
    let runner = RunnerConfig {
        workers,
        duration,
        seed: 0xF160_9000 + workers as u64,
        ..RunnerConfig::default()
    };
    let mut config = VillarsConfig::villars_sram();
    config.cmb.intake_queue_bytes = 32 << 10;
    let mut cl = Cluster::new();
    cl.add_device(config);
    let backend = XssdLog::new(cl, 0, "villars-sram");
    let mut wal = WalManager::new(backend, WalConfig::default());
    let mut report =
        run_workload(&mut db, &mut wal, runner, |db, rng, _| workload.execute(db, rng, 0));
    let exact_p99 = report.latency_us.percentile(99.0);
    let mut reg = MetricsRegistry::new();
    reg.collect("", &report);
    reg.collect("", &wal);
    reg.collect("", &workload);
    reg.gauge("db.commit_latency_p99_us_exact", exact_p99);
    reg.snapshot()
}

/// One Fig. 11 cell: `count` `x_pwrite`+`x_fsync` cycles of `write_size`
/// bytes against a Villars-SRAM device with a `queue_size`-byte intake
/// queue. Returns the telemetry snapshot plus the per-cycle completion
/// timestamps (one per fsync) so callers can assert exact timeline
/// reproducibility, not just aggregate equality.
pub fn queue_size_cycles(
    queue_size: u64,
    write_size: usize,
    count: usize,
) -> (Snapshot, Vec<SimTime>) {
    let mut config = VillarsConfig::villars_sram();
    config.cmb.intake_queue_bytes = queue_size;
    let mut cl = Cluster::new();
    let dev = cl.add_device(config);
    let mut f = XLogFile::open(dev);
    let data = vec![0x5Au8; write_size];
    let mut lat = SampleSeries::new();
    let mut completions = Vec::with_capacity(count);
    let mut now = SimTime::ZERO;
    for _ in 0..count {
        let t0 = now;
        now = f.x_pwrite(&mut cl, now, &data).expect("write");
        now = f.x_fsync(&mut cl, now).expect("fsync");
        completions.push(now);
        lat.record(now.saturating_since(t0).as_micros_f64());
    }
    let mut reg = MetricsRegistry::new();
    reg.collect("", &cl);
    reg.counter("bench.elapsed_ns", now.saturating_since(SimTime::ZERO).as_nanos());
    reg.counter("bench.payload_bytes", (count * write_size) as u64);
    reg.gauge("bench.mean_commit_us", lat.mean());
    let mut hist = Histogram::new();
    for &s in lat.samples() {
        hist.record(s);
    }
    reg.scope("bench").latency("commit_us", &hist);
    (reg.snapshot(), completions)
}
