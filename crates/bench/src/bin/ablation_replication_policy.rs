//! Ablation — replication policies over the shadow-counter mechanism.
//!
//! Paper §4.2: "other replication schemes can be implemented simply by
//! changing which counter or combination thereof the database sees" — lazy
//! returns the primary counter; chain returns the last secondary's. This
//! harness measures the visible-commit latency (`x_pwrite`+`x_fsync` of a
//! 4 KiB group) under Eager / Lazy / Chain / Quorum with 1–3 secondaries.

use simkit::{SampleSeries, SimDuration, SimTime};
use xssd_bench::{header, row, section, Measurement};
use xssd_core::{Cluster, ReplicationPolicy, VillarsConfig, XLogFile};

fn run(policy: ReplicationPolicy, secondaries: usize) -> f64 {
    let mut cfg = VillarsConfig::villars_sram();
    cfg.replication = policy;
    let mut cl = Cluster::new();
    let p = cl.add_device(cfg.clone());
    let secs: Vec<usize> = (0..secondaries).map(|_| cl.add_device(cfg.clone())).collect();
    let mut now = cl.configure_replication(SimTime::ZERO, p, &secs);
    // Heterogeneous secondaries: each later one reports its counter less
    // often (a remote rack, a busier host) — this is what separates the
    // policies; identical replicas make every combination equal.
    for (i, s) in secs.iter().enumerate() {
        let period_ns = 400 * (1 << i) as u32; // 0.4us, 0.8us, 1.6us...
        let (t, e) = cl.vendor_blocking(
            *s,
            now,
            nvme::VendorCommand::new(
                xssd_core::vendor::SET_SHADOW_PERIOD,
                [period_ns * 16, 0, 0, 0, 0, 0],
            ),
        );
        assert!(e.status.is_ok());
        now = t;
    }
    let mut f = XLogFile::open(p);
    let chunk = vec![0x44u8; 4096];
    let mut lat = SampleSeries::new();
    for _ in 0..200 {
        let t0 = now;
        now = f.x_pwrite(&mut cl, now, &chunk).expect("write");
        now = f.x_fsync(&mut cl, now).expect("fsync");
        lat.record(now.saturating_since(t0).as_micros_f64());
        now += SimDuration::from_micros(5);
    }
    lat.mean()
}

fn main() {
    header(
        "Ablation: replication policy",
        "Visible-commit latency of a 4 KiB group under different counter combinations",
        "Eager (min over all) / Lazy (local) / Chain (last secondary) / Quorum(2)",
    );
    section("mean x_pwrite+x_fsync latency (us)");
    println!("{:<12} {:>14} {:>14} {:>14}", "policy", "1 secondary", "2 secondaries", "3 secondaries");
    for (label, policy) in [
        ("eager", ReplicationPolicy::Eager),
        ("lazy", ReplicationPolicy::Lazy),
        ("chain", ReplicationPolicy::Chain),
        ("quorum2", ReplicationPolicy::Quorum(2)),
    ] {
        let l1 = run(policy, 1);
        let l2 = run(policy, 2);
        let l3 = run(policy, 3);
        row(
            &format!("{:<12} {:>14.2} {:>14.2} {:>14.2}", label, l1, l2, l3),
            &Measurement::point(
                "ablation_policy",
                label,
                1.0,
                "secondaries",
                l1,
                "latency_us",
            )
            .with_extra(l3),
        );
    }
    println!();
    println!("expected: lazy ~ local-only latency, independent of secondaries;");
    println!("eager grows with the slowest secondary (mirror flows serialize on the");
    println!("primary's NTB ports); quorum(2) sits between lazy and eager; chain");
    println!("tracks the tail of the chain.");
}
