//! Ablation — replication policies over the shadow-counter mechanism.
//!
//! Paper §4.2: "other replication schemes can be implemented simply by
//! changing which counter or combination thereof the database sees" — lazy
//! returns the primary counter; chain returns the last secondary's. This
//! harness measures the visible-commit latency (`x_pwrite`+`x_fsync` of a
//! 4 KiB group) under Eager / Lazy / Chain / Quorum with 1–3 secondaries.
//!
//! Each (policy, secondaries) run snapshots the whole cluster; the mean
//! latency is read back out of the snapshot's `bench.commit_us` summary.

use simkit::{
    Histogram, MetricValue, MetricsRegistry, SampleSeries, SimDuration, SimTime, Snapshot,
};
use xssd_bench::table::{Cell, Col, Table};
use xssd_bench::{cli, section, sweep, Measurement, Report};
use xssd_core::{Cluster, ReplicationPolicy, VillarsConfig, XLogFile};

fn run(policy: ReplicationPolicy, secondaries: usize) -> Snapshot {
    let mut cfg = VillarsConfig::villars_sram();
    cfg.replication = policy;
    let mut cl = Cluster::new();
    let p = cl.add_device(cfg.clone());
    let secs: Vec<usize> = (0..secondaries).map(|_| cl.add_device(cfg.clone())).collect();
    let mut now = cl.configure_replication(SimTime::ZERO, p, &secs);
    // Heterogeneous secondaries: each later one reports its counter less
    // often (a remote rack, a busier host) — this is what separates the
    // policies; identical replicas make every combination equal.
    for (i, s) in secs.iter().enumerate() {
        let period_ns = 400 * (1 << i) as u32; // 0.4us, 0.8us, 1.6us...

        // Tagged submission on the secondary's I/O port + the shared
        // closed-loop wait (what `vendor_blocking` is made of).
        let tag = cl.submit(
            *s,
            now,
            nvme::CommandKind::Admin(nvme::AdminCommand::Vendor(nvme::VendorCommand::new(
                xssd_core::vendor::SET_SHADOW_PERIOD,
                [period_ns * 16, 0, 0, 0, 0, 0],
            ))),
        );
        let done = cl.wait_for_completion(*s, now, tag);
        assert!(done.entry.status.is_ok());
        now = done.at;
    }
    let mut f = XLogFile::open(p);
    let chunk = vec![0x44u8; 4096];
    let mut lat = SampleSeries::new();
    for _ in 0..200 {
        let t0 = now;
        now = f.x_pwrite(&mut cl, now, &chunk).expect("write");
        now = f.x_fsync(&mut cl, now).expect("fsync");
        lat.record(now.saturating_since(t0).as_micros_f64());
        now += SimDuration::from_micros(5);
    }
    let mut reg = MetricsRegistry::new();
    reg.collect("", &cl);
    reg.gauge("bench.mean_commit_us", lat.mean());
    let mut hist = Histogram::new();
    for &s in lat.samples() {
        hist.record(s);
    }
    reg.scope("bench").latency("commit_us", &hist);
    reg.snapshot()
}

fn mean_us(snap: &Snapshot) -> f64 {
    match snap.get("bench.commit_us") {
        Some(MetricValue::Latency { .. }) => snap.gauge("bench.mean_commit_us"),
        _ => 0.0,
    }
}

fn main() {
    cli::no_args("ablation_replication_policy", "Commit latency per counter-combination policy");
    let mut report = Report::new(
        "ablation_replication_policy",
        "Ablation: replication policy",
        "Visible-commit latency of a 4 KiB group under different counter combinations",
        "Eager (min over all) / Lazy (local) / Chain (last secondary) / Quorum(2)",
    );
    section("mean x_pwrite+x_fsync latency (us)");
    let table = Table::new(&[
        Col::left("policy", 12),
        Col::right("1 secondary", 14),
        Col::right("2 secondaries", 14),
        Col::right("3 secondaries", 14),
    ]);
    println!("{}", table.header());
    let policies = [
        ("eager", ReplicationPolicy::Eager),
        ("lazy", ReplicationPolicy::Lazy),
        ("chain", ReplicationPolicy::Chain),
        ("quorum2", ReplicationPolicy::Quorum(2)),
    ];
    // Full (policy, secondaries) grid: 12 isolated cells, three per row.
    let grid: Vec<(&str, ReplicationPolicy, usize)> =
        policies.iter().flat_map(|&(l, p)| (1..=3).map(move |n| (l, p, n))).collect();
    let cells = sweep::map(&grid, |&(_, policy, n)| run(policy, n));
    for (row, snaps) in policies.iter().zip(cells.chunks_exact(3)) {
        let (label, _) = *row;
        let [l1, l2, l3] = [mean_us(&snaps[0]), mean_us(&snaps[1]), mean_us(&snaps[2])];
        report.row(
            &table.row(&[
                Cell::str(label),
                Cell::Float(l1, 2),
                Cell::Float(l2, 2),
                Cell::Float(l3, 2),
            ]),
            Measurement::point("ablation_policy", label, 1.0, "secondaries", l1, "latency_us")
                .with_extra(l3),
        );
        for (i, snap) in snaps.iter().enumerate() {
            report.telemetry(format!("{label}.{}sec", i + 1), snap.clone());
        }
    }
    println!();
    println!("expected: lazy ~ local-only latency, independent of secondaries;");
    println!("eager grows with the slowest secondary (mirror flows serialize on the");
    println!("primary's NTB ports); quorum(2) sits between lazy and eager; chain");
    println!("tracks the tail of the chain.");
    report.finish().expect("write results json");
}
