//! Fig. 13 — Replication Delay.
//!
//! Paper §6.5: a primary/secondary pair of Villars devices; the secondary
//! forwards its credit counter every 0.4–1.6 µs. Measured: the delay from a
//! CMB write on the primary until the primary's shadow counter confirms the
//! write reached the secondary (candlesticks), plus the PCIe bandwidth the
//! counter updates consume at each frequency.
//!
//! The bandwidth share is derived from the secondary's upstream-flow wire
//! counters in the telemetry snapshot; both devices' full snapshots ship in
//! `results/fig13_replication_delay.json`.

use pcie::MmioMode;
use simkit::{MetricsRegistry, SampleSeries, SimDuration, SimTime, Snapshot};
use xssd_bench::table::{Cell, Col, Table};
use xssd_bench::{cli, section, sweep, Measurement, Report};
use xssd_core::{vendor, Cluster, VillarsConfig};

/// One period setting: returns the latency candlestick (exact samples) and
/// the run's telemetry snapshot.
fn run(period: SimDuration, writes: usize) -> (simkit::Candlestick, Snapshot) {
    let mut cl = Cluster::new();
    let p = cl.add_device(VillarsConfig::villars_sram());
    let s = cl.add_device(VillarsConfig::villars_sram());
    let mut now = cl.configure_replication(SimTime::ZERO, p, &[s]);
    // Set the swept update period on the secondary via the vendor command:
    // one tagged submission on the device's I/O port, then the shared
    // closed-loop wait.
    let tag = cl.submit(
        s,
        now,
        nvme::CommandKind::Admin(nvme::AdminCommand::Vendor(nvme::VendorCommand::new(
            vendor::SET_SHADOW_PERIOD,
            [period.as_nanos() as u32, 0, 0, 0, 0, 0],
        ))),
    );
    let done = cl.wait_for_completion(s, now, tag);
    assert!(done.entry.status.is_ok());
    now = done.at;

    let chunk = vec![0xABu8; 64];
    let mut offset = 0u64;
    let mut lat = SampleSeries::new();
    for i in 0..writes {
        // Space writes out so each measurement is independent.
        let issue_at = now + SimDuration::from_micros(20 + (i as u64 % 7));
        let (_iss, arr) = cl
            .fast_write(p, issue_at, 0, offset, &chunk, MmioMode::WriteCombining)
            .expect("primary fast write");
        offset += chunk.len() as u64;
        // Step the cluster event by event until the shadow counter on the
        // primary covers this write.
        let mut t = arr;
        loop {
            cl.advance(t);
            let shadow = cl.device(p).transport().shadow_of(s).unwrap_or(0);
            if shadow >= offset {
                break;
            }
            t = cl.next_event_after(t).unwrap_or_else(|| t + SimDuration::from_micros(1));
        }
        lat.record(t.saturating_since(issue_at).as_micros_f64());
        now = t;
    }
    let mut reg = MetricsRegistry::new();
    reg.collect("", &cl);
    reg.counter("bench.elapsed_ns", now.saturating_since(SimTime::ZERO).as_nanos());
    (lat.candlestick(), reg.snapshot())
}

/// Counter-update bandwidth share (%) of the secondary's upstream NTB flow,
/// derived from the snapshot's wire counters. The secondary is `dev1`.
fn derive_bw_pct(snap: &Snapshot) -> f64 {
    let wire_bytes = (snap.counter("dev1.core.transport.upstream.payload_bytes")
        + snap.counter("dev1.core.transport.upstream.overhead_bytes")) as f64;
    let secs = snap.counter("bench.elapsed_ns") as f64 / 1e9;
    let link_bps = pcie::NtbConfig::default().link.bandwidth().as_gbytes_per_sec() * 1e9;
    if secs > 0.0 {
        wire_bytes / (link_bps * secs) * 100.0
    } else {
        0.0
    }
}

fn main() {
    cli::no_args("fig13_replication_delay", "Shadow-counter refresh latency vs. frequency");
    let mut report = Report::new(
        "fig13_replication_delay",
        "Figure 13",
        "Shadow-counter refresh latency and bandwidth vs. update frequency",
        "primary/secondary Villars pair over NTB; 64 B CMB writes; period 0.4-1.6 us",
    );
    section("latency candlesticks (us) and update-bandwidth share (%)");
    let table = Table::new(&[
        Col::left("period_us", 12),
        Col::right("min", 8),
        Col::right("p25", 8),
        Col::right("p50", 8),
        Col::right("p75", 8),
        Col::right("max", 8),
        Col::right("bw_%", 10),
    ]);
    println!("{}", table.header());
    let periods = [0.4f64, 0.8, 1.2, 1.6];
    let cells = sweep::map(&periods, |&us| run(SimDuration::from_micros_f64(us), 400));
    for (&period_us, (c, snap)) in periods.iter().zip(cells) {
        let bw_pct = derive_bw_pct(&snap);
        report.row(
            &table.row(&[
                Cell::Float(period_us, 1),
                Cell::Float(c.min, 2),
                Cell::Float(c.p25, 2),
                Cell::Float(c.p50, 2),
                Cell::Float(c.p75, 2),
                Cell::Float(c.max, 2),
                Cell::Float(bw_pct, 2),
            ]),
            Measurement::point(
                "fig13",
                "shadow-refresh",
                period_us,
                "update_period_us",
                c.p50,
                "latency_us_p50",
            )
            .with_extra(bw_pct)
            .with_candle(c),
        );
        report.telemetry(format!("period{period_us}us"), snap);
    }
    println!();
    println!("expected shape (paper §6.5):");
    println!("  - median refresh latency roughly constant (~NTB base) at all periods");
    println!("  - the candle height (variance) grows with the period: the write");
    println!("    waits up to a full cycle for the next counter update");
    println!("  - bandwidth share of counter updates scales ~1/period (paper: 2.35%");
    println!("    at 0.4 us)");
    report.finish().expect("write results json");
}
