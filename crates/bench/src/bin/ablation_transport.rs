//! Ablation — NTB vs. RDMA as the log-shipping transport.
//!
//! Paper §2.3 motivates NTB over RDMA: no packet-format conversion and no
//! visible-but-not-persistent hazard (an RDMA write can land in the remote
//! CPU's cache via DDIO and need an extra flush round trip to be durable).
//! This ablation quantifies both effects for log-chunk shipping.
//!
//! Per-chunk snapshots (NTB wire counters + the three measured latencies)
//! go to `results/ablation_transport.json`; the table prints from them.

use pcie::{NtbConfig, NtbPort, RdmaConfig, RdmaTransport, TranslationWindow};
use simkit::{MetricsRegistry, SimTime, Snapshot};
use xssd_bench::table::{Cell, Col, Table};
use xssd_bench::{cli, section, sweep, Measurement, Report};

fn ntb_one_way(chunk: u64) -> (f64, NtbPort) {
    let mut port = NtbPort::new(NtbConfig::default(), pcie::HostId(1));
    port.add_window(TranslationWindow {
        local_base: 0,
        len: 1 << 30,
        remote_host: pcie::HostId(1),
        remote_base: 0,
    });
    // Ship the chunk as 64-byte (WC-sized) TLPs.
    let tlps = chunk.div_ceil(64).max(1);
    let g = port.forward_burst(SimTime::ZERO, 0, 64, tlps).expect("mapped");
    (g.end.as_micros_f64(), port)
}

fn rdma_persistent(chunk: u64) -> f64 {
    let mut t = RdmaTransport::new(RdmaConfig::default());
    t.write_persistent(SimTime::ZERO, chunk).end.as_micros_f64()
}

fn rdma_visible(chunk: u64) -> f64 {
    let mut t = RdmaTransport::new(RdmaConfig::default());
    t.write_visible(SimTime::ZERO, chunk).end.as_micros_f64()
}

/// One chunk size, all three transports, one snapshot.
fn run(chunk: u64) -> Snapshot {
    let (ntb_us, port) = ntb_one_way(chunk);
    let mut reg = MetricsRegistry::new();
    reg.collect("pcie.ntb", &port);
    reg.counter("bench.chunk_bytes", chunk);
    reg.gauge("bench.ntb_us", ntb_us);
    reg.gauge("bench.rdma_visible_us", rdma_visible(chunk));
    reg.gauge("bench.rdma_persist_us", rdma_persistent(chunk));
    reg.snapshot()
}

fn main() {
    cli::no_args("ablation_transport", "NTB vs. RDMA latency to remote persistence");
    let mut report = Report::new(
        "ablation_transport",
        "Ablation: transport",
        "NTB vs. RDMA for shipping one log chunk (one-way, until remotely persistent)",
        "NTB: Dolphin-class daisy chain; RDMA: 100 Gb/s RoCE with DDIO persistence flush",
    );
    section("latency to remote persistence (us)");
    let table = Table::new(&[
        Col::left("chunk_B", 12),
        Col::right("ntb_us", 12),
        Col::right("rdma_visible_us", 16),
        Col::right("rdma_persist_us", 16),
    ]);
    println!("{}", table.header());
    let chunks = [64u64, 256, 1024, 4096, 16384, 65536];
    let snaps = sweep::map(&chunks, |&chunk| run(chunk));
    for (&chunk, snap) in chunks.iter().zip(snaps) {
        let ntb = snap.gauge("bench.ntb_us");
        let vis = snap.gauge("bench.rdma_visible_us");
        let per = snap.gauge("bench.rdma_persist_us");
        report.row(
            &table.row(&[
                Cell::Int(chunk),
                Cell::Float(ntb, 2),
                Cell::Float(vis, 2),
                Cell::Float(per, 2),
            ]),
            Measurement::point(
                "ablation_transport",
                "ntb",
                chunk as f64,
                "chunk_bytes",
                ntb,
                "latency_us",
            )
            .with_extra(per),
        );
        report.telemetry(format!("chunk{chunk}B"), snap);
    }
    println!();
    println!("expected: NTB beats RDMA-persistent at every chunk size (no conversion,");
    println!("no flush round trip); the gap narrows for large chunks where wire time");
    println!("dominates fixed costs (RDMA's 100 Gb/s wire is faster than the NTB share).");
    report.finish().expect("write results json");
}
