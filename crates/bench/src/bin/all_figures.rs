//! Run every figure harness and print a combined report.
//!
//! `cargo run --release -p xssd-bench --bin all_figures` regenerates the
//! full evaluation in one go. The twelve harness binaries are independent
//! processes, so they run *concurrently* — up to `XSSD_BENCH_THREADS` at a
//! time (default: all host cores) on the same [`sweep`] pool the harnesses
//! use internally for their own grids. Each child's stdout/stderr is
//! captured and replayed as one contiguous block in the fixed harness
//! order, so the combined report reads exactly like a sequential run, and
//! the summary lists per-harness wall-clock alongside the total.
//!
//! `results/*.json` files are written by the children themselves and are
//! byte-identical at any concurrency (each child is a self-contained
//! simulation); only wall-clock changes with the thread count.

use std::io::Write;
use std::process::{Command, Output};
use std::time::{Duration, Instant};
use xssd_bench::{cli, sweep};

/// Every harness binary, in report order.
const BINS: [&str; 13] = [
    "fig09_local_logging",
    "fig10_write_combining",
    "fig11_queue_size",
    "fig12_destage_priority",
    "fig13_replication_delay",
    "fig_ycsb",
    "ablation_transport",
    "ablation_data_movements",
    "ablation_replication_policy",
    "ablation_replicated_tpcc",
    "ablation_destage_deadline",
    "ablation_recovery",
    "chaos_tpcc",
];

fn main() {
    cli::no_args("all_figures", "run every figure harness and print a combined report");
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir").to_path_buf();
    let threads = sweep::threads();
    let total_start = Instant::now();

    // One cell per harness: launch the child, wait, keep its captured
    // output and wall-clock. Children inherit XSSD_BENCH_THREADS, so each
    // also sweeps its own grid in parallel; the OS scheduler shares the
    // cores between the concurrent children.
    let runs: Vec<(std::io::Result<Output>, Duration)> = sweep::run(BINS.len(), |i| {
        let start = Instant::now();
        let out = Command::new(dir.join(BINS[i])).output();
        (out, start.elapsed())
    });
    let total = total_start.elapsed();

    // Replay each child's output as a contiguous block, in harness order.
    let mut failures = Vec::new();
    let mut clocks: Vec<(&str, Duration)> = Vec::new();
    let stdout = std::io::stdout();
    for (bin, (result, elapsed)) in BINS.iter().zip(runs) {
        println!();
        match result {
            Ok(out) => {
                let mut lock = stdout.lock();
                lock.write_all(&out.stdout).expect("replay child stdout");
                lock.flush().expect("flush");
                if !out.stderr.is_empty() {
                    std::io::stderr().write_all(&out.stderr).expect("replay child stderr");
                }
                if !out.status.success() {
                    eprintln!("{bin} exited with {}", out.status);
                    failures.push(*bin);
                }
            }
            Err(e) => {
                eprintln!("{bin} failed to launch from {}: {e}", dir.join(bin).display());
                eprintln!("build all binaries first: cargo build --release -p xssd-bench");
                failures.push(*bin);
            }
        }
        clocks.push((bin, elapsed));
    }

    println!();
    println!("--- wall-clock per harness (threads={threads}) ---");
    for (bin, elapsed) in &clocks {
        println!("{:<32} {:>8} ms", bin, elapsed.as_millis());
    }
    println!();
    if failures.is_empty() {
        println!(
            "all {} experiment harnesses completed in {} ms on {} threads",
            BINS.len(),
            total.as_millis(),
            threads
        );
    } else {
        println!("FAILED harnesses: {failures:?}");
        std::process::exit(1);
    }
}
