//! Run every figure harness in-process and print a combined report.
//!
//! `cargo run --release -p xssd-bench --bin all_figures` regenerates the
//! full evaluation in one go (Figs. 9–13 + the three ablations run as
//! separate binaries; this runner shells out to keep each figure's output
//! self-contained).

use std::process::Command;

fn main() {
    let bins = [
        "fig09_local_logging",
        "fig10_write_combining",
        "fig11_queue_size",
        "fig12_destage_priority",
        "fig13_replication_delay",
        "ablation_transport",
        "ablation_data_movements",
        "ablation_replication_policy",
        "ablation_replicated_tpcc",
        "ablation_destage_deadline",
        "chaos_tpcc",
    ];
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    let mut failures = Vec::new();
    for bin in bins {
        let path = dir.join(bin);
        println!();
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failures.push(bin);
            }
            Err(e) => {
                eprintln!("{bin} failed to launch from {}: {e}", path.display());
                eprintln!("build all binaries first: cargo build --release -p xssd-bench");
                failures.push(bin);
            }
        }
    }
    println!();
    if failures.is_empty() {
        println!("all {} experiment harnesses completed", bins.len());
    } else {
        println!("FAILED harnesses: {failures:?}");
        std::process::exit(1);
    }
}
