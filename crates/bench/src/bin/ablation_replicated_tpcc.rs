//! Ablation — end-to-end TPC-C throughput under device-level replication.
//!
//! The paper's headline use case (Fig. 1 right): the database writes its
//! log once and the device ships it. This ablation quantifies what eager
//! device-level replication costs the database: TPC-C throughput and commit
//! latency with 0, 1, and 2 secondaries, at 4 workers.
//!
//! Throughput and latency are derived from the run's telemetry snapshot;
//! `results/ablation_replicated_tpcc.json` carries the full cross-stack
//! snapshot per replica count — including per-device (`dev0.`, `dev1.` …)
//! CMB, destage, and transport counters.

use memdb::{WalConfig, WalManager, XssdLog};
use simkit::{MetricValue, MetricsRegistry, SimDuration, SimTime, Snapshot};
use tpcc::{setup, TpccConfig};
use xssd_bench::driver::{self, DriverConfig};
use xssd_bench::table::{Cell, Col, Table};
use xssd_bench::{cli, section, sweep, Measurement, Report};
use xssd_core::{Cluster, VillarsConfig};

fn run(secondaries: usize) -> Snapshot {
    let mut cluster = Cluster::new();
    let p = cluster.add_device(VillarsConfig::villars_sram());
    let secs: Vec<usize> =
        (0..secondaries).map(|_| cluster.add_device(VillarsConfig::villars_sram())).collect();
    if !secs.is_empty() {
        cluster.configure_replication(SimTime::ZERO, p, &secs);
    }
    let (mut db, mut workload, _rng) = setup(TpccConfig::bench(), 0xAB5);
    let mut wal =
        WalManager::new(XssdLog::new(cluster, p, "villars-replicated"), WalConfig::default());
    let report = driver::run(
        &mut db,
        &mut wal,
        &mut workload,
        &DriverConfig {
            workers: 4,
            measure: SimDuration::from_millis(100),
            ..DriverConfig::default()
        },
    );
    let mut reg = MetricsRegistry::new();
    reg.collect("", &report);
    reg.collect("", &wal);
    reg.collect("", &workload);
    reg.snapshot()
}

/// (throughput txn/s, mean commit latency µs) from the snapshot.
fn derive(snap: &Snapshot) -> (f64, f64) {
    let commits = snap.counter("db.commits") as f64;
    let elapsed_s = snap.counter("db.elapsed_ns") as f64 / 1e9;
    let tps = if elapsed_s > 0.0 { commits / elapsed_s } else { 0.0 };
    let lat = match snap.get("db.commit_latency_us") {
        Some(MetricValue::Latency { mean_us, .. }) => *mean_us,
        _ => 0.0,
    };
    (tps, lat)
}

fn main() {
    cli::no_args(
        "ablation_replicated_tpcc",
        "TPC-C throughput/latency with device-level eager log shipping",
    );
    let mut report = Report::new(
        "ablation_replicated_tpcc",
        "Ablation: replicated TPC-C",
        "Database throughput/latency with device-level eager log shipping",
        "TPC-C, 4 workers, 16 KiB group commit; 0/1/2 secondaries over NTB",
    );
    section("throughput and commit latency vs. replica count");
    let table = Table::new(&[
        Col::left("secondaries", 14),
        Col::right("ktxn/s", 12),
        Col::right("mean_lat_us", 16),
    ]);
    println!("{}", table.header());
    let replica_counts = [0usize, 1, 2];
    let snaps = sweep::map(&replica_counts, |&n| run(n));
    for (&n, snap) in replica_counts.iter().zip(snaps) {
        let (tps, lat) = derive(&snap);
        report.row(
            &table.row(&[Cell::from(n), Cell::Float(tps / 1e3, 1), Cell::Float(lat, 1)]),
            Measurement::point(
                "ablation_replicated",
                format!("{n}-secondaries"),
                n as f64,
                "secondaries",
                tps,
                "txn_per_sec",
            )
            .with_extra(lat),
        );
        report.telemetry(format!("{n}-secondaries"), snap);
    }
    println!();
    println!("expected: throughput stays CPU-bound (the mirror streams ride the");
    println!("device, not the database); commit latency grows by the NTB round trip");
    println!("plus the shadow-counter cycle per added secondary — the paper's");
    println!("'equally fast results with a simpler, more robust data path' claim.");
    report.finish().expect("write results json");
}
