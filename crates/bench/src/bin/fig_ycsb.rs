//! YCSB mixes × log backends, on the declarative driver.
//!
//! The YCSB companion to Fig. 9: where TPC-C fills 16 KiB commit groups
//! with multi-row transactions, YCSB commits one small random update at
//! a time — the small-append regime of the log path. The A–F mixes run
//! against three logging backends (NVDIMM memory, conventional NVMe,
//! Villars-SRAM) with a 4 KiB group threshold so group commits form from
//! single-row records rather than one transaction's worth of pages.
//!
//! Unlike the legacy harnesses this one uses the driver's full measured
//! surface: a 50 ms ramp-up excluded from every statistic, and 50 ms
//! time-series buckets across the 250 ms measured window. Each cell's
//! telemetry carries the legacy `db.*` aggregates plus the extended
//! `db.mix.<kind>.*`, `db.series.t NNNN.*`, `db.ramp_excluded`, and the
//! workload's own `db.ycsb.*` counters (docs/OBSERVABILITY.md).

use memdb::{Database, LogBackend, NvmeLog, PmConfig, PmLog, WalConfig, WalManager, XssdLog};
use simkit::{MetricValue, MetricsRegistry, SimDuration, Snapshot};
use ssd::{ConventionalSsd, SsdConfig};
use xssd_bench::driver::{self, DriverConfig};
use xssd_bench::table::{Cell, Col, Table};
use xssd_bench::ycsb::{self, YcsbConfig, YcsbMix};
use xssd_bench::{cli, section, sweep, Measurement, Report};
use xssd_core::{Cluster, VillarsConfig};

/// The three log backends each mix runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    Memory,
    Nvme,
    VillarsSram,
}

impl Backend {
    const ALL: [Backend; 3] = [Backend::Memory, Backend::Nvme, Backend::VillarsSram];

    fn label(self) -> &'static str {
        match self {
            Backend::Memory => "memory-nvdimm",
            Backend::Nvme => "nvme-conventional",
            Backend::VillarsSram => "villars-sram",
        }
    }
}

/// The log-dedicated conventional device (fast-page program, as in Fig. 9).
fn log_ssd() -> ConventionalSsd {
    let mut cfg = SsdConfig::default();
    cfg.timing.t_prog = SimDuration::from_micros(200);
    ConventionalSsd::new(cfg)
}

fn villars_cluster() -> Cluster {
    let mut config = VillarsConfig::villars_sram();
    config.cmb.intake_queue_bytes = 32 << 10;
    let mut cl = Cluster::new();
    cl.add_device(config);
    cl
}

/// Small-append group commit: 4 KiB threshold instead of the TPC-C 16 KiB,
/// so single-row YCSB records still form multi-record groups.
fn wal_config() -> WalConfig {
    WalConfig { group_threshold: 4 << 10, ..WalConfig::default() }
}

/// One (mix, backend) cell: drive the mix through the backend and collect
/// the aggregate + extended + WAL + workload telemetry.
fn run_one<B: LogBackend + simkit::Instrument>(
    db: &mut Database,
    workload: &mut ycsb::YcsbWorkload,
    backend: B,
    cfg: &DriverConfig,
) -> Snapshot {
    let mut wal = WalManager::new(backend, wal_config());
    let mut report = driver::run(db, &mut wal, workload, cfg);
    let exact_p99 = report.exact_p99_us();
    let mut reg = MetricsRegistry::new();
    reg.collect("", &report);
    reg.collect("", &report.extended());
    reg.collect("", &wal);
    reg.collect("", &*workload);
    reg.gauge("db.commit_latency_p99_us_exact", exact_p99);
    reg.snapshot()
}

fn run(mix: YcsbMix, backend: Backend, cell: usize) -> Snapshot {
    let (mut db, mut workload, _rng) =
        ycsb::setup(YcsbConfig { mix, ..YcsbConfig::default() }, 0x7C5B + cell as u64);
    let cfg = DriverConfig {
        workers: 4,
        ramp_up: SimDuration::from_millis(50),
        measure: SimDuration::from_millis(250),
        seed: 0x7C5B_0000 + cell as u64,
        series_bucket: Some(SimDuration::from_millis(50)),
        ..DriverConfig::default()
    };
    match backend {
        Backend::Memory => run_one(&mut db, &mut workload, PmLog::new(PmConfig::default()), &cfg),
        Backend::Nvme => run_one(&mut db, &mut workload, NvmeLog::new(log_ssd(), 0, 8192), &cfg),
        Backend::VillarsSram => run_one(
            &mut db,
            &mut workload,
            XssdLog::new(villars_cluster(), 0, "villars-sram"),
            &cfg,
        ),
    }
}

/// (ktxn/s, mean µs, exact p99 µs) from a cell's snapshot.
fn derive(snap: &Snapshot) -> (f64, f64, f64) {
    let commits = snap.counter("db.commits") as f64;
    let elapsed_s = snap.counter("db.elapsed_ns") as f64 / 1e9;
    let tps = if elapsed_s > 0.0 { commits / elapsed_s } else { 0.0 };
    let mean_us = match snap.get("db.commit_latency_us") {
        Some(MetricValue::Latency { mean_us, .. }) => *mean_us,
        _ => 0.0,
    };
    (tps / 1e3, mean_us, snap.gauge("db.commit_latency_p99_us_exact"))
}

fn main() {
    cli::no_args("fig_ycsb", "YCSB A-F mixes x log backends on the workload driver");
    let mut report = Report::new(
        "fig_ycsb",
        "YCSB",
        "YCSB A-F throughput & latency per logging backend",
        "8192 rows, zipfian theta 0.8, 4 KiB group commit, 4 workers; 50 ms ramp + 250 ms measured in 50 ms buckets",
    );
    // The (mix, backend) grid in row order; each cell is an isolated
    // simulation, so the sweep runs them on all cores and hands the
    // snapshots back in this exact order.
    let grid: Vec<(usize, YcsbMix, Backend)> = YcsbMix::ALL
        .iter()
        .flat_map(|&m| Backend::ALL.iter().map(move |&b| (m, b)))
        .enumerate()
        .map(|(i, (m, b))| (i, m, b))
        .collect();
    let snaps = sweep::map(&grid, |&(cell, m, b)| run(m, b, cell));
    section("throughput (committed ktxn/s) and commit latency (us), measured window");
    let table = Table::new(&[
        Col::left("mix", 4),
        Col::left("backend", 20),
        Col::right("ktxn/s", 12),
        Col::right("mean_lat_us", 14),
        Col::right("p99_lat_us", 14),
    ]);
    println!("{}", table.header());
    for (&(i, m, b), snap) in grid.iter().zip(snaps) {
        let (ktps, mean_us, p99_us) = derive(&snap);
        report.row(
            &table.row(&[
                Cell::str(m.label()),
                Cell::str(b.label()),
                Cell::Float(ktps, 1),
                Cell::Float(mean_us, 1),
                Cell::Float(p99_us, 1),
            ]),
            Measurement::point(
                "fig_ycsb",
                format!("{}-{}", m.label(), b.label()),
                (i / Backend::ALL.len()) as f64,
                "mix_index",
                ktps * 1e3,
                "txn_per_sec",
            )
            .with_extra(mean_us),
        );
        report.telemetry(format!("{}.{}", m.label(), b.label()), snap);
        if b == Backend::ALL[Backend::ALL.len() - 1] {
            println!();
        }
    }
    println!("expected shape:");
    println!("  - throughput is CPU-bound in the closed loop: every (mix, backend)");
    println!("    lands at the same txn/s; the log path moves latency, not throughput");
    println!("  - commit latency tracks group-fill time: update-heavy A ships ~100 B");
    println!("    per commit and fills the 4 KiB group fastest (lowest latency);");
    println!("    read-mostly B/C ship only txn headers and wait the longest");
    println!("  - the backend stacks its flush cost on top: memory-nvdimm ~");
    println!("    villars-sram, while the NVMe path adds its program latency to");
    println!("    every group (the small-append regime of Fig. 9's right side)");
    report.finish().expect("write results json");
}
