//! Fig. 11 — Effects of CMB Queue Size.
//!
//! "Latency (top) and throughput (bottom) of different group commit sizes
//! (x-axis) with varying device queue sizes (colors) when writing to device
//! SRAM" (paper §6.3). The queue size determines how much the database can
//! write before re-checking the credit counter: a queue smaller than the
//! write adds credit-check round trips.

use simkit::{SampleSeries, SimTime};
use xssd_bench::{header, row, section, Measurement};
use xssd_core::{Cluster, VillarsConfig, XLogFile};

/// Run `count` write+fsync cycles of `write_size` with an intake queue of
/// `queue_size`. Returns (mean latency µs, throughput MB/s).
fn run(queue_size: u64, write_size: usize, count: usize) -> (f64, f64) {
    let mut config = VillarsConfig::villars_sram();
    config.cmb.intake_queue_bytes = queue_size;
    let mut cl = Cluster::new();
    let dev = cl.add_device(config);
    let mut f = XLogFile::open(dev);
    let data = vec![0x5Au8; write_size];
    let mut lat = SampleSeries::new();
    let mut now = SimTime::ZERO;
    for _ in 0..count {
        let t0 = now;
        now = f.x_pwrite(&mut cl, now, &data).expect("write");
        now = f.x_fsync(&mut cl, now).expect("fsync");
        lat.record(now.saturating_since(t0).as_micros_f64());
    }
    let mbps = (count * write_size) as f64 / now.as_secs_f64() / 1e6;
    (lat.mean(), mbps)
}

fn main() {
    header(
        "Figure 11",
        "Group-commit size vs. CMB intake-queue size (SRAM backing)",
        "x_pwrite+x_fsync cycles; queue sizes 1-32 KiB; write sizes 1-64 KiB",
    );
    let queues = [1u64 << 10, 4 << 10, 16 << 10, 32 << 10];
    let writes = [1usize << 10, 4 << 10, 16 << 10, 32 << 10, 64 << 10];
    section("latency (us) and throughput (MB/s) per (queue, write) pair");
    println!(
        "{:<12} {:>12} {:>14} {:>14}",
        "queue_KiB", "write_KiB", "latency_us", "MB/s"
    );
    for &q in &queues {
        for &wsize in &writes {
            let (lat_us, mbps) = run(q, wsize, 300);
            let series = format!("queue-{}KiB", q >> 10);
            row(
                &format!(
                    "{:<12} {:>12} {:>14.2} {:>14.1}",
                    q >> 10,
                    wsize >> 10,
                    lat_us,
                    mbps
                ),
                &Measurement::point(
                    "fig11",
                    series,
                    (wsize >> 10) as f64,
                    "group_commit_KiB",
                    lat_us,
                    "latency_us",
                )
                .with_extra(mbps),
            );
        }
        println!();
    }
    println!("expected shape (paper §6.3):");
    println!("  - latency dominated by the write size once queue >= write size");
    println!("  - queue < write size adds credit-check round trips (latency rises)");
    println!("  - the 32 KiB queue achieves the best throughput across all sizes");
}
