//! Fig. 11 — Effects of CMB Queue Size.
//!
//! "Latency (top) and throughput (bottom) of different group commit sizes
//! (x-axis) with varying device queue sizes (colors) when writing to device
//! SRAM" (paper §6.3). The queue size determines how much the database can
//! write before re-checking the credit counter: a queue smaller than the
//! write adds credit-check round trips.
//!
//! Printed numbers come from each run's telemetry snapshot (latency summary
//! plus `bench.*` volume counters); `results/fig11_queue_size.json` embeds
//! the snapshots, including `core.fast.credit_reads` — the round trips the
//! paper's queue-size effect is made of.

use simkit::{Histogram, MetricsRegistry, SampleSeries, SimTime, Snapshot};
use xssd_bench::table::{Cell, Col, Table};
use xssd_bench::{cli, section, sweep, Measurement, Report};
use xssd_core::{Cluster, VillarsConfig, XLogFile};

/// Run `count` write+fsync cycles of `write_size` with an intake queue of
/// `queue_size`, and snapshot the device stack afterwards.
fn run(queue_size: u64, write_size: usize, count: usize) -> Snapshot {
    let mut config = VillarsConfig::villars_sram();
    config.cmb.intake_queue_bytes = queue_size;
    let mut cl = Cluster::new();
    let dev = cl.add_device(config);
    let mut f = XLogFile::open(dev);
    let data = vec![0x5Au8; write_size];
    let mut lat = SampleSeries::new();
    let mut now = SimTime::ZERO;
    for _ in 0..count {
        let t0 = now;
        now = f.x_pwrite(&mut cl, now, &data).expect("write");
        now = f.x_fsync(&mut cl, now).expect("fsync");
        lat.record(now.saturating_since(t0).as_micros_f64());
    }
    let mut reg = MetricsRegistry::new();
    reg.collect("", &cl);
    reg.counter("bench.elapsed_ns", now.saturating_since(SimTime::ZERO).as_nanos());
    reg.counter("bench.payload_bytes", (count * write_size) as u64);
    reg.gauge("bench.mean_commit_us", lat.mean());
    let mut hist = Histogram::new();
    for &s in lat.samples() {
        hist.record(s);
    }
    reg.scope("bench").latency("commit_us", &hist);
    reg.snapshot()
}

/// (mean latency µs, MB/s) derived from the snapshot.
fn derive(snap: &Snapshot) -> (f64, f64) {
    let lat_us = snap.gauge("bench.mean_commit_us");
    let bytes = snap.counter("bench.payload_bytes") as f64;
    let secs = snap.counter("bench.elapsed_ns") as f64 / 1e9;
    let mbps = if secs > 0.0 { bytes / secs / 1e6 } else { 0.0 };
    (lat_us, mbps)
}

fn main() {
    cli::no_args("fig11_queue_size", "Group-commit size vs. CMB intake-queue size (SRAM)");
    let mut report = Report::new(
        "fig11_queue_size",
        "Figure 11",
        "Group-commit size vs. CMB intake-queue size (SRAM backing)",
        "x_pwrite+x_fsync cycles; queue sizes 1-32 KiB; write sizes 1-64 KiB",
    );
    let queues = [1u64 << 10, 4 << 10, 16 << 10, 32 << 10];
    let writes = [1usize << 10, 4 << 10, 16 << 10, 32 << 10, 64 << 10];
    let grid: Vec<(u64, usize)> =
        queues.iter().flat_map(|&q| writes.iter().map(move |&w| (q, w))).collect();
    let snaps = sweep::map(&grid, |&(q, wsize)| run(q, wsize, 300));
    section("latency (us) and throughput (MB/s) per (queue, write) pair");
    let table = Table::new(&[
        Col::left("queue_KiB", 12),
        Col::right("write_KiB", 12),
        Col::right("latency_us", 14),
        Col::right("MB/s", 14),
    ]);
    println!("{}", table.header());
    for (&(q, wsize), snap) in grid.iter().zip(snaps) {
        let (lat_us, mbps) = derive(&snap);
        let series = format!("queue-{}KiB", q >> 10);
        report.row(
            &table.row(&[
                Cell::Int(q >> 10),
                Cell::from(wsize >> 10),
                Cell::Float(lat_us, 2),
                Cell::Float(mbps, 1),
            ]),
            Measurement::point(
                "fig11",
                series.clone(),
                (wsize >> 10) as f64,
                "group_commit_KiB",
                lat_us,
                "latency_us",
            )
            .with_extra(mbps),
        );
        report.telemetry(format!("{series}.write{}KiB", wsize >> 10), snap);
        if wsize == writes[writes.len() - 1] {
            println!();
        }
    }
    println!("expected shape (paper §6.3):");
    println!("  - latency dominated by the write size once queue >= write size");
    println!("  - queue < write size adds credit-check round trips (latency rises)");
    println!("  - the 32 KiB queue achieves the best throughput across all sizes");
    report.finish().expect("write results json");
}
