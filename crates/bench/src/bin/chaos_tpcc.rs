//! chaos_tpcc — replicated TPC-C under a cross-stack fault plan.
//!
//! The robustness capstone: a three-way Villars replica set runs the TPC-C
//! mix through `XLogFile` while a seed-reproducible [`FaultPlan`] injects
//! faults at every layer at once — flash transient/permanent program
//! failures (FTL bad-block retirement), NTB TLP drops (replay timer) and a
//! scheduled link-down window, plus a mid-run secondary crash the host
//! answers with primary-driven failover and a later re-sync rejoin. The run
//! ends in a whole-cluster power failure; recovery replays each surviving
//! copy's durable log into a fresh database and must reproduce the live
//! database fingerprint exactly: no committed transaction lost, no aborted
//! transaction resurrected.
//!
//! A separate section exercises the NVMe command-level fault model (error
//! completions, lost completions → timeout/abort/backoff-retry) against the
//! conventional SSD, since the Villars fast path bypasses the NVMe queue.
//!
//! Usage: `chaos_tpcc [seed...]` (default seed `0xC0C5` is the committed
//! golden). The same seed always produces the same faults at the same
//! virtual instants and a byte-identical `results/chaos_tpcc.json`.
//! Multiple seeds run as independent cells on the [`sweep`] pool
//! (`XSSD_BENCH_THREADS`), reported in argument order; each seed's report
//! overwrites `results/chaos_tpcc.json` in turn, so the last seed's file
//! survives — exactly what running the seeds sequentially produced.

use memdb::{durable_log_stream, encode_txn, fail_over, recover, rejoin_secondary};
use nvme::{drive_to_completion, CommandKind, IoCommand, IoPort, NvmeDriver};
use simkit::faults::{
    FaultKind, FlashFaultConfig, LinkDownWindow, NvmeFaultConfig, ScheduledFault,
    TransportFaultConfig,
};
use simkit::{FaultPlan, MetricsRegistry, SimDuration, SimTime, Snapshot};
use tpcc::{setup, TpccConfig, TpccWorkload};
use xssd_bench::{cli, section, sweep, Measurement, Report};
use xssd_core::{Cluster, VillarsConfig, XLogFile};

/// Transactions per fsync group (the host's group-commit cadence).
const GROUP: usize = 4;
/// Transactions attempted per phase: healthy / degraded / rejoined.
const PHASES: [usize; 3] = [120, 120, 60];
/// Workload seed — fixed, so the fault seed alone distinguishes runs.
const WORKLOAD_SEED: u64 = 0xAB5;

/// The replica device: the unit-test Villars config with a conventional
/// side large enough that the whole run's log stays resident on the
/// destage ring (recovery reads the durable stream from offset 0) and a
/// CMB ring roomy enough that destaging is not the bottleneck.
fn chaos_device() -> VillarsConfig {
    let mut cfg = VillarsConfig::small();
    cfg.conventional.geometry.blocks_per_die = 64; // 16 MiB raw flash
    cfg.conventional.buffer_pages = 64;
    cfg.cmb.size = 256 << 10;
    cfg.cmb.intake_queue_bytes = 16 << 10;
    cfg.destage.ring_lbas = 2048; // 8 MiB destage ring
    cfg
}

/// The fault mix every layer runs under. Rates are aggressive enough that
/// each class fires many times per run yet every fault is recoverable by
/// construction: transients retry in-device, permanents retire the block
/// and rewrite, TLP drops replay, the crash fails over.
fn chaos_plan(seed: u64, t0: SimTime) -> FaultPlan {
    FaultPlan {
        seed,
        flash: FlashFaultConfig {
            transient_read: 0.10,
            transient_program: 0.10,
            permanent_program: 0.05,
            max_retries: 3,
        },
        transport: TransportFaultConfig {
            tlp_drop: 0.05,
            replay_timeout: SimDuration::from_micros(5),
        },
        nvme: NvmeFaultConfig {
            error_completion: 0.15,
            dropped_completion: 0.12,
            ..NvmeFaultConfig::default()
        },
        schedule: vec![ScheduledFault {
            at: t0 + SimDuration::from_micros(50),
            kind: FaultKind::LinkDown {
                device: 0,
                window: LinkDownWindow {
                    from: t0 + SimDuration::from_micros(50),
                    until: t0 + SimDuration::from_micros(90),
                },
            },
        }],
    }
}

/// Counters the commit loop accumulates.
#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    /// Transactions that committed with log records (and were fsynced).
    logged: u64,
    /// Read-only commits (no records, nothing to log).
    read_only: u64,
    /// Aborts (the NewOrder 1% rollback and validation failures).
    aborted: u64,
    /// Log bytes handed to the device.
    bytes: u64,
}

/// Run one phase of `txns` attempted transactions: execute against the
/// live database, frame each writer's records with [`encode_txn`], stream
/// them through `x_pwrite`, and `x_fsync` every [`GROUP`] writers (and at
/// phase end). Returns the instant the final group was durable everywhere.
#[allow(clippy::too_many_arguments)]
fn run_phase(
    cluster: &mut Cluster,
    file: &mut XLogFile,
    db: &mut memdb::Database,
    workload: &mut TpccWorkload,
    wrng: &mut simkit::DetRng,
    tally: &mut Tally,
    mut now: SimTime,
    txns: usize,
) -> SimTime {
    let mut group = 0usize;
    for _ in 0..txns {
        match workload.execute(db, wrng, now.as_nanos()) {
            Ok(recs) if recs.is_empty() => tally.read_only += 1,
            Ok(recs) => {
                let bytes = encode_txn(&recs);
                tally.bytes += bytes.len() as u64;
                now = file.x_pwrite(cluster, now, &bytes).expect("x_pwrite");
                tally.logged += 1;
                group += 1;
                if group == GROUP {
                    now = file.x_fsync(cluster, now).expect("x_fsync");
                    group = 0;
                }
            }
            Err(_) => tally.aborted += 1,
        }
    }
    if group > 0 {
        now = file.x_fsync(cluster, now).expect("x_fsync");
    }
    now
}

/// Exercise the NVMe command-level fault model against the conventional
/// SSD: submit a write burst through the fault-armed driver and report how
/// many commands needed the retry machinery. Every command still succeeds
/// — errors are retried with backoff, lost completions time out and abort.
fn nvme_fault_section(plan: &FaultPlan) -> (u64, u64, u64, u64) {
    let mut drv = NvmeDriver::new(ssd::ConventionalSsd::new(ssd::SsdConfig::small()));
    drv.arm_faults(plan.nvme, plan.rng_for(simkit::faults::site::NVME_CMD));
    let mut scratch = Vec::new();
    let mut now = SimTime::ZERO;
    for i in 0..96u64 {
        let tag = drv.submit(now, CommandKind::Io(IoCommand::Write { lba: i % 64, blocks: 1 }));
        now = drive_to_completion(&mut drv, now, tag, &mut scratch).at;
    }
    let tag = drv.submit(now, CommandKind::Io(IoCommand::Flush));
    drive_to_completion(&mut drv, now, tag, &mut scratch);
    let s = drv.port_stats();
    (s.retries(), s.timeouts(), s.error_completions(), s.dropped_completions())
}

/// Everything one seed's run produces — the silent simulation half of the
/// harness. `main` turns this into the printed sections, rows, and the
/// results file, in seed order.
struct ChaosOutcome {
    seed: u64,
    tally: Tally,
    fo_stall: SimDuration,
    fo_status_polls: u64,
    s1: usize,
    s2: usize,
    recovered: [u64; 2],
    flash_transient_retries: u64,
    flash_bad_blocks: u64,
    ntb_replays: u64,
    ntb_deferrals: u64,
    nvme_retries: u64,
    nvme_timeouts: u64,
    nvme_errors: u64,
    nvme_dropped: u64,
    pre_crash: Snapshot,
}

/// Run the full chaos scenario for one fault seed. This is a [`sweep`]
/// cell: it builds its own cluster/database/workload worlds, prints
/// nothing, and asserts its recovery invariants in place.
fn run_seed(seed: u64) -> ChaosOutcome {
    // --- Cluster + workload setup -------------------------------------
    let (mut db, mut workload, mut wrng) = setup(TpccConfig::small(), WORKLOAD_SEED);
    let mut cluster = Cluster::new();
    let p = cluster.add_device(chaos_device());
    let s1 = cluster.add_device(chaos_device());
    let s2 = cluster.add_device(chaos_device());
    let t0 = cluster.configure_replication(SimTime::ZERO, p, &[s1, s2]);

    let plan = chaos_plan(seed, t0);
    cluster.arm_faults(&plan);
    for f in &plan.schedule {
        match f.kind {
            FaultKind::LinkDown { device, window } => cluster.schedule_link_down(device, window),
            // The secondary crash is driven at the phase boundary below —
            // failover is a host protocol, not a device event.
            FaultKind::DeviceCrash { .. } => {}
        }
    }

    let mut file = XLogFile::open(p);
    let mut tally = Tally::default();

    // --- Phase 1: healthy replication through the link-down window ----
    let mut now = run_phase(
        &mut cluster,
        &mut file,
        &mut db,
        &mut workload,
        &mut wrng,
        &mut tally,
        t0,
        PHASES[0],
    );
    // Flow counters reset when failover rebuilds the mirror flows, so
    // bank them at each reconfiguration boundary.
    let ntb_phase1 = cluster.device(p).transport().flow_fault_stats();
    assert!(ntb_phase1.deferrals >= 1, "the link-down window parked at least one mirror burst");

    // --- Crash a secondary; the primary notices and fails over --------
    cluster.power_fail(s2, now);
    let fo = fail_over(&mut cluster, now, p, &[s1]);
    assert!(
        fo.stall() < SimDuration::from_millis(5),
        "failover stall bounded, got {:?}",
        fo.stall()
    );
    now = fo.reconfigured_at;
    now = run_phase(
        &mut cluster,
        &mut file,
        &mut db,
        &mut workload,
        &mut wrng,
        &mut tally,
        now,
        PHASES[1],
    );
    let ntb_phase2 = cluster.device(p).transport().flow_fault_stats();

    // --- Rejoin the crashed secondary via log re-sync ------------------
    now = rejoin_secondary(&mut cluster, now, p, s2, &[s1, s2]);
    assert_eq!(
        cluster.device(s2).log_tail(0),
        cluster.device(p).log_tail(0),
        "re-sync caught the rejoined copy up to the primary's tail"
    );
    now = run_phase(
        &mut cluster,
        &mut file,
        &mut db,
        &mut workload,
        &mut wrng,
        &mut tally,
        now,
        PHASES[2],
    );
    let ntb_phase3 = cluster.device(p).transport().flow_fault_stats();
    let replays = ntb_phase1.replays + ntb_phase2.replays + ntb_phase3.replays;
    assert!(replays >= 1, "the TLP drop hook fired at least once");

    // --- Whole-cluster power loss + recovery ---------------------------
    let settle = now + SimDuration::from_millis(2);
    cluster.advance(settle);
    let pre_crash_snapshot = {
        let mut reg = MetricsRegistry::new();
        reg.collect("", &cluster);
        reg.snapshot()
    };
    let flash_total = {
        let mut acc = flash::FlashStats::default();
        for d in [p, s1, s2] {
            let s = cluster.device(d).flash_stats();
            acc.transient_read_retries += s.transient_read_retries;
            acc.transient_program_retries += s.transient_program_retries;
            acc.injected_program_failures += s.injected_program_failures;
            acc.program_failures += s.program_failures;
        }
        acc
    };
    assert!(
        flash_total.transient_read_retries + flash_total.transient_program_retries >= 1,
        "flash transient faults retried in-device"
    );
    assert!(
        flash_total.injected_program_failures >= 1,
        "at least one block went bad and was retired by the FTL"
    );

    cluster.power_fail(p, settle);
    cluster.power_fail(s1, settle);
    cluster.power_fail(s2, settle);
    cluster.reboot_device(s1);
    cluster.reboot_device(s2);

    let live_fingerprint = db.fingerprint();
    let mut recovered = [0u64; 2];
    for (slot, dev) in [s1, s2].into_iter().enumerate() {
        let stream = durable_log_stream(&mut cluster, settle, dev, 0);
        let (mut fresh, _, _) = setup(TpccConfig::small(), WORKLOAD_SEED);
        let rep = recover(&mut fresh, &stream);
        assert_eq!(
            rep.txns_committed as u64, tally.logged,
            "every fsynced transaction recovers from device {dev}"
        );
        assert_eq!(
            fresh.fingerprint(),
            live_fingerprint,
            "device {dev} replays to the live database state exactly"
        );
        recovered[slot] = rep.txns_committed as u64;
    }

    // --- NVMe command-level faults (conventional path) ------------------
    let (nvme_retries, nvme_timeouts, nvme_errors, nvme_dropped) = nvme_fault_section(&plan);
    assert!(nvme_retries >= 1, "the NVMe retry machinery engaged");
    assert!(nvme_timeouts >= 1, "at least one lost completion timed out");

    ChaosOutcome {
        seed,
        tally,
        fo_stall: fo.stall(),
        fo_status_polls: fo.status_polls,
        s1,
        s2,
        recovered,
        flash_transient_retries: flash_total.transient_read_retries
            + flash_total.transient_program_retries,
        flash_bad_blocks: flash_total.injected_program_failures,
        ntb_replays: replays,
        ntb_deferrals: ntb_phase1.deferrals + ntb_phase2.deferrals + ntb_phase3.deferrals,
        nvme_retries,
        nvme_timeouts,
        nvme_errors,
        nvme_dropped,
        pre_crash: pre_crash_snapshot,
    }
}

/// Print one seed's sections, rows, and results file — the presentation
/// half, run in seed order on the main thread.
fn emit(o: ChaosOutcome) {
    let seed = o.seed;
    let knobs = format!(
        "seed={seed} devices=3 policy=eager phases={}/{}/{} group={GROUP}",
        PHASES[0], PHASES[1], PHASES[2]
    );
    let mut report = Report::new(
        "chaos_tpcc",
        "chaos",
        "replicated TPC-C under a cross-stack fault plan",
        &knobs,
    );
    section("phase 1: full replica set, TLP drops + link-down window");
    section("phase 2: secondary crash, failover, degraded replication");
    section("phase 3: rejoin via re-sync, full set again");
    section("recovery: total power loss, replay from each surviving copy");
    section("nvme: error completions, lost completions, timeout + retry");

    let tally = o.tally;
    let sd = seed as f64;
    report.row(
        &format!(
            "committed {} (read-only {}, aborted {}), {} log bytes, all recovered",
            tally.logged, tally.read_only, tally.aborted, tally.bytes
        ),
        Measurement::point("chaos", "txns.logged", sd, "seed", tally.logged as f64, "txns")
            .with_extra(tally.bytes as f64),
    );
    report.row(
        &format!("read-only {} / aborted {}", tally.read_only, tally.aborted),
        Measurement::point("chaos", "txns.read_only", sd, "seed", tally.read_only as f64, "txns")
            .with_extra(tally.aborted as f64),
    );
    report.row(
        &format!(
            "failover stall {} us ({} status polls)",
            o.fo_stall.as_nanos() as f64 / 1e3,
            o.fo_status_polls
        ),
        Measurement::point(
            "chaos",
            "failover.stall",
            sd,
            "seed",
            o.fo_stall.as_nanos() as f64 / 1e3,
            "us",
        )
        .with_extra(o.fo_status_polls as f64),
    );
    report.row(
        &format!(
            "recovered {} txns from dev{} and {} from dev{}",
            o.recovered[0], o.s1, o.recovered[1], o.s2
        ),
        Measurement::point("chaos", "recovery.txns", sd, "seed", o.recovered[0] as f64, "txns")
            .with_extra(o.recovered[1] as f64),
    );
    report.row(
        &format!(
            "flash: {} transient retries, {} bad blocks retired",
            o.flash_transient_retries, o.flash_bad_blocks
        ),
        Measurement::point(
            "chaos",
            "fault.flash_retries",
            sd,
            "seed",
            o.flash_transient_retries as f64,
            "retries",
        )
        .with_extra(o.flash_bad_blocks as f64),
    );
    report.row(
        &format!("ntb: {} TLP replays, {} link-down deferrals", o.ntb_replays, o.ntb_deferrals),
        Measurement::point("chaos", "fault.ntb_replays", sd, "seed", o.ntb_replays as f64, "tlps")
            .with_extra(o.ntb_deferrals as f64),
    );
    report.row(
        &format!(
            "nvme: {} retries ({} error completions, {} dropped -> {} timeouts)",
            o.nvme_retries, o.nvme_errors, o.nvme_dropped, o.nvme_timeouts
        ),
        Measurement::point(
            "chaos",
            "fault.nvme_retries",
            sd,
            "seed",
            o.nvme_retries as f64,
            "cmds",
        )
        .with_extra(o.nvme_timeouts as f64),
    );
    report.telemetry("pre_crash", o.pre_crash);
    report.finish().expect("write results");

    println!();
    println!(
        "ok: seed {seed} — {} committed txns survived flash/transport/nvme faults, \
         a secondary crash, and a full-cluster power loss",
        tally.logged
    );
}

fn main() {
    let seeds = cli::seed_list(
        "chaos_tpcc",
        "replicated TPC-C under a cross-stack fault plan",
        "fault seed(s); each runs the full scenario (default 0xC0C5 = 49349, the golden)",
        0xC0C5,
    );
    // Each seed is an isolated cell; the sweep runs them on all cores and
    // hands the outcomes back in argument order for reporting.
    let outcomes = sweep::map(&seeds, |&seed| run_seed(seed));
    for o in outcomes {
        emit(o);
    }
}
