//! chaos_tpcc — replicated TPC-C under a cross-stack fault plan.
//!
//! The robustness capstone: a three-way Villars replica set runs the TPC-C
//! mix through `XLogFile` while a seed-reproducible [`FaultPlan`] injects
//! faults at every layer at once — flash transient/permanent program
//! failures (FTL bad-block retirement), NTB TLP drops (replay timer) and a
//! scheduled link-down window, plus a mid-run secondary crash the host
//! answers with primary-driven failover and a later re-sync rejoin. The run
//! ends in a whole-cluster power failure; recovery replays each surviving
//! copy's durable log into a fresh database and must reproduce the live
//! database fingerprint exactly: no committed transaction lost, no aborted
//! transaction resurrected.
//!
//! A separate section exercises the NVMe command-level fault model (error
//! completions, lost completions → timeout/abort/backoff-retry) against the
//! conventional SSD, since the Villars fast path bypasses the NVMe queue.
//!
//! Non-golden seeds additionally run the segmented-lifecycle crash arcs
//! ([`lifecycle_arcs`]): a power cut mid-segment-rotation and one
//! mid-checkpoint, proving zero committed-transaction loss across seal and
//! snapshot boundaries and ping-pong fallback to the surviving slot.
//!
//! Usage: `chaos_tpcc [seed...]` (default seed `0xC0C5` is the committed
//! golden). The same seed always produces the same faults at the same
//! virtual instants and a byte-identical `results/chaos_tpcc.json`.
//! Multiple seeds run as independent cells on the [`sweep`] pool
//! (`XSSD_BENCH_THREADS`), reported in argument order; each seed's report
//! overwrites `results/chaos_tpcc.json` in turn, so the last seed's file
//! survives — exactly what running the seeds sequentially produced.

use memdb::{
    durable_log_stream, encode_txn, fail_over, recover, rejoin_secondary, replay_segments,
    Checkpointer, Lsn, SegmentConfig, WalConfig, WalManager, XssdLog,
};
use nvme::{drive_to_completion, CommandKind, IoCommand, IoPort, NvmeDriver};
use simkit::faults::{
    site, FaultKind, FlashFaultConfig, LinkDownWindow, NvmeFaultConfig, ScheduledFault,
    TransportFaultConfig,
};
use simkit::{FaultPlan, MetricsRegistry, SimDuration, SimTime, Snapshot};
use tpcc::{setup, TpccConfig, TpccWorkload};
use xssd_bench::{cli, section, sweep, Measurement, Report};
use xssd_core::{Cluster, VillarsConfig, XLogFile};

/// Transactions per fsync group (the host's group-commit cadence).
const GROUP: usize = 4;
/// Transactions attempted per phase: healthy / degraded / rejoined.
const PHASES: [usize; 3] = [120, 120, 60];
/// Workload seed — fixed, so the fault seed alone distinguishes runs.
const WORKLOAD_SEED: u64 = 0xAB5;
/// The committed-golden fault seed. The segmented-lifecycle crash arcs
/// run (and report) only for other seeds, keeping the golden
/// `results/chaos_tpcc.json` byte-identical to the pre-lifecycle runs.
const GOLDEN_SEED: u64 = 0xC0C5;

/// The replica device: the unit-test Villars config with a conventional
/// side large enough that the whole run's log stays resident on the
/// destage ring (recovery reads the durable stream from offset 0) and a
/// CMB ring roomy enough that destaging is not the bottleneck.
fn chaos_device() -> VillarsConfig {
    let mut cfg = VillarsConfig::small();
    cfg.conventional.geometry.blocks_per_die = 64; // 16 MiB raw flash
    cfg.conventional.buffer_pages = 64;
    cfg.cmb.size = 256 << 10;
    cfg.cmb.intake_queue_bytes = 16 << 10;
    cfg.destage.ring_lbas = 2048; // 8 MiB destage ring
    cfg
}

/// The fault mix every layer runs under. Rates are aggressive enough that
/// each class fires many times per run yet every fault is recoverable by
/// construction: transients retry in-device, permanents retire the block
/// and rewrite, TLP drops replay, the crash fails over.
fn chaos_plan(seed: u64, t0: SimTime) -> FaultPlan {
    FaultPlan {
        seed,
        flash: FlashFaultConfig {
            transient_read: 0.10,
            transient_program: 0.10,
            permanent_program: 0.05,
            max_retries: 3,
        },
        transport: TransportFaultConfig {
            tlp_drop: 0.05,
            replay_timeout: SimDuration::from_micros(5),
        },
        nvme: NvmeFaultConfig {
            error_completion: 0.15,
            dropped_completion: 0.12,
            ..NvmeFaultConfig::default()
        },
        schedule: vec![ScheduledFault {
            at: t0 + SimDuration::from_micros(50),
            kind: FaultKind::LinkDown {
                device: 0,
                window: LinkDownWindow {
                    from: t0 + SimDuration::from_micros(50),
                    until: t0 + SimDuration::from_micros(90),
                },
            },
        }],
    }
}

/// Counters the commit loop accumulates.
#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    /// Transactions that committed with log records (and were fsynced).
    logged: u64,
    /// Read-only commits (no records, nothing to log).
    read_only: u64,
    /// Aborts (the NewOrder 1% rollback and validation failures).
    aborted: u64,
    /// Log bytes handed to the device.
    bytes: u64,
}

/// Run one phase of `txns` attempted transactions: execute against the
/// live database, frame each writer's records with [`encode_txn`], stream
/// them through `x_pwrite`, and `x_fsync` every [`GROUP`] writers (and at
/// phase end). Returns the instant the final group was durable everywhere.
#[allow(clippy::too_many_arguments)]
fn run_phase(
    cluster: &mut Cluster,
    file: &mut XLogFile,
    db: &mut memdb::Database,
    workload: &mut TpccWorkload,
    wrng: &mut simkit::DetRng,
    tally: &mut Tally,
    mut now: SimTime,
    txns: usize,
) -> SimTime {
    let mut group = 0usize;
    for _ in 0..txns {
        match workload.execute(db, wrng, now.as_nanos()) {
            Ok(recs) if recs.is_empty() => tally.read_only += 1,
            Ok(recs) => {
                let bytes = encode_txn(&recs);
                tally.bytes += bytes.len() as u64;
                now = file.x_pwrite(cluster, now, &bytes).expect("x_pwrite");
                tally.logged += 1;
                group += 1;
                if group == GROUP {
                    now = file.x_fsync(cluster, now).expect("x_fsync");
                    group = 0;
                }
            }
            Err(_) => tally.aborted += 1,
        }
    }
    if group > 0 {
        now = file.x_fsync(cluster, now).expect("x_fsync");
    }
    now
}

/// Exercise the NVMe command-level fault model against the conventional
/// SSD: submit a write burst through the fault-armed driver and report how
/// many commands needed the retry machinery. Every command still succeeds
/// — errors are retried with backoff, lost completions time out and abort.
fn nvme_fault_section(plan: &FaultPlan) -> (u64, u64, u64, u64) {
    let mut drv = NvmeDriver::new(ssd::ConventionalSsd::new(ssd::SsdConfig::small()));
    drv.arm_faults(plan.nvme, plan.rng_for(simkit::faults::site::NVME_CMD));
    let mut scratch = Vec::new();
    let mut now = SimTime::ZERO;
    for i in 0..96u64 {
        let tag = drv.submit(now, CommandKind::Io(IoCommand::Write { lba: i % 64, blocks: 1 }));
        now = drive_to_completion(&mut drv, now, tag, &mut scratch).at;
    }
    let tag = drv.submit(now, CommandKind::Io(IoCommand::Flush));
    drive_to_completion(&mut drv, now, tag, &mut scratch);
    let s = drv.port_stats();
    (s.retries(), s.timeouts(), s.error_completions(), s.dropped_completions())
}

/// What the segmented-lifecycle crash arcs measured for one seed.
struct LifecycleOutcome {
    /// Segment seals between the anchoring checkpoint and the rotation
    /// crash (>= 1: the replayed range crosses a seal boundary).
    rotation_seals: u64,
    /// Bytes replayed after the rotation crash (snapshot -> durable).
    rotation_replay_bytes: u64,
    /// Transactions the rotation replay redid.
    rotation_txns: u64,
    /// Committed-but-unflushed transactions the crash dropped (they must
    /// NOT resurrect — the recovery target is the last durable group).
    rotation_unflushed: u64,
    /// Torn-checkpoint prefix size (bytes of generation 2 that reached
    /// the slot before the power cut).
    torn_keep: u64,
    /// Generation restore fell back to (must be 1, the surviving slot).
    fallback_generation: u64,
    /// Bytes replayed on top of the surviving snapshot.
    ckpt_replay_bytes: u64,
}

/// One single-device lifecycle world: TPC-C through `WalManager<XssdLog>`
/// with 4 KiB segments, explicit group flushes, and a fingerprint ledger
/// at every durable boundary (the oracle for what a crash may recover).
struct LifecycleWorld {
    db: memdb::Database,
    workload: TpccWorkload,
    wrng: simkit::DetRng,
    wal: WalManager<XssdLog>,
    dev: usize,
    ck: Checkpointer,
    /// `(durable frontier, db fingerprint)` after each group flush.
    ledger: Vec<(Lsn, u64)>,
    group: usize,
}

impl LifecycleWorld {
    fn new(seed: u64) -> Self {
        let (db, workload, wrng) = setup(TpccConfig::small(), WORKLOAD_SEED ^ seed);
        let mut cluster = Cluster::new();
        let dev = cluster.add_device(chaos_device());
        let mut wal =
            WalManager::new(XssdLog::new(cluster, dev, "lifecycle"), WalConfig::default());
        wal.enable_segments(SegmentConfig { segment_bytes: 4 << 10 });
        // Ping-pong snapshot slots above the 2048-LBA destage ring (the
        // conventional side is 4096 LBAs of 4 KiB).
        let ck = Checkpointer::new(dev, 2048, 1024);
        LifecycleWorld { db, workload, wrng, wal, dev, ck, ledger: Vec::new(), group: 0 }
    }

    fn flush_group(&mut self) {
        if self.group > 0 {
            let now = self.wal.log_writer_free();
            self.wal.flush(now);
            self.ledger.push((self.wal.durable_upto(), self.db.fingerprint()));
            self.group = 0;
        }
    }

    /// Drive the workload until `logged` more write transactions are in
    /// the log, flushing every [`GROUP`]; a partial trailing group stays
    /// open (callers decide whether it becomes durable).
    fn run_logged(&mut self, logged: usize) {
        let mut done = 0;
        while done < logged {
            let now = self.wal.log_writer_free();
            if let Ok(recs) = self.workload.execute(&mut self.db, &mut self.wrng, now.as_nanos()) {
                if recs.is_empty() {
                    continue;
                }
                self.wal.append_records(now, &recs);
                done += 1;
                self.group += 1;
                if self.group == GROUP {
                    self.flush_group();
                }
            }
        }
    }

    /// Checkpoint at the durable frontier and advance the truncation
    /// horizon. Returns the snapshot's log offset.
    fn checkpoint(&mut self) -> u64 {
        let now = self.wal.log_writer_free();
        let horizon = self.wal.durable_upto().0;
        let (_t, meta) =
            self.ck.checkpoint(self.wal.backend_mut().cluster_mut(), now, &self.db, horizon);
        self.wal.truncate_below(Lsn(meta.log_offset));
        meta.log_offset
    }

    /// Sudden power loss + reboot of the lone device.
    fn crash(&mut self) {
        let t = self.wal.log_writer_free() + SimDuration::from_millis(1);
        let dev = self.dev;
        let cl = self.wal.backend_mut().cluster_mut();
        cl.advance(t);
        cl.power_fail(dev, t);
        cl.reboot_device(dev);
    }
}

/// The segmented-lifecycle crash arcs: two independent single-device
/// worlds, each ending in a power cut at a lifecycle-critical instant.
///
/// **Mid-rotation**: the log crosses at least one segment seal after the
/// anchoring checkpoint, then crashes with a committed-but-unflushed
/// transaction in the open group. Recovery (snapshot + bounded segment
/// replay, clamped to the durable frontier) must land exactly on the last
/// group-flush fingerprint: every fsynced transaction survives the seal
/// boundary, the unflushed tail never resurrects.
///
/// **Mid-checkpoint**: generation 2 tears partway into its slot
/// ([`Checkpointer::checkpoint_partial`]) before the power cut. Restore
/// must fall back to generation 1's intact ping-pong slot, and replay
/// from there must reproduce the live database with zero committed loss.
fn lifecycle_arcs(seed: u64) -> LifecycleOutcome {
    let plan = FaultPlan { seed, ..FaultPlan::disabled() };
    let mut rng = plan.rng_for(site::SEGMENT_TAIL);

    // --- Arc 1: crash mid segment rotation -----------------------------
    let mut w = LifecycleWorld::new(seed);
    w.run_logged(24);
    w.flush_group();
    let snap_offset = w.checkpoint();
    let seals_at_ckpt = w.wal.segments().expect("segments on").seals();
    // Cross at least one seal boundary with durable transactions.
    let mut rounds = 0;
    while w.wal.segments().expect("segments on").seals() == seals_at_ckpt {
        w.run_logged(GROUP);
        w.flush_group();
        rounds += 1;
        assert!(rounds < 64, "4 KiB segments must seal within a few TPC-C groups");
    }
    let durable_fp = w.ledger.last().expect("flushed groups").1;
    // Leave committed-but-unflushed transactions in the open group: the
    // crash drops them, and recovery must not bring them back.
    w.run_logged(2);
    let unflushed = w.group as u64;
    assert!(unflushed > 0, "the tail group holds undurable transactions");
    w.crash();
    let now = w.wal.log_writer_free();
    let (_t, meta, mut restored) =
        w.ck.restore(w.wal.backend_mut().cluster_mut(), now)
            .expect("the completed checkpoint survives the power cut");
    assert_eq!(meta.log_offset, snap_offset);
    let durable = w.wal.durable_upto().0;
    let views = w.wal.segments().expect("segments on").views();
    let rotation = replay_segments(&mut restored, meta.log_offset, &views, durable);
    assert_eq!(
        restored.fingerprint(),
        durable_fp,
        "seed {seed}: rotation crash recovers exactly the durable prefix"
    );
    let rotation_seals = w.wal.segments().expect("segments on").seals() - seals_at_ckpt;

    // --- Arc 2: crash mid checkpoint ------------------------------------
    let mut w = LifecycleWorld::new(seed ^ 0xC4A5);
    w.run_logged(24);
    w.flush_group();
    let gen1_offset = w.checkpoint();
    w.run_logged(12);
    w.flush_group();
    let live_fp = w.db.fingerprint();
    // Generation 2 tears: only a prefix of its image reaches the slot.
    let keep = rng.uniform(64, 2048);
    let now = w.wal.log_writer_free();
    let horizon = w.wal.durable_upto().0;
    let (_t, torn_meta) = w.ck.checkpoint_partial(
        w.wal.backend_mut().cluster_mut(),
        now,
        &w.db,
        horizon,
        keep as usize,
    );
    assert!(keep < torn_meta.bytes, "the torn prefix is a strict subset of the image");
    w.crash();
    let now = w.wal.log_writer_free();
    let (_t, meta, mut restored) =
        w.ck.restore(w.wal.backend_mut().cluster_mut(), now)
            .expect("generation 1 survives the torn generation 2");
    assert_eq!(meta.generation, 1, "seed {seed}: restore falls back to the surviving slot");
    assert_eq!(meta.log_offset, gen1_offset);
    let durable = w.wal.durable_upto().0;
    let views = w.wal.segments().expect("segments on").views();
    let ckpt = replay_segments(&mut restored, meta.log_offset, &views, durable);
    assert_eq!(
        restored.fingerprint(),
        live_fp,
        "seed {seed}: mid-checkpoint crash loses no committed transaction"
    );

    LifecycleOutcome {
        rotation_seals,
        rotation_replay_bytes: rotation.replay_bytes,
        rotation_txns: rotation.txns_committed as u64,
        rotation_unflushed: unflushed,
        torn_keep: keep,
        fallback_generation: meta.generation,
        ckpt_replay_bytes: ckpt.replay_bytes,
    }
}

/// Everything one seed's run produces — the silent simulation half of the
/// harness. `main` turns this into the printed sections, rows, and the
/// results file, in seed order.
struct ChaosOutcome {
    seed: u64,
    tally: Tally,
    fo_stall: SimDuration,
    fo_status_polls: u64,
    s1: usize,
    s2: usize,
    recovered: [u64; 2],
    flash_transient_retries: u64,
    flash_bad_blocks: u64,
    ntb_replays: u64,
    ntb_deferrals: u64,
    nvme_retries: u64,
    nvme_timeouts: u64,
    nvme_errors: u64,
    nvme_dropped: u64,
    pre_crash: Snapshot,
    /// Segmented-lifecycle crash arcs (non-golden seeds only).
    lifecycle: Option<LifecycleOutcome>,
}

/// Run the full chaos scenario for one fault seed. This is a [`sweep`]
/// cell: it builds its own cluster/database/workload worlds, prints
/// nothing, and asserts its recovery invariants in place.
fn run_seed(seed: u64) -> ChaosOutcome {
    // --- Cluster + workload setup -------------------------------------
    let (mut db, mut workload, mut wrng) = setup(TpccConfig::small(), WORKLOAD_SEED);
    let mut cluster = Cluster::new();
    let p = cluster.add_device(chaos_device());
    let s1 = cluster.add_device(chaos_device());
    let s2 = cluster.add_device(chaos_device());
    let t0 = cluster.configure_replication(SimTime::ZERO, p, &[s1, s2]);

    let plan = chaos_plan(seed, t0);
    cluster.arm_faults(&plan);
    for f in &plan.schedule {
        match f.kind {
            FaultKind::LinkDown { device, window } => cluster.schedule_link_down(device, window),
            // The secondary crash is driven at the phase boundary below —
            // failover is a host protocol, not a device event.
            FaultKind::DeviceCrash { .. } => {}
        }
    }

    let mut file = XLogFile::open(p);
    let mut tally = Tally::default();

    // --- Phase 1: healthy replication through the link-down window ----
    let mut now = run_phase(
        &mut cluster,
        &mut file,
        &mut db,
        &mut workload,
        &mut wrng,
        &mut tally,
        t0,
        PHASES[0],
    );
    // Flow counters reset when failover rebuilds the mirror flows, so
    // bank them at each reconfiguration boundary.
    let ntb_phase1 = cluster.device(p).transport().flow_fault_stats();
    assert!(ntb_phase1.deferrals >= 1, "the link-down window parked at least one mirror burst");

    // --- Crash a secondary; the primary notices and fails over --------
    cluster.power_fail(s2, now);
    let fo = fail_over(&mut cluster, now, p, &[s1]);
    assert!(
        fo.stall() < SimDuration::from_millis(5),
        "failover stall bounded, got {:?}",
        fo.stall()
    );
    now = fo.reconfigured_at;
    now = run_phase(
        &mut cluster,
        &mut file,
        &mut db,
        &mut workload,
        &mut wrng,
        &mut tally,
        now,
        PHASES[1],
    );
    let ntb_phase2 = cluster.device(p).transport().flow_fault_stats();

    // --- Rejoin the crashed secondary via log re-sync ------------------
    now = rejoin_secondary(&mut cluster, now, p, s2, &[s1, s2]);
    assert_eq!(
        cluster.device(s2).log_tail(0),
        cluster.device(p).log_tail(0),
        "re-sync caught the rejoined copy up to the primary's tail"
    );
    now = run_phase(
        &mut cluster,
        &mut file,
        &mut db,
        &mut workload,
        &mut wrng,
        &mut tally,
        now,
        PHASES[2],
    );
    let ntb_phase3 = cluster.device(p).transport().flow_fault_stats();
    let replays = ntb_phase1.replays + ntb_phase2.replays + ntb_phase3.replays;
    assert!(replays >= 1, "the TLP drop hook fired at least once");

    // --- Whole-cluster power loss + recovery ---------------------------
    let settle = now + SimDuration::from_millis(2);
    cluster.advance(settle);
    let pre_crash_snapshot = {
        let mut reg = MetricsRegistry::new();
        reg.collect("", &cluster);
        reg.snapshot()
    };
    let flash_total = {
        let mut acc = flash::FlashStats::default();
        for d in [p, s1, s2] {
            let s = cluster.device(d).flash_stats();
            acc.transient_read_retries += s.transient_read_retries;
            acc.transient_program_retries += s.transient_program_retries;
            acc.injected_program_failures += s.injected_program_failures;
            acc.program_failures += s.program_failures;
        }
        acc
    };
    assert!(
        flash_total.transient_read_retries + flash_total.transient_program_retries >= 1,
        "flash transient faults retried in-device"
    );
    assert!(
        flash_total.injected_program_failures >= 1,
        "at least one block went bad and was retired by the FTL"
    );

    cluster.power_fail(p, settle);
    cluster.power_fail(s1, settle);
    cluster.power_fail(s2, settle);
    cluster.reboot_device(s1);
    cluster.reboot_device(s2);

    let live_fingerprint = db.fingerprint();
    let mut recovered = [0u64; 2];
    for (slot, dev) in [s1, s2].into_iter().enumerate() {
        let stream = durable_log_stream(&mut cluster, settle, dev, 0);
        let (mut fresh, _, _) = setup(TpccConfig::small(), WORKLOAD_SEED);
        let rep = recover(&mut fresh, &stream);
        assert_eq!(
            rep.txns_committed as u64, tally.logged,
            "every fsynced transaction recovers from device {dev}"
        );
        assert_eq!(
            fresh.fingerprint(),
            live_fingerprint,
            "device {dev} replays to the live database state exactly"
        );
        recovered[slot] = rep.txns_committed as u64;
    }

    // --- NVMe command-level faults (conventional path) ------------------
    let (nvme_retries, nvme_timeouts, nvme_errors, nvme_dropped) = nvme_fault_section(&plan);
    assert!(nvme_retries >= 1, "the NVMe retry machinery engaged");
    assert!(nvme_timeouts >= 1, "at least one lost completion timed out");

    // --- Segmented-lifecycle crash arcs (non-golden seeds) --------------
    let lifecycle = (seed != GOLDEN_SEED).then(|| lifecycle_arcs(seed));

    ChaosOutcome {
        seed,
        tally,
        fo_stall: fo.stall(),
        fo_status_polls: fo.status_polls,
        s1,
        s2,
        recovered,
        flash_transient_retries: flash_total.transient_read_retries
            + flash_total.transient_program_retries,
        flash_bad_blocks: flash_total.injected_program_failures,
        ntb_replays: replays,
        ntb_deferrals: ntb_phase1.deferrals + ntb_phase2.deferrals + ntb_phase3.deferrals,
        nvme_retries,
        nvme_timeouts,
        nvme_errors,
        nvme_dropped,
        pre_crash: pre_crash_snapshot,
        lifecycle,
    }
}

/// Print one seed's sections, rows, and results file — the presentation
/// half, run in seed order on the main thread.
fn emit(o: ChaosOutcome) {
    let seed = o.seed;
    let knobs = format!(
        "seed={seed} devices=3 policy=eager phases={}/{}/{} group={GROUP}",
        PHASES[0], PHASES[1], PHASES[2]
    );
    let mut report = Report::new(
        "chaos_tpcc",
        "chaos",
        "replicated TPC-C under a cross-stack fault plan",
        &knobs,
    );
    section("phase 1: full replica set, TLP drops + link-down window");
    section("phase 2: secondary crash, failover, degraded replication");
    section("phase 3: rejoin via re-sync, full set again");
    section("recovery: total power loss, replay from each surviving copy");
    section("nvme: error completions, lost completions, timeout + retry");

    let tally = o.tally;
    let sd = seed as f64;
    report.row(
        &format!(
            "committed {} (read-only {}, aborted {}), {} log bytes, all recovered",
            tally.logged, tally.read_only, tally.aborted, tally.bytes
        ),
        Measurement::point("chaos", "txns.logged", sd, "seed", tally.logged as f64, "txns")
            .with_extra(tally.bytes as f64),
    );
    report.row(
        &format!("read-only {} / aborted {}", tally.read_only, tally.aborted),
        Measurement::point("chaos", "txns.read_only", sd, "seed", tally.read_only as f64, "txns")
            .with_extra(tally.aborted as f64),
    );
    report.row(
        &format!(
            "failover stall {} us ({} status polls)",
            o.fo_stall.as_nanos() as f64 / 1e3,
            o.fo_status_polls
        ),
        Measurement::point(
            "chaos",
            "failover.stall",
            sd,
            "seed",
            o.fo_stall.as_nanos() as f64 / 1e3,
            "us",
        )
        .with_extra(o.fo_status_polls as f64),
    );
    report.row(
        &format!(
            "recovered {} txns from dev{} and {} from dev{}",
            o.recovered[0], o.s1, o.recovered[1], o.s2
        ),
        Measurement::point("chaos", "recovery.txns", sd, "seed", o.recovered[0] as f64, "txns")
            .with_extra(o.recovered[1] as f64),
    );
    report.row(
        &format!(
            "flash: {} transient retries, {} bad blocks retired",
            o.flash_transient_retries, o.flash_bad_blocks
        ),
        Measurement::point(
            "chaos",
            "fault.flash_retries",
            sd,
            "seed",
            o.flash_transient_retries as f64,
            "retries",
        )
        .with_extra(o.flash_bad_blocks as f64),
    );
    report.row(
        &format!("ntb: {} TLP replays, {} link-down deferrals", o.ntb_replays, o.ntb_deferrals),
        Measurement::point("chaos", "fault.ntb_replays", sd, "seed", o.ntb_replays as f64, "tlps")
            .with_extra(o.ntb_deferrals as f64),
    );
    report.row(
        &format!(
            "nvme: {} retries ({} error completions, {} dropped -> {} timeouts)",
            o.nvme_retries, o.nvme_errors, o.nvme_dropped, o.nvme_timeouts
        ),
        Measurement::point(
            "chaos",
            "fault.nvme_retries",
            sd,
            "seed",
            o.nvme_retries as f64,
            "cmds",
        )
        .with_extra(o.nvme_timeouts as f64),
    );
    if let Some(l) = &o.lifecycle {
        section("lifecycle: crash mid-rotation and mid-checkpoint, bounded replay");
        report.row(
            &format!(
                "rotation crash: {} seals crossed, {} txns replayed ({} B), \
                 {} unflushed txns dropped",
                l.rotation_seals, l.rotation_txns, l.rotation_replay_bytes, l.rotation_unflushed
            ),
            Measurement::point(
                "chaos",
                "lifecycle.rotation_replay",
                sd,
                "seed",
                l.rotation_replay_bytes as f64,
                "bytes",
            )
            .with_extra(l.rotation_seals as f64),
        );
        report.row(
            &format!(
                "torn checkpoint ({} B prefix): fell back to generation {}, \
                 {} B replayed, zero committed loss",
                l.torn_keep, l.fallback_generation, l.ckpt_replay_bytes
            ),
            Measurement::point(
                "chaos",
                "lifecycle.torn_ckpt_replay",
                sd,
                "seed",
                l.ckpt_replay_bytes as f64,
                "bytes",
            )
            .with_extra(l.torn_keep as f64),
        );
    }
    report.telemetry("pre_crash", o.pre_crash);
    report.finish().expect("write results");

    println!();
    println!(
        "ok: seed {seed} — {} committed txns survived flash/transport/nvme faults, \
         a secondary crash, and a full-cluster power loss",
        tally.logged
    );
}

fn main() {
    let seeds = cli::seed_list(
        "chaos_tpcc",
        "replicated TPC-C under a cross-stack fault plan",
        "fault seed(s); each runs the full scenario (default 0xC0C5 = 49349, the golden)",
        GOLDEN_SEED,
    );
    // Each seed is an isolated cell; the sweep runs them on all cores and
    // hands the outcomes back in argument order for reporting.
    let outcomes = sweep::map(&seeds, |&seed| run_seed(seed));
    for o in outcomes {
        emit(o);
    }
}
