//! Ablation — host-managed PM destaging vs. in-device destaging.
//!
//! Paper §5.1 ("Destaging Efficiency"): an application that logs to
//! host-attached PM and destages to an SSD moves every logged byte four
//! times through the host memory system (write to PM, read from PM, DMA
//! into the device buffer, buffer to flash); a Villars device does it in
//! two (host to CMB, CMB to flash). This harness counts the host-side
//! memory-bus bytes per logged byte and the host time consumed.
//!
//! The Villars row is derived from the device's telemetry snapshot (CMB
//! intake and destage counters); `results/ablation_data_movements.json`
//! carries both paths' snapshots.

use simkit::{Bandwidth, MetricsRegistry, SimTime, Snapshot};
use xssd_bench::table::{Cell, Col, Table};
use xssd_bench::{cli, section, sweep, Measurement, Report};
use xssd_core::{Cluster, VillarsConfig, XLogFile};

struct Movements {
    host_bus_bytes_per_logged: f64,
    /// Host memory-bus occupancy per logged MiB (time the memory system is
    /// busy with log traffic, at the DIMM bandwidth).
    bus_us_per_mib: f64,
    /// End-to-end time to make one MiB durable on NAND, for context.
    e2e_us_per_mib: f64,
}

const MEM_BW_GBPS: f64 = 8.0;

/// Host-managed path: the log bytes cross the host memory bus three times —
/// (1) stored into PM, (2) read back for destaging, (3) pulled again by the
/// device's DMA from host memory. The fourth movement of paper §5.1
/// (device buffer → flash) is inside the device. Analytic, so its snapshot
/// holds only the `bench.*` model inputs/outputs.
fn host_managed(total: u64) -> Snapshot {
    let mem_bw = Bandwidth::gbytes_per_sec(MEM_BW_GBPS);
    let host_bytes = 3 * total;
    let bus_time = mem_bw.transfer_time(host_bytes);
    // End-to-end: PM store, then destage read + DMA over the x4 link, then
    // the flash program pipeline (~device bandwidth 2 GB/s).
    let link = Bandwidth::gbytes_per_sec(2.0);
    let e2e = mem_bw.transfer_time(total)
        + link.transfer_time(total)
        + Bandwidth::gbytes_per_sec(2.0).transfer_time(total);
    let mut reg = MetricsRegistry::new();
    reg.counter("bench.logged_bytes", total);
    reg.counter("bench.host_bus_bytes", host_bytes);
    reg.counter("bench.host_bus_busy_ns", bus_time.as_nanos());
    reg.counter("bench.e2e_ns", e2e.as_nanos());
    reg.snapshot()
}

/// Villars path: the host memory bus sees each byte once (the source read
/// feeding the MMIO store stream); destaging is device-internal. The whole
/// device stack is snapshotted after the run.
fn villars(total: u64) -> Snapshot {
    let mut cl = Cluster::new();
    let dev = cl.add_device(VillarsConfig::villars_sram());
    let mut f = XLogFile::open(dev);
    let chunk = vec![0u8; 16 << 10];
    let mut now = SimTime::ZERO;
    let mut written = 0u64;
    while written < total {
        now = f.x_pwrite(&mut cl, now, &chunk).expect("write");
        written += chunk.len() as u64;
    }
    now = f.x_fsync(&mut cl, now).expect("fsync");
    let mem_bw = Bandwidth::gbytes_per_sec(MEM_BW_GBPS);
    let mut reg = MetricsRegistry::new();
    reg.collect("", &cl);
    reg.counter("bench.logged_bytes", total);
    // One host-bus crossing: the source read feeding the MMIO stores.
    reg.counter("bench.host_bus_bytes", total);
    reg.counter("bench.host_bus_busy_ns", mem_bw.transfer_time(total).as_nanos());
    reg.counter("bench.e2e_ns", now.saturating_since(SimTime::ZERO).as_nanos());
    reg.snapshot()
}

fn derive(snap: &Snapshot) -> Movements {
    let total = snap.counter("bench.logged_bytes") as f64;
    let mib = total / (1 << 20) as f64;
    Movements {
        host_bus_bytes_per_logged: snap.counter("bench.host_bus_bytes") as f64 / total,
        bus_us_per_mib: snap.counter("bench.host_bus_busy_ns") as f64 / 1e3 / mib,
        e2e_us_per_mib: snap.counter("bench.e2e_ns") as f64 / 1e3 / mib,
    }
}

fn main() {
    cli::no_args("ablation_data_movements", "Host memory-bus traffic: host-managed PM vs. Villars");
    let mut report = Report::new(
        "ablation_data_movements",
        "Ablation: data movements",
        "Host memory-bus traffic per logged byte: host-managed PM vs. Villars",
        "paper §5.1: four movements vs. two; only host-side movements burn host bandwidth",
    );
    let total: u64 = 64 << 20;
    // Two independent cells: the analytic host-managed model and the
    // simulated Villars path.
    let paths = [("host-managed-pm", 0.0), ("villars", 1.0)];
    let snaps = sweep::run(paths.len(), |i| match i {
        0 => host_managed(total),
        _ => villars(total),
    });
    section("host cost per logged byte");
    let table = Table::new(&[
        Col::left("path", 24),
        Col::right("host_bus_bytes/byte", 22),
        Col::right("bus_us_per_MiB", 16),
        Col::right("e2e_us_per_MiB", 16),
    ]);
    println!("{}", table.header());
    for (&(label, x), snap) in paths.iter().zip(snaps) {
        let m = derive(&snap);
        report.row(
            &table.row(&[
                Cell::str(label),
                Cell::Float(m.host_bus_bytes_per_logged, 1),
                Cell::Float(m.bus_us_per_mib, 1),
                Cell::Float(m.e2e_us_per_mib, 1),
            ]),
            Measurement::point(
                "ablation_movements",
                label,
                x,
                "path",
                m.host_bus_bytes_per_logged,
                "host_bus_bytes_per_logged_byte",
            )
            .with_extra(m.bus_us_per_mib),
        );
        report.telemetry(label, snap);
    }
    println!();
    println!("expected: the Villars path touches each logged byte once on the host");
    println!("(3x less host memory-bus traffic), freeing bandwidth the paper argues");
    println!("contributes back to database performance.");
    report.finish().expect("write results json");
}
