//! Ablation — host-managed PM destaging vs. in-device destaging.
//!
//! Paper §5.1 ("Destaging Efficiency"): an application that logs to
//! host-attached PM and destages to an SSD moves every logged byte four
//! times through the host memory system (write to PM, read from PM, DMA
//! into the device buffer, buffer to flash); a Villars device does it in
//! two (host to CMB, CMB to flash). This harness counts the host-side
//! memory-bus bytes per logged byte and the host time consumed.

use simkit::{Bandwidth, SimTime};
use xssd_bench::{header, row, section, Measurement};
use xssd_core::{Cluster, VillarsConfig, XLogFile};

struct Movements {
    host_bus_bytes_per_logged: f64,
    /// Host memory-bus occupancy per logged MiB (time the memory system is
    /// busy with log traffic, at the DIMM bandwidth).
    bus_us_per_mib: f64,
    /// End-to-end time to make one MiB durable on NAND, for context.
    e2e_us_per_mib: f64,
}

const MEM_BW_GBPS: f64 = 8.0;

/// Host-managed path: the log bytes cross the host memory bus three times —
/// (1) stored into PM, (2) read back for destaging, (3) pulled again by the
/// device's DMA from host memory. The fourth movement of paper §5.1
/// (device buffer → flash) is inside the device.
fn host_managed(total: u64) -> Movements {
    let mem_bw = Bandwidth::gbytes_per_sec(MEM_BW_GBPS);
    let host_bytes = 3 * total;
    let bus_time = mem_bw.transfer_time(host_bytes);
    // End-to-end: PM store, then destage read + DMA over the x4 link, then
    // the flash program pipeline (~device bandwidth 2 GB/s).
    let link = Bandwidth::gbytes_per_sec(2.0);
    let e2e = mem_bw.transfer_time(total)
        + link.transfer_time(total)
        + Bandwidth::gbytes_per_sec(2.0).transfer_time(total);
    Movements {
        host_bus_bytes_per_logged: host_bytes as f64 / total as f64,
        bus_us_per_mib: bus_time.as_micros_f64() / (total as f64 / (1 << 20) as f64),
        e2e_us_per_mib: e2e.as_micros_f64() / (total as f64 / (1 << 20) as f64),
    }
}

/// Villars path: the host memory bus sees each byte once (the source read
/// feeding the MMIO store stream); destaging is device-internal.
fn villars(total: u64) -> Movements {
    let mut cl = Cluster::new();
    let dev = cl.add_device(VillarsConfig::villars_sram());
    let mut f = XLogFile::open(dev);
    let chunk = vec![0u8; 16 << 10];
    let mut now = SimTime::ZERO;
    let mut written = 0u64;
    while written < total {
        now = f.x_pwrite(&mut cl, now, &chunk).expect("write");
        written += chunk.len() as u64;
    }
    now = f.x_fsync(&mut cl, now).expect("fsync");
    let mem_bw = Bandwidth::gbytes_per_sec(MEM_BW_GBPS);
    let bus_time = mem_bw.transfer_time(total);
    Movements {
        host_bus_bytes_per_logged: 1.0,
        bus_us_per_mib: bus_time.as_micros_f64() / (total as f64 / (1 << 20) as f64),
        e2e_us_per_mib: now.as_micros_f64() / (total as f64 / (1 << 20) as f64),
    }
}

fn main() {
    header(
        "Ablation: data movements",
        "Host memory-bus traffic per logged byte: host-managed PM vs. Villars",
        "paper §5.1: four movements vs. two; only host-side movements burn host bandwidth",
    );
    let total: u64 = 64 << 20;
    let h = host_managed(total);
    let v = villars(total);
    section("host cost per logged byte");
    println!(
        "{:<24} {:>22} {:>16} {:>16}",
        "path", "host_bus_bytes/byte", "bus_us_per_MiB", "e2e_us_per_MiB"
    );
    for (label, m, x) in [("host-managed-pm", &h, 0.0), ("villars", &v, 1.0)] {
        row(
            &format!(
                "{:<24} {:>22.1} {:>16.1} {:>16.1}",
                label, m.host_bus_bytes_per_logged, m.bus_us_per_mib, m.e2e_us_per_mib
            ),
            &Measurement::point(
                "ablation_movements",
                label,
                x,
                "path",
                m.host_bus_bytes_per_logged,
                "host_bus_bytes_per_logged_byte",
            )
            .with_extra(m.bus_us_per_mib),
        );
    }
    println!();
    println!("expected: the Villars path touches each logged byte once on the host");
    println!("(3x less host memory-bus traffic), freeing bandwidth the paper argues");
    println!("contributes back to database performance.");
}
