//! ablation_recovery — recovery cost vs. checkpoint interval vs. run
//! length, on the segmented WAL lifecycle.
//!
//! The lifecycle claim (docs/ROBUSTNESS.md, "Log lifecycle"): with sealed
//! segments and checkpoint-anchored truncation, crash recovery replays
//! *latest snapshot + subsequent segments* — its cost is a function of
//! the checkpoint interval, never of total history. This harness proves
//! it by grid: YCSB-A runs of increasing length (run-length axis) under
//! three checkpoint cadences (interval axis), each ending in a power
//! failure and a timed restore + bounded segment replay that must
//! reproduce the live database fingerprint exactly.
//!
//! Each cell drives the declarative driver in fixed chunks on the
//! blocking log path; after every `interval` chunks (except the last
//! boundary, so a replay suffix always exists) it writes a ping-pong
//! checkpoint through the conventional block interface and advances the
//! WAL truncation horizon, retiring covered segments. Expected shape:
//! at a fixed interval the replayed bytes stay flat as the run grows —
//! only the `none` cadence replays total history.

use memdb::{replay_segments, Checkpointer, Lsn, SegmentConfig, WalConfig, WalManager, XssdLog};
use simkit::{MetricsRegistry, SimDuration, Snapshot};
use xssd_bench::driver::{self, DriverConfig};
use xssd_bench::table::{Cell, Col, Table};
use xssd_bench::ycsb::{self, YcsbConfig};
use xssd_bench::{cli, section, sweep, Measurement, Report};
use xssd_core::{Cluster, VillarsConfig};

/// Driver chunk length, in milliseconds; checkpoints land on chunk
/// boundaries.
const CHUNK_MS: u64 = 10;
/// Run lengths, in chunks.
const LENGTHS: [usize; 3] = [4, 8, 16];
/// Checkpoint cadences, in chunks between checkpoints (0 = never).
const INTERVALS: [(usize, &str); 3] = [(1, "every-1"), (2, "every-2"), (0, "none")];
/// Workload seed (fixed; the grid axes alone distinguish cells).
const SEED: u64 = 0x4EC0;

fn device() -> VillarsConfig {
    let mut config = VillarsConfig::villars_sram();
    config.cmb.intake_queue_bytes = 32 << 10;
    config
}

/// What one grid cell produced.
struct Outcome {
    committed: u64,
    log_bytes: u64,
    checkpoints: u64,
    segments_retained: u64,
    archived_bytes: u64,
    restore_us: f64,
    replay_bytes: u64,
    replay_records: u64,
    snapshot: Snapshot,
}

fn run_cell(interval: usize, chunks: usize) -> Outcome {
    let (mut db, mut workload, _rng) = ycsb::setup(YcsbConfig::default(), SEED);
    let mut cluster = Cluster::new();
    let dev = cluster.add_device(device());
    let mut wal = WalManager::new(
        XssdLog::new(cluster, dev, "villars-sram"),
        WalConfig { group_threshold: 4 << 10, ..WalConfig::default() },
    );
    wal.enable_segments(SegmentConfig { segment_bytes: 16 << 10 });
    // Ping-pong snapshot slots on the conventional side, clear of the
    // destage ring (LBAs 0..4096 on this config).
    let mut ck = Checkpointer::new(dev, 8192, 256);

    let mut committed = 0u64;
    let mut checkpoints = 0u64;
    let mut snap_offset = 0u64;
    for chunk in 0..chunks {
        // Each driver call restarts its workload clock at zero while the
        // backend timeline stays monotonic, so chunk `i` gets a window of
        // `(i + 1) * CHUNK_MS`: the first flush lands at the backend's
        // current clock (~`i * CHUNK_MS`), leaving one chunk of effective
        // measure time.
        let cfg = DriverConfig {
            workers: 2,
            measure: SimDuration::from_millis(CHUNK_MS * (chunk as u64 + 1)),
            seed: SEED,
            log_pipeline_depth: 1,
            ..DriverConfig::default()
        };
        let report = driver::run(&mut db, &mut wal, &mut workload, &cfg);
        committed += report.run.committed;
        // Checkpoint on the cadence, but never at the final boundary —
        // recovery must always have a replay suffix to do.
        if interval > 0 && (chunk + 1) % interval == 0 && chunk + 1 < chunks {
            let now = wal.log_writer_free();
            let horizon = wal.durable_upto().0;
            let (_t, meta) = ck.checkpoint(wal.backend_mut().cluster_mut(), now, &db, horizon);
            wal.truncate_below(Lsn(meta.log_offset));
            snap_offset = meta.log_offset;
            checkpoints += 1;
        }
    }
    assert_eq!(wal.pending_bytes(), 0, "the blocking path drains every chunk");
    let durable = wal.durable_upto().0;

    // Power-fail the device, reboot, and recover: newest snapshot (when
    // one exists) + bounded segment replay, against the live fingerprint.
    let crash_at = wal.log_writer_free() + SimDuration::from_millis(2);
    {
        let cl = wal.backend_mut().cluster_mut();
        cl.advance(crash_at);
        cl.power_fail(dev, crash_at);
        cl.reboot_device(dev);
    }
    let restored = ck.restore(wal.backend_mut().cluster_mut(), crash_at);
    let (restore_done, mut recovered, from) = match restored {
        Some((t, meta, db)) => {
            assert_eq!(meta.log_offset, snap_offset, "newest checkpoint wins");
            (t, db, meta.log_offset)
        }
        None => {
            // Cells that never completed a checkpoint (the `none` cadence,
            // or a cadence whose only boundary was the skipped final one)
            // bootstrap the deterministic preload and replay total history.
            assert_eq!(checkpoints, 0, "checkpointed cells must restore a snapshot");
            (crash_at, ycsb::setup(YcsbConfig::default(), SEED).0, 0)
        }
    };
    let seg = wal.segments().expect("segments enabled");
    let replay = replay_segments(&mut recovered, from, &seg.views(), durable);
    assert_eq!(replay.torn_bytes, 0, "a drained log has no torn tail");
    assert_eq!(
        recovered.fingerprint(),
        db.fingerprint(),
        "snapshot + segment replay reproduces the live database exactly"
    );

    let mut reg = MetricsRegistry::new();
    reg.collect("", &wal);
    reg.collect("", &replay);
    Outcome {
        committed,
        log_bytes: durable,
        checkpoints,
        segments_retained: seg.segment_count() as u64,
        archived_bytes: seg.archived_bytes(),
        restore_us: (restore_done - crash_at).as_nanos() as f64 / 1e3,
        replay_bytes: replay.replay_bytes,
        replay_records: replay.records_scanned as u64,
        snapshot: reg.snapshot(),
    }
}

fn main() {
    cli::no_args(
        "ablation_recovery",
        "recovery cost vs checkpoint interval vs run length on the segmented WAL",
    );
    let mut report = Report::new(
        "ablation_recovery",
        "recovery",
        "replayed bytes and restore time vs checkpoint interval vs run length",
        "ycsb-a, 8192 rows, 4 KiB group commit, 2 workers, 10 ms chunks, 16 KiB segments, ping-pong snapshots",
    );
    let grid: Vec<(usize, usize, &str, usize)> = INTERVALS
        .iter()
        .flat_map(|&(iv, label)| LENGTHS.iter().map(move |&len| (iv, len, label)))
        .enumerate()
        .map(|(i, (iv, len, label))| (i, iv, label, len))
        .collect();
    let outcomes = sweep::map(&grid, |&(_i, iv, _label, len)| run_cell(iv, len));

    section("crash recovery after L chunks, checkpointing every C chunks");
    let table = Table::new(&[
        Col::left("interval", 10),
        Col::right("chunks", 8),
        Col::right("txns", 10),
        Col::right("log_KiB", 9),
        Col::right("ckpts", 7),
        Col::right("segs", 6),
        Col::right("replay_KiB", 12),
        Col::right("records", 9),
        Col::right("restore_us", 12),
    ]);
    println!("{}", table.header());
    for (&(_i, _iv, label, len), o) in grid.iter().zip(outcomes.iter()) {
        report.row(
            &table.row(&[
                Cell::str(label),
                Cell::Int(len as u64),
                Cell::Int(o.committed),
                Cell::Float(o.log_bytes as f64 / 1024.0, 1),
                Cell::Int(o.checkpoints),
                Cell::Int(o.segments_retained),
                Cell::Float(o.replay_bytes as f64 / 1024.0, 1),
                Cell::Int(o.replay_records),
                Cell::Float(o.restore_us, 1),
            ]),
            Measurement::point(
                "ablation_recovery",
                format!("replay-{label}"),
                len as f64,
                "chunks",
                o.replay_bytes as f64,
                "bytes",
            )
            .with_extra(o.restore_us),
        );
    }
    for (&(_i, _iv, label, len), o) in grid.iter().zip(outcomes) {
        report.telemetry(format!("{label}.len{len}"), o.snapshot);
        let _ = o.archived_bytes;
    }
    println!();
    println!("expected shape:");
    println!("  - at a fixed checkpoint interval the replayed bytes are flat in the");
    println!("    run length: recovery re-reads only the suffix since the last");
    println!("    snapshot, and truncation retires everything older");
    println!("  - the 'none' cadence replays total history: bytes grow linearly");
    println!("    with the run length (the hazard the lifecycle removes)");
    println!("  - restore time tracks the snapshot image size (conventional-side");
    println!("    block reads), independent of the log length");
    report.finish().expect("write results json");
}
