//! Fig. 12 — Effects of Opportunistic Destaging.
//!
//! Paper §6.4: a conventional workload is sized at ~50% of the device's
//! bandwidth while a fast-side workload sweeps 30–60%. Under *neutral*
//! scheduling both streams lose bandwidth once total demand exceeds the
//! device; under *conventional priority* the conventional stream is
//! protected and the fast stream absorbs the shortfall.
//!
//! The achieved per-class bandwidths are derived from the device telemetry
//! (`ssd.served_conventional_bytes` / `ssd.served_destage_bytes`), and every
//! run's full snapshot lands in `results/fig12_destage_priority.json`.

use nvme::{CommandKind, IoCommand};
use simkit::bytes::Bytes;
use simkit::{MetricsRegistry, SimDuration, SimTime, Snapshot};
use xssd_bench::table::{Cell, Col, Table};
use xssd_bench::{cli, section, sweep, Measurement, Report};
use xssd_core::{Cluster, VillarsConfig, XLogFile};

/// Drive both workloads for `duration`; snapshot the device stack after.
fn run(mode_code: u32, fast_fraction: f64, duration: SimDuration) -> Snapshot {
    let mut config = VillarsConfig::villars_sram();
    // Unconstrained x8 host link so the flash arrays are the bottleneck.
    config.conventional.link = pcie::LinkConfig::cosmos_native();
    // A large destage ring so the fast stream is scheduler-limited, not
    // ring-limited.
    config.destage.ring_lbas = 1 << 20;
    let mut cl = Cluster::new();
    let dev = cl.add_device(config);
    // Select the scheduler policy via the vendor command.
    let (_t, e) = cl.vendor_blocking(
        dev,
        SimTime::ZERO,
        nvme::VendorCommand::new(xssd_core::vendor::SET_SCHED_MODE, [mode_code, 0, 0, 0, 0, 0]),
    );
    assert!(e.status.is_ok());

    // Device program envelope (the flash arrays' aggregate bandwidth).
    let dev_cfg = cl.device(dev).config().conventional.clone();
    let envelope_gbps = dev_cfg.timing.program_bandwidth_gbps(&dev_cfg.geometry);
    let page = dev_cfg.geometry.page_bytes as u64;

    // Conventional stream: 16 KiB writes at 50% of the envelope.
    let conv_rate_bps = envelope_gbps * 0.5 * 1e9;
    let conv_interval = SimDuration::from_secs_f64(page as f64 / conv_rate_bps);
    // Fast stream: x_pwrite pages at the swept fraction.
    let fast_rate_bps = envelope_gbps * fast_fraction * 1e9;
    let fast_interval = SimDuration::from_secs_f64(page as f64 / fast_rate_bps);

    let mut f = XLogFile::open(dev);
    let fast_page = vec![0xFAu8; page as usize];
    let start = SimTime::ZERO;
    let end = start + duration;
    let mut next_conv = start;
    let mut next_fast = start;
    let mut conv_lba = 1 << 21; // away from the destage ring
    let mut completions = Vec::new();

    while next_conv < end || next_fast < end {
        if next_conv <= next_fast {
            if next_conv >= end {
                next_conv = SimTime::MAX;
                continue;
            }
            // Submit one conventional page write through the device's I/O
            // port (asynchronous: the block workload keeps its own queue
            // depth rather than blocking per command).
            cl.device_mut(dev)
                .conventional_mut()
                .stage_write_data(conv_lba, Bytes::from(fast_page.clone()));
            let _tag = cl.submit(
                dev,
                next_conv,
                CommandKind::Io(IoCommand::Write { lba: conv_lba, blocks: 1 }),
            );
            conv_lba += 1;
            next_conv += conv_interval;
            cl.advance(next_conv.min(end));
            // Reap completions so they do not accumulate.
            completions.clear();
            cl.completions_into(dev, next_conv.min(end), &mut completions);
        } else {
            if next_fast >= end {
                next_fast = SimTime::MAX;
                continue;
            }
            let t = f.x_pwrite(&mut cl, next_fast, &fast_page).expect("fast write");
            // Offered pacing: never faster than the offered rate; if the
            // device back-pressured us past the slot, carry on from there.
            next_fast = (next_fast + fast_interval).max(t);
        }
    }
    cl.advance(end);
    completions.clear();
    cl.completions_into(dev, end, &mut completions);
    // Snapshot what the flash arrays actually SERVED within the window —
    // the achieved bandwidth per class, the Fig. 12 metric. (Offered bytes
    // beyond this sit queued behind the scheduler.)
    let mut reg = MetricsRegistry::new();
    reg.collect("", &cl);
    reg.counter("bench.elapsed_ns", duration.as_nanos());
    reg.gauge("bench.fast_offered_pct", fast_fraction * 100.0);
    reg.snapshot()
}

/// (fast offered %, conventional MB/s, fast/destage MB/s) from a snapshot.
fn derive(snap: &Snapshot) -> (f64, f64, f64) {
    let elapsed = snap.counter("bench.elapsed_ns") as f64 / 1e9;
    let conv_bytes = snap.counter("ssd.served_conventional_bytes") as f64;
    let dest_bytes = snap.counter("ssd.served_destage_bytes") as f64;
    (snap.gauge("bench.fast_offered_pct"), conv_bytes / elapsed / 1e6, dest_bytes / elapsed / 1e6)
}

fn main() {
    cli::no_args("fig12_destage_priority", "Opportunistic destaging: scheduler policy sweep");
    let mut report = Report::new(
        "fig12_destage_priority",
        "Figure 12",
        "Opportunistic destaging: neutral vs. conventional priority",
        "conventional stream fixed at 50% of device bandwidth; fast stream swept 30-60%",
    );
    let duration = SimDuration::from_millis(60);
    // The paper shows neutral and conventional priority and notes the
    // destage-priority result is symmetric ("we obtained a similar result
    // when using destage priority"); all three run here.
    let modes = [(0u32, "neutral"), (2u32, "conventional-priority"), (1u32, "destage-priority")];
    let fractions = [0.30, 0.40, 0.50, 0.60];
    let grid: Vec<(u32, &str, f64)> = modes
        .iter()
        .flat_map(|&(code, label)| fractions.iter().map(move |&f| (code, label, f)))
        .collect();
    let snaps = sweep::map(&grid, |&(code, _, fast_pct)| run(code, fast_pct, duration));
    let table = Table::new(&[
        Col::left("mode", 24),
        Col::right("fast_off_%", 12),
        Col::right("conv_MB/s", 16),
        Col::right("fast_MB/s", 16),
    ]);
    for (&(_, mode_label, fast_pct), snap) in grid.iter().zip(snaps) {
        if fast_pct == fractions[0] {
            section(mode_label);
            println!("{}", table.header());
        }
        let (offered_pct, conv_mbps, fast_mbps) = derive(&snap);
        report.row(
            &table.row(&[
                Cell::str(mode_label),
                Cell::Float(offered_pct, 0),
                Cell::Float(conv_mbps, 1),
                Cell::Float(fast_mbps, 1),
            ]),
            Measurement::point(
                "fig12",
                format!("{mode_label}-conventional"),
                offered_pct,
                "fast_offered_pct",
                conv_mbps,
                "conv_MBps",
            )
            .with_extra(fast_mbps),
        );
        report.telemetry(format!("{mode_label}.fast{:.0}pct", fast_pct * 100.0), snap);
        if fast_pct == fractions[fractions.len() - 1] {
            println!();
        }
    }
    println!("expected shape (paper §6.4):");
    println!("  - neutral: once conventional+fast demand exceeds the device, both");
    println!("    streams lose bandwidth");
    println!("  - conventional priority: the conventional stream holds its ~50%");
    println!("    target; the fast stream absorbs the entire shortfall");
    report.finish().expect("write results json");
}
