//! Ablation — the Destage module's latency threshold (paper §4.3: "the
//! module may also decide to destage less data than a page in order to meet
//! a given latency threshold. It uses filler data to complete a page").
//!
//! The threshold trades NAND space efficiency (filler bytes per page)
//! against log read freshness (how long the tail takes to become readable
//! on the conventional side). A slow trickle of sub-page appends makes the
//! trade-off visible.
//!
//! The filler fraction is derived from the destage module's own telemetry
//! (`core.destage.lane0.{full,partial}_pages`, `filler_bytes`); per-deadline
//! snapshots land in `results/ablation_destage_deadline.json`.

use simkit::{MetricsRegistry, SimDuration, SimTime, Snapshot};
use xssd_bench::table::{Cell, Col, Table};
use xssd_bench::{cli, section, sweep, Measurement, Report};
use xssd_core::{Cluster, DestageConfig, VillarsConfig, XLogFile};

fn device(max_latency: SimDuration) -> (Cluster, usize) {
    let mut config = VillarsConfig::villars_sram();
    config.destage = DestageConfig { ring_base_lba: 0, ring_lbas: 1 << 16, max_latency };
    let mut cl = Cluster::new();
    let dev = cl.add_device(config);
    (cl, dev)
}

fn run(max_latency: SimDuration) -> Snapshot {
    let record = vec![0x33u8; 512];

    // Run A — space efficiency: paced appends only (512 B every 100 µs);
    // the destage module accumulates what the deadline allows.
    let (mut cl, dev) = device(max_latency);
    let mut f = XLogFile::open(dev);
    let mut now = SimTime::ZERO;
    for _ in 0..400 {
        let t = f.x_pwrite(&mut cl, now, &record).expect("append");
        now = t.max(now) + SimDuration::from_micros(100);
        cl.advance(now);
    }
    cl.advance(now + max_latency + SimDuration::from_millis(2));
    let page_bytes = cl.device(dev).config().conventional.geometry.page_bytes as u64;

    // Run B — freshness: a reader waits for each record to reach NAND (the
    // blocking read intentionally exposes the worst-case deadline wait).
    let (mut cl_b, dev_b) = device(max_latency);
    let mut f = XLogFile::open(dev_b);
    let mut now = SimTime::ZERO;
    let mut freshness = simkit::SampleSeries::new();
    for _ in 0..50 {
        let written_at = f.x_pwrite(&mut cl_b, now, &record).expect("append");
        let (readable_at, _bytes) = f.x_pread(&mut cl_b, written_at, record.len()).expect("tail");
        freshness.record(readable_at.saturating_since(written_at).as_micros_f64());
        now = readable_at + SimDuration::from_micros(100);
    }

    // Snapshot run A's device stack (the space-efficiency run), tagged with
    // run B's freshness outcome.
    let mut reg = MetricsRegistry::new();
    reg.collect("", &cl);
    reg.counter("bench.page_bytes", page_bytes);
    reg.gauge("bench.read_freshness_us", freshness.mean());
    reg.snapshot()
}

/// (filler fraction, mean tail-read freshness µs) from the snapshot.
fn derive(snap: &Snapshot) -> (f64, f64) {
    let total_pages = snap.counter("core.destage.lane0.full_pages")
        + snap.counter("core.destage.lane0.partial_pages");
    let filler_fraction = if total_pages == 0 {
        0.0
    } else {
        snap.counter("core.destage.lane0.filler_bytes") as f64
            / (total_pages * snap.counter("bench.page_bytes")) as f64
    };
    (filler_fraction, snap.gauge("bench.read_freshness_us"))
}

fn main() {
    cli::no_args("ablation_destage_deadline", "Filler waste vs. tail-read freshness");
    let mut report = Report::new(
        "ablation_destage_deadline",
        "Ablation: destage latency threshold",
        "Filler waste vs. tail-read freshness for the destage deadline",
        "512 B appends every 100 us; deadline swept 50 us - 5 ms",
    );
    section("per-deadline outcome");
    let table = Table::new(&[
        Col::left("deadline_us", 14),
        Col::right("filler_frac", 16),
        Col::right("read_freshness_us", 20),
    ]);
    println!("{}", table.header());
    let deadlines = [50u64, 200, 1000, 5000];
    let snaps = sweep::map(&deadlines, |&us| run(SimDuration::from_micros(us)));
    for (&deadline_us, snap) in deadlines.iter().zip(snaps) {
        let (filler_fraction, freshness_us) = derive(&snap);
        report.row(
            &table.row(&[
                Cell::Int(deadline_us),
                Cell::Float(filler_fraction, 3),
                Cell::Float(freshness_us, 1),
            ]),
            Measurement::point(
                "ablation_deadline",
                "destage-deadline",
                deadline_us as f64,
                "deadline_us",
                filler_fraction,
                "filler_fraction",
            )
            .with_extra(freshness_us),
        );
        report.telemetry(format!("deadline{deadline_us}us"), snap);
    }
    println!();
    println!("expected: a short deadline destages eagerly — fresh tail reads but");
    println!("pages dominated by filler; a long deadline amortizes full pages at the");
    println!("cost of read staleness. The paper's 'meet a given latency threshold'");
    println!("knob, quantified.");
    report.finish().expect("write results json");
}
