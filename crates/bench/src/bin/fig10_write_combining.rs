//! Fig. 10 — Effects of Write Combining.
//!
//! "Comparison of different write sizes under write-combine and uncached
//! when writing to device SRAM (left) and DRAM (right)" (paper §6.2). A
//! synthetic store stream pushes writes of 1–256 bytes through the fast
//! side; throughput is normalized to the best observed value per backing
//! class.

use pcie::MmioMode;
use simkit::SimTime;
use xssd_bench::{header, row, section, Measurement};
use xssd_core::{Cluster, VillarsConfig, XLogFile};

/// Sustained fast-side throughput (MB/s) for `write_size` stores under
/// `mode` against the given device config.
fn throughput(config: VillarsConfig, write_size: usize, mode: MmioMode) -> f64 {
    let mut cl = Cluster::new();
    let dev = cl.add_device(config);
    let mut f = XLogFile::open_lane(dev, 0, mode);
    // Enough volume to reach steady state, in whole-write units.
    let total: usize = 256 << 10;
    let count = total / write_size;
    let data = vec![0xA5u8; write_size];
    let mut now = SimTime::ZERO;
    for _ in 0..count {
        now = f.x_pwrite(&mut cl, now, &data).expect("fast-side write");
    }
    now = f.x_fsync(&mut cl, now).expect("x_fsync");
    (count * write_size) as f64 / now.as_secs_f64() / 1e6
}

fn main() {
    header(
        "Figure 10",
        "Write sizes under Write-Combining vs. Uncached, SRAM and DRAM backing",
        "synthetic store stream, 1-256 B writes, throughput normalized to the per-backing best",
    );
    let sizes = [1usize, 2, 4, 8, 16, 32, 64, 128, 256];
    for (backing, cfg) in [
        ("sram", VillarsConfig::villars_sram()),
        ("dram", VillarsConfig::villars_dram()),
    ] {
        section(&format!("{backing}-backed CMB"));
        // Collect raw throughputs first, then normalize to the best.
        let mut results = Vec::new();
        for &s in &sizes {
            for mode in [MmioMode::WriteCombining, MmioMode::Uncached] {
                let t = throughput(cfg.clone(), s, mode);
                results.push((s, mode, t));
            }
        }
        let best = results.iter().map(|(_, _, t)| *t).fold(0.0, f64::max);
        println!(
            "{:<8} {:>10} {:>6} {:>12} {:>12}",
            "backing", "write_B", "mode", "MB/s", "normalized"
        );
        for (s, mode, t) in results {
            let mode_label = match mode {
                MmioMode::WriteCombining => "wc",
                MmioMode::Uncached => "uc",
            };
            let series = format!("{backing}-{mode_label}");
            row(
                &format!(
                    "{:<8} {:>10} {:>6} {:>12.1} {:>12.3}",
                    backing,
                    s,
                    mode_label,
                    t,
                    t / best
                ),
                &Measurement::point(
                    "fig10",
                    series,
                    s as f64,
                    "write_bytes",
                    t / best,
                    "normalized_throughput",
                )
                .with_extra(t),
            );
        }
        println!();
    }
    println!("expected shape (paper §6.2):");
    println!("  - WC >= UC at every size");
    println!("  - SRAM: maximum throughput only at 64 B (the WC buffer size)");
    println!("  - DRAM: plateau from ~16 B (the derated shared port becomes the");
    println!("    bottleneck before TLP efficiency does)");
}
