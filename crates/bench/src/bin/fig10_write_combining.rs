//! Fig. 10 — Effects of Write Combining.
//!
//! "Comparison of different write sizes under write-combine and uncached
//! when writing to device SRAM (left) and DRAM (right)" (paper §6.2). A
//! synthetic store stream pushes writes of 1–256 bytes through the fast
//! side; throughput is normalized to the best observed value per backing
//! class.
//!
//! Throughput is derived from the device's own telemetry — bytes landed in
//! the CMB (`core.fast.bytes_in`) over the simulated elapsed time — and the
//! per-run snapshots ship in `results/fig10_write_combining.json`.

use pcie::MmioMode;
use simkit::{MetricsRegistry, SimTime, Snapshot};
use xssd_bench::table::{Cell, Col, Table};
use xssd_bench::{cli, section, sweep, Measurement, Report};
use xssd_core::{Cluster, VillarsConfig, XLogFile};

/// Push `total` bytes of `write_size` stores under `mode` and snapshot the
/// device stack, tagging the run's elapsed simulated time.
fn run(config: VillarsConfig, write_size: usize, mode: MmioMode) -> Snapshot {
    let mut cl = Cluster::new();
    let dev = cl.add_device(config);
    let mut f = XLogFile::open_lane(dev, 0, mode);
    // Enough volume to reach steady state, in whole-write units.
    let total: usize = 256 << 10;
    let count = total / write_size;
    let data = vec![0xA5u8; write_size];
    let mut now = SimTime::ZERO;
    for _ in 0..count {
        now = f.x_pwrite(&mut cl, now, &data).expect("fast-side write");
    }
    now = f.x_fsync(&mut cl, now).expect("x_fsync");
    let mut reg = MetricsRegistry::new();
    reg.collect("", &cl);
    reg.counter("bench.elapsed_ns", now.saturating_since(SimTime::ZERO).as_nanos());
    reg.counter("bench.payload_bytes", (count * write_size) as u64);
    reg.snapshot()
}

/// Sustained fast-side MB/s, read back out of the run's snapshot.
fn derive_mbps(snap: &Snapshot) -> f64 {
    let bytes = snap.counter("bench.payload_bytes") as f64;
    let secs = snap.counter("bench.elapsed_ns") as f64 / 1e9;
    if secs > 0.0 {
        bytes / secs / 1e6
    } else {
        0.0
    }
}

fn main() {
    cli::no_args("fig10_write_combining", "Write sizes under WC vs. UC, SRAM and DRAM backing");
    let mut report = Report::new(
        "fig10_write_combining",
        "Figure 10",
        "Write sizes under Write-Combining vs. Uncached, SRAM and DRAM backing",
        "synthetic store stream, 1-256 B writes, throughput normalized to the per-backing best",
    );
    let sizes = [1usize, 2, 4, 8, 16, 32, 64, 128, 256];
    let table = Table::new(&[
        Col::left("backing", 8),
        Col::right("write_B", 10),
        Col::right("mode", 6),
        Col::right("MB/s", 12),
        Col::right("normalized", 12),
    ]);
    for (backing, cfg) in
        [("sram", VillarsConfig::villars_sram()), ("dram", VillarsConfig::villars_dram())]
    {
        section(&format!("{backing}-backed CMB"));
        // Sweep the (size, mode) grid for this backing in parallel, then
        // normalize to the best — a cross-cell reduction, which is why it
        // happens here in the ordered collection loop, not in a cell.
        let grid: Vec<(usize, MmioMode)> = sizes
            .iter()
            .flat_map(|&s| [MmioMode::WriteCombining, MmioMode::Uncached].map(|m| (s, m)))
            .collect();
        let snaps = sweep::map(&grid, |&(s, mode)| run(cfg.clone(), s, mode));
        let results: Vec<(usize, MmioMode, f64, Snapshot)> = grid
            .iter()
            .zip(snaps)
            .map(|(&(s, mode), snap)| {
                let t = derive_mbps(&snap);
                (s, mode, t, snap)
            })
            .collect();
        let best = results.iter().map(|(_, _, t, _)| *t).fold(0.0, f64::max);
        println!("{}", table.header());
        for (s, mode, t, snap) in results {
            let mode_label = match mode {
                MmioMode::WriteCombining => "wc",
                MmioMode::Uncached => "uc",
            };
            let series = format!("{backing}-{mode_label}");
            report.row(
                &table.row(&[
                    Cell::str(backing),
                    Cell::from(s),
                    Cell::str(mode_label),
                    Cell::Float(t, 1),
                    Cell::Float(t / best, 3),
                ]),
                Measurement::point(
                    "fig10",
                    series.clone(),
                    s as f64,
                    "write_bytes",
                    t / best,
                    "normalized_throughput",
                )
                .with_extra(t),
            );
            report.telemetry(format!("{series}.{s}B"), snap);
        }
        println!();
    }
    println!("expected shape (paper §6.2):");
    println!("  - WC >= UC at every size");
    println!("  - SRAM: maximum throughput only at 64 B (the WC buffer size)");
    println!("  - DRAM: plateau from ~16 B (the derated shared port becomes the");
    println!("    bottleneck before TLP efficiency does)");
    report.finish().expect("write results json");
}
