//! Fig. 9 — Logging to local storage.
//!
//! "Comparison of latency (left) and throughput (right) with an increasing
//! number of log writes and under different local logging setups" (paper
//! §6.1). Five setups: No Log / Memory (NVDIMM) / NVMe (conventional side)
//! / Villars-SRAM / Villars-DRAM, each swept over 1–8 workers running
//! TPC-C with a 16 KiB group-commit threshold.
//!
//! Each cell is one `bench::driver` run: the TPC-C workload under the
//! standard mix, closed-loop, measured for 150 ms of simulated time.
//! Every printed number is derived from the telemetry [`Snapshot`] captured
//! after each run — the same snapshot the `results/fig09_local_logging.json`
//! file embeds — so the table and the export cannot drift apart.

use memdb::{
    Database, LogBackend, NoLog, NvmeLog, PmConfig, PmLog, WalConfig, WalManager, XssdLog,
};
use simkit::{MetricValue, MetricsRegistry, SimDuration, Snapshot};
use ssd::{ConventionalSsd, SsdConfig};
use tpcc::{setup, TpccConfig, TpccWorkload};
use xssd_bench::driver::{self, DriverConfig};
use xssd_bench::table::{Cell, Col, Table};
use xssd_bench::{cli, section, sweep, Measurement, Report};
use xssd_core::{Cluster, VillarsConfig};

/// The five Fig. 9 logging setups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Setup {
    NoLog,
    Memory,
    Nvme,
    VillarsSram,
    VillarsDram,
}

impl Setup {
    fn label(self) -> &'static str {
        match self {
            Setup::NoLog => "no-log",
            Setup::Memory => "memory-nvdimm",
            Setup::Nvme => "nvme-conventional",
            Setup::VillarsSram => "villars-sram",
            Setup::VillarsDram => "villars-dram",
        }
    }
}

/// The conventional device used for log storage in the NVMe setup: same
/// platform, with the log region running in fast-page (SLC-cached) mode as
/// log-dedicated regions commonly do.
fn log_ssd() -> ConventionalSsd {
    let mut cfg = SsdConfig::default();
    cfg.timing.t_prog = SimDuration::from_micros(200);
    ConventionalSsd::new(cfg)
}

fn villars_cluster(sram: bool) -> Cluster {
    let mut config =
        if sram { VillarsConfig::villars_sram() } else { VillarsConfig::villars_dram() };
    // Keep the CMB window at the paper's 32 KiB flow-control queue.
    config.cmb.intake_queue_bytes = 32 << 10;
    let mut cl = Cluster::new();
    cl.add_device(config);
    cl
}

/// Run one (setup, workers) cell and collect the full cross-stack telemetry
/// snapshot: DB-level run counters, WAL counters, the backend's device stack
/// (PCIe / SSD / flash / core groups where the backend has one), and the
/// TPC-C mix.
fn run_one<B: LogBackend + simkit::Instrument>(
    db: &mut Database,
    workload: &mut TpccWorkload,
    backend: B,
    cfg: &DriverConfig,
) -> Snapshot {
    let mut wal = WalManager::new(backend, WalConfig::default()); // 16 KiB group threshold
    let mut report = driver::run(db, &mut wal, workload, cfg);
    let exact_p99 = report.exact_p99_us();
    let mut reg = MetricsRegistry::new();
    reg.collect("", &report);
    reg.collect("", &wal);
    reg.collect("", &*workload);
    // The bucketed `db.commit_latency_us` p99 is a power-of-two lower bound;
    // keep the exact-sample value alongside it for the printed table.
    reg.gauge("db.commit_latency_p99_us_exact", exact_p99);
    reg.snapshot()
}

fn run(setup_kind: Setup, workers: usize) -> Snapshot {
    let (mut db, mut workload, _rng) = setup(TpccConfig::bench(), 0x716 + workers as u64);
    let cfg = DriverConfig {
        workers,
        measure: SimDuration::from_millis(150),
        seed: 0xF160_9000 + workers as u64,
        ..DriverConfig::default()
    };
    match setup_kind {
        Setup::NoLog => run_one(&mut db, &mut workload, NoLog::new(), &cfg),
        Setup::Memory => run_one(&mut db, &mut workload, PmLog::new(PmConfig::default()), &cfg),
        Setup::Nvme => run_one(&mut db, &mut workload, NvmeLog::new(log_ssd(), 0, 8192), &cfg),
        Setup::VillarsSram => run_one(
            &mut db,
            &mut workload,
            XssdLog::new(villars_cluster(true), 0, "villars-sram"),
            &cfg,
        ),
        Setup::VillarsDram => run_one(
            &mut db,
            &mut workload,
            XssdLog::new(villars_cluster(false), 0, "villars-dram"),
            &cfg,
        ),
    }
}

/// Derive the figure's three series values from a snapshot.
fn derive(snap: &Snapshot) -> (f64, f64, f64) {
    let commits = snap.counter("db.commits") as f64;
    let elapsed_s = snap.counter("db.elapsed_ns") as f64 / 1e9;
    let tps = if elapsed_s > 0.0 { commits / elapsed_s } else { 0.0 };
    let mean_us = match snap.get("db.commit_latency_us") {
        Some(MetricValue::Latency { mean_us, .. }) => *mean_us,
        _ => 0.0,
    };
    let p99_us = snap.gauge("db.commit_latency_p99_us_exact");
    (tps, mean_us, p99_us)
}

fn main() {
    cli::no_args("fig09_local_logging", "TPC-C latency & throughput per local-logging setup");
    let mut report = Report::new(
        "fig09_local_logging",
        "Figure 9",
        "Local logging: latency & throughput vs. worker count",
        "TPC-C (bench scale), 16 KiB group commit, setups: no-log / NVDIMM / NVMe / Villars-SRAM / Villars-DRAM",
    );
    let setups = [Setup::NoLog, Setup::Memory, Setup::Nvme, Setup::VillarsSram, Setup::VillarsDram];
    let workers = [1usize, 2, 4, 8];
    // The (setup, workers) grid in row order; each cell is an isolated
    // simulation, so the sweep runs them on all cores and hands the
    // snapshots back in this exact order.
    let grid: Vec<(Setup, usize)> =
        setups.iter().flat_map(|&s| workers.iter().map(move |&w| (s, w))).collect();
    let snaps = sweep::map(&grid, |&(s, w)| run(s, w));
    section("throughput (committed txn/s) and mean latency (us)");
    let table = Table::new(&[
        Col::left("setup", 20),
        Col::right("workers", 8),
        Col::right("ktxn/s", 14),
        Col::right("mean_lat_us", 14),
        Col::right("p99_lat_us", 14),
    ]);
    println!("{}", table.header());
    for (&(s, w), snap) in grid.iter().zip(snaps) {
        let (tps, mean_us, p99_us) = derive(&snap);
        report.row(
            &table.row(&[
                Cell::str(s.label()),
                Cell::from(w),
                Cell::Float(tps / 1e3, 1),
                Cell::Float(mean_us, 1),
                Cell::Float(p99_us, 1),
            ]),
            Measurement::point("fig09", s.label(), w as f64, "workers", tps, "txn_per_sec")
                .with_extra(mean_us),
        );
        report.telemetry(format!("{}.w{}", s.label(), w), snap);
    }
    println!();
    println!("expected shape (paper §6.1):");
    println!("  - latency: no-log < memory ~ villars-sram < villars-dram << nvme (log scale)");
    println!("  - latency decreases as workers increase (16 KiB group fills sooner)");
    println!("  - throughput: setups comparable at low worker counts; the NVMe path");
    println!("    saturates (queue depth 1 on the log) while the PM-class paths keep scaling");
    report.finish().expect("write results json");
}
