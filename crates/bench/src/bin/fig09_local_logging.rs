//! Fig. 9 — Logging to local storage.
//!
//! "Comparison of latency (left) and throughput (right) with an increasing
//! number of log writes and under different local logging setups" (paper
//! §6.1). Five setups: No Log / Memory (NVDIMM) / NVMe (conventional side)
//! / Villars-SRAM / Villars-DRAM, each swept over 1–8 workers running
//! TPC-C with a 16 KiB group-commit threshold.

use memdb::{
    run_workload, NoLog, NvmeLog, PmConfig, PmLog, RunnerConfig, WalConfig, WalManager,
    XssdLog,
};
use simkit::{SimDuration, SimTime};
use ssd::{ConventionalSsd, SsdConfig};
use tpcc::{setup, TpccConfig};
use xssd_bench::{header, row, section, Measurement};
use xssd_core::{Cluster, VillarsConfig};

/// The five Fig. 9 logging setups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Setup {
    NoLog,
    Memory,
    Nvme,
    VillarsSram,
    VillarsDram,
}

impl Setup {
    fn label(self) -> &'static str {
        match self {
            Setup::NoLog => "no-log",
            Setup::Memory => "memory-nvdimm",
            Setup::Nvme => "nvme-conventional",
            Setup::VillarsSram => "villars-sram",
            Setup::VillarsDram => "villars-dram",
        }
    }
}

/// The conventional device used for log storage in the NVMe setup: same
/// platform, with the log region running in fast-page (SLC-cached) mode as
/// log-dedicated regions commonly do.
fn log_ssd() -> ConventionalSsd {
    let mut cfg = SsdConfig::default();
    cfg.timing.t_prog = SimDuration::from_micros(200);
    ConventionalSsd::new(cfg)
}

fn villars_cluster(sram: bool) -> Cluster {
    let mut config = if sram {
        VillarsConfig::villars_sram()
    } else {
        VillarsConfig::villars_dram()
    };
    // Keep the CMB window at the paper's 32 KiB flow-control queue.
    config.cmb.intake_queue_bytes = 32 << 10;
    let mut cl = Cluster::new();
    cl.add_device(config);
    cl
}

fn run(setup_kind: Setup, workers: usize) -> (f64, f64, f64) {
    let (mut db, mut workload, _rng) = setup(TpccConfig::bench(), 0x716 + workers as u64);
    let runner = RunnerConfig {
        workers,
        duration: SimDuration::from_millis(150),
        seed: 0xF160_9000 + workers as u64,
        ..RunnerConfig::default()
    };
    let wal_cfg = WalConfig::default(); // 16 KiB group threshold
    let report = match setup_kind {
        Setup::NoLog => {
            let mut wal = WalManager::new(NoLog::new(), wal_cfg);
            run_workload(&mut db, &mut wal, runner, |db, rng, _| workload.execute(db, rng, 0))
        }
        Setup::Memory => {
            let mut wal = WalManager::new(PmLog::new(PmConfig::default()), wal_cfg);
            run_workload(&mut db, &mut wal, runner, |db, rng, _| workload.execute(db, rng, 0))
        }
        Setup::Nvme => {
            let mut wal = WalManager::new(NvmeLog::new(log_ssd(), 0, 8192), wal_cfg);
            run_workload(&mut db, &mut wal, runner, |db, rng, _| workload.execute(db, rng, 0))
        }
        Setup::VillarsSram => {
            let mut wal =
                WalManager::new(XssdLog::new(villars_cluster(true), 0, "villars-sram"), wal_cfg);
            run_workload(&mut db, &mut wal, runner, |db, rng, _| workload.execute(db, rng, 0))
        }
        Setup::VillarsDram => {
            let mut wal =
                WalManager::new(XssdLog::new(villars_cluster(false), 0, "villars-dram"), wal_cfg);
            run_workload(&mut db, &mut wal, runner, |db, rng, _| workload.execute(db, rng, 0))
        }
    };
    let tps = report.throughput_tps();
    let mut latency = report.latency_us;
    let mean = latency.mean();
    let p99 = latency.percentile(99.0);
    (tps, mean, p99)
}

fn main() {
    header(
        "Figure 9",
        "Local logging: latency & throughput vs. worker count",
        "TPC-C (bench scale), 16 KiB group commit, setups: no-log / NVDIMM / NVMe / Villars-SRAM / Villars-DRAM",
    );
    let _ = SimTime::ZERO;
    let setups =
        [Setup::NoLog, Setup::Memory, Setup::Nvme, Setup::VillarsSram, Setup::VillarsDram];
    let workers = [1usize, 2, 4, 8];
    section("throughput (committed txn/s) and mean latency (us)");
    println!(
        "{:<20} {:>8} {:>14} {:>14} {:>14}",
        "setup", "workers", "ktxn/s", "mean_lat_us", "p99_lat_us"
    );
    for s in setups {
        for w in workers {
            let (tps, mean_us, p99_us) = run(s, w);
            row(
                &format!(
                    "{:<20} {:>8} {:>14.1} {:>14.1} {:>14.1}",
                    s.label(),
                    w,
                    tps / 1e3,
                    mean_us,
                    p99_us
                ),
                &Measurement::point("fig09", s.label(), w as f64, "workers", tps, "txn_per_sec")
                    .with_extra(mean_us),
            );
        }
    }
    println!();
    println!("expected shape (paper §6.1):");
    println!("  - latency: no-log < memory ~ villars-sram < villars-dram << nvme (log scale)");
    println!("  - latency decreases as workers increase (16 KiB group fills sooner)");
    println!("  - throughput: setups comparable at low worker counts; the NVMe path");
    println!("    saturates (queue depth 1 on the log) while the PM-class paths keep scaling");
}
