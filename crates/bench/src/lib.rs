//! # xssd-bench — figure-regeneration harnesses
//!
//! One binary per paper figure (`fig09_*` … `fig13_*`, plus the ablation
//! studies DESIGN.md lists, the `chaos_tpcc` fault capstone, and the
//! `all_figures` driver that runs everything). Each prints the series the
//! paper plots — as an aligned table on stdout and as JSON rows (one
//! object per line, prefixed `JSON `) — and, through [`Report`], writes a
//! machine-readable `results/<name>.json` that bundles every row with the
//! telemetry [`Snapshot`]s the numbers were derived from.
//! `docs/OBSERVABILITY.md` documents the schema and a worked example;
//! `docs/HARNESSES.md` documents every harness, every environment knob,
//! and the goldens workflow.
//!
//! Every harness runs its figure grid through [`sweep`]: independent
//! `(config, seed)` cells execute on a scoped thread pool sized by
//! `XSSD_BENCH_THREADS` (default: all host cores; `1` is the sequential
//! oracle), and rows/telemetry are collected in grid order so the output —
//! stdout and `results/*.json` alike — is byte-identical at any thread
//! count. Environment knobs:
//!
//! - `XSSD_BENCH_THREADS` — sweep worker count (see [`sweep::threads`]).
//! - `XSSD_RESULTS_DIR` — where [`Report::finish`] writes the results
//!   JSON (default `results/`).

#![warn(missing_docs)]

pub mod cli;
pub mod driver;
pub mod kernels;
pub mod sweep;
pub mod table;
pub mod ycsb;

use simkit::telemetry::json::Json;
use simkit::telemetry::Snapshot;
use std::path::PathBuf;

/// Print the standard experiment header.
pub fn header(fig: &str, title: &str, knobs: &str) {
    println!("==============================================================");
    println!("{fig}: {title}");
    if !knobs.is_empty() {
        println!("  {knobs}");
    }
    println!("==============================================================");
}

/// Emit a section separator.
pub fn section(name: &str) {
    println!("--- {name} ---");
}

/// A generic labelled measurement row used across figures.
#[derive(Debug)]
pub struct Measurement {
    /// Figure identifier (e.g. "fig09").
    pub fig: &'static str,
    /// Series label (e.g. "villars-sram").
    pub series: String,
    /// X-axis value.
    pub x: f64,
    /// X-axis meaning.
    pub x_label: &'static str,
    /// Primary measured value.
    pub y: f64,
    /// Y meaning/unit.
    pub y_label: &'static str,
    /// Optional secondary value (e.g. p99, bandwidth %).
    pub extra: Option<f64>,
    /// Optional distribution summary (Fig. 13 candlesticks).
    pub candle: Option<simkit::Candlestick>,
}

impl Measurement {
    /// A plain (x, y) measurement.
    pub fn point(
        fig: &'static str,
        series: impl Into<String>,
        x: f64,
        x_label: &'static str,
        y: f64,
        y_label: &'static str,
    ) -> Self {
        Measurement {
            fig,
            series: series.into(),
            x,
            x_label,
            y,
            y_label,
            extra: None,
            candle: None,
        }
    }

    /// Attach a secondary value.
    pub fn with_extra(mut self, extra: f64) -> Self {
        self.extra = Some(extra);
        self
    }

    /// Attach a candlestick.
    pub fn with_candle(mut self, candle: simkit::Candlestick) -> Self {
        self.candle = Some(candle);
        self
    }

    /// The row as a JSON object; optional fields are omitted when unset.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("fig", Json::str(self.fig)),
            ("series", Json::str(self.series.clone())),
            ("x", Json::F64(self.x)),
            ("x_label", Json::str(self.x_label)),
            ("y", Json::F64(self.y)),
            ("y_label", Json::str(self.y_label)),
        ];
        if let Some(extra) = self.extra {
            fields.push(("extra", Json::F64(extra)));
        }
        if let Some(c) = self.candle {
            fields.push((
                "candle",
                Json::object([
                    ("min", Json::F64(c.min)),
                    ("p25", Json::F64(c.p25)),
                    ("p50", Json::F64(c.p50)),
                    ("p75", Json::F64(c.p75)),
                    ("max", Json::F64(c.max)),
                ]),
            ));
        }
        Json::object(fields)
    }
}

/// Accumulates a figure run — printed rows plus the telemetry snapshots the
/// numbers came from — and writes `results/<name>.json` on [`Report::finish`].
#[derive(Debug)]
pub struct Report {
    name: &'static str,
    rows: Vec<Measurement>,
    telemetry: Vec<(String, Snapshot)>,
}

impl Report {
    /// Start a report for the binary named `name` (the `results/` file
    /// stem), printing the standard header.
    pub fn new(name: &'static str, fig: &str, title: &str, knobs: &str) -> Self {
        header(fig, title, knobs);
        Report { name, rows: Vec::new(), telemetry: Vec::new() }
    }

    /// Emit one row: aligned human-readable columns on stdout, a
    /// machine-readable `JSON `-prefixed line, and an entry in the results
    /// document.
    pub fn row(&mut self, human: &str, record: Measurement) {
        println!("{human}");
        println!("JSON {}", record.to_json());
        self.rows.push(record);
    }

    /// Attach a labelled registry snapshot (one per series/configuration).
    /// Labels must be unique within a report; re-using one panics, since the
    /// later snapshot would silently shadow the earlier in the export.
    pub fn telemetry(&mut self, label: impl Into<String>, snap: Snapshot) {
        let label = label.into();
        assert!(
            self.telemetry.iter().all(|(l, _)| *l != label),
            "duplicate telemetry label `{label}`"
        );
        self.telemetry.push((label, snap));
    }

    /// The results document (also what `finish` writes).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("schema", Json::str("xssd-results/v1")),
            ("name", Json::str(self.name)),
            ("rows", Json::Array(self.rows.iter().map(Measurement::to_json).collect())),
            (
                "telemetry",
                Json::Object(
                    self.telemetry
                        .iter()
                        .map(|(label, snap)| (label.clone(), snap.metrics_json()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Write `results/<name>.json` (creating `results/` if needed) and
    /// print its path. Set `XSSD_RESULTS_DIR` to redirect the output.
    pub fn finish(self) -> std::io::Result<PathBuf> {
        let dir = std::env::var_os("XSSD_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("results"));
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.name));
        let mut doc = self.to_json().pretty();
        doc.push('\n');
        std::fs::write(&path, doc)?;
        println!();
        println!("metrics: {}", path.display());
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_serializes_minimal_and_full() {
        let m = Measurement::point("fig09", "no-log", 4.0, "workers", 150_000.0, "txn/s");
        let json = m.to_json().to_string();
        assert!(json.contains("\"fig\":\"fig09\""));
        assert!(!json.contains("extra"));
        let m2 = m.with_extra(42.0);
        let json2 = m2.to_json().to_string();
        assert!(json2.contains("\"extra\":42.0"));
    }

    #[test]
    fn report_document_shape() {
        let mut reg = simkit::MetricsRegistry::new();
        reg.counter("memdb.commits", 7);
        let mut report = Report { name: "unit_test", rows: Vec::new(), telemetry: Vec::new() };
        report.rows.push(Measurement::point("t", "s", 1.0, "x", 2.0, "y"));
        report.telemetry("s", reg.snapshot());
        let doc = report.to_json().to_string();
        assert!(doc.contains("\"schema\":\"xssd-results/v1\""));
        assert!(doc.contains("\"memdb.commits\":7"));
    }

    #[test]
    #[should_panic(expected = "duplicate telemetry label")]
    fn duplicate_labels_rejected() {
        let reg = simkit::MetricsRegistry::new();
        let mut report = Report { name: "unit_test", rows: Vec::new(), telemetry: Vec::new() };
        report.telemetry("a", reg.snapshot());
        report.telemetry("a", reg.snapshot());
    }
}
