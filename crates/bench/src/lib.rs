//! # xssd-bench — figure-regeneration harnesses
//!
//! One binary per paper figure (`fig09_*` … `fig13_*`, plus the ablation
//! studies DESIGN.md lists). Each prints the series the paper plots — as an
//! aligned table on stdout and as JSON rows (one object per line, prefixed
//! `JSON `) so EXPERIMENTS.md can be regenerated mechanically.

#![warn(missing_docs)]

use serde::Serialize;

/// Print the standard experiment header.
pub fn header(fig: &str, title: &str, knobs: &str) {
    println!("==============================================================");
    println!("{fig}: {title}");
    if !knobs.is_empty() {
        println!("  {knobs}");
    }
    println!("==============================================================");
}

/// Emit one row: aligned human-readable columns plus a machine-readable
/// JSON record.
pub fn row<T: Serialize>(human: &str, record: &T) {
    println!("{human}");
    println!("JSON {}", serde_json::to_string(record).expect("row serializes"));
}

/// Emit a section separator.
pub fn section(name: &str) {
    println!("--- {name} ---");
}

/// A generic labelled measurement row used across figures.
#[derive(Debug, Serialize)]
pub struct Measurement {
    /// Figure identifier (e.g. "fig09").
    pub fig: &'static str,
    /// Series label (e.g. "villars-sram").
    pub series: String,
    /// X-axis value.
    pub x: f64,
    /// X-axis meaning.
    pub x_label: &'static str,
    /// Primary measured value.
    pub y: f64,
    /// Y meaning/unit.
    pub y_label: &'static str,
    /// Optional secondary value (e.g. p99, bandwidth %).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub extra: Option<f64>,
    /// Optional distribution summary (Fig. 13 candlesticks).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub candle: Option<simkit::Candlestick>,
}

impl Measurement {
    /// A plain (x, y) measurement.
    pub fn point(
        fig: &'static str,
        series: impl Into<String>,
        x: f64,
        x_label: &'static str,
        y: f64,
        y_label: &'static str,
    ) -> Self {
        Measurement {
            fig,
            series: series.into(),
            x,
            x_label,
            y,
            y_label,
            extra: None,
            candle: None,
        }
    }

    /// Attach a secondary value.
    pub fn with_extra(mut self, extra: f64) -> Self {
        self.extra = Some(extra);
        self
    }

    /// Attach a candlestick.
    pub fn with_candle(mut self, candle: simkit::Candlestick) -> Self {
        self.candle = Some(candle);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_serializes_minimal_and_full() {
        let m = Measurement::point("fig09", "no-log", 4.0, "workers", 150_000.0, "txn/s");
        let json = serde_json::to_string(&m).unwrap();
        assert!(json.contains("\"fig\":\"fig09\""));
        assert!(!json.contains("extra"));
        let m2 = m.with_extra(42.0);
        let json2 = serde_json::to_string(&m2).unwrap();
        assert!(json2.contains("\"extra\":42.0"));
    }
}
