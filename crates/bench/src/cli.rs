//! Shared harness argument parsing.
//!
//! Every harness binary funnels `std::env::args` through here, so all
//! twelve get the same `--help`/`-h` text, the same environment-knob
//! summary, and a hard error (exit 2) on unknown arguments — instead of
//! silently ignoring them or panicking on a bad index.

use std::fmt::Write as _;

/// What parsing decided, before any process exit.
#[derive(Debug, PartialEq, Eq)]
pub enum Parsed {
    /// Run the harness with these positional arguments.
    Run(Vec<String>),
    /// `--help`/`-h`: print usage and exit 0.
    Help,
    /// An argument the harness does not take (flag or unexpected
    /// positional): print the message + usage to stderr and exit 2.
    Error(String),
}

/// A harness's argument surface: a name, a one-line description, and at
/// most one repeatable positional.
#[derive(Debug)]
pub struct Cli {
    name: &'static str,
    about: &'static str,
    positional: Option<(&'static str, &'static str)>,
}

impl Cli {
    /// A harness taking no arguments.
    pub fn new(name: &'static str, about: &'static str) -> Self {
        Cli { name, about, positional: None }
    }

    /// Declare a repeatable positional argument (metavar + help line).
    pub fn positional(mut self, metavar: &'static str, help: &'static str) -> Self {
        self.positional = Some((metavar, help));
        self
    }

    /// The full usage text.
    pub fn usage(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{} — {}", self.name, self.about);
        let _ = writeln!(s);
        match self.positional {
            Some((meta, _)) => {
                let _ = writeln!(s, "usage: {} [{meta}...]", self.name);
            }
            None => {
                let _ = writeln!(s, "usage: {}", self.name);
            }
        }
        if let Some((meta, help)) = self.positional {
            let _ = writeln!(s);
            let _ = writeln!(s, "arguments:");
            let _ = writeln!(s, "  {meta:<18} {help}");
        }
        let _ = writeln!(s);
        let _ = writeln!(s, "options:");
        let _ = writeln!(s, "  -h, --help         print this help and exit");
        let _ = writeln!(s);
        let _ = writeln!(s, "environment (docs/HARNESSES.md):");
        let _ = writeln!(s, "  XSSD_BENCH_THREADS sweep worker count (1 = sequential oracle)");
        let _ = writeln!(s, "  XSSD_SIM_THREADS   parallel cluster core executors (default 1)");
        let _ = writeln!(s, "  XSSD_SIM_METRICS   opt into sim.* scheduler telemetry");
        let _ = writeln!(s, "  XSSD_RESULTS_DIR   where results/<name>.json is written");
        s
    }

    /// Classify raw arguments (everything after argv[0]). Pure, so tests
    /// can drive it without a process exit.
    pub fn parse<S: AsRef<str>>(&self, args: &[S]) -> Parsed {
        let mut positionals = Vec::new();
        for a in args {
            let a = a.as_ref();
            match a {
                "-h" | "--help" => return Parsed::Help,
                _ if a.starts_with('-') => {
                    return Parsed::Error(format!("unknown option `{a}`"));
                }
                _ if self.positional.is_none() => {
                    return Parsed::Error(format!("unexpected argument `{a}`"));
                }
                _ => positionals.push(a.to_string()),
            }
        }
        Parsed::Run(positionals)
    }

    /// Parse the process arguments; print help / usage errors and exit
    /// as appropriate, otherwise return the positionals.
    pub fn run(&self) -> Vec<String> {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match self.parse(&args) {
            Parsed::Run(p) => p,
            Parsed::Help => {
                print!("{}", self.usage());
                std::process::exit(0);
            }
            Parsed::Error(msg) => {
                eprintln!("{}: {msg}", self.name);
                eprint!("{}", self.usage());
                std::process::exit(2);
            }
        }
    }
}

/// Argument surface of a harness with no positionals: handles
/// `--help`, rejects everything else.
pub fn no_args(name: &'static str, about: &'static str) {
    let _ = Cli::new(name, about).run();
}

/// Argument surface of a harness taking a list of u64 seeds; returns
/// `default` when none are given.
pub fn seed_list(
    name: &'static str,
    about: &'static str,
    help: &'static str,
    default: u64,
) -> Vec<u64> {
    let cli = Cli::new(name, about).positional("seed", help);
    let raw = cli.run();
    if raw.is_empty() {
        return vec![default];
    }
    raw.iter()
        .map(|s| {
            s.parse::<u64>().unwrap_or_else(|_| {
                eprintln!("{name}: seed `{s}` is not a u64");
                eprint!("{}", cli.usage());
                std::process::exit(2);
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_short_and_long() {
        let cli = Cli::new("x", "y");
        assert_eq!(cli.parse(&["-h"]), Parsed::Help);
        assert_eq!(cli.parse(&["--help"]), Parsed::Help);
        // Help wins even after valid positionals.
        let cli = Cli::new("x", "y").positional("seed", "s");
        assert_eq!(cli.parse(&["7", "--help"]), Parsed::Help);
    }

    #[test]
    fn unknown_flags_and_unexpected_positionals_error() {
        let cli = Cli::new("x", "y");
        assert!(matches!(cli.parse(&["--bogus"]), Parsed::Error(_)));
        assert!(matches!(cli.parse(&["17"]), Parsed::Error(_)));
        let with_pos = Cli::new("x", "y").positional("seed", "s");
        assert!(matches!(with_pos.parse(&["--bogus"]), Parsed::Error(_)));
        assert_eq!(with_pos.parse(&["17", "42"]), Parsed::Run(vec!["17".into(), "42".into()]));
    }

    #[test]
    fn usage_names_the_harness_and_knobs() {
        let u = Cli::new("fig_ycsb", "YCSB mixes x backends").usage();
        assert!(u.contains("fig_ycsb"));
        assert!(u.contains("XSSD_BENCH_THREADS"));
        assert!(u.contains("--help"));
    }
}
