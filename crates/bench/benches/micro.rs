//! Criterion microbenchmarks over the hot paths of the simulation stack:
//! the CMB ingest path, credit reads, the flash channel scheduler, FTL
//! allocation, and WAL record encode/decode. These guard the simulator's
//! own performance (a slow simulator caps experiment scale).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use simkit::{Bandwidth, SerialResource, SimDuration, SimTime};

fn bench_cmb_ingest(c: &mut Criterion) {
    use xssd_core::{CmbConfig, CmbModule};
    let mut g = c.benchmark_group("cmb");
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("ingest_4k_chunk", |b| {
        b.iter_batched(
            || {
                (
                    CmbModule::new(CmbConfig {
                        size: 1 << 20,
                        intake_queue_bytes: 1 << 20,
                        ..CmbConfig::sram()
                    }),
                    SerialResource::new(),
                    Bandwidth::gbytes_per_sec(4.0),
                )
            },
            |(mut cmb, mut port, bw)| {
                for i in 0..16u64 {
                    cmb.ingest(SimTime::ZERO, i * 4096, &[0u8; 4096], |t, bytes| {
                        port.acquire(t, bw.transfer_time(bytes))
                    })
                    .unwrap();
                }
                cmb.credit_at(SimTime::from_millis(1))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_fast_write_path(c: &mut Criterion) {
    use pcie::MmioMode;
    use xssd_core::{Cluster, VillarsConfig};
    let mut g = c.benchmark_group("fast_side");
    g.throughput(Throughput::Bytes(16 << 10));
    g.bench_function("x_pwrite_fsync_16k", |b| {
        b.iter_batched(
            || {
                let mut cl = Cluster::new();
                let dev = cl.add_device(VillarsConfig::villars_sram());
                (cl, xssd_core::XLogFile::open_lane(dev, 0, MmioMode::WriteCombining))
            },
            |(mut cl, mut f)| {
                let t = f.x_pwrite(&mut cl, SimTime::ZERO, &[0u8; 16 << 10]).unwrap();
                f.x_fsync(&mut cl, t).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_flash_scheduler(c: &mut Criterion) {
    use flash::{
        ChannelScheduler, FlashArray, FlashGeometry, FlashTiming, OpKind, OpRequest, Ppa,
        Priority, ReliabilityConfig, SchedulingMode,
    };
    let mut g = c.benchmark_group("flash");
    g.bench_function("schedule_512_programs", |b| {
        b.iter_batched(
            || {
                let geometry = FlashGeometry::default();
                let array = FlashArray::new(
                    geometry,
                    FlashTiming::default(),
                    ReliabilityConfig::perfect(),
                    1,
                );
                let mut sched =
                    ChannelScheduler::new(geometry.channels, SchedulingMode::Neutral);
                let mut id = 0u64;
                for page in 0..8u32 {
                    for ch in 0..geometry.channels {
                        for die in 0..geometry.dies_per_channel {
                            sched.submit(OpRequest {
                                id,
                                kind: OpKind::Program(Ppa::new(ch, die, 0, page)),
                                arrival: SimTime::ZERO,
                                class: Priority::Conventional,
                            });
                            id += 1;
                        }
                    }
                }
                (array, sched)
            },
            |(mut array, mut sched)| sched.pump(&mut array, SimTime::MAX).len(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_ftl(c: &mut Criterion) {
    use flash::{FlashArray, FlashGeometry, FlashTiming, ReliabilityConfig};
    use ssd::{AllocStream, Ftl};
    let mut g = c.benchmark_group("ftl");
    g.bench_function("allocate_4096_pages", |b| {
        b.iter_batched(
            || {
                let geometry = FlashGeometry::default();
                let array = FlashArray::new(
                    geometry,
                    FlashTiming::default(),
                    ReliabilityConfig::perfect(),
                    1,
                );
                Ftl::new(geometry, &array, 8)
            },
            |mut ftl| {
                for lpn in 0..4096u64 {
                    ftl.allocate(lpn, AllocStream::Host).unwrap();
                }
                ftl.mapped_pages()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_log_codec(c: &mut Criterion) {
    use memdb::{decode_stream, LogOp, LogRecord};
    let records: Vec<LogRecord> = (0..64)
        .map(|i| LogRecord {
            txn_id: i,
            op: LogOp::Update,
            table: (i % 8) as u16,
            key: vec![i as u8; 12],
            value: vec![(i * 7) as u8; 160],
        })
        .collect();
    let mut encoded = Vec::new();
    for r in &records {
        r.encode_into(&mut encoded);
    }
    let mut g = c.benchmark_group("wal_codec");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode_64_records", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(encoded.len());
            for r in &records {
                r.encode_into(&mut out);
            }
            out.len()
        })
    });
    g.bench_function("decode_64_records", |b| {
        b.iter(|| decode_stream(&encoded).0.len())
    });
    g.finish();
}

fn bench_tpcc_txn(c: &mut Criterion) {
    use tpcc::{setup, TpccConfig};
    let mut g = c.benchmark_group("tpcc");
    g.bench_function("mixed_txn", |b| {
        let (mut db, mut workload, mut rng) = setup(TpccConfig::small(), 5);
        b.iter(|| {
            let _ = workload.execute(&mut db, &mut rng, 0);
            db.commits()
        })
    });
    g.finish();
}

fn bench_sim_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("simkit");
    g.bench_function("event_queue_1k_cycle", |b| {
        b.iter_batched(
            simkit::EventQueue::<u64>::new,
            |mut q| {
                for i in 0..1000u64 {
                    q.schedule(SimTime::from_nanos(i * 7919 % 5000), i);
                }
                let mut n = 0;
                while q.pop().is_some() {
                    n += 1;
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("serial_resource_acquire", |b| {
        let mut r = SerialResource::new();
        let mut t = SimTime::ZERO;
        b.iter(|| {
            let grant = r.acquire(t, SimDuration::from_nanos(10));
            t = grant.end;
            grant.end
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cmb_ingest,
    bench_fast_write_path,
    bench_flash_scheduler,
    bench_ftl,
    bench_log_codec,
    bench_tpcc_txn,
    bench_sim_kernel
);
criterion_main!(benches);
