//! Microbenchmarks over the hot paths of the simulation stack: the CMB
//! ingest path, the fast write path, the flash channel scheduler, FTL
//! allocation, WAL record encode/decode, TPC-C transactions, and the sim
//! kernel itself. These guard the simulator's own performance (a slow
//! simulator caps experiment scale).
//!
//! The harness is hand-rolled (`harness = false`; no crates.io access for
//! criterion): each case is warmed up, then timed over enough iterations to
//! fill ~200 ms of wall clock, reporting ns/iter and derived throughput.
//! Run with `cargo bench -p xssd-bench`. Numbers are indicative, not
//! statistically rigorous.

use simkit::{Bandwidth, SerialResource, SimDuration, SimTime};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Time `routine` on fresh state from `setup` each iteration; print ns/iter
/// and, when `bytes_per_iter` is given, MB/s.
fn bench<S, R: std::fmt::Debug>(
    name: &str,
    bytes_per_iter: Option<u64>,
    mut setup: impl FnMut() -> S,
    mut routine: impl FnMut(S) -> R,
) {
    // Warm-up and per-iteration cost estimate.
    let mut probe_iters = 1u64;
    let per_iter = loop {
        let states: Vec<S> = (0..probe_iters).map(|_| setup()).collect();
        let start = Instant::now();
        for s in states {
            black_box(routine(s));
        }
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(10) {
            break elapsed / probe_iters as u32;
        }
        probe_iters *= 4;
    };
    let iters = (Duration::from_millis(200).as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, 1_000_000) as u64;

    // Measured run: exclude setup cost by preparing all states up front.
    let states: Vec<S> = (0..iters).map(|_| setup()).collect();
    let start = Instant::now();
    for s in states {
        black_box(routine(s));
    }
    let elapsed = start.elapsed();

    let ns = elapsed.as_nanos() as f64 / iters as f64;
    let mut line = format!("{name:<40} {ns:>12.0} ns/iter  ({iters} iters)");
    if let Some(bytes) = bytes_per_iter {
        let mbps = bytes as f64 / (ns / 1e9) / 1e6;
        line.push_str(&format!("  {mbps:>9.1} MB/s"));
    }
    println!("{line}");
}

fn bench_cmb_ingest() {
    use xssd_core::{CmbConfig, CmbModule};
    bench(
        "cmb/ingest_4k_chunk",
        Some(16 * 4096),
        || {
            (
                CmbModule::new(CmbConfig {
                    size: 1 << 20,
                    intake_queue_bytes: 1 << 20,
                    ..CmbConfig::sram()
                }),
                SerialResource::new(),
                Bandwidth::gbytes_per_sec(4.0),
            )
        },
        |(mut cmb, mut port, bw)| {
            for i in 0..16u64 {
                cmb.ingest(SimTime::ZERO, i * 4096, &[0u8; 4096], |t, bytes| {
                    port.acquire(t, bw.transfer_time(bytes))
                })
                .unwrap();
            }
            cmb.credit_at(SimTime::from_millis(1))
        },
    );
}

fn bench_fast_write_path() {
    use pcie::MmioMode;
    use xssd_core::{Cluster, VillarsConfig};
    bench(
        "fast_side/x_pwrite_fsync_16k",
        Some(16 << 10),
        || {
            let mut cl = Cluster::new();
            let dev = cl.add_device(VillarsConfig::villars_sram());
            (cl, xssd_core::XLogFile::open_lane(dev, 0, MmioMode::WriteCombining))
        },
        |(mut cl, mut f)| {
            let t = f.x_pwrite(&mut cl, SimTime::ZERO, &[0u8; 16 << 10]).unwrap();
            f.x_fsync(&mut cl, t).unwrap()
        },
    );
}

fn bench_flash_scheduler() {
    use flash::{
        ChannelScheduler, FlashArray, FlashGeometry, FlashTiming, OpKind, OpRequest, Ppa, Priority,
        ReliabilityConfig, SchedulingMode,
    };
    bench(
        "flash/schedule_512_programs",
        None,
        || {
            let geometry = FlashGeometry::default();
            let array =
                FlashArray::new(geometry, FlashTiming::default(), ReliabilityConfig::perfect(), 1);
            let mut sched = ChannelScheduler::new(geometry.channels, SchedulingMode::Neutral);
            let mut id = 0u64;
            for page in 0..8u32 {
                for ch in 0..geometry.channels {
                    for die in 0..geometry.dies_per_channel {
                        sched.submit(OpRequest {
                            id,
                            kind: OpKind::Program(Ppa::new(ch, die, 0, page)),
                            arrival: SimTime::ZERO,
                            class: Priority::Conventional,
                        });
                        id += 1;
                    }
                }
            }
            (array, sched)
        },
        |(mut array, mut sched)| sched.pump(&mut array, SimTime::MAX).len(),
    );
}

fn bench_ftl() {
    use flash::{FlashArray, FlashGeometry, FlashTiming, ReliabilityConfig};
    use ssd::{AllocStream, Ftl};
    bench(
        "ftl/allocate_4096_pages",
        None,
        || {
            let geometry = FlashGeometry::default();
            let array =
                FlashArray::new(geometry, FlashTiming::default(), ReliabilityConfig::perfect(), 1);
            Ftl::new(geometry, &array, 8)
        },
        |mut ftl| {
            for lpn in 0..4096u64 {
                ftl.allocate(lpn, AllocStream::Host).unwrap();
            }
            ftl.mapped_pages()
        },
    );
}

fn bench_log_codec() {
    use memdb::{decode_stream, LogOp, LogRecord};
    let records: Vec<LogRecord> = (0..64)
        .map(|i| LogRecord {
            txn_id: i,
            op: LogOp::Update,
            table: (i % 8) as u16,
            key: vec![i as u8; 12].into(),
            value: vec![(i * 7) as u8; 160].into(),
        })
        .collect();
    let mut encoded = Vec::new();
    for r in &records {
        r.encode_into(&mut encoded);
    }
    let bytes = encoded.len() as u64;
    bench(
        "wal_codec/encode_64_records",
        Some(bytes),
        || (),
        |()| {
            let mut out = Vec::with_capacity(encoded.len());
            for r in &records {
                r.encode_into(&mut out);
            }
            out.len()
        },
    );
    bench("wal_codec/decode_64_records", Some(bytes), || (), |()| decode_stream(&encoded).0.len());
}

fn bench_tpcc_txn() {
    use tpcc::{setup, TpccConfig};
    let (mut db, mut workload, mut rng) = setup(TpccConfig::small(), 5);
    bench(
        "tpcc/mixed_txn",
        None,
        || (),
        |()| {
            let _ = workload.execute(&mut db, &mut rng, 0);
            db.commits()
        },
    );
}

/// The storage-engine hot path in isolation: commit/validate over a mixed
/// read/write transaction, and the YCSB zipfian point-read path (chooser +
/// borrowed get + commit marker). These are the loops the allocation budget
/// in `crates/bench/tests/alloc_budget.rs` guards.
fn bench_db_hot_path() {
    use memdb::{keys, Database};
    let mut db = Database::new();
    let t = db.create_table("bench");
    for i in 0..1024u32 {
        db.install_row(t, keys::composite(&[i]), vec![(i % 251) as u8; 160]);
    }
    let mut i = 0u32;
    bench(
        "memdb/commit_validate_8r4w",
        None,
        || (),
        |()| {
            let mut ctx = db.begin();
            for j in 0..8u32 {
                let k = keys::composite(&[i.wrapping_mul(13).wrapping_add(j * 97) % 1024]);
                let _ = db.get(&mut ctx, t, &k);
            }
            for j in 0..4u32 {
                let k = keys::composite(&[i.wrapping_mul(29).wrapping_add(j * 53) % 1024]);
                db.update(&mut ctx, t, k, simkit::Bytes::copy_from_slice(&[i as u8; 160]));
            }
            i = i.wrapping_add(1);
            db.commit(ctx).map(|recs| recs.len()).unwrap_or(0)
        },
    );

    use xssd_bench::driver::Workload;
    use xssd_bench::ycsb::{setup as ycsb_setup, YcsbConfig, YcsbMix};
    let cfg = YcsbConfig { mix: YcsbMix::C, theta: 0.99, ..YcsbConfig::default() };
    let (mut ydb, mut ywl, mut yrng) = ycsb_setup(cfg, 9);
    bench(
        "ycsb/zipfian_point_read",
        None,
        || (),
        |()| {
            let _ = ywl.execute(&mut ydb, &mut yrng, 0, 0);
            ydb.commits()
        },
    );
}

fn bench_sim_kernel() {
    bench("simkit/event_queue_1k_cycle", None, simkit::EventQueue::<u64>::new, |mut q| {
        for i in 0..1000u64 {
            q.schedule(SimTime::from_nanos(i * 7919 % 5000), i);
        }
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        n
    });
    // Indexed-cancellation churn: schedule a batch, cancel half of it via
    // the saved handles, drain the rest — the pattern timeout-heavy device
    // models produce.
    bench("simkit/event_queue_1k_cancel_half", None, simkit::EventQueue::<u64>::new, |mut q| {
        let ids: Vec<_> =
            (0..1000u64).map(|i| q.schedule(SimTime::from_nanos(i * 7919 % 5000), i)).collect();
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                q.cancel(*id);
            }
        }
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        n
    });
    // Frontier polling interleaved with schedule/pop — the shape of every
    // `advance_to` loop (`next_time` per event step must be O(1)).
    bench("simkit/event_queue_peek_heavy_cycle", None, simkit::EventQueue::<u64>::new, |mut q| {
        let mut acc = 0u64;
        for i in 0..1000u64 {
            q.schedule(SimTime::from_nanos(i * 6151 % 4000), i);
            if let Some(t) = q.next_time() {
                acc = acc.wrapping_add(t.as_nanos());
            }
            if i % 2 == 1 {
                q.pop();
            }
        }
        while let Some((at, _)) = q.pop() {
            acc = acc.wrapping_add(at.as_nanos());
        }
        acc
    });
    let mut r = SerialResource::new();
    let mut t = SimTime::ZERO;
    bench(
        "simkit/serial_resource_acquire",
        None,
        || (),
        |()| {
            let grant = r.acquire(t, SimDuration::from_nanos(10));
            t = grant.end;
            grant.end
        },
    );
}

/// End-to-end figure kernels (see `xssd_bench::kernels`): whole-stack
/// simulation throughput, the number the wall-clock gate actually cares
/// about.
fn bench_e2e_kernels() {
    use xssd_bench::kernels;
    bench(
        "e2e/fig09_tpcc_villars_sram_w2_10ms",
        None,
        || (),
        |()| kernels::tpcc_villars_sram_cell(2, SimDuration::from_millis(10)).counter("db.commits"),
    );
    bench(
        "e2e/fig11_write_fsync_16k_q4k_x100",
        Some(100 * (16 << 10)),
        || (),
        |()| {
            let (snap, times) = kernels::queue_size_cycles(4 << 10, 16 << 10, 100);
            (snap.counter("bench.payload_bytes"), times.len())
        },
    );
}

fn main() {
    println!("{:<40} {:>12}", "benchmark", "time");
    bench_cmb_ingest();
    bench_fast_write_path();
    bench_flash_scheduler();
    bench_ftl();
    bench_log_codec();
    bench_tpcc_txn();
    bench_db_hot_path();
    bench_sim_kernel();
    bench_e2e_kernels();
}
