//! Zero-perturbation regression for the fault layer.
//!
//! The contract (see `simkit::faults`): a cluster armed with a *disabled*
//! [`FaultPlan`] makes no RNG draws, adds no latency, and emits no
//! telemetry — it is bit-identical to a cluster that was never armed at
//! all. This is what keeps the byte-frozen `results/*.json` goldens valid
//! with the fault layer compiled in (`scripts/check_results.sh` enforces
//! the golden side; this test pins the mechanism).

use simkit::{FaultPlan, MetricsRegistry, SimTime, Snapshot};
use xssd_core::{Cluster, VillarsConfig, XLogFile};

/// A replicated `x_pwrite`+`x_fsync` cycle — the path that exercises CMB
/// intake, destaging, flash programs, and NTB mirroring — returning the
/// full telemetry snapshot plus every commit completion instant.
fn replicated_cycle(arm_disabled_plan: bool) -> (Snapshot, Vec<SimTime>) {
    let mut cl = Cluster::new();
    let p = cl.add_device(VillarsConfig::small());
    let s = cl.add_device(VillarsConfig::small());
    if arm_disabled_plan {
        cl.arm_faults(&FaultPlan::disabled());
    }
    let t0 = cl.configure_replication(SimTime::ZERO, p, &[s]);
    let mut f = XLogFile::open(p);
    let data = vec![0xA5u8; 1024];
    let mut now = t0;
    let mut times = Vec::with_capacity(64);
    for _ in 0..64 {
        now = f.x_pwrite(&mut cl, now, &data).expect("x_pwrite");
        now = f.x_fsync(&mut cl, now).expect("x_fsync");
        times.push(now);
    }
    let mut reg = MetricsRegistry::new();
    reg.collect("", &cl);
    (reg.snapshot(), times)
}

#[test]
fn disabled_fault_plan_is_bit_identical_to_unarmed() {
    let (snap_off, times_off) = replicated_cycle(false);
    let (snap_on, times_on) = replicated_cycle(true);
    assert_eq!(times_off, times_on, "a disabled fault plan perturbed the commit timeline");
    assert_eq!(snap_off, snap_on, "a disabled fault plan changed the telemetry snapshot");
    assert!(!times_off.is_empty() && times_off.windows(2).all(|w| w[0] < w[1]));
}
