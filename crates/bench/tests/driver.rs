//! Driver-layer contract tests: golden parity with the legacy closed
//! loop, and ramp-up exclusion.

use memdb::{run_workload, PmConfig, PmLog, RunnerConfig, WalConfig, WalManager};
use simkit::{MetricsRegistry, SimDuration};
use tpcc::{setup, TpccConfig};
use xssd_bench::driver::{self, DriverConfig, Workload};
use xssd_bench::ycsb::{self, YcsbConfig, YcsbMix};

/// The refactor's load-bearing invariant: driving TPC-C through
/// `bench::driver` with the default mix replays the legacy
/// `run_workload(|db, rng, _| workload.execute(db, rng, 0))` loop
/// draw-for-draw — same commit count, same latency samples, same
/// telemetry — which is why the eleven `results/*.json` goldens survive
/// the harness refactor byte-identical.
#[test]
fn tpcc_driver_replays_the_legacy_closed_loop() {
    let dur = SimDuration::from_millis(30);

    let (mut db_a, mut wl_a, _) = setup(TpccConfig::bench(), 0x716);
    let mut wal_a = WalManager::new(PmLog::new(PmConfig::default()), WalConfig::default());
    let runner =
        RunnerConfig { workers: 4, duration: dur, seed: 0xF00D, ..RunnerConfig::default() };
    let mut legacy =
        run_workload(&mut db_a, &mut wal_a, runner, |db, rng, _| wl_a.execute(db, rng, 0));

    let (mut db_b, mut wl_b, _) = setup(TpccConfig::bench(), 0x716);
    let mut wal_b = WalManager::new(PmLog::new(PmConfig::default()), WalConfig::default());
    let cfg = DriverConfig { workers: 4, measure: dur, seed: 0xF00D, ..DriverConfig::default() };
    let mut driven = driver::run(&mut db_b, &mut wal_b, &mut wl_b, &cfg);

    assert_eq!(legacy.committed, driven.run.committed);
    assert_eq!(legacy.aborted, driven.run.aborted);
    assert_eq!(legacy.elapsed, driven.run.elapsed);
    // Samples match in INSERTION order: the driver never sorts the
    // aggregate series on its own (a percentile query would perturb the
    // float-summation order of the collected mean — see
    // `DriverReport::exact_p99_us`).
    assert_eq!(legacy.latency_us.samples(), driven.run.latency_us.samples());
    assert_eq!(legacy.log_bytes, driven.run.log_bytes);
    assert_eq!(legacy.flushes, driven.run.flushes);

    // Collected snapshots are identical: the DriverReport's default
    // Instrument impl is the legacy metric set, nothing more.
    let mut reg_a = MetricsRegistry::new();
    reg_a.collect("", &legacy);
    reg_a.collect("", &wal_a);
    reg_a.collect("", &wl_a);
    let mut reg_b = MetricsRegistry::new();
    reg_b.collect("", &driven);
    reg_b.collect("", &wal_b);
    reg_b.collect("", &wl_b);
    assert_eq!(reg_a.snapshot(), reg_b.snapshot());

    // Exact-sample percentiles agree too (what fig09 prints).
    assert_eq!(legacy.latency_us.percentile(99.0), driven.exact_p99_us());

    // The per-kind breakdown covers every commit and matches the
    // workload's own mix counters.
    let kinds_total: u64 = driven.per_kind.iter().map(|k| k.committed + k.aborted).sum();
    assert_eq!(kinds_total, driven.run.committed + driven.run.aborted);
    let stats = wl_b.stats();
    let executed =
        [stats.new_order, stats.payment, stats.order_status, stats.delivery, stats.stock_level];
    for (k, &n) in driven.per_kind.iter().zip(executed.iter()) {
        assert_eq!(k.committed + k.aborted, n, "{} mix counter diverged", k.label);
    }
}

fn ycsb_run(ramp_ms: u64, measure_ms: u64, series: bool) -> driver::DriverReport {
    let (mut db, mut wl, _) =
        ycsb::setup(YcsbConfig { mix: YcsbMix::A, ..YcsbConfig::default() }, 0xAB);
    let mut wal = WalManager::new(PmLog::new(PmConfig::default()), WalConfig::default());
    let cfg = DriverConfig {
        workers: 2,
        ramp_up: SimDuration::from_millis(ramp_ms),
        measure: SimDuration::from_millis(measure_ms),
        seed: 0xAB,
        series_bucket: series.then(|| SimDuration::from_millis(5)),
        ..DriverConfig::default()
    };
    driver::run(&mut db, &mut wal, &mut wl, &cfg)
}

/// Ramp-window transactions never reach the report: not the counters,
/// not the latency percentiles, not the per-kind or series breakdowns —
/// but the *schedule* is untouched, so (ramp + measured) commits equal a
/// zero-ramp run of the same total duration and seed.
#[test]
fn ramp_up_transactions_are_excluded_everywhere() {
    let full = ycsb_run(0, 40, false);
    let ramped = ycsb_run(20, 20, false);

    // Same schedule: the ramp only reclassifies transactions.
    assert_eq!(
        ramped.run.committed + ramped.ramp_excluded,
        full.run.committed,
        "ramp changed the execution schedule"
    );
    assert!(ramped.ramp_excluded > 0, "nothing landed in the ramp window");
    assert!(ramped.run.committed > 0, "nothing landed in the measured window");

    // Every counter and percentile is measured-window only.
    assert_eq!(ramped.run.committed as usize, ramped.run.latency_us.samples().len());
    let per_kind: u64 = ramped.per_kind.iter().map(|k| k.committed).sum();
    assert_eq!(per_kind, ramped.run.committed);
    let per_kind_samples: usize = ramped.per_kind.iter().map(|k| (k.committed) as usize).sum();
    assert_eq!(per_kind_samples, ramped.run.latency_us.samples().len());

    // Elapsed covers the measured window, not the ramp.
    assert!(ramped.run.elapsed <= full.run.elapsed);
    assert!(ramped.run.elapsed >= SimDuration::from_millis(20));
    assert!(ramped.run.elapsed < SimDuration::from_millis(25));
}

/// The time-series buckets partition the measured commits.
#[test]
fn time_series_buckets_partition_measured_commits() {
    let r = ycsb_run(10, 30, true);
    assert!(r.series.len() >= 6, "expected ~6 buckets of 5 ms, got {}", r.series.len());
    let bucketed: u64 = r.series.iter().map(|b| b.committed).sum();
    assert_eq!(bucketed, r.run.committed);
    // The extended metrics expose them in sorted, zero-padded order.
    let mut reg = MetricsRegistry::new();
    reg.collect("", &r.extended());
    let snap = reg.snapshot();
    assert_eq!(snap.counter("db.series.t0000.committed"), r.series[0].committed);
    assert_eq!(snap.counter("db.ramp_excluded"), r.ramp_excluded);
    assert!(snap.counter("db.mix.read.committed") > 0);
}

/// A mix override reweights the kinds without touching the workload.
#[test]
fn mix_override_changes_the_blend() {
    let (mut db, mut wl, _) = ycsb::setup(YcsbConfig::default(), 0xC0);
    let mut wal = WalManager::new(PmLog::new(PmConfig::default()), WalConfig::default());
    let cfg = DriverConfig {
        workers: 1,
        measure: SimDuration::from_millis(10),
        seed: 0xC0,
        mix: Some(vec![0, 100, 0, 0, 0]),
        ..DriverConfig::default()
    };
    let r = driver::run(&mut db, &mut wal, &mut wl, &cfg);
    assert_eq!(r.per_kind[0].committed, 0, "reads were weighted out");
    assert_eq!(r.per_kind[1].committed, r.run.committed, "all traffic is updates");
    assert_eq!(wl.kinds()[1], "update");
}
