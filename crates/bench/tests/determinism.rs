//! Determinism regression tests.
//!
//! The whole experimental method rests on runs being exactly reproducible:
//! `results/*.json` baselines are compared byte-for-byte across event-loop
//! and scheduler changes. These tests run the shared end-to-end kernels
//! (see [`xssd_bench::kernels`]) twice with identical seeds and assert that
//! the telemetry snapshots — and, for the write/fsync kernel, every single
//! completion timestamp — are identical.

use simkit::SimDuration;
use xssd_bench::kernels;

#[test]
fn fig09_tpcc_cell_is_reproducible() {
    let a = kernels::tpcc_villars_sram_cell(2, SimDuration::from_millis(20));
    let b = kernels::tpcc_villars_sram_cell(2, SimDuration::from_millis(20));
    assert_eq!(a, b, "same seed, same workload, different telemetry");
    // Guard against the degenerate pass where nothing ran at all.
    assert!(a.counter("db.commits") > 0, "kernel committed no transactions");
}

#[test]
fn fig11_write_fsync_timeline_is_reproducible() {
    let (snap_a, times_a) = kernels::queue_size_cycles(4 << 10, 16 << 10, 50);
    let (snap_b, times_b) = kernels::queue_size_cycles(4 << 10, 16 << 10, 50);
    assert_eq!(times_a.len(), 50);
    assert_eq!(times_a, times_b, "completion timestamps diverged between identical runs");
    assert_eq!(snap_a, snap_b, "telemetry snapshots diverged between identical runs");
    // The timeline must actually advance.
    assert!(times_a.windows(2).all(|w| w[0] < w[1]), "completion times must be increasing");
}
