//! Allocation-regression guard over the database hot path.
//!
//! A counting global allocator (hand-rolled; no crates.io access) wraps the
//! system allocator and counts every `alloc`/`realloc`/`alloc_zeroed`. The
//! tests drive warmed-up TPC-C and YCSB workloads and assert the *average*
//! allocation count per committed transaction stays under an explicit
//! budget. The budgets are deliberately snug: the hot path pays one
//! refcounted image per written row plus the commit's record vector, and
//! amortized BTreeMap node splits — a regression back to per-read clones,
//! `Vec<u8>` keys, or per-field `String` decoding blows the budget
//! immediately.
//!
//! The averages are taken over enough transactions that test-harness noise
//! (a few allocations from the runner itself) cannot tip the assertion.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Serializes the measuring sections so the two tests never count each
/// other's allocations.
static MEASURE: Mutex<()> = Mutex::new(());

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn tpcc_transactions_stay_within_allocation_budget() {
    let guard = MEASURE.lock().unwrap();
    let (mut db, mut workload, mut rng) = tpcc::setup(tpcc::TpccConfig::small(), 11);
    // Warm up: fill the context pool and grow every scratch buffer to its
    // steady-state capacity.
    for _ in 0..500 {
        let _ = workload.execute(&mut db, &mut rng, 0);
    }
    let before = alloc_count();
    let mut committed = 0u64;
    for _ in 0..2000 {
        if workload.execute(&mut db, &mut rng, 0).is_ok() {
            committed += 1;
        }
    }
    let allocs = alloc_count() - before;
    drop(guard);
    let avg = allocs as f64 / committed.max(1) as f64;
    // Mixed-profile average. NewOrder writes ~15 rows (one image each),
    // Delivery ~30; plus the per-commit record vector, occasional BTreeMap
    // node splits, and the rare last-name String on the customer-selection
    // path. Measured ~15 avg; the budget leaves headroom for allocator and
    // split jitter, and a clone-per-read regression (100+ per txn) still
    // trips it at once.
    const BUDGET: f64 = 40.0;
    assert!(
        avg <= BUDGET,
        "TPC-C hot path regressed: {avg:.1} allocations per committed txn \
         (budget {BUDGET}, {allocs} over {committed} txns)"
    );
}

#[test]
fn ycsb_transactions_stay_within_allocation_budget() {
    let guard = MEASURE.lock().unwrap();
    let cfg =
        xssd_bench::ycsb::YcsbConfig { mix: xssd_bench::ycsb::YcsbMix::A, ..Default::default() };
    let (mut db, mut workload, mut rng) = xssd_bench::ycsb::setup(cfg, 13);
    use xssd_bench::driver::Workload;
    let kinds = workload.default_mix().to_vec();
    let pick = |rng: &mut simkit::DetRng| {
        let total: u32 = kinds.iter().sum();
        let mut p = rng.uniform(1, total as u64) as u32;
        for (i, w) in kinds.iter().enumerate() {
            if p <= *w {
                return i;
            }
            p -= w;
        }
        0
    };
    for _ in 0..500 {
        let kind = pick(&mut rng);
        let _ = workload.execute(&mut db, &mut rng, kind, 0);
    }
    let before = alloc_count();
    let mut committed = 0u64;
    for _ in 0..2000 {
        let kind = pick(&mut rng);
        if workload.execute(&mut db, &mut rng, kind, 0).is_ok() {
            committed += 1;
        }
    }
    let allocs = alloc_count() - before;
    drop(guard);
    let avg = allocs as f64 / committed.max(1) as f64;
    // Workload A (50/50 read/update): a read commits with only the record
    // vector (one allocation); an update adds the frozen value image.
    // Measured ~1.5 avg; budget 8 leaves room while still catching any
    // per-operation key or value clone creeping back in.
    const BUDGET: f64 = 8.0;
    assert!(
        avg <= BUDGET,
        "YCSB hot path regressed: {avg:.1} allocations per committed txn \
         (budget {BUDGET}, {allocs} over {committed} txns)"
    );
}
