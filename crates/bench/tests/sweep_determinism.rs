//! The enforced half of the sweep determinism contract: the same figure
//! grid run at `XSSD_BENCH_THREADS=1` (the sequential oracle) and at
//! `XSSD_BENCH_THREADS=N` must produce byte-identical `results/*.json`
//! *and* byte-identical stdout. Cells are isolated simulations and
//! collection is ordered by grid position, so nothing — not even float
//! summarization order — may depend on the thread count.
//!
//! `scripts/check_results.sh` enforces the same property against the
//! committed goldens for all eleven harnesses; this test pins it at the
//! unit level with two fast multi-cell harnesses so `cargo test` catches a
//! contract break without the release-build round trip.

use std::path::Path;
use std::process::{Command, Output};

/// Run one harness binary with the given thread knob, results redirected
/// into `dir`.
fn run_harness(exe: &str, threads: &str, dir: &Path) -> Output {
    Command::new(exe)
        .env("XSSD_BENCH_THREADS", threads)
        .env("XSSD_RESULTS_DIR", dir)
        .output()
        .expect("harness binary runs")
}

/// Assert sequential (threads=1) and parallel (threads=4) runs of `exe`
/// emit byte-identical stdout and a byte-identical results file.
fn assert_thread_count_invariant(exe: &str, result_name: &str) {
    let base = std::env::temp_dir().join(format!("xssd_sweep_det_{result_name}"));
    let seq_dir = base.join("seq");
    let par_dir = base.join("par");
    std::fs::create_dir_all(&seq_dir).expect("mkdir seq");
    std::fs::create_dir_all(&par_dir).expect("mkdir par");

    let seq = run_harness(exe, "1", &seq_dir);
    let par = run_harness(exe, "4", &par_dir);
    assert!(seq.status.success(), "sequential run failed: {seq:?}");
    assert!(par.status.success(), "parallel run failed: {par:?}");

    // Stdout is printed by the ordered collection loop — identical bytes.
    assert_eq!(
        String::from_utf8_lossy(&seq.stdout).replace(seq_dir.to_str().expect("utf8 path"), "DIR"),
        String::from_utf8_lossy(&par.stdout).replace(par_dir.to_str().expect("utf8 path"), "DIR"),
        "{result_name}: stdout depends on XSSD_BENCH_THREADS"
    );

    let seq_json = std::fs::read(seq_dir.join(format!("{result_name}.json"))).expect("seq json");
    let par_json = std::fs::read(par_dir.join(format!("{result_name}.json"))).expect("par json");
    assert_eq!(seq_json, par_json, "{result_name}: results JSON depends on XSSD_BENCH_THREADS");

    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn destage_deadline_grid_is_thread_count_invariant() {
    assert_thread_count_invariant(
        env!("CARGO_BIN_EXE_ablation_destage_deadline"),
        "ablation_destage_deadline",
    );
}

#[test]
fn replication_policy_grid_is_thread_count_invariant() {
    assert_thread_count_invariant(
        env!("CARGO_BIN_EXE_ablation_replication_policy"),
        "ablation_replication_policy",
    );
}

#[test]
fn transport_grid_is_thread_count_invariant() {
    assert_thread_count_invariant(env!("CARGO_BIN_EXE_ablation_transport"), "ablation_transport");
}
