//! Primary-driven replica failover and re-sync (paper §7.1).
//!
//! When a secondary dies, its shadow-counter updates stop and the primary's
//! transport status register turns Degraded once the staleness window
//! elapses. The host then drives the recovery sequence the paper sketches:
//! detect via the status register, reconfigure replication around the dead
//! copy (so eager commits stop waiting on it), and — once the node is back —
//! re-ship the missed log suffix from the primary's surviving copy before
//! restoring it to the secondary set.

use nvme::{Status, VendorCommand};
use simkit::{SimDuration, SimTime};
use xssd_core::{vendor, Cluster};

/// What a failover round observed, for the recovery-stall assertions in the
/// chaos harness (`bench/src/bin/chaos_tpcc.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverReport {
    /// When the host started polling the status register.
    pub initiated_at: SimTime,
    /// When the register first read Degraded.
    pub detected_at: SimTime,
    /// When replication was reconfigured around the dead secondary.
    pub reconfigured_at: SimTime,
    /// Status-register polls issued before detection.
    pub status_polls: u64,
}

impl FailoverReport {
    /// End-to-end stall: from the first suspicion to the reconfigured
    /// replica set accepting commits again.
    pub fn stall(&self) -> SimDuration {
        self.reconfigured_at.saturating_since(self.initiated_at)
    }
}

/// Poll the primary's transport status register until it reads Degraded,
/// then reconfigure replication onto `survivors` (the secondary set minus
/// the dead device). Panics if the transport never degrades — the caller
/// asserts a real crash happened before initiating failover.
pub fn fail_over(
    cluster: &mut Cluster,
    now: SimTime,
    primary: usize,
    survivors: &[usize],
) -> FailoverReport {
    assert!(!survivors.is_empty(), "failover needs at least one surviving secondary");
    let poll_period = SimDuration::from_micros(10);
    let mut t = now;
    let mut polls = 0u64;
    let detected_at = loop {
        let (t2, e) = cluster.vendor_blocking(
            primary,
            t,
            VendorCommand::new(vendor::GET_TRANSPORT_STATUS, [0; 6]),
        );
        polls += 1;
        assert_eq!(e.status, Status::Success, "status register read failed");
        if e.result == 1 {
            break t2;
        }
        assert!(
            polls < 100_000,
            "transport never degraded after {polls} polls: was a secondary actually crashed?"
        );
        t = t2 + poll_period;
    };
    let reconfigured_at = cluster.configure_replication(detected_at, primary, survivors);
    FailoverReport { initiated_at: now, detected_at, reconfigured_at, status_polls: polls }
}

/// Restore a rebooted secondary: re-ship the log suffix it missed from the
/// primary's surviving copy ([`Cluster::resync_secondary`]), then
/// reconfigure replication to `secondaries` (the full set including
/// `target`). Returns the instant the new replica set is active.
pub fn rejoin_secondary(
    cluster: &mut Cluster,
    now: SimTime,
    primary: usize,
    target: usize,
    secondaries: &[usize],
) -> SimTime {
    assert!(secondaries.contains(&target), "the rejoined device must be in the new replica set");
    cluster.reboot_device(target);
    let resynced = cluster.resync_secondary(now, primary, target);
    cluster.configure_replication(resynced, primary, secondaries)
}

/// Read the full durable log stream `[0, destaged frontier)` of `dev`'s
/// lane `lane` — the input `recover` replays after a crash (the rescue
/// destage of [`Cluster::power_fail`] pushes every contiguously received
/// byte below the frontier onto the conventional side first).
pub fn durable_log_stream(cluster: &mut Cluster, now: SimTime, dev: usize, lane: usize) -> Vec<u8> {
    cluster.advance(now);
    let upto = cluster.device(dev).destaged_upto(lane);
    if upto == 0 {
        return Vec::new();
    }
    cluster
        .device_mut(dev)
        .read_destaged(now, lane, 0, upto as usize)
        .map(|(_ready, bytes)| bytes)
        .expect("durable log stream readable from offset 0 (destage ring not yet recycled)")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::{encode_txn, recover};
    use crate::storage::Database;
    use xssd_core::{VillarsConfig, XLogFile};

    /// The full recovery arc in miniature: crash a secondary mid-stream,
    /// fail over to the survivor, keep committing, rejoin the crashed node
    /// with a re-sync, then lose the whole cluster and prove recovery from
    /// the rejoined copy alone loses no committed transaction.
    #[test]
    fn failover_resync_and_recovery_lose_nothing() {
        let mut cluster = Cluster::new();
        let p = cluster.add_device(VillarsConfig::small());
        let s1 = cluster.add_device(VillarsConfig::small());
        let s2 = cluster.add_device(VillarsConfig::small());
        let t0 = cluster.configure_replication(SimTime::ZERO, p, &[s1, s2]);

        let mut db = Database::new();
        let tab = db.create_table("t");
        let mut file = XLogFile::open(p);
        let mut now = t0;
        let commit = |db: &mut Database,
                      file: &mut XLogFile,
                      cluster: &mut Cluster,
                      now: SimTime,
                      i: u32|
         -> SimTime {
            let mut ctx = db.begin();
            db.insert(&mut ctx, tab, crate::storage::keys::composite(&[i]), vec![i as u8; 48]);
            let recs = db.commit(ctx).expect("commit");
            let bytes = encode_txn(&recs);
            let t = file.x_pwrite(cluster, now, &bytes).expect("x_pwrite");
            file.x_fsync(cluster, t).expect("x_fsync")
        };

        for i in 0..8u32 {
            now = commit(&mut db, &mut file, &mut cluster, now, i);
        }
        // Crash s2; the primary notices via staleness and fails over.
        cluster.power_fail(s2, now);
        let report = fail_over(&mut cluster, now, p, &[s1]);
        assert!(report.detected_at > now, "detection takes at least one staleness window");
        assert!(
            report.stall() < SimDuration::from_millis(5),
            "failover stall bounded: {:?}",
            report.stall()
        );
        now = report.reconfigured_at;
        // Commits continue against the surviving pair.
        for i in 8..16u32 {
            now = commit(&mut db, &mut file, &mut cluster, now, i);
        }
        // Rejoin s2: reboot, re-sync the missed suffix, restore the set.
        now = rejoin_secondary(&mut cluster, now, p, s2, &[s1, s2]);
        assert_eq!(
            cluster.device(s2).log_tail(0),
            cluster.device(p).log_tail(0),
            "re-sync caught the rejoined copy up to the primary's tail"
        );
        for i in 16..20u32 {
            now = commit(&mut db, &mut file, &mut cluster, now, i);
        }
        // Total cluster loss: every copy crash-destages its residue.
        let settle = now + SimDuration::from_millis(2);
        cluster.advance(settle);
        cluster.power_fail(p, settle);
        cluster.power_fail(s1, settle);
        cluster.power_fail(s2, settle);
        cluster.reboot_device(s2);
        // Recover from the *rejoined* copy: it must hold every commit.
        let stream = durable_log_stream(&mut cluster, settle, s2, 0);
        let mut recovered = Database::new();
        recovered.create_table("t");
        let rep = recover(&mut recovered, &stream);
        assert_eq!(rep.txns_committed, 20, "every committed transaction survives");
        assert_eq!(recovered.fingerprint(), db.fingerprint());
    }

    /// The same failover arc must be timestep-for-timestep identical under
    /// the conservative parallel cluster core (`XSSD_SIM_THREADS`): crash
    /// detection instants, reconfiguration times, resynced tails, and the
    /// recovered fingerprint all come out of the cross-device event
    /// schedule, which the parallel mode must reproduce exactly.
    #[test]
    fn failover_timeline_is_execution_mode_invariant() {
        let run = |threads: usize| -> (SimTime, SimTime, u64, u64, u64) {
            let mut cluster = Cluster::with_sim_threads(threads);
            let p = cluster.add_device(VillarsConfig::small());
            let s1 = cluster.add_device(VillarsConfig::small());
            let s2 = cluster.add_device(VillarsConfig::small());
            let t0 = cluster.configure_replication(SimTime::ZERO, p, &[s1, s2]);

            let mut db = Database::new();
            let tab = db.create_table("t");
            let mut file = XLogFile::open(p);
            let mut now = t0;
            for i in 0..8u32 {
                let mut ctx = db.begin();
                db.insert(&mut ctx, tab, crate::storage::keys::composite(&[i]), vec![i as u8; 48]);
                let recs = db.commit(ctx).expect("commit");
                let t = file.x_pwrite(&mut cluster, now, &encode_txn(&recs)).expect("x_pwrite");
                now = file.x_fsync(&mut cluster, t).expect("x_fsync");
            }
            cluster.power_fail(s2, now);
            let report = fail_over(&mut cluster, now, p, &[s1]);
            now = report.reconfigured_at;
            for i in 8..12u32 {
                let mut ctx = db.begin();
                db.insert(&mut ctx, tab, crate::storage::keys::composite(&[i]), vec![i as u8; 48]);
                let recs = db.commit(ctx).expect("commit");
                let t = file.x_pwrite(&mut cluster, now, &encode_txn(&recs)).expect("x_pwrite");
                now = file.x_fsync(&mut cluster, t).expect("x_fsync");
            }
            now = rejoin_secondary(&mut cluster, now, p, s2, &[s1, s2]);
            let settle = now + SimDuration::from_millis(2);
            cluster.advance(settle);
            (
                report.detected_at,
                now,
                cluster.device(p).log_tail(0),
                cluster.device(s2).log_tail(0),
                db.fingerprint(),
            )
        };
        assert_eq!(run(1), run(4), "failover arc diverged between execution modes");
    }
}
