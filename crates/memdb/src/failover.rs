//! Primary-driven replica failover and re-sync (paper §7.1).
//!
//! When a secondary dies, its shadow-counter updates stop and the primary's
//! transport status register turns Degraded once the staleness window
//! elapses. The host then drives the recovery sequence the paper sketches:
//! detect via the status register, reconfigure replication around the dead
//! copy (so eager commits stop waiting on it), and — once the node is back —
//! re-ship the missed log suffix from the primary's surviving copy before
//! restoring it to the secondary set.

use crate::log::fnv1a;
use crate::segment::SegmentView;
use nvme::{Status, VendorCommand};
use simkit::{SimDuration, SimTime};
use xssd_core::{vendor, Cluster};

/// What a failover round observed, for the recovery-stall assertions in the
/// chaos harness (`bench/src/bin/chaos_tpcc.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverReport {
    /// When the host started polling the status register.
    pub initiated_at: SimTime,
    /// When the register first read Degraded.
    pub detected_at: SimTime,
    /// When replication was reconfigured around the dead secondary.
    pub reconfigured_at: SimTime,
    /// Status-register polls issued before detection.
    pub status_polls: u64,
}

impl FailoverReport {
    /// End-to-end stall: from the first suspicion to the reconfigured
    /// replica set accepting commits again.
    pub fn stall(&self) -> SimDuration {
        self.reconfigured_at.saturating_since(self.initiated_at)
    }
}

/// Poll the primary's transport status register until it reads Degraded,
/// then reconfigure replication onto `survivors` (the secondary set minus
/// the dead device). Panics if the transport never degrades — the caller
/// asserts a real crash happened before initiating failover.
pub fn fail_over(
    cluster: &mut Cluster,
    now: SimTime,
    primary: usize,
    survivors: &[usize],
) -> FailoverReport {
    assert!(!survivors.is_empty(), "failover needs at least one surviving secondary");
    let poll_period = SimDuration::from_micros(10);
    let mut t = now;
    let mut polls = 0u64;
    let detected_at = loop {
        let (t2, e) = cluster.vendor_blocking(
            primary,
            t,
            VendorCommand::new(vendor::GET_TRANSPORT_STATUS, [0; 6]),
        );
        polls += 1;
        assert_eq!(e.status, Status::Success, "status register read failed");
        if e.result == 1 {
            break t2;
        }
        assert!(
            polls < 100_000,
            "transport never degraded after {polls} polls: was a secondary actually crashed?"
        );
        t = t2 + poll_period;
    };
    let reconfigured_at = cluster.configure_replication(detected_at, primary, survivors);
    FailoverReport { initiated_at: now, detected_at, reconfigured_at, status_polls: polls }
}

/// Restore a rebooted secondary: re-ship the log suffix it missed from the
/// primary's surviving copy ([`Cluster::resync_secondary`]), then
/// reconfigure replication to `secondaries` (the full set including
/// `target`). Returns the instant the new replica set is active.
pub fn rejoin_secondary(
    cluster: &mut Cluster,
    now: SimTime,
    primary: usize,
    target: usize,
    secondaries: &[usize],
) -> SimTime {
    assert!(secondaries.contains(&target), "the rejoined device must be in the new replica set");
    cluster.reboot_device(target);
    let resynced = cluster.resync_secondary(now, primary, target);
    cluster.configure_replication(resynced, primary, secondaries)
}

/// What a rejoin-from-archive round did: how much of the catch-up came
/// from the host's sealed-segment archive versus live device state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejoinReport {
    /// The rejoining copy's durable tail at reboot.
    pub tail_at_reboot: u64,
    /// Bytes streamed from the archived segments.
    pub archived_bytes: u64,
    /// When the archive leg finished (live resync starts here).
    pub archive_done: SimTime,
    /// When the live three-zone resync caught the copy up to the
    /// primary's tail.
    pub resynced_at: SimTime,
    /// When the reconfigured replica set went active.
    pub active_at: SimTime,
}

/// Restore a rebooted secondary whose missed suffix may have fallen off
/// the primary's destage ring: first stream the sealed segments the host
/// archive retained for the gap (each verified against its seal CRC),
/// then hand off to the live three-zone resync
/// ([`Cluster::resync_secondary`]) for whatever the primary still serves,
/// and finally reconfigure replication to `secondaries`.
///
/// The archive is the rejoining copy's only source for ranges the
/// primary has recycled, so a segment failing its CRC — or an archive
/// truncated past the target's tail — panics rather than rejoining a
/// copy with a hole in its log.
pub fn rejoin_secondary_from_archive(
    cluster: &mut Cluster,
    now: SimTime,
    primary: usize,
    target: usize,
    secondaries: &[usize],
    archive: &[SegmentView<'_>],
) -> RejoinReport {
    assert!(secondaries.contains(&target), "the rejoined device must be in the new replica set");
    cluster.reboot_device(target);
    cluster.advance(now);
    let tail_at_reboot = cluster.device(target).log_tail(0);
    let mut t = now;
    for seg in archive {
        if seg.base_lsn + seg.bytes.len() as u64 <= tail_at_reboot {
            continue; // the target already holds this segment
        }
        if let Some(crc) = seg.crc {
            assert_eq!(
                fnv1a(seg.bytes),
                crc,
                "archived segment at LSN {} failed its seal CRC during rejoin",
                seg.base_lsn
            );
        }
        t = cluster.deliver_archived(t, target, seg.base_lsn, seg.bytes);
    }
    let archived_bytes = cluster.device(target).log_tail(0) - tail_at_reboot;
    let archive_done = t;
    let resynced_at = cluster.resync_secondary(t, primary, target);
    let active_at = cluster.configure_replication(resynced_at, primary, secondaries);
    RejoinReport { tail_at_reboot, archived_bytes, archive_done, resynced_at, active_at }
}

/// Read the full durable log stream `[0, destaged frontier)` of `dev`'s
/// lane `lane` — the input `recover` replays after a crash (the rescue
/// destage of [`Cluster::power_fail`] pushes every contiguously received
/// byte below the frontier onto the conventional side first).
pub fn durable_log_stream(cluster: &mut Cluster, now: SimTime, dev: usize, lane: usize) -> Vec<u8> {
    cluster.advance(now);
    let upto = cluster.device(dev).destaged_upto(lane);
    if upto == 0 {
        return Vec::new();
    }
    cluster
        .device_mut(dev)
        .read_destaged(now, lane, 0, upto as usize)
        .map(|(_ready, bytes)| bytes)
        .expect("durable log stream readable from offset 0 (destage ring not yet recycled)")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::{encode_txn, recover};
    use crate::storage::Database;
    use xssd_core::{VillarsConfig, XLogFile};

    /// The full recovery arc in miniature: crash a secondary mid-stream,
    /// fail over to the survivor, keep committing, rejoin the crashed node
    /// with a re-sync, then lose the whole cluster and prove recovery from
    /// the rejoined copy alone loses no committed transaction.
    #[test]
    fn failover_resync_and_recovery_lose_nothing() {
        let mut cluster = Cluster::new();
        let p = cluster.add_device(VillarsConfig::small());
        let s1 = cluster.add_device(VillarsConfig::small());
        let s2 = cluster.add_device(VillarsConfig::small());
        let t0 = cluster.configure_replication(SimTime::ZERO, p, &[s1, s2]);

        let mut db = Database::new();
        let tab = db.create_table("t");
        let mut file = XLogFile::open(p);
        let mut now = t0;
        let commit = |db: &mut Database,
                      file: &mut XLogFile,
                      cluster: &mut Cluster,
                      now: SimTime,
                      i: u32|
         -> SimTime {
            let mut ctx = db.begin();
            db.insert(&mut ctx, tab, crate::storage::keys::composite(&[i]), vec![i as u8; 48]);
            let recs = db.commit(ctx).expect("commit");
            let bytes = encode_txn(&recs);
            let t = file.x_pwrite(cluster, now, &bytes).expect("x_pwrite");
            file.x_fsync(cluster, t).expect("x_fsync")
        };

        for i in 0..8u32 {
            now = commit(&mut db, &mut file, &mut cluster, now, i);
        }
        // Crash s2; the primary notices via staleness and fails over.
        cluster.power_fail(s2, now);
        let report = fail_over(&mut cluster, now, p, &[s1]);
        assert!(report.detected_at > now, "detection takes at least one staleness window");
        assert!(
            report.stall() < SimDuration::from_millis(5),
            "failover stall bounded: {:?}",
            report.stall()
        );
        now = report.reconfigured_at;
        // Commits continue against the surviving pair.
        for i in 8..16u32 {
            now = commit(&mut db, &mut file, &mut cluster, now, i);
        }
        // Rejoin s2: reboot, re-sync the missed suffix, restore the set.
        now = rejoin_secondary(&mut cluster, now, p, s2, &[s1, s2]);
        assert_eq!(
            cluster.device(s2).log_tail(0),
            cluster.device(p).log_tail(0),
            "re-sync caught the rejoined copy up to the primary's tail"
        );
        for i in 16..20u32 {
            now = commit(&mut db, &mut file, &mut cluster, now, i);
        }
        // Total cluster loss: every copy crash-destages its residue.
        let settle = now + SimDuration::from_millis(2);
        cluster.advance(settle);
        cluster.power_fail(p, settle);
        cluster.power_fail(s1, settle);
        cluster.power_fail(s2, settle);
        cluster.reboot_device(s2);
        // Recover from the *rejoined* copy: it must hold every commit.
        let stream = durable_log_stream(&mut cluster, settle, s2, 0);
        let mut recovered = Database::new();
        recovered.create_table("t");
        let rep = recover(&mut recovered, &stream);
        assert_eq!(rep.txns_committed, 20, "every committed transaction survives");
        assert_eq!(recovered.fingerprint(), db.fingerprint());
    }

    /// A secondary that stays down while the primary writes more than its
    /// destage ring retains cannot be resynced from live device state —
    /// the missed range has been recycled. The sealed-segment archive
    /// fills the gap: rejoin streams archived segments first, then hands
    /// off to the live three-zone resync, and a subsequent full-cluster
    /// crash recovered from the rejoined copy alone loses nothing.
    #[test]
    fn rejoin_from_archive_after_the_ring_recycles() {
        use crate::segment::{SegmentConfig, SegmentedLog};
        let mut cluster = Cluster::new();
        let p = cluster.add_device(VillarsConfig::small());
        let s1 = cluster.add_device(VillarsConfig::small());
        let s2 = cluster.add_device(VillarsConfig::small());
        let t0 = cluster.configure_replication(SimTime::ZERO, p, &[s1, s2]);

        let mut db = Database::new();
        let tab = db.create_table("t");
        let mut file = XLogFile::open(p);
        let mut seg = SegmentedLog::new(SegmentConfig { segment_bytes: 16 << 10 });
        let mut now = t0;
        let commit = |db: &mut Database,
                      seg: &mut SegmentedLog,
                      cluster: &mut Cluster,
                      file: &mut XLogFile,
                      now: SimTime,
                      i: u32|
         -> SimTime {
            let mut ctx = db.begin();
            db.insert(&mut ctx, tab, crate::storage::keys::composite(&[i]), vec![i as u8; 160]);
            let recs = db.commit(ctx).expect("commit");
            let mut bytes = Vec::new();
            for r in &recs {
                let start = bytes.len();
                r.encode_into(&mut bytes);
                seg.append_record_bytes(&bytes[start..]);
            }
            let t = file.x_pwrite(cluster, now, &bytes).expect("x_pwrite");
            file.x_fsync(cluster, t).expect("x_fsync")
        };

        for i in 0..8u32 {
            now = commit(&mut db, &mut seg, &mut cluster, &mut file, now, i);
        }
        cluster.power_fail(s2, now);
        let tail_at_crash = cluster.device(s2).log_tail(0);
        let report = fail_over(&mut cluster, now, p, &[s1]);
        now = report.reconfigured_at;
        // Write far more than the small destage ring (64 LBAs) retains.
        for i in 8..2000u32 {
            now = commit(&mut db, &mut seg, &mut cluster, &mut file, now, i);
        }
        let settle = now + SimDuration::from_millis(2);
        cluster.advance(settle);
        let recycled_from = cluster.device(p).destage_readable_from(0).expect("primary destaged");
        assert!(
            recycled_from > tail_at_crash,
            "test premise: the range s2 missed ({tail_at_crash}..) must have fallen off \
             the primary's ring (oldest readable {recycled_from})"
        );

        let rejoin =
            rejoin_secondary_from_archive(&mut cluster, settle, p, s2, &[s1, s2], &seg.views());
        assert_eq!(rejoin.tail_at_reboot, tail_at_crash);
        assert!(rejoin.archived_bytes > 0, "the archive leg must have shipped the gap");
        assert!(rejoin.archive_done <= rejoin.resynced_at);
        assert_eq!(
            cluster.device(s2).log_tail(0),
            cluster.device(p).log_tail(0),
            "archive + live resync caught the rejoined copy up to the primary's tail"
        );

        // Total cluster loss: recovery from the rejoined copy's durable
        // state alone must reproduce every committed transaction the ring
        // still serves — nothing the archive delivered was corrupted.
        let end = rejoin.active_at + SimDuration::from_millis(2);
        cluster.advance(end);
        cluster.power_fail(p, end);
        cluster.power_fail(s1, end);
        cluster.power_fail(s2, end);
        cluster.reboot_device(s2);
        let from = cluster.device(s2).destage_readable_from(0).expect("rejoined copy destaged");
        let upto = cluster.device(s2).destaged_upto(0);
        let (_ready, bytes) = cluster
            .device_mut(s2)
            .read_destaged(end, 0, from, (upto - from) as usize)
            .expect("suffix readable");
        let mut recovered = Database::new();
        recovered.create_table("t");
        // Bootstrap from the primary's log prefix (stands in for a
        // snapshot), then replay the rejoined copy's readable suffix.
        let mut prefix = Vec::new();
        for v in seg.views() {
            let end_lsn = v.base_lsn + v.bytes.len() as u64;
            if end_lsn <= from {
                prefix.extend_from_slice(v.bytes);
            } else if v.base_lsn < from {
                prefix.extend_from_slice(&v.bytes[..(from - v.base_lsn) as usize]);
            }
        }
        prefix.extend_from_slice(&bytes);
        recover(&mut recovered, &prefix);
        assert_eq!(recovered.fingerprint(), db.fingerprint());
    }

    /// The same failover arc must be timestep-for-timestep identical under
    /// the conservative parallel cluster core (`XSSD_SIM_THREADS`): crash
    /// detection instants, reconfiguration times, resynced tails, and the
    /// recovered fingerprint all come out of the cross-device event
    /// schedule, which the parallel mode must reproduce exactly.
    #[test]
    fn failover_timeline_is_execution_mode_invariant() {
        let run = |threads: usize| -> (SimTime, SimTime, u64, u64, u64) {
            let mut cluster = Cluster::with_sim_threads(threads);
            let p = cluster.add_device(VillarsConfig::small());
            let s1 = cluster.add_device(VillarsConfig::small());
            let s2 = cluster.add_device(VillarsConfig::small());
            let t0 = cluster.configure_replication(SimTime::ZERO, p, &[s1, s2]);

            let mut db = Database::new();
            let tab = db.create_table("t");
            let mut file = XLogFile::open(p);
            let mut now = t0;
            for i in 0..8u32 {
                let mut ctx = db.begin();
                db.insert(&mut ctx, tab, crate::storage::keys::composite(&[i]), vec![i as u8; 48]);
                let recs = db.commit(ctx).expect("commit");
                let t = file.x_pwrite(&mut cluster, now, &encode_txn(&recs)).expect("x_pwrite");
                now = file.x_fsync(&mut cluster, t).expect("x_fsync");
            }
            cluster.power_fail(s2, now);
            let report = fail_over(&mut cluster, now, p, &[s1]);
            now = report.reconfigured_at;
            for i in 8..12u32 {
                let mut ctx = db.begin();
                db.insert(&mut ctx, tab, crate::storage::keys::composite(&[i]), vec![i as u8; 48]);
                let recs = db.commit(ctx).expect("commit");
                let t = file.x_pwrite(&mut cluster, now, &encode_txn(&recs)).expect("x_pwrite");
                now = file.x_fsync(&mut cluster, t).expect("x_fsync");
            }
            now = rejoin_secondary(&mut cluster, now, p, s2, &[s1, s2]);
            let settle = now + SimDuration::from_millis(2);
            cluster.advance(settle);
            (
                report.detected_at,
                now,
                cluster.device(p).log_tail(0),
                cluster.device(s2).log_tail(0),
                db.fingerprint(),
            )
        };
        assert_eq!(run(1), run(4), "failover arc diverged between execution modes");
    }
}
