//! Pluggable log backends — the device configurations Fig. 9 compares.
//!
//! - [`NoLog`] — logging disabled (the paper's upper bound);
//! - [`PmLog`] — direct NVDIMM writes from the CPU: store + cache-line
//!   flush + fence (the "Memory" baseline);
//! - [`NvmeLog`] — pwrite/fsync against the conventional block SSD;
//! - [`XssdLog`] — `x_pwrite`/`x_fsync` against a Villars device's fast
//!   side (SRAM- or DRAM-backed, optionally replicated).

use nvme::{CmdTag, CommandKind, Completion, IoCommand, IoPort};
use simkit::{Bandwidth, SerialResource, SimDuration, SimTime};
use xssd_core::{Cluster, XLogFile};

/// One in-flight asynchronous append-and-persist unit (a WAL group),
/// returned by [`LogBackend::append_submit`] and retired by
/// [`LogBackend::drain_completions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppendTag(pub u64);

/// A durable append-only log device as the WAL manager sees it.
///
/// Two paths to durability:
///
/// - **Blocking**: [`append`](LogBackend::append) then
///   [`sync`](LogBackend::sync) — `sync` returns only once every prior
///   append (staged or in flight) is durable.
/// - **Asynchronous**: [`append_submit`](LogBackend::append_submit) hands
///   one append-and-persist unit to the device and returns immediately;
///   durability arrives later through
///   [`drain_completions`](LogBackend::drain_completions). This is what
///   lets the WAL group-commit loop keep several groups in flight.
pub trait LogBackend {
    /// Hand `data` to the device; returns when the append call returns to
    /// the caller (durability NOT implied).
    fn append(&mut self, now: SimTime, data: &[u8]) -> SimTime;

    /// Block until every appended byte is durable (per the backend's
    /// replication policy); returns the completion instant. Dominates
    /// asynchronous submissions too: any unit still in flight is durable
    /// by the returned instant (its completion is still delivered by the
    /// next [`drain_completions`](LogBackend::drain_completions)).
    fn sync(&mut self, now: SimTime) -> SimTime;

    /// Asynchronously hand `data` to the device as one self-contained
    /// append-and-persist unit. Returns the unit's tag plus the instant
    /// the submission returns to the caller (CPU hand-off; durability NOT
    /// implied).
    fn append_submit(&mut self, now: SimTime, data: &[u8]) -> (AppendTag, SimTime);

    /// Deliver `(tag, durable_at)` for every submitted unit known durable
    /// by `now`. Each tag is delivered at most once, in completion order.
    fn drain_completions(&mut self, now: SimTime, out: &mut Vec<(AppendTag, SimTime)>);

    /// Submitted units not yet reported durable.
    fn appends_in_flight(&self) -> usize;

    /// Earliest instant at which an in-flight unit could become durable —
    /// a virtual-time jump target for pollers. `None` when nothing is in
    /// flight or the backend cannot bound it (pollers should nudge).
    fn next_completion_at(&self) -> Option<SimTime>;

    /// Total bytes appended.
    fn bytes_written(&self) -> u64;

    /// Short label for reports.
    fn name(&self) -> &'static str;
}

/// Logging disabled.
#[derive(Debug, Default)]
pub struct NoLog {
    bytes: u64,
    next_tag: u64,
    pending: Vec<(AppendTag, SimTime)>,
}

impl NoLog {
    /// A fresh no-op backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LogBackend for NoLog {
    fn append(&mut self, now: SimTime, data: &[u8]) -> SimTime {
        self.bytes += data.len() as u64;
        now
    }

    fn sync(&mut self, now: SimTime) -> SimTime {
        now
    }

    fn append_submit(&mut self, now: SimTime, data: &[u8]) -> (AppendTag, SimTime) {
        self.bytes += data.len() as u64;
        let tag = AppendTag(self.next_tag);
        self.next_tag += 1;
        // Free logging: durable the instant it is submitted.
        self.pending.push((tag, now));
        (tag, now)
    }

    fn drain_completions(&mut self, _now: SimTime, out: &mut Vec<(AppendTag, SimTime)>) {
        out.append(&mut self.pending);
    }

    fn appends_in_flight(&self) -> usize {
        self.pending.len()
    }

    fn next_completion_at(&self) -> Option<SimTime> {
        self.pending.first().map(|&(_, at)| at)
    }

    fn bytes_written(&self) -> u64 {
        self.bytes
    }

    fn name(&self) -> &'static str {
        "no-log"
    }
}

/// NVDIMM parameters for [`PmLog`].
#[derive(Debug, Clone, Copy)]
pub struct PmConfig {
    /// Effective store bandwidth to the DIMM with persist barriers in the
    /// loop (measured NVDIMM-N streams run near DRAM speed; persist
    /// instructions shave it).
    pub bandwidth: Bandwidth,
    /// Per-cache-line flush cost (`clwb`-class).
    pub flush_per_line: SimDuration,
    /// Store fence at sync.
    pub fence: SimDuration,
}

impl Default for PmConfig {
    fn default() -> Self {
        PmConfig {
            bandwidth: Bandwidth::gbytes_per_sec(8.0),
            flush_per_line: SimDuration::from_nanos(20),
            fence: SimDuration::from_nanos(100),
        }
    }
}

/// Direct load/store logging into battery-backed DRAM on the memory bus
/// (the paper's "Memory" baseline; ERMIA emulates PM the same way, §6).
#[derive(Debug)]
pub struct PmLog {
    config: PmConfig,
    dimm: SerialResource,
    bytes: u64,
    pending_done: SimTime,
    next_tag: u64,
    /// Asynchronous units, `(tag, durable_at)`, ordered by durable instant
    /// (the DIMM is a serial resource, so grants never reorder).
    pending: Vec<(AppendTag, SimTime)>,
}

impl PmLog {
    /// A fresh PM log.
    pub fn new(config: PmConfig) -> Self {
        PmLog {
            config,
            dimm: SerialResource::new(),
            bytes: 0,
            pending_done: SimTime::ZERO,
            next_tag: 0,
            pending: Vec::new(),
        }
    }
}

impl LogBackend for PmLog {
    fn append(&mut self, now: SimTime, data: &[u8]) -> SimTime {
        let len = data.len() as u64;
        let lines = len.div_ceil(64);
        let cost = self.config.bandwidth.transfer_time(len) + self.config.flush_per_line * lines;
        let g = self.dimm.acquire(now, cost);
        self.bytes += len;
        self.pending_done = self.pending_done.max(g.end);
        // The store loop is synchronous on the CPU: the call returns when
        // the copy+flush is done.
        g.end
    }

    fn sync(&mut self, now: SimTime) -> SimTime {
        // All flushes already issued; sync is the fence. `pending_done`
        // covers asynchronous submissions too, so the fence dominates them.
        self.pending_done.max(now) + self.config.fence
    }

    fn append_submit(&mut self, now: SimTime, data: &[u8]) -> (AppendTag, SimTime) {
        let len = data.len() as u64;
        let lines = len.div_ceil(64);
        let cost = self.config.bandwidth.transfer_time(len) + self.config.flush_per_line * lines;
        let g = self.dimm.acquire(now, cost);
        self.bytes += len;
        self.pending_done = self.pending_done.max(g.end);
        let tag = AppendTag(self.next_tag);
        self.next_tag += 1;
        // Each unit carries its own fence: durable once the store+flush
        // train retires and the fence drains.
        self.pending.push((tag, g.end + self.config.fence));
        // The store loop itself is synchronous on the log-writer CPU.
        (tag, g.end)
    }

    fn drain_completions(&mut self, now: SimTime, out: &mut Vec<(AppendTag, SimTime)>) {
        while let Some(&(tag, at)) = self.pending.first() {
            if at > now {
                break;
            }
            out.push((tag, at));
            self.pending.remove(0);
        }
    }

    fn appends_in_flight(&self) -> usize {
        self.pending.len()
    }

    fn next_completion_at(&self) -> Option<SimTime> {
        self.pending.first().map(|&(_, at)| at)
    }

    fn bytes_written(&self) -> u64 {
        self.bytes
    }

    fn name(&self) -> &'static str {
        "pm-nvdimm"
    }
}

/// pwrite/fsync logging against the conventional NVMe SSD.
pub struct NvmeLog {
    driver: nvme::NvmeDriver<ssd::ConventionalSsd>,
    next_lba: u64,
    ring_lbas: u64,
    base_lba: u64,
    /// Bytes staged but not yet written as a block.
    staged: u64,
    bytes: u64,
    next_tag: u64,
    /// Asynchronous units, keyed by the flush command that makes the unit
    /// durable.
    pending: Vec<(AppendTag, CmdTag)>,
    /// Units whose flush completed but were not yet delivered to a drain.
    resolved: Vec<(AppendTag, SimTime)>,
    /// Scratch buffer for draining the driver port.
    drain: Vec<Completion>,
}

impl std::fmt::Debug for NvmeLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NvmeLog").field("bytes", &self.bytes).finish()
    }
}

impl NvmeLog {
    /// Log into `ssd`, cycling over a ring of `ring_lbas` blocks at
    /// `base_lba`.
    pub fn new(device: ssd::ConventionalSsd, base_lba: u64, ring_lbas: u64) -> Self {
        assert!(ring_lbas > 0);
        NvmeLog {
            driver: nvme::NvmeDriver::new(device),
            next_lba: 0,
            ring_lbas,
            base_lba,
            staged: 0,
            bytes: 0,
            next_tag: 0,
            pending: Vec::new(),
            resolved: Vec::new(),
            drain: Vec::new(),
        }
    }

    /// The wrapped device (stats).
    pub fn device(&self) -> &ssd::ConventionalSsd {
        self.driver.controller()
    }

    fn lba_bytes(&self) -> u64 {
        self.driver.namespace().lba_bytes as u64
    }

    /// Poll the driver's I/O port and move completed flushes — each one
    /// retiring an asynchronous append unit — into `resolved`. Write
    /// completions are dropped (the port retires their accounting).
    fn collect(&mut self, now: SimTime) {
        if self.pending.is_empty() {
            return;
        }
        IoPort::poll(&mut self.driver, now);
        let mut buf = std::mem::take(&mut self.drain);
        buf.clear();
        IoPort::completions_into(&mut self.driver, now, &mut buf);
        for c in &buf {
            if let Some(pos) = self.pending.iter().position(|&(_, ft)| ft.0 == c.entry.cid) {
                let (tag, _) = self.pending.remove(pos);
                debug_assert!(
                    c.entry.status.is_ok(),
                    "log flush failed (cid {}): {:?}",
                    c.entry.cid,
                    c.entry.status
                );
                self.resolved.push((tag, c.at));
            }
        }
        buf.clear();
        self.drain = buf;
    }
}

impl LogBackend for NvmeLog {
    fn append(&mut self, now: SimTime, data: &[u8]) -> SimTime {
        // pwrite(): the OS page cache (here: staging) absorbs it; blocks
        // are written out at sync. ERMIA-style direct logging would write
        // immediately; grouping at sync matches the group-commit pipeline.
        self.staged += data.len() as u64;
        self.bytes += data.len() as u64;
        now
    }

    fn sync(&mut self, now: SimTime) -> SimTime {
        // fsync dominates asynchronous submissions: retire any unit still
        // in flight before issuing the staged write-out, so the returned
        // instant covers them. (Their completions stay queued in
        // `resolved` for the next drain.)
        let mut t = now;
        while !self.pending.is_empty() {
            self.collect(t);
            if self.pending.is_empty() {
                break;
            }
            let next = IoPort::next_port_event_at(&self.driver).unwrap_or_else(|| {
                panic!("nvme log idle with {} append units still in flight", self.pending.len())
            });
            t = t.max(next);
        }
        for &(_, at) in &self.resolved {
            t = t.max(at);
        }
        if self.staged == 0 {
            return self.driver.flush_blocking(t).completed_at;
        }
        let lba_bytes = self.lba_bytes();
        let blocks = self.staged.div_ceil(lba_bytes).max(1);
        self.staged = 0;
        let mut remaining = blocks;
        while remaining > 0 {
            let chunk = remaining.min(self.ring_lbas - self.next_lba);
            let lba = self.base_lba + self.next_lba;
            let r = self.driver.write_blocking(t, lba, chunk as u32);
            debug_assert!(r.status.is_ok(), "log write failed: {:?}", r.status);
            t = r.completed_at;
            self.next_lba = (self.next_lba + chunk) % self.ring_lbas;
            remaining -= chunk;
        }
        let f = self.driver.flush_blocking(t);
        debug_assert!(f.status.is_ok());
        f.completed_at
    }

    fn append_submit(&mut self, now: SimTime, data: &[u8]) -> (AppendTag, SimTime) {
        let len = data.len() as u64;
        self.bytes += len;
        let lba_bytes = self.lba_bytes();
        let mut remaining = len.div_ceil(lba_bytes).max(1);
        // Queue the block writes and the flush without waiting: the flush
        // completion is the unit's durability point.
        while remaining > 0 {
            let chunk = remaining.min(self.ring_lbas - self.next_lba);
            let lba = self.base_lba + self.next_lba;
            let _write = IoPort::submit(
                &mut self.driver,
                now,
                CommandKind::Io(IoCommand::Write { lba, blocks: chunk as u32 }),
            );
            self.next_lba = (self.next_lba + chunk) % self.ring_lbas;
            remaining -= chunk;
        }
        let flush = IoPort::submit(&mut self.driver, now, CommandKind::Io(IoCommand::Flush));
        let tag = AppendTag(self.next_tag);
        self.next_tag += 1;
        self.pending.push((tag, flush));
        (tag, now)
    }

    fn drain_completions(&mut self, now: SimTime, out: &mut Vec<(AppendTag, SimTime)>) {
        self.collect(now);
        out.append(&mut self.resolved);
    }

    fn appends_in_flight(&self) -> usize {
        self.pending.len()
    }

    fn next_completion_at(&self) -> Option<SimTime> {
        if let Some(&(_, at)) = self.resolved.first() {
            return Some(at);
        }
        if self.pending.is_empty() {
            None
        } else {
            IoPort::next_port_event_at(&self.driver)
        }
    }

    fn bytes_written(&self) -> u64 {
        self.bytes
    }

    fn name(&self) -> &'static str {
        "nvme-block"
    }
}

/// `x_pwrite`/`x_fsync` logging against a Villars fast side. Owns the
/// cluster so replicated configurations (primary + secondaries) work the
/// same way.
pub struct XssdLog {
    cluster: Cluster,
    file: XLogFile,
    dev: usize,
    label: &'static str,
    next_tag: u64,
    /// Asynchronous units, `(tag, end_offset)`: durable once the policy-
    /// combined credit counter covers `end_offset`. Ordered by offset.
    pending: Vec<(AppendTag, u64)>,
    /// Units retired by an `x_fsync` but not yet delivered to a drain.
    resolved: Vec<(AppendTag, SimTime)>,
}

impl std::fmt::Debug for XssdLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("XssdLog").field("written", &self.file.written()).finish()
    }
}

impl XssdLog {
    /// Log into device `dev` of `cluster` (configure replication on the
    /// cluster before wrapping it).
    pub fn new(cluster: Cluster, dev: usize, label: &'static str) -> Self {
        XssdLog {
            cluster,
            file: XLogFile::open(dev),
            dev,
            label,
            next_tag: 0,
            pending: Vec::new(),
            resolved: Vec::new(),
        }
    }

    /// Access the cluster (stats, crash injection).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable cluster access.
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// The log handle.
    pub fn file_mut(&mut self) -> &mut XLogFile {
        &mut self.file
    }
}

impl LogBackend for XssdLog {
    fn append(&mut self, now: SimTime, data: &[u8]) -> SimTime {
        self.file.x_pwrite(&mut self.cluster, now, data).expect("fast-side append failed")
    }

    fn sync(&mut self, now: SimTime) -> SimTime {
        let t = self.file.x_fsync(&mut self.cluster, now).expect("x_fsync failed");
        // The fsync waited for the credit counter to cover every byte
        // handed off, asynchronous units included: retire them all here
        // (delivered by the next drain).
        for (tag, _) in self.pending.drain(..) {
            self.resolved.push((tag, t));
        }
        t
    }

    fn append_submit(&mut self, now: SimTime, data: &[u8]) -> (AppendTag, SimTime) {
        // `x_pwrite` returns at CPU hand-off (stores posted into the CMB
        // intake queue); durability is signalled later by the credit
        // counter, which `drain_completions` polls.
        let t = self.file.x_pwrite(&mut self.cluster, now, data).expect("fast-side append failed");
        let tag = AppendTag(self.next_tag);
        self.next_tag += 1;
        self.pending.push((tag, self.file.written()));
        (tag, t)
    }

    fn drain_completions(&mut self, now: SimTime, out: &mut Vec<(AppendTag, SimTime)>) {
        out.append(&mut self.resolved);
        if self.pending.is_empty() {
            return;
        }
        self.cluster.advance(now);
        let lane = self.file.lane();
        // Host-visible durability: the policy-combined credit counter (no
        // MMIO round trip — the poller reads the shadow state the host
        // would have cached). Completion instants are the poll instant,
        // exactly like `x_fsync` observes durability.
        let credit = self.cluster.device_mut(self.dev).observed_credit(now, lane);
        while let Some(&(tag, end)) = self.pending.first() {
            if end > credit {
                break;
            }
            out.push((tag, now));
            self.pending.remove(0);
        }
    }

    fn appends_in_flight(&self) -> usize {
        self.pending.len()
    }

    fn next_completion_at(&self) -> Option<SimTime> {
        if let Some(&(_, at)) = self.resolved.first() {
            return Some(at);
        }
        if self.pending.is_empty() {
            None
        } else {
            // The credit counter moves on cluster events (CMB drains,
            // shadow updates); the next one bounds the next completion.
            self.cluster.next_event_after(SimTime::ZERO)
        }
    }

    fn bytes_written(&self) -> u64 {
        self.file.written()
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

impl simkit::Instrument for NoLog {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.counter("db.log.bytes_appended", self.bytes);
        if self.next_tag > 0 {
            out.counter("db.log.async_appends", self.next_tag);
            out.gauge("db.log.appends_in_flight", self.pending.len() as f64);
        }
    }
}

impl simkit::Instrument for PmLog {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.counter("db.log.bytes_appended", self.bytes);
        out.counter("db.log.dimm_busy_ns", self.dimm.busy_time().as_nanos());
        out.counter("db.log.dimm_stores", self.dimm.request_count());
        if self.next_tag > 0 {
            out.counter("db.log.async_appends", self.next_tag);
            out.gauge("db.log.appends_in_flight", self.pending.len() as f64);
        }
    }
}

impl simkit::Instrument for NvmeLog {
    /// Reports the whole device stack under the wrapped SSD, plus the
    /// host-side NVMe command count under `nvme.driver`. The async-path
    /// metrics (including the driver's port accounting) appear only once
    /// `append_submit` has been used, so blocking-only runs serialize
    /// exactly as before.
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.counter("db.log.bytes_appended", self.bytes);
        out.counter("nvme.driver.commands", self.driver.commands_issued());
        if self.next_tag > 0 {
            out.counter("db.log.async_appends", self.next_tag);
            out.gauge("db.log.appends_in_flight", self.pending.len() as f64);
            let mut port = out.scope("db.log.port");
            self.driver.port_stats().instrument(&mut port);
        }
        self.driver.controller().instrument(out);
    }
}

impl simkit::Instrument for XssdLog {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.counter("db.log.bytes_appended", self.file.written());
        if self.next_tag > 0 {
            out.counter("db.log.async_appends", self.next_tag);
            out.gauge("db.log.appends_in_flight", self.pending.len() as f64);
        }
        self.cluster.instrument(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd::{ConventionalSsd, SsdConfig};
    use xssd_core::VillarsConfig;

    #[test]
    fn no_log_is_free() {
        let mut b = NoLog::new();
        let t = b.append(SimTime::ZERO, &[0u8; 4096]);
        assert_eq!(t, SimTime::ZERO);
        assert_eq!(b.sync(t), t);
        assert_eq!(b.bytes_written(), 4096);
    }

    #[test]
    fn pm_log_costs_copy_plus_fence() {
        let mut b = PmLog::new(PmConfig::default());
        let t1 = b.append(SimTime::ZERO, &[0u8; 16384]);
        // 16KiB at 8 GB/s = 2048ns + 256 lines * 20ns = 5120ns -> ~7.2us.
        assert!(t1.as_micros_f64() > 5.0 && t1.as_micros_f64() < 10.0, "{t1}");
        let t2 = b.sync(t1);
        assert_eq!((t2 - t1).as_nanos(), 100);
    }

    #[test]
    fn nvme_log_sync_includes_flash_program() {
        let dev = ConventionalSsd::new(SsdConfig::small());
        let mut b = NvmeLog::new(dev, 0, 64);
        let t1 = b.append(SimTime::ZERO, &[0u8; 8192]);
        assert_eq!(t1, SimTime::ZERO, "append stages only");
        let t2 = b.sync(t1);
        // Two 4KiB blocks + flush: must include tPROG (fast timing 50us).
        assert!(t2.as_micros_f64() >= 50.0, "sync too fast: {t2}");
        assert_eq!(b.bytes_written(), 8192);
    }

    #[test]
    fn nvme_log_ring_wraps() {
        let dev = ConventionalSsd::new(SsdConfig::small());
        let mut b = NvmeLog::new(dev, 0, 4);
        let mut t = SimTime::ZERO;
        for _ in 0..6 {
            b.append(t, &[1u8; 4096]);
            t = b.sync(t);
        }
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn xssd_log_round_trip() {
        let mut cluster = Cluster::new();
        let dev = cluster.add_device(VillarsConfig::small());
        let mut b = XssdLog::new(cluster, dev, "villars-sram");
        let t1 = b.append(SimTime::ZERO, &[7u8; 4096]);
        let t2 = b.sync(t1);
        assert!(t2 >= t1);
        assert_eq!(b.bytes_written(), 4096);
        // A Villars sync is persistence-on-PM: far faster than flash tPROG.
        assert!(t2.as_micros_f64() < 50.0, "fast side too slow: {t2}");
    }

    #[test]
    fn backend_latency_ordering_matches_fig9() {
        // The core Fig. 9 claim for one 16KiB group commit:
        // no-log < pm ~ villars-sram << nvme.
        let batch = vec![0u8; 16 << 10];

        let mut nolog = NoLog::new();
        let t_nolog = {
            let t = nolog.append(SimTime::ZERO, &batch);
            nolog.sync(t)
        };

        let mut pm = PmLog::new(PmConfig::default());
        let t_pm = {
            let t = pm.append(SimTime::ZERO, &batch);
            pm.sync(t)
        };

        let mut cluster = Cluster::new();
        let dev = cluster.add_device(VillarsConfig::small());
        let mut xssd = XssdLog::new(cluster, dev, "villars-sram");
        let t_xssd = {
            let t = xssd.append(SimTime::ZERO, &batch);
            xssd.sync(t)
        };

        let mut nvme = NvmeLog::new(ConventionalSsd::new(SsdConfig::small()), 0, 64);
        let t_nvme = {
            let t = nvme.append(SimTime::ZERO, &batch);
            nvme.sync(t)
        };

        assert!(t_nolog < t_pm, "{t_nolog} vs {t_pm}");
        assert!(t_pm < t_nvme, "{t_pm} vs {t_nvme}");
        assert!(t_xssd < t_nvme, "{t_xssd} vs {t_nvme}");
        // Fast side within a small factor of raw PM.
        let ratio = t_xssd.as_nanos() as f64 / t_pm.as_nanos().max(1) as f64;
        assert!(ratio < 6.0, "villars/pm ratio {ratio}");
    }
}
