//! Pluggable log backends — the device configurations Fig. 9 compares.
//!
//! - [`NoLog`] — logging disabled (the paper's upper bound);
//! - [`PmLog`] — direct NVDIMM writes from the CPU: store + cache-line
//!   flush + fence (the "Memory" baseline);
//! - [`NvmeLog`] — pwrite/fsync against the conventional block SSD;
//! - [`XssdLog`] — `x_pwrite`/`x_fsync` against a Villars device's fast
//!   side (SRAM- or DRAM-backed, optionally replicated).

use simkit::{Bandwidth, SerialResource, SimDuration, SimTime};
use xssd_core::{Cluster, XLogFile};

/// A durable append-only log device as the WAL manager sees it.
pub trait LogBackend {
    /// Hand `data` to the device; returns when the append call returns to
    /// the caller (durability NOT implied).
    fn append(&mut self, now: SimTime, data: &[u8]) -> SimTime;

    /// Block until every appended byte is durable (per the backend's
    /// replication policy); returns the completion instant.
    fn sync(&mut self, now: SimTime) -> SimTime;

    /// Total bytes appended.
    fn bytes_written(&self) -> u64;

    /// Short label for reports.
    fn name(&self) -> &'static str;
}

/// Logging disabled.
#[derive(Debug, Default)]
pub struct NoLog {
    bytes: u64,
}

impl NoLog {
    /// A fresh no-op backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LogBackend for NoLog {
    fn append(&mut self, now: SimTime, data: &[u8]) -> SimTime {
        self.bytes += data.len() as u64;
        now
    }

    fn sync(&mut self, now: SimTime) -> SimTime {
        now
    }

    fn bytes_written(&self) -> u64 {
        self.bytes
    }

    fn name(&self) -> &'static str {
        "no-log"
    }
}

/// NVDIMM parameters for [`PmLog`].
#[derive(Debug, Clone, Copy)]
pub struct PmConfig {
    /// Effective store bandwidth to the DIMM with persist barriers in the
    /// loop (measured NVDIMM-N streams run near DRAM speed; persist
    /// instructions shave it).
    pub bandwidth: Bandwidth,
    /// Per-cache-line flush cost (`clwb`-class).
    pub flush_per_line: SimDuration,
    /// Store fence at sync.
    pub fence: SimDuration,
}

impl Default for PmConfig {
    fn default() -> Self {
        PmConfig {
            bandwidth: Bandwidth::gbytes_per_sec(8.0),
            flush_per_line: SimDuration::from_nanos(20),
            fence: SimDuration::from_nanos(100),
        }
    }
}

/// Direct load/store logging into battery-backed DRAM on the memory bus
/// (the paper's "Memory" baseline; ERMIA emulates PM the same way, §6).
#[derive(Debug)]
pub struct PmLog {
    config: PmConfig,
    dimm: SerialResource,
    bytes: u64,
    pending_done: SimTime,
}

impl PmLog {
    /// A fresh PM log.
    pub fn new(config: PmConfig) -> Self {
        PmLog { config, dimm: SerialResource::new(), bytes: 0, pending_done: SimTime::ZERO }
    }
}

impl LogBackend for PmLog {
    fn append(&mut self, now: SimTime, data: &[u8]) -> SimTime {
        let len = data.len() as u64;
        let lines = len.div_ceil(64);
        let cost = self.config.bandwidth.transfer_time(len) + self.config.flush_per_line * lines;
        let g = self.dimm.acquire(now, cost);
        self.bytes += len;
        self.pending_done = self.pending_done.max(g.end);
        // The store loop is synchronous on the CPU: the call returns when
        // the copy+flush is done.
        g.end
    }

    fn sync(&mut self, now: SimTime) -> SimTime {
        // All flushes already issued; sync is the fence.
        self.pending_done.max(now) + self.config.fence
    }

    fn bytes_written(&self) -> u64 {
        self.bytes
    }

    fn name(&self) -> &'static str {
        "pm-nvdimm"
    }
}

/// pwrite/fsync logging against the conventional NVMe SSD.
pub struct NvmeLog {
    driver: nvme::NvmeDriver<ssd::ConventionalSsd>,
    next_lba: u64,
    ring_lbas: u64,
    base_lba: u64,
    /// Bytes staged but not yet written as a block.
    staged: u64,
    bytes: u64,
}

impl std::fmt::Debug for NvmeLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NvmeLog").field("bytes", &self.bytes).finish()
    }
}

impl NvmeLog {
    /// Log into `ssd`, cycling over a ring of `ring_lbas` blocks at
    /// `base_lba`.
    pub fn new(device: ssd::ConventionalSsd, base_lba: u64, ring_lbas: u64) -> Self {
        assert!(ring_lbas > 0);
        NvmeLog {
            driver: nvme::NvmeDriver::new(device),
            next_lba: 0,
            ring_lbas,
            base_lba,
            staged: 0,
            bytes: 0,
        }
    }

    /// The wrapped device (stats).
    pub fn device(&self) -> &ssd::ConventionalSsd {
        self.driver.controller()
    }

    fn lba_bytes(&self) -> u64 {
        self.driver.namespace().lba_bytes as u64
    }
}

impl LogBackend for NvmeLog {
    fn append(&mut self, now: SimTime, data: &[u8]) -> SimTime {
        // pwrite(): the OS page cache (here: staging) absorbs it; blocks
        // are written out at sync. ERMIA-style direct logging would write
        // immediately; grouping at sync matches the group-commit pipeline.
        self.staged += data.len() as u64;
        self.bytes += data.len() as u64;
        now
    }

    fn sync(&mut self, now: SimTime) -> SimTime {
        if self.staged == 0 {
            return self.driver.flush_blocking(now).completed_at;
        }
        let lba_bytes = self.lba_bytes();
        let blocks = self.staged.div_ceil(lba_bytes).max(1);
        self.staged = 0;
        let mut t = now;
        let mut remaining = blocks;
        while remaining > 0 {
            let chunk = remaining.min(self.ring_lbas - self.next_lba);
            let lba = self.base_lba + self.next_lba;
            let r = self.driver.write_blocking(t, lba, chunk as u32);
            debug_assert!(r.status.is_ok(), "log write failed: {:?}", r.status);
            t = r.completed_at;
            self.next_lba = (self.next_lba + chunk) % self.ring_lbas;
            remaining -= chunk;
        }
        let f = self.driver.flush_blocking(t);
        debug_assert!(f.status.is_ok());
        f.completed_at
    }

    fn bytes_written(&self) -> u64 {
        self.bytes
    }

    fn name(&self) -> &'static str {
        "nvme-block"
    }
}

/// `x_pwrite`/`x_fsync` logging against a Villars fast side. Owns the
/// cluster so replicated configurations (primary + secondaries) work the
/// same way.
pub struct XssdLog {
    cluster: Cluster,
    file: XLogFile,
    label: &'static str,
}

impl std::fmt::Debug for XssdLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("XssdLog").field("written", &self.file.written()).finish()
    }
}

impl XssdLog {
    /// Log into device `dev` of `cluster` (configure replication on the
    /// cluster before wrapping it).
    pub fn new(cluster: Cluster, dev: usize, label: &'static str) -> Self {
        XssdLog { cluster, file: XLogFile::open(dev), label }
    }

    /// Access the cluster (stats, crash injection).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable cluster access.
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// The log handle.
    pub fn file_mut(&mut self) -> &mut XLogFile {
        &mut self.file
    }
}

impl LogBackend for XssdLog {
    fn append(&mut self, now: SimTime, data: &[u8]) -> SimTime {
        self.file.x_pwrite(&mut self.cluster, now, data).expect("fast-side append failed")
    }

    fn sync(&mut self, now: SimTime) -> SimTime {
        self.file.x_fsync(&mut self.cluster, now).expect("x_fsync failed")
    }

    fn bytes_written(&self) -> u64 {
        self.file.written()
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

impl simkit::Instrument for NoLog {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.counter("db.log.bytes_appended", self.bytes);
    }
}

impl simkit::Instrument for PmLog {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.counter("db.log.bytes_appended", self.bytes);
        out.counter("db.log.dimm_busy_ns", self.dimm.busy_time().as_nanos());
        out.counter("db.log.dimm_stores", self.dimm.request_count());
    }
}

impl simkit::Instrument for NvmeLog {
    /// Reports the whole device stack under the wrapped SSD, plus the
    /// host-side NVMe command count under `nvme.driver`.
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.counter("db.log.bytes_appended", self.bytes);
        out.counter("nvme.driver.commands", self.driver.commands_issued());
        self.driver.controller().instrument(out);
    }
}

impl simkit::Instrument for XssdLog {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.counter("db.log.bytes_appended", self.file.written());
        self.cluster.instrument(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd::{ConventionalSsd, SsdConfig};
    use xssd_core::VillarsConfig;

    #[test]
    fn no_log_is_free() {
        let mut b = NoLog::new();
        let t = b.append(SimTime::ZERO, &[0u8; 4096]);
        assert_eq!(t, SimTime::ZERO);
        assert_eq!(b.sync(t), t);
        assert_eq!(b.bytes_written(), 4096);
    }

    #[test]
    fn pm_log_costs_copy_plus_fence() {
        let mut b = PmLog::new(PmConfig::default());
        let t1 = b.append(SimTime::ZERO, &[0u8; 16384]);
        // 16KiB at 8 GB/s = 2048ns + 256 lines * 20ns = 5120ns -> ~7.2us.
        assert!(t1.as_micros_f64() > 5.0 && t1.as_micros_f64() < 10.0, "{t1}");
        let t2 = b.sync(t1);
        assert_eq!((t2 - t1).as_nanos(), 100);
    }

    #[test]
    fn nvme_log_sync_includes_flash_program() {
        let dev = ConventionalSsd::new(SsdConfig::small());
        let mut b = NvmeLog::new(dev, 0, 64);
        let t1 = b.append(SimTime::ZERO, &[0u8; 8192]);
        assert_eq!(t1, SimTime::ZERO, "append stages only");
        let t2 = b.sync(t1);
        // Two 4KiB blocks + flush: must include tPROG (fast timing 50us).
        assert!(t2.as_micros_f64() >= 50.0, "sync too fast: {t2}");
        assert_eq!(b.bytes_written(), 8192);
    }

    #[test]
    fn nvme_log_ring_wraps() {
        let dev = ConventionalSsd::new(SsdConfig::small());
        let mut b = NvmeLog::new(dev, 0, 4);
        let mut t = SimTime::ZERO;
        for _ in 0..6 {
            b.append(t, &[1u8; 4096]);
            t = b.sync(t);
        }
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn xssd_log_round_trip() {
        let mut cluster = Cluster::new();
        let dev = cluster.add_device(VillarsConfig::small());
        let mut b = XssdLog::new(cluster, dev, "villars-sram");
        let t1 = b.append(SimTime::ZERO, &[7u8; 4096]);
        let t2 = b.sync(t1);
        assert!(t2 >= t1);
        assert_eq!(b.bytes_written(), 4096);
        // A Villars sync is persistence-on-PM: far faster than flash tPROG.
        assert!(t2.as_micros_f64() < 50.0, "fast side too slow: {t2}");
    }

    #[test]
    fn backend_latency_ordering_matches_fig9() {
        // The core Fig. 9 claim for one 16KiB group commit:
        // no-log < pm ~ villars-sram << nvme.
        let batch = vec![0u8; 16 << 10];

        let mut nolog = NoLog::new();
        let t_nolog = {
            let t = nolog.append(SimTime::ZERO, &batch);
            nolog.sync(t)
        };

        let mut pm = PmLog::new(PmConfig::default());
        let t_pm = {
            let t = pm.append(SimTime::ZERO, &batch);
            pm.sync(t)
        };

        let mut cluster = Cluster::new();
        let dev = cluster.add_device(VillarsConfig::small());
        let mut xssd = XssdLog::new(cluster, dev, "villars-sram");
        let t_xssd = {
            let t = xssd.append(SimTime::ZERO, &batch);
            xssd.sync(t)
        };

        let mut nvme = NvmeLog::new(ConventionalSsd::new(SsdConfig::small()), 0, 64);
        let t_nvme = {
            let t = nvme.append(SimTime::ZERO, &batch);
            nvme.sync(t)
        };

        assert!(t_nolog < t_pm, "{t_nolog} vs {t_pm}");
        assert!(t_pm < t_nvme, "{t_pm} vs {t_nvme}");
        assert!(t_xssd < t_nvme, "{t_xssd} vs {t_nvme}");
        // Fast side within a small factor of raw PM.
        let ratio = t_xssd.as_nanos() as f64 / t_pm.as_nanos().max(1) as f64;
        assert!(ratio < 6.0, "villars/pm ratio {ratio}");
    }
}
