//! Crash recovery from the destaged log.
//!
//! After a power failure, the Villars device's crash protocol guarantees
//! that everything the credit counter covered is on the conventional side
//! (paper §4.1). Recovery tail-reads the destage ring, decodes the record
//! stream, and redoes transactions that reached their commit marker —
//! a compact analysis+redo pass in the ARIES spirit (undo is unnecessary:
//! uncommitted transactions never install state in a main-memory engine
//! whose checkpoint is the log itself).
//!
//! With the segmented lifecycle (`crate::segment`) the same pass runs
//! bounded: [`replay_segments`] starts at the latest snapshot's log
//! offset and replays only the retained segments after it — sealed
//! segments verified by their whole-segment CRC, the durable tail
//! validated per record and truncated at the last valid CRC. Replay cost
//! is therefore a function of the checkpoint interval, never of total
//! history.

use crate::log::{decode_stream, fnv1a, LogOp, LogRecord};
use crate::segment::SegmentView;
use crate::storage::Database;
use std::collections::HashSet;

/// What a recovery pass found and applied.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Records decoded from the durable log stream.
    pub records_scanned: usize,
    /// Distinct transactions with a commit marker.
    pub txns_committed: usize,
    /// Records belonging to transactions without a commit marker (dropped).
    pub records_uncommitted: usize,
    /// Bytes of the stream consumed before the first undecodable byte.
    pub bytes_consumed: usize,
}

/// Replay a durable log byte stream into `db`.
///
/// Two passes: (1) analysis — find transactions whose commit marker made it
/// to durable storage; (2) redo — apply exactly those transactions' records
/// in log order.
pub fn recover(db: &mut Database, log_stream: &[u8]) -> RecoveryReport {
    let (records, bytes_consumed) = decode_stream(log_stream);
    let committed: HashSet<u64> =
        records.iter().filter(|r| r.op == LogOp::Commit).map(|r| r.txn_id).collect();
    let mut dropped = 0usize;
    for rec in &records {
        if rec.op == LogOp::Commit {
            continue;
        }
        if committed.contains(&rec.txn_id) {
            db.apply_record(rec);
        } else {
            dropped += 1;
        }
    }
    RecoveryReport {
        records_scanned: records.len(),
        txns_committed: committed.len(),
        records_uncommitted: dropped,
        bytes_consumed,
    }
}

/// What a segment-bounded replay found and applied.
#[derive(Debug, Clone, Default)]
pub struct SegmentReplayReport {
    /// Records decoded from the replayed segment range.
    pub records_scanned: usize,
    /// Distinct transactions with a commit marker in that range.
    pub txns_committed: usize,
    /// Records of transactions without a durable commit marker (dropped).
    pub records_uncommitted: usize,
    /// Bytes decoded and considered for redo (snapshot offset → last
    /// valid record at or below the durable frontier).
    pub replay_bytes: u64,
    /// Segments that contributed at least one replayed byte.
    pub segments_replayed: usize,
    /// Durable-range bytes discarded past the last valid record (torn
    /// tail, or everything after a sealed segment that failed its CRC).
    pub torn_bytes: u64,
}

/// Replay *latest snapshot + subsequent segments* into `db`.
///
/// `segments` are the retained segments in LSN order (e.g.
/// [`crate::segment::SegmentedLog::views`]); `snapshot_offset` is the
/// restored checkpoint's log offset (always a record boundary — flushes
/// carry whole records); `durable_upto` clamps replay to what the log
/// device actually persisted before the crash — bytes beyond it never
/// left the host and must not be resurrected.
///
/// Sealed segments (those carrying a CRC) that are fully durable are
/// verified wholesale; a mismatch stops replay there, discarding the rest
/// of the durable range. The tail segment is validated per record, and
/// replay truncates at the last record whose CRC checks out. The
/// analysis pass then redoes exactly the transactions whose commit marker
/// survived those cuts.
///
/// Panics if the archive has a gap, or was truncated past
/// `snapshot_offset` (retention retired a segment the snapshot still
/// needed — a lifecycle protocol violation, not a recoverable state).
pub fn replay_segments(
    db: &mut Database,
    snapshot_offset: u64,
    segments: &[SegmentView<'_>],
    durable_upto: u64,
) -> SegmentReplayReport {
    assert!(
        snapshot_offset <= durable_upto,
        "snapshot offset {snapshot_offset} ahead of the durable frontier {durable_upto}"
    );
    let mut report = SegmentReplayReport::default();
    if segments.is_empty() {
        return report;
    }
    assert!(
        segments[0].base_lsn <= snapshot_offset,
        "archive truncated past the snapshot: oldest retained byte {} > snapshot offset {}",
        segments[0].base_lsn,
        snapshot_offset
    );
    for w in segments.windows(2) {
        assert_eq!(
            w[0].base_lsn + w[0].bytes.len() as u64,
            w[1].base_lsn,
            "segment archive has a gap"
        );
    }

    let mut records = Vec::new();
    let mut stopped = false;
    for seg in segments {
        let len = seg.bytes.len() as u64;
        let start = snapshot_offset.saturating_sub(seg.base_lsn).min(len);
        let end = durable_upto.saturating_sub(seg.base_lsn).min(len);
        if end <= start {
            continue; // entirely below the snapshot or beyond durability
        }
        if stopped {
            report.torn_bytes += end - start;
            continue;
        }
        let fully_durable = seg.base_lsn + len <= durable_upto;
        if let Some(crc) = seg.crc {
            if fully_durable && fnv1a(seg.bytes) != crc {
                report.torn_bytes += end - start;
                stopped = true;
                continue;
            }
        }
        let region = &seg.bytes[start as usize..end as usize];
        let (mut recs, consumed) = decode_stream(region);
        if consumed > 0 {
            report.segments_replayed += 1;
        }
        report.replay_bytes += consumed as u64;
        records.append(&mut recs);
        if consumed < region.len() {
            report.torn_bytes += (region.len() - consumed) as u64;
            stopped = true;
        }
    }

    let committed: HashSet<u64> =
        records.iter().filter(|r| r.op == LogOp::Commit).map(|r| r.txn_id).collect();
    for rec in &records {
        if rec.op == LogOp::Commit {
            continue;
        }
        if committed.contains(&rec.txn_id) {
            db.apply_record(rec);
        } else {
            report.records_uncommitted += 1;
        }
    }
    report.records_scanned = records.len();
    report.txns_committed = committed.len();
    report
}

impl simkit::Instrument for SegmentReplayReport {
    fn instrument(&self, out: &mut simkit::Scope<'_>) {
        out.counter("recovery.replay_records", self.records_scanned as u64);
        out.counter("recovery.replay_bytes", self.replay_bytes);
        out.counter("recovery.segments_replayed", self.segments_replayed as u64);
        out.counter("recovery.txns_committed", self.txns_committed as u64);
        out.counter("recovery.torn_bytes", self.torn_bytes);
    }
}

/// Encode a transaction's records (ending in its commit marker) — test and
/// replica helper.
pub fn encode_txn(records: &[LogRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in records {
        r.encode_into(&mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::Database;

    fn committed_txn(db: &mut Database, t: u16, key: &[u8], val: &[u8]) -> Vec<u8> {
        let mut ctx = db.begin();
        db.insert(&mut ctx, t, key.to_vec(), val.to_vec());
        encode_txn(&db.commit(ctx).unwrap())
    }

    #[test]
    fn committed_txns_replay() {
        let mut primary = Database::new();
        let t = primary.create_table("t");
        let mut stream = Vec::new();
        stream.extend(committed_txn(&mut primary, t, b"a", b"1"));
        stream.extend(committed_txn(&mut primary, t, b"b", b"2"));

        let mut recovered = Database::new();
        recovered.create_table("t");
        let report = recover(&mut recovered, &stream);
        assert_eq!(report.txns_committed, 2);
        assert_eq!(report.records_uncommitted, 0);
        assert_eq!(recovered.fingerprint(), primary.fingerprint());
    }

    #[test]
    fn uncommitted_tail_dropped() {
        let mut primary = Database::new();
        let t = primary.create_table("t");
        let mut stream = Vec::new();
        stream.extend(committed_txn(&mut primary, t, b"a", b"1"));
        // A transaction whose commit marker never made it: records only.
        let orphan = crate::log::LogRecord {
            txn_id: 999,
            op: LogOp::Insert,
            table: t,
            key: b"ghost".to_vec().into(),
            value: b"x".to_vec().into(),
        };
        stream.extend(orphan.encode());

        let mut recovered = Database::new();
        recovered.create_table("t");
        let report = recover(&mut recovered, &stream);
        assert_eq!(report.txns_committed, 1);
        assert_eq!(report.records_uncommitted, 1);
        assert!(recovered.peek(t, b"ghost").is_none());
        assert_eq!(recovered.peek(t, b"a").unwrap(), b"1");
    }

    #[test]
    fn torn_tail_stops_cleanly() {
        let mut primary = Database::new();
        let t = primary.create_table("t");
        let mut stream = Vec::new();
        stream.extend(committed_txn(&mut primary, t, b"a", b"1"));
        let clean_len = stream.len();
        let second = committed_txn(&mut primary, t, b"b", b"2");
        stream.extend(&second[..second.len() / 2]); // torn

        let mut recovered = Database::new();
        recovered.create_table("t");
        let report = recover(&mut recovered, &stream);
        assert_eq!(report.bytes_consumed, clean_len);
        assert_eq!(report.txns_committed, 1);
        assert!(recovered.peek(t, b"b").is_none());
    }

    #[test]
    fn filler_after_records_is_ignored() {
        let mut primary = Database::new();
        let t = primary.create_table("t");
        let mut stream = Vec::new();
        stream.extend(committed_txn(&mut primary, t, b"a", b"1"));
        stream.extend(std::iter::repeat_n(0u8, 4096)); // destage filler

        let mut recovered = Database::new();
        recovered.create_table("t");
        let report = recover(&mut recovered, &stream);
        assert_eq!(report.txns_committed, 1);
        assert_eq!(recovered.peek(t, b"a").unwrap(), b"1");
    }

    /// A primary, its flat log stream, a parallel [`SegmentedLog`], and
    /// the record-boundary offset after each committed transaction.
    fn segmented_history(
        txns: usize,
        segment_bytes: u64,
    ) -> (Database, Vec<u8>, crate::segment::SegmentedLog, Vec<u64>) {
        let mut primary = Database::new();
        let t = primary.create_table("t");
        let mut seg =
            crate::segment::SegmentedLog::new(crate::segment::SegmentConfig { segment_bytes });
        let mut stream = Vec::new();
        let mut boundaries = Vec::new();
        for i in 0..txns {
            let mut ctx = primary.begin();
            primary.insert(&mut ctx, t, format!("k{i:04}").into_bytes(), vec![i as u8; 5 + i % 17]);
            for r in primary.commit(ctx).unwrap() {
                let start = stream.len();
                r.encode_into(&mut stream);
                seg.append_record_bytes(&stream[start..]);
            }
            boundaries.push(stream.len() as u64);
        }
        (primary, stream, seg, boundaries)
    }

    fn fresh_like(primary: &Database) -> Database {
        let mut db = Database::new();
        db.create_table("t");
        let _ = primary; // same catalog by construction
        db
    }

    #[test]
    fn segment_replay_matches_full_recovery() {
        let (primary, stream, seg, boundaries) = segmented_history(30, 96);
        let durable = stream.len() as u64;
        // Snapshot after the 11th transaction: restore = replay of the
        // prefix, then segment replay of the suffix only.
        let snap = boundaries[10];
        let mut via_segments = fresh_like(&primary);
        recover(&mut via_segments, &stream[..snap as usize]);
        let report = replay_segments(&mut via_segments, snap, &seg.views(), durable);
        assert_eq!(via_segments.fingerprint(), primary.fingerprint());
        assert_eq!(report.replay_bytes, durable - snap);
        assert_eq!(report.torn_bytes, 0);
        assert!(report.segments_replayed > 1, "96-byte segments must have rotated");
    }

    #[test]
    fn segment_replay_survives_truncation_to_the_snapshot() {
        let (primary, stream, mut seg, boundaries) = segmented_history(30, 96);
        let durable = stream.len() as u64;
        let snap = boundaries[14];
        let retired = seg.truncate_below(snap);
        assert!(retired > 0);
        let mut db = fresh_like(&primary);
        recover(&mut db, &stream[..snap as usize]);
        replay_segments(&mut db, snap, &seg.views(), durable);
        assert_eq!(db.fingerprint(), primary.fingerprint());
    }

    #[test]
    #[should_panic(expected = "archive truncated past the snapshot")]
    fn replay_rejects_an_archive_truncated_past_the_snapshot() {
        let (primary, _stream, mut seg, boundaries) = segmented_history(30, 96);
        // Horizon well past the snapshot we then try to replay from.
        seg.truncate_below(boundaries[20]);
        let mut db = fresh_like(&primary);
        replay_segments(&mut db, boundaries[2], &seg.views(), boundaries[29]);
    }

    #[test]
    fn segment_replay_clamps_at_the_durable_frontier() {
        let (primary, stream, seg, boundaries) = segmented_history(30, 96);
        // Crash with the tail only partially durable: mid-record.
        let durable = boundaries[22] + 7;
        let mut via_segments = fresh_like(&primary);
        let report = replay_segments(&mut via_segments, 0, &seg.views(), durable);
        assert!(report.torn_bytes > 0, "mid-record clamp leaves a torn tail");
        // Oracle: the legacy pass over exactly the durable prefix.
        let mut oracle = fresh_like(&primary);
        recover(&mut oracle, &stream[..durable as usize]);
        assert_eq!(via_segments.fingerprint(), oracle.fingerprint());
        assert_ne!(via_segments.fingerprint(), primary.fingerprint());
    }

    #[test]
    fn corrupt_sealed_segment_stops_replay() {
        let (primary, _stream, seg, _boundaries) = segmented_history(30, 96);
        let durable = seg.end_lsn();
        let mut owned: Vec<(u64, Vec<u8>, Option<u32>)> =
            seg.views().iter().map(|v| (v.base_lsn, v.bytes.to_vec(), v.crc)).collect();
        assert!(owned.len() > 3);
        owned[1].1[5] ^= 0xFF; // corrupt the second sealed segment
        let views: Vec<crate::segment::SegmentView<'_>> = owned
            .iter()
            .map(|(base, bytes, crc)| crate::segment::SegmentView {
                base_lsn: *base,
                bytes,
                crc: *crc,
            })
            .collect();
        let mut db = fresh_like(&primary);
        let report = replay_segments(&mut db, 0, &views, durable);
        // Replay stopped at the bad segment: only segment 0 applied, the
        // corrupt segment and everything after counted as torn.
        assert_eq!(report.segments_replayed, 1);
        assert_eq!(report.replay_bytes + report.torn_bytes, durable);
        assert_ne!(db.fingerprint(), primary.fingerprint());
    }

    #[test]
    fn deletes_replay() {
        let mut primary = Database::new();
        let t = primary.create_table("t");
        let mut stream = Vec::new();
        stream.extend(committed_txn(&mut primary, t, b"a", b"1"));
        let mut ctx = primary.begin();
        primary.delete(&mut ctx, t, b"a".to_vec());
        stream.extend(encode_txn(&primary.commit(ctx).unwrap()));

        let mut recovered = Database::new();
        recovered.create_table("t");
        recover(&mut recovered, &stream);
        assert!(recovered.peek(t, b"a").is_none());
        assert_eq!(recovered.fingerprint(), primary.fingerprint());
    }
}
