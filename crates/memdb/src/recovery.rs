//! Crash recovery from the destaged log.
//!
//! After a power failure, the Villars device's crash protocol guarantees
//! that everything the credit counter covered is on the conventional side
//! (paper §4.1). Recovery tail-reads the destage ring, decodes the record
//! stream, and redoes transactions that reached their commit marker —
//! a compact analysis+redo pass in the ARIES spirit (undo is unnecessary:
//! uncommitted transactions never install state in a main-memory engine
//! whose checkpoint is the log itself).

use crate::log::{decode_stream, LogOp, LogRecord};
use crate::storage::Database;
use std::collections::HashSet;

/// What a recovery pass found and applied.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Records decoded from the durable log stream.
    pub records_scanned: usize,
    /// Distinct transactions with a commit marker.
    pub txns_committed: usize,
    /// Records belonging to transactions without a commit marker (dropped).
    pub records_uncommitted: usize,
    /// Bytes of the stream consumed before the first undecodable byte.
    pub bytes_consumed: usize,
}

/// Replay a durable log byte stream into `db`.
///
/// Two passes: (1) analysis — find transactions whose commit marker made it
/// to durable storage; (2) redo — apply exactly those transactions' records
/// in log order.
pub fn recover(db: &mut Database, log_stream: &[u8]) -> RecoveryReport {
    let (records, bytes_consumed) = decode_stream(log_stream);
    let committed: HashSet<u64> =
        records.iter().filter(|r| r.op == LogOp::Commit).map(|r| r.txn_id).collect();
    let mut dropped = 0usize;
    for rec in &records {
        if rec.op == LogOp::Commit {
            continue;
        }
        if committed.contains(&rec.txn_id) {
            db.apply_record(rec);
        } else {
            dropped += 1;
        }
    }
    RecoveryReport {
        records_scanned: records.len(),
        txns_committed: committed.len(),
        records_uncommitted: dropped,
        bytes_consumed,
    }
}

/// Encode a transaction's records (ending in its commit marker) — test and
/// replica helper.
pub fn encode_txn(records: &[LogRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in records {
        r.encode_into(&mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::Database;

    fn committed_txn(db: &mut Database, t: u16, key: &[u8], val: &[u8]) -> Vec<u8> {
        let mut ctx = db.begin();
        db.insert(&mut ctx, t, key.to_vec(), val.to_vec());
        encode_txn(&db.commit(ctx).unwrap())
    }

    #[test]
    fn committed_txns_replay() {
        let mut primary = Database::new();
        let t = primary.create_table("t");
        let mut stream = Vec::new();
        stream.extend(committed_txn(&mut primary, t, b"a", b"1"));
        stream.extend(committed_txn(&mut primary, t, b"b", b"2"));

        let mut recovered = Database::new();
        recovered.create_table("t");
        let report = recover(&mut recovered, &stream);
        assert_eq!(report.txns_committed, 2);
        assert_eq!(report.records_uncommitted, 0);
        assert_eq!(recovered.fingerprint(), primary.fingerprint());
    }

    #[test]
    fn uncommitted_tail_dropped() {
        let mut primary = Database::new();
        let t = primary.create_table("t");
        let mut stream = Vec::new();
        stream.extend(committed_txn(&mut primary, t, b"a", b"1"));
        // A transaction whose commit marker never made it: records only.
        let orphan = crate::log::LogRecord {
            txn_id: 999,
            op: LogOp::Insert,
            table: t,
            key: b"ghost".to_vec().into(),
            value: b"x".to_vec().into(),
        };
        stream.extend(orphan.encode());

        let mut recovered = Database::new();
        recovered.create_table("t");
        let report = recover(&mut recovered, &stream);
        assert_eq!(report.txns_committed, 1);
        assert_eq!(report.records_uncommitted, 1);
        assert!(recovered.peek(t, b"ghost").is_none());
        assert_eq!(recovered.peek(t, b"a").unwrap(), b"1");
    }

    #[test]
    fn torn_tail_stops_cleanly() {
        let mut primary = Database::new();
        let t = primary.create_table("t");
        let mut stream = Vec::new();
        stream.extend(committed_txn(&mut primary, t, b"a", b"1"));
        let clean_len = stream.len();
        let second = committed_txn(&mut primary, t, b"b", b"2");
        stream.extend(&second[..second.len() / 2]); // torn

        let mut recovered = Database::new();
        recovered.create_table("t");
        let report = recover(&mut recovered, &stream);
        assert_eq!(report.bytes_consumed, clean_len);
        assert_eq!(report.txns_committed, 1);
        assert!(recovered.peek(t, b"b").is_none());
    }

    #[test]
    fn filler_after_records_is_ignored() {
        let mut primary = Database::new();
        let t = primary.create_table("t");
        let mut stream = Vec::new();
        stream.extend(committed_txn(&mut primary, t, b"a", b"1"));
        stream.extend(std::iter::repeat_n(0u8, 4096)); // destage filler

        let mut recovered = Database::new();
        recovered.create_table("t");
        let report = recover(&mut recovered, &stream);
        assert_eq!(report.txns_committed, 1);
        assert_eq!(recovered.peek(t, b"a").unwrap(), b"1");
    }

    #[test]
    fn deletes_replay() {
        let mut primary = Database::new();
        let t = primary.create_table("t");
        let mut stream = Vec::new();
        stream.extend(committed_txn(&mut primary, t, b"a", b"1"));
        let mut ctx = primary.begin();
        primary.delete(&mut ctx, t, b"a".to_vec());
        stream.extend(encode_txn(&primary.commit(ctx).unwrap()));

        let mut recovered = Database::new();
        recovered.create_table("t");
        recover(&mut recovered, &stream);
        assert!(recovered.peek(t, b"a").is_none());
        assert_eq!(recovered.fingerprint(), primary.fingerprint());
    }
}
