//! Checkpointing: bounding recovery when the destage ring wraps.
//!
//! A Villars destage ring is finite — the paper sizes it "much larger than
//! the one on the fast side" (Fig. 3), but it still wraps, and log data
//! beyond the ring is gone. A database that runs longer than one ring's
//! worth of log therefore checkpoints: it serializes its tables through the
//! *conventional* block interface (the same device, the workload isolation
//! of §6.4 applies) and records the log offset the snapshot covers.
//! Recovery = load the newest valid snapshot + replay the log suffix from
//! its offset.
//!
//! Snapshots are written ping-pong into two slots so a crash mid-checkpoint
//! always leaves the previous one intact.

use crate::log::fnv1a;
use crate::storage::Database;
use simkit::SimTime;
use xssd_core::{Cluster, DeviceIndex};

/// Snapshot framing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Magic bytes missing (slot never written or torn header).
    BadMagic,
    /// Checksum mismatch (torn or corrupt snapshot).
    BadChecksum,
    /// Structurally truncated image.
    Truncated,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => f.write_str("snapshot magic missing"),
            SnapshotError::BadChecksum => f.write_str("snapshot checksum mismatch"),
            SnapshotError::Truncated => f.write_str("snapshot truncated"),
        }
    }
}

impl std::error::Error for SnapshotError {}

const SNAP_MAGIC: &[u8; 8] = b"XSSDSNAP";

/// Metadata describing one checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Monotonically increasing checkpoint generation.
    pub generation: u64,
    /// The snapshot reflects every log byte below this offset; recovery
    /// replays from here.
    pub log_offset: u64,
    /// Serialized snapshot length in bytes.
    pub bytes: u64,
}

/// Serialize the full database (catalog + rows) into a self-validating
/// image.
pub fn encode_snapshot(db: &Database, generation: u64, log_offset: u64) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(SNAP_MAGIC);
    // Total image length (filled in at the end): lets a reader working over
    // page-padded media find the exact image boundary.
    out.extend_from_slice(&0u64.to_le_bytes());
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&log_offset.to_le_bytes());
    let names = db.table_names();
    out.extend_from_slice(&(names.len() as u32).to_le_bytes());
    for (tid, name) in names.iter().enumerate() {
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        let rows = db.table(tid as u16).map(|t| t.len()).unwrap_or(0) as u64;
        out.extend_from_slice(&rows.to_le_bytes());
        db.for_each_row(tid as u16, |k, v| {
            out.extend_from_slice(&(k.len() as u32).to_le_bytes());
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(k);
            out.extend_from_slice(v);
        });
    }
    let total = (out.len() + 4) as u64;
    out[8..16].copy_from_slice(&total.to_le_bytes());
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// The exact image length framed in a snapshot header, if the prefix is
/// long enough and carries the magic. Trailing page padding is ignored.
pub fn framed_len(bytes: &[u8]) -> Result<usize, SnapshotError> {
    if bytes.len() < 16 {
        return Err(SnapshotError::Truncated);
    }
    if &bytes[..8] != SNAP_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    Ok(u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize)
}

/// Reconstruct a database from a snapshot image. Trailing bytes beyond the
/// framed length (page padding, stale data from an older, larger snapshot in
/// the same slot) are ignored.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(CheckpointMeta, Database), SnapshotError> {
    let total = framed_len(bytes)?;
    if total < 16 + 8 + 8 + 4 + 4 || bytes.len() < total {
        return Err(SnapshotError::Truncated);
    }
    let bytes = &bytes[..total];
    let body = &bytes[..total - 4];
    let stored = u32::from_le_bytes(bytes[total - 4..].try_into().expect("4 bytes"));
    if fnv1a(body) != stored {
        return Err(SnapshotError::BadChecksum);
    }
    let mut pos = 16usize;
    let mut take = |n: usize| -> Result<&[u8], SnapshotError> {
        if pos + n > body.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &body[pos..pos + n];
        pos += n;
        Ok(s)
    };
    let generation = u64::from_le_bytes(take(8)?.try_into().expect("8"));
    let log_offset = u64::from_le_bytes(take(8)?.try_into().expect("8"));
    let tables = u32::from_le_bytes(take(4)?.try_into().expect("4")) as usize;
    let mut db = Database::new();
    for _ in 0..tables {
        let nlen = u16::from_le_bytes(take(2)?.try_into().expect("2")) as usize;
        let name = String::from_utf8_lossy(take(nlen)?).into_owned();
        let tid = db.create_table(&name);
        let rows = u64::from_le_bytes(take(8)?.try_into().expect("8"));
        for _ in 0..rows {
            let klen = u32::from_le_bytes(take(4)?.try_into().expect("4")) as usize;
            let vlen = u32::from_le_bytes(take(4)?.try_into().expect("4")) as usize;
            let key = take(klen)?.to_vec();
            let val = take(vlen)?.to_vec();
            db.install_row(tid, key, val);
        }
    }
    Ok((CheckpointMeta { generation, log_offset, bytes: total as u64 }, db))
}

/// Ping-pong checkpoint storage on a Villars conventional side.
#[derive(Debug)]
pub struct Checkpointer {
    dev: DeviceIndex,
    /// First LBA of slot 0; slot 1 follows at `base + slot_lbas`.
    base_lba: u64,
    /// LBAs reserved per slot.
    slot_lbas: u64,
    generation: u64,
}

impl Checkpointer {
    /// A checkpointer over device `dev`, using `2 * slot_lbas` blocks from
    /// `base_lba` (keep this range disjoint from the destage ring).
    pub fn new(dev: DeviceIndex, base_lba: u64, slot_lbas: u64) -> Self {
        assert!(slot_lbas > 0);
        Checkpointer { dev, base_lba, slot_lbas, generation: 0 }
    }

    fn slot_base(&self, slot: u64) -> u64 {
        self.base_lba + slot * self.slot_lbas
    }

    /// Write a checkpoint of `db` covering the log below `log_offset`.
    /// Returns the completion instant and the metadata. The write goes
    /// through the conventional block interface (Conventional-class flash
    /// traffic) and is durable (flushed) when this returns.
    pub fn checkpoint(
        &mut self,
        cl: &mut Cluster,
        now: SimTime,
        db: &Database,
        log_offset: u64,
    ) -> (SimTime, CheckpointMeta) {
        self.generation += 1;
        let image = encode_snapshot(db, self.generation, log_offset);
        let slot = self.generation % 2;
        let page = cl.device(self.dev).config().conventional.geometry.page_bytes as usize;
        let blocks_needed = image.len().div_ceil(page) as u64;
        assert!(
            blocks_needed <= self.slot_lbas,
            "snapshot ({} B) exceeds the checkpoint slot ({} LBAs of {page} B)",
            image.len(),
            self.slot_lbas
        );
        // Stage content page by page, then issue one ranged block write.
        let base = self.slot_base(slot);
        for (i, chunk) in image.chunks(page).enumerate() {
            cl.device_mut(self.dev)
                .conventional_mut()
                .stage_write_data(base + i as u64, simkit::bytes::Bytes::copy_from_slice(chunk));
        }
        let t = cl.block_write_blocking(self.dev, now, base, blocks_needed as u32);
        let t = cl.block_flush_blocking(self.dev, t);
        (t, CheckpointMeta { generation: self.generation, log_offset, bytes: image.len() as u64 })
    }

    /// Crash-injection helper: begin a checkpoint of `db` but tear it —
    /// only the first `keep` bytes of the image reach the slot before the
    /// power cut. The generation is consumed (the slot this wrote into is
    /// the one the torn checkpoint was claiming), exactly as a real
    /// mid-checkpoint crash leaves things; [`Checkpointer::restore`] must
    /// then fall back to the surviving slot's previous generation.
    /// Returns the instant the torn prefix was durable and the metadata
    /// the checkpoint *would* have carried.
    pub fn checkpoint_partial(
        &mut self,
        cl: &mut Cluster,
        now: SimTime,
        db: &Database,
        log_offset: u64,
        keep: usize,
    ) -> (SimTime, CheckpointMeta) {
        self.generation += 1;
        let image = encode_snapshot(db, self.generation, log_offset);
        let meta =
            CheckpointMeta { generation: self.generation, log_offset, bytes: image.len() as u64 };
        let keep = keep.min(image.len());
        if keep == 0 {
            return (now, meta);
        }
        let slot = self.generation % 2;
        let page = cl.device(self.dev).config().conventional.geometry.page_bytes as usize;
        let base = self.slot_base(slot);
        let blocks = keep.div_ceil(page) as u64;
        assert!(blocks <= self.slot_lbas, "torn prefix exceeds the checkpoint slot");
        for (i, chunk) in image[..keep].chunks(page).enumerate() {
            cl.device_mut(self.dev)
                .conventional_mut()
                .stage_write_data(base + i as u64, simkit::bytes::Bytes::copy_from_slice(chunk));
        }
        let t = cl.block_write_blocking(self.dev, now, base, blocks as u32);
        let t = cl.block_flush_blocking(self.dev, t);
        (t, meta)
    }

    /// Load the newest valid checkpoint from either slot, driving the
    /// device for the read timing. Returns `None` when no valid snapshot
    /// exists.
    pub fn restore(
        &self,
        cl: &mut Cluster,
        now: SimTime,
    ) -> Option<(SimTime, CheckpointMeta, Database)> {
        let page = cl.device(self.dev).config().conventional.geometry.page_bytes as usize;
        let mut best: Option<(SimTime, CheckpointMeta, Database)> = None;
        for slot in 0..2u64 {
            let base = self.slot_base(slot);
            // Read pages until the framed image length is covered (the
            // header tells us exactly where the image ends, so stale tail
            // pages from an older, larger snapshot in this slot are
            // ignored).
            let mut image = Vec::new();
            for i in 0..self.slot_lbas {
                match cl.device(self.dev).conventional().media_content(base + i) {
                    Some(b) => image.extend_from_slice(&b),
                    None => break,
                }
                if let Ok(total) = framed_len(&image) {
                    if image.len() >= total {
                        break;
                    }
                }
            }
            if let Ok((meta, db)) = decode_snapshot(&image) {
                // Timing: one block read per page actually used.
                let blocks = meta.bytes.div_ceil(page as u64) as u32;
                let t = cl.block_read_blocking(self.dev, now, base, blocks);
                let _ = page;
                if best.as_ref().is_none_or(|(_, m, _)| meta.generation > m.generation) {
                    best = Some((t, meta, db));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xssd_core::VillarsConfig;

    fn sample_db() -> Database {
        let mut db = Database::new();
        let a = db.create_table("alpha");
        let b = db.create_table("beta");
        let mut ctx = db.begin();
        for i in 0..50u32 {
            db.insert(&mut ctx, a, crate::storage::keys::composite(&[i]), vec![i as u8; 40]);
        }
        db.insert(&mut ctx, b, b"solo".to_vec(), b"row".to_vec());
        db.commit(ctx).unwrap();
        db
    }

    #[test]
    fn snapshot_round_trip() {
        let db = sample_db();
        let image = encode_snapshot(&db, 3, 12345);
        let (meta, restored) = decode_snapshot(&image).unwrap();
        assert_eq!(meta.generation, 3);
        assert_eq!(meta.log_offset, 12345);
        assert_eq!(restored.fingerprint(), db.fingerprint());
        assert_eq!(restored.table_id("beta"), db.table_id("beta"));
    }

    #[test]
    fn snapshot_detects_corruption() {
        let db = sample_db();
        let mut image = encode_snapshot(&db, 1, 0);
        let mid = image.len() / 2;
        image[mid] ^= 0x40;
        assert_eq!(decode_snapshot(&image).err(), Some(SnapshotError::BadChecksum));
        assert_eq!(decode_snapshot(&image[..10]).err(), Some(SnapshotError::Truncated));
        let mut bad_magic = encode_snapshot(&db, 1, 0);
        bad_magic[0] = b'Y';
        assert_eq!(decode_snapshot(&bad_magic).err(), Some(SnapshotError::BadMagic));
    }

    #[test]
    fn checkpoint_restore_round_trip_through_device() {
        let mut cl = Cluster::new();
        let dev = cl.add_device(VillarsConfig::small());
        let db = sample_db();
        // Keep the slot range clear of the small destage ring (64 LBAs).
        let mut ck = Checkpointer::new(dev, 128, 16);
        let (t1, meta) = ck.checkpoint(&mut cl, SimTime::ZERO, &db, 777);
        assert!(t1 > SimTime::ZERO);
        assert_eq!(meta.generation, 1);
        let (t2, meta2, restored) = ck.restore(&mut cl, t1).expect("snapshot present");
        assert!(t2 > t1);
        assert_eq!(meta2.log_offset, 777);
        assert_eq!(restored.fingerprint(), db.fingerprint());
    }

    #[test]
    fn ping_pong_keeps_previous_generation() {
        let mut cl = Cluster::new();
        let dev = cl.add_device(VillarsConfig::small());
        let mut ck = Checkpointer::new(dev, 128, 16);
        let db1 = sample_db();
        let (t1, _) = ck.checkpoint(&mut cl, SimTime::ZERO, &db1, 100);
        // Mutate and checkpoint again (other slot).
        let mut db2 = sample_db();
        let t = db2.table_id("alpha").unwrap();
        let mut ctx = db2.begin();
        db2.insert(&mut ctx, t, b"extra".to_vec(), b"row".to_vec());
        db2.commit(ctx).unwrap();
        let (t2, meta2) = ck.checkpoint(&mut cl, t1, &db2, 200);
        assert_eq!(meta2.generation, 2);
        // Restore returns the NEWEST.
        let (_t3, meta3, restored) = ck.restore(&mut cl, t2).expect("snapshot");
        assert_eq!(meta3.generation, 2);
        assert_eq!(restored.fingerprint(), db2.fingerprint());
    }

    #[test]
    fn shrinking_snapshot_in_reused_slot_still_restores() {
        // Regression: generation 3 writes a SMALLER image into the slot
        // generation 1 used; the stale non-zero tail pages of generation 1
        // must not confuse the reader (the framed length bounds the image).
        let mut cl = Cluster::new();
        let dev = cl.add_device(VillarsConfig::small());
        let mut ck = Checkpointer::new(dev, 128, 32);
        let big = sample_db(); // ~50 rows
        let mut small = Database::new();
        let t = small.create_table("alpha");
        small.create_table("beta");
        let mut ctx = small.begin();
        small.insert(&mut ctx, t, b"only".to_vec(), b"row".to_vec());
        small.commit(ctx).unwrap();

        let (t1, m1) = ck.checkpoint(&mut cl, SimTime::ZERO, &big, 10); // slot 1
        let (t2, _m2) = ck.checkpoint(&mut cl, t1, &big, 20); // slot 0
        let (t3, m3) = ck.checkpoint(&mut cl, t2, &small, 30); // slot 1 again, smaller
        assert!(m3.bytes < m1.bytes, "test needs a shrinking image");
        let (_t, meta, restored) = ck.restore(&mut cl, t3).expect("restores");
        assert_eq!(meta.generation, 3, "newest generation wins");
        assert_eq!(restored.fingerprint(), small.fingerprint());
    }

    #[test]
    fn checkpoint_survives_power_failure() {
        let mut cl = Cluster::new();
        let dev = cl.add_device(VillarsConfig::small());
        let mut ck = Checkpointer::new(dev, 128, 16);
        let db = sample_db();
        let (t1, _) = ck.checkpoint(&mut cl, SimTime::ZERO, &db, 42);
        cl.power_fail(dev, t1);
        cl.reboot_device(dev);
        let (_t, meta, restored) = ck.restore(&mut cl, t1).expect("flushed checkpoint survives");
        assert_eq!(meta.log_offset, 42);
        assert_eq!(restored.fingerprint(), db.fingerprint());
    }

    #[test]
    fn torn_checkpoint_restores_the_surviving_slot() {
        let mut cl = Cluster::new();
        let dev = cl.add_device(VillarsConfig::small());
        let mut ck = Checkpointer::new(dev, 128, 16);
        let db1 = sample_db();
        let (t1, m1) = ck.checkpoint(&mut cl, SimTime::ZERO, &db1, 100);
        // Generation 2 tears mid-image; the crash lands before the slot
        // is complete.
        let mut db2 = sample_db();
        let tab = db2.table_id("alpha").unwrap();
        let mut ctx = db2.begin();
        db2.insert(&mut ctx, tab, b"post-snap".to_vec(), b"row".to_vec());
        db2.commit(ctx).unwrap();
        let (t2, m2) = ck.checkpoint_partial(&mut cl, t1, &db2, 200, m1.bytes as usize / 2);
        cl.power_fail(dev, t2);
        cl.reboot_device(dev);
        // The surviving generation-1 snapshot wins.
        let (_t, meta, restored) = ck.restore(&mut cl, t2).expect("survivor slot valid");
        assert_eq!(meta.generation, 1);
        assert_eq!(meta.log_offset, 100);
        assert_eq!(restored.fingerprint(), db1.fingerprint());
        assert_eq!(m2.generation, 2, "the torn generation was consumed");
        // The next full checkpoint (generation 3) lands in the other slot
        // and takes over cleanly.
        let (t3, m3) = ck.checkpoint(&mut cl, t2, &db2, 200);
        assert_eq!(m3.generation, 3);
        let (_t, meta3, restored3) = ck.restore(&mut cl, t3).expect("snapshot");
        assert_eq!(meta3.generation, 3);
        assert_eq!(restored3.fingerprint(), db2.fingerprint());
    }

    #[test]
    fn empty_device_restores_nothing() {
        let mut cl = Cluster::new();
        let dev = cl.add_device(VillarsConfig::small());
        let ck = Checkpointer::new(dev, 128, 16);
        assert!(ck.restore(&mut cl, SimTime::ZERO).is_none());
    }
}
